// Quickstart: train a model on faulty data, protect it with a TDFM
// technique, and measure the accuracy delta — the library's core loop in
// ~60 lines.
//
//   $ ./examples/quickstart [--technique LS] [--fault-percent 30]
#include <iostream>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/baseline.hpp"
#include "mitigation/registry.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;

  CliParser cli;
  cli.add_flag("technique", "LS", "TDFM technique: Base|LS|LC|RL|KD|Ens");
  cli.add_flag("fault-percent", "30", "percentage of training data to mislabel");
  cli.add_flag("epochs", "8", "training epochs");
  cli.add_flag("seed", "7", "random seed");
  cli.add_flag("threads", "0",
               "worker threads (0 = hardware concurrency, 1 = serial)");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kInfo);
  apply_obs_flags(cli);
  core::ThreadPool::set_global_threads(
      static_cast<std::size_t>(cli.get_int("threads")));

  // 1. Generate a dataset (GTSRB-like traffic signs, 43 classes).
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kGtsrbSim;
  spec.seed = cli.get_u64("seed");
  const data::TrainTestPair dataset = data::generate(spec);
  std::cout << "dataset: " << dataset.train.name << " (" << dataset.train.size()
            << " train / " << dataset.test.size() << " test, "
            << dataset.train.num_classes << " classes)\n";

  // 2. Inject mislabelling faults into the training data.
  Rng rng(spec.seed);
  faults::InjectionReport report;
  const data::Dataset faulty = faults::inject(
      dataset.train,
      faults::FaultSpec{faults::FaultType::kMislabelling,
                        cli.get_double("fault-percent")},
      rng, &report);
  std::cout << "injected " << report.mislabelled << " label faults\n";

  // 3. Train the golden model (clean data, no technique) and the protected
  //    model (faulty data + chosen technique).
  nn::TrainOptions opts;
  opts.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  const auto arch = models::Arch::kConvNet;

  mitigation::FitContext golden_ctx;
  golden_ctx.train = &dataset.train;
  golden_ctx.primary_arch = arch;
  golden_ctx.model_config = models::ModelConfig::for_dataset(spec);
  golden_ctx.train_opts = opts;
  Rng golden_rng = rng.fork(1);
  golden_ctx.rng = &golden_rng;
  const auto golden = mitigation::BaselineTechnique().fit(golden_ctx);

  auto technique = mitigation::make_technique(
      mitigation::technique_from_name(cli.get_string("technique")));
  mitigation::FitContext ctx = golden_ctx;
  ctx.train = &faulty;
  Rng fit_rng = rng.fork(2);
  ctx.rng = &fit_rng;
  const auto protected_model = technique->fit(ctx);

  // 4. Compare on the test set.
  const auto golden_preds = golden->predict(dataset.test.images);
  const auto faulty_preds = protected_model->predict(dataset.test.images);
  const double golden_acc = metrics::accuracy(golden_preds, dataset.test.labels);
  const double faulty_acc = metrics::accuracy(faulty_preds, dataset.test.labels);
  const double ad =
      metrics::accuracy_delta(golden_preds, faulty_preds, dataset.test.labels);

  std::cout << "\ngolden accuracy:               " << percent(golden_acc)
            << "\nprotected (" << technique->name()
            << ") accuracy:       " << percent(faulty_acc)
            << "\naccuracy delta (lower=better): " << percent(ad) << '\n';
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
