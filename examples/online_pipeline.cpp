// Online pipeline walkthrough: the closed loop in ~40 lines of config.
//
// A faulty stream (20% mislabelled) feeds an ingest buffer; every second
// round a candidate is retrained on the latest window and judged by the
// canary controller with the paper's AD metric; passing candidates are
// hot-swapped into the serving engine.  At round 3 a corruption drill
// damages the live weights behind the canary's back — the next health check
// catches the breach and rolls back to the last good version.
//
//   $ ./examples/online_pipeline [--rounds 8] [--metrics]
#include <iostream>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "pipeline/pipeline.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  CliParser cli;
  cli.add_flag("rounds", "8", "stream rounds to run");
  cli.add_flag("seed", "7", "master seed (decisions replay bit-identically)");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_obs_flags(cli);
  core::ThreadPool::set_global_threads(2);

  pipeline::PipelineConfig cfg;
  cfg.dataset.scale = 0.6;                  // CIFAR-10-sim, bench scale
  cfg.stream.mislabel_percent = 20.0;       // the paper's mid-range fault
  cfg.stream.chunk_size = 96;
  cfg.ingest.window = 192;
  cfg.retrain.train_opts.epochs = 6;
  cfg.retrain.train_opts.threads = 2;
  cfg.canary.ad_threshold = 0.5;            // promotion guardrail
  cfg.canary.rollback_factor = 1.4;         // health rollback at 0.7
  cfg.rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  cfg.corrupt_round = 3;                    // the drill
  cfg.corruption.mode = pipeline::CorruptionMode::kSignFlip;
  cfg.corruption.fraction = 0.2;
  cfg.bootstrap_epochs = 4;
  cfg.seed = cli.get_u64("seed");

  pipeline::OnlinePipeline pipe(cfg);
  const pipeline::PipelineResult result = pipe.run();

  for (const pipeline::Decision& d : result.decisions) {
    std::cout << "round " << d.round << ": " << pipeline::action_name(d.action)
              << "  live=v" << d.live_version << " -> v"
              << d.candidate_version << "  " << d.reason << "\n";
  }
  std::cout << "\nfinal: v" << result.live_version << " serving after "
            << result.promotions << " promotion(s), " << result.rollbacks
            << " rollback(s), " << result.corruptions << " drill(s); "
            << result.samples_streamed << " faulty samples streamed, traffic "
            << "accuracy " << fixed(result.traffic_accuracy(), 3) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "online_pipeline: " << e.what() << "\n";
  return 1;
}
