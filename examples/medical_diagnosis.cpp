// Medical-diagnosis scenario (the paper's motivating domain, §II).
//
// A hospital trains a pneumonia screening model on a small chest-X-ray
// dataset in which some labels are wrong.  This example walks the full
// decision a practitioner faces: how bad is the damage, which mitigation
// should I deploy, and what does it cost me?
//
//   $ ./examples/medical_diagnosis [--mislabel-percent 10] [--epochs 20]
#include <iostream>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/baseline.hpp"
#include "mitigation/registry.hpp"
#include "obs/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;

  CliParser cli;
  cli.add_flag("mislabel-percent", "10", "fraction of labels flipped");
  cli.add_flag("epochs", "20", "training epochs");
  cli.add_flag("seed", "21", "random seed");
  cli.add_flag("threads", "0",
               "worker threads (0 = hardware concurrency, 1 = serial)");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_obs_flags(cli);
  core::ThreadPool::set_global_threads(
      static_cast<std::size_t>(cli.get_int("threads")));

  // The Pneumonia-sim dataset: binary chest-X-ray analogue, deliberately
  // small (~120 train images) like the real 5.2k-image dataset relative to
  // CIFAR-scale corpora.
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kPneumoniaSim;
  spec.seed = cli.get_u64("seed");
  const auto dataset = data::generate(spec);
  std::cout << "Pneumonia-sim: " << dataset.train.size() << " train / "
            << dataset.test.size() << " test images\n\n";

  // Mislabelled training data, as §II's motivating example.
  Rng rng(spec.seed ^ 0xfeedULL);
  const double pct = cli.get_double("mislabel-percent");
  const data::Dataset faulty = faults::inject(
      dataset.train, faults::FaultSpec{faults::FaultType::kMislabelling, pct}, rng);

  nn::TrainOptions opts;
  opts.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opts.batch_size = 8;  // small dataset -> small batches
  const auto arch = models::Arch::kResNet50;  // as in §II

  mitigation::FitContext base_ctx;
  base_ctx.train = &dataset.train;
  base_ctx.primary_arch = arch;
  base_ctx.model_config = models::ModelConfig::for_dataset(spec);
  base_ctx.train_opts = opts;
  Rng golden_rng = rng.fork(1);
  base_ctx.rng = &golden_rng;
  const auto golden = mitigation::BaselineTechnique().fit(base_ctx);
  const auto golden_preds = golden->predict(dataset.test.images);
  const double golden_acc = metrics::accuracy(golden_preds, dataset.test.labels);
  std::cout << "golden model (clean data):     " << percent(golden_acc) << "\n\n";

  // Try every technique on the faulty data and report the practitioner's
  // decision table: accuracy, AD, and training cost.
  AsciiTable table({"technique", "accuracy", "AD (lower=better)", "train time",
                    "models at inference"});
  for (const auto kind : mitigation::all_techniques()) {
    auto technique = mitigation::make_technique(kind);
    mitigation::FitContext ctx = base_ctx;
    ctx.train = &faulty;
    Rng fit_rng = rng.fork(100 + static_cast<std::uint64_t>(kind));
    ctx.rng = &fit_rng;
    obs::Stopwatch watch;
    const auto model = technique->fit(ctx);
    const double train_s = watch.elapsed_seconds();
    const auto preds = model->predict(dataset.test.images);
    table.add_row({technique->name(),
                   percent(metrics::accuracy(preds, dataset.test.labels)),
                   percent(metrics::accuracy_delta(golden_preds, preds,
                                                   dataset.test.labels)),
                   fixed(train_s, 1) + "s",
                   fixed(model->inference_model_count(), 0)});
  }
  std::cout << "with " << pct << "% mislabelled training data:\n"
            << table.render()
            << "\nPaper's conclusion (§V): ensembles are the most resilient "
               "but cost ~5x; label smoothing is the practical alternative "
               "under resource constraints.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
