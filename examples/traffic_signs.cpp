// Traffic-sign recognition scenario (the paper's second safety-critical
// domain): an AV stack trains a sign classifier on GTSRB-like data whose
// labels were produced by an automatic labeller that sometimes errs, and
// whose collection pipeline sometimes drops frames (removal faults).
//
// Demonstrates the ensemble technique end to end, including the per-member
// view — why architectural diversity lets majority voting absorb faults.
//
//   $ ./examples/traffic_signs [--fault removal] [--percent 30]
#include <iostream>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/baseline.hpp"
#include "mitigation/ensemble.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;

  CliParser cli;
  cli.add_flag("fault", "mislabelling", "fault type: mislabelling|repetition|removal");
  cli.add_flag("percent", "30", "fault percentage");
  cli.add_flag("epochs", "10", "training epochs");
  cli.add_flag("scale", "0.5", "dataset scale");
  cli.add_flag("seed", "3", "random seed");
  cli.add_flag("threads", "0",
               "worker threads (0 = hardware concurrency, 1 = serial)");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_obs_flags(cli);
  core::ThreadPool::set_global_threads(
      static_cast<std::size_t>(cli.get_int("threads")));

  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kGtsrbSim;
  spec.scale = cli.get_double("scale");
  spec.seed = cli.get_u64("seed");
  const auto dataset = data::generate(spec);
  std::cout << "GTSRB-sim: " << dataset.train.size() << " train / "
            << dataset.test.size() << " test images, "
            << dataset.train.num_classes << " sign classes\n";

  Rng rng(spec.seed ^ 0x51615ULL);
  faults::InjectionReport report;
  const data::Dataset faulty = faults::inject(
      dataset.train,
      faults::FaultSpec{faults::fault_from_name(cli.get_string("fault")),
                        cli.get_double("percent")},
      rng, &report);
  std::cout << "injected: " << report.mislabelled << " mislabelled, "
            << report.repeated << " repeated, " << report.removed
            << " removed (" << report.original_size << " -> "
            << report.resulting_size << " samples)\n\n";

  nn::TrainOptions opts;
  opts.epochs = static_cast<std::size_t>(cli.get_int("epochs"));

  // Golden reference: ResNet18 on clean data.
  mitigation::FitContext ctx;
  ctx.train = &dataset.train;
  ctx.primary_arch = models::Arch::kResNet18;
  ctx.model_config = models::ModelConfig::for_dataset(spec);
  ctx.train_opts = opts;
  Rng golden_rng = rng.fork(1);
  ctx.rng = &golden_rng;
  const auto golden = mitigation::BaselineTechnique().fit(ctx);
  const auto golden_preds = golden->predict(dataset.test.images);
  std::cout << "golden ResNet18 accuracy: "
            << percent(metrics::accuracy(golden_preds, dataset.test.labels))
            << "\n";

  // The paper's five-member ensemble on the faulty data.
  mitigation::EnsembleTechnique ens;
  mitigation::FitContext ens_ctx = ctx;
  ens_ctx.train = &faulty;
  Rng ens_rng = rng.fork(2);
  ens_ctx.rng = &ens_rng;
  auto fitted = ens.fit(ens_ctx);
  auto* ensemble = dynamic_cast<mitigation::EnsembleClassifier*>(fitted.get());
  TDFM_CHECK(ensemble != nullptr, "ensemble technique returns EnsembleClassifier");

  // Per-member accuracies: diversity means members err on different inputs.
  AsciiTable table({"member", "architecture", "accuracy on faulty training"});
  for (std::size_t m = 0; m < ensemble->size(); ++m) {
    const auto preds = nn::predict_classes(ensemble->member(m), dataset.test.images);
    table.add_row({std::to_string(m + 1), ensemble->member(m).name(),
                   percent(metrics::accuracy(preds, dataset.test.labels))});
  }
  const auto ens_preds = ensemble->predict(dataset.test.images);
  std::cout << table.render() << "majority vote accuracy:   "
            << percent(metrics::accuracy(ens_preds, dataset.test.labels))
            << "\nAD vs golden:             "
            << percent(metrics::accuracy_delta(golden_preds, ens_preds,
                                               dataset.test.labels))
            << "\n\nThe vote typically beats most individual members: faults "
               "push different architectures toward different mistakes, and "
               "the majority recovers (§IV-B).\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
