// Serving walkthrough: train -> checkpoint -> serve -> hot swap.
//
// Trains two quick ConvNet generations on progressively more data, ships
// each as a self-describing v2 checkpoint, serves generation 1 behind an
// InferenceEngine, then hot-swaps to generation 2 while requests are in
// flight.  Run with --metrics to see the serve.* counters and histograms.
//
//   $ ./examples/serving_demo [--epochs 3] [--requests 200] [--metrics]
#include <future>
#include <iostream>
#include <vector>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"
#include "serve/serve.hpp"

namespace {

using namespace tdfm;

/// Plain cross-entropy fit — the serving layer does not care how (or with
/// which TDFM technique) a checkpoint was trained.
void fit(nn::Network& net, const data::Dataset& train, std::size_t epochs,
         std::size_t threads, Rng& rng) {
  const Tensor targets = nn::one_hot(train.labels, train.num_classes);
  nn::CrossEntropyLoss ce;
  nn::TrainOptions opts;
  opts.epochs = epochs;
  opts.threads = threads;
  nn::Trainer trainer(opts);
  trainer.fit(
      net, train.images,
      [&](const Tensor& logits, std::span<const std::size_t> idx, Tensor& grad) {
        return ce.compute(logits, nn::Trainer::gather(targets, idx), grad);
      },
      rng);
}

Tensor slice_sample(const Tensor& images, std::size_t i) {
  std::vector<std::size_t> dims;
  for (std::size_t d = 1; d < images.rank(); ++d) dims.push_back(images.dim(d));
  Tensor out{Shape(dims)};
  for (std::size_t j = 0; j < out.numel(); ++j) {
    out[j] = images[i * out.numel() + j];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace tdfm;
  CliParser cli;
  cli.add_flag("epochs", "3", "training epochs per model generation");
  cli.add_flag("requests", "200", "requests to send per serving phase");
  cli.add_flag("workers", "2", "engine worker threads");
  cli.add_flag("seed", "7", "random seed");
  cli.add_flag("threads", "0", "training threads (0 = hardware concurrency)");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kInfo);
  apply_obs_flags(cli);
  core::ThreadPool::set_global_threads(
      static_cast<std::size_t>(cli.get_int("threads")));
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  const auto requests = static_cast<std::size_t>(cli.get_int("requests"));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  const std::uint64_t seed = cli.get_u64("seed");

  // 1. Train generation 1 on half the data and generation 2 on all of it,
  //    saving each as a v2 checkpoint (header carries arch + geometry).
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kCifar10Sim;
  spec.seed = seed;
  const data::TrainTestPair full = data::generate(spec);
  spec.scale = 0.5;
  const data::TrainTestPair half = data::generate(spec);
  const models::ModelConfig config = models::ModelConfig::for_dataset(spec);
  const nn::CheckpointMeta meta =
      models::checkpoint_meta(models::Arch::kConvNet, config);

  Rng rng(seed);
  std::cout << "training generation 1 (" << half.train.size() << " samples)...\n";
  auto gen1 = models::build_model(models::Arch::kConvNet, config, rng);
  fit(*gen1, half.train, epochs, core::ThreadPool::global_threads(), rng);
  nn::save_checkpoint(*gen1, "model_v1.ckpt", meta);

  std::cout << "training generation 2 (" << full.train.size() << " samples)...\n";
  auto gen2 = models::build_model(models::Arch::kConvNet, config, rng);
  fit(*gen2, full.train, epochs, core::ThreadPool::global_threads(), rng);
  nn::save_checkpoint(*gen2, "model_v2.ckpt", meta);

  // 2. Serve generation 1.  The registry reads the architecture from the
  //    checkpoint header — no model-specific wiring here.
  serve::ModelRegistry registry(/*replica_slots=*/workers);
  std::cout << "serving model_v1.ckpt (version "
            << registry.load("classifier", "model_v1.ckpt") << ")\n";
  serve::EngineConfig ecfg;
  ecfg.workers = workers;
  ecfg.batching.max_batch_size = 8;
  ecfg.batching.max_queue_delay_us = 500;
  serve::InferenceEngine engine(registry, "classifier", ecfg);

  const auto send_burst = [&](const char* label) {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      futures.push_back(
          engine.submit(slice_sample(full.test.images, i % full.test.size())));
    }
    std::size_t correct = 0;
    std::size_t served = 0;
    std::uint64_t version = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const serve::Response r = futures[i].get();
      if (!r.ok()) continue;
      ++served;
      version = r.model_version;
      if (r.predicted_class == full.test.labels[i % full.test.size()]) ++correct;
    }
    std::cout << label << ": " << served << "/" << requests
              << " served by version " << version << ", accuracy "
              << percent(static_cast<double>(correct) /
                             static_cast<double>(served ? served : 1),
                         1)
              << "\n";
  };
  send_burst("generation 1");

  // 3. Hot swap to generation 2 — one atomic publish; the engine keeps
  //    draining without a pause and in-flight batches finish on version 1.
  std::cout << "hot-swapping to model_v2.ckpt (version "
            << registry.load("classifier", "model_v2.ckpt") << ")\n";
  send_burst("generation 2");

  const serve::EngineStats stats = engine.stats();
  std::cout << "engine: " << stats.served << " served over " << stats.batches
            << " batches (avg batch "
            << fixed(static_cast<double>(stats.served) /
                         static_cast<double>(stats.batches ? stats.batches : 1),
                     1)
            << ")\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "serving_demo failed: " << e.what() << "\n";
  return 1;
}
