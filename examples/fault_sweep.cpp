// Fault sweep: the library's experiment harness driven as an application.
//
// Sweeps one (dataset, model, technique set) configuration across all three
// fault types and prints AD tables plus a CSV block for plotting — the same
// machinery the bench binaries use, exposed as a configurable tool.
//
//   $ ./examples/fault_sweep --dataset cifar10 --model VGG11 \
//       --techniques Base,LS,Ens --trials 2
#include <iostream>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "experiment/experiment.hpp"
#include "experiment/report.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;

  CliParser cli;
  cli.add_flag("dataset", "gtsrb", "cifar10|gtsrb|pneumonia");
  cli.add_flag("model", "ConvNet", "architecture under test");
  cli.add_flag("techniques", "Base,LS,RL,KD,Ens", "comma-separated technique list");
  cli.add_flag("fault", "all", "mislabelling|repetition|removal|all");
  cli.add_flag("trials", "2", "repetitions per configuration");
  cli.add_flag("epochs", "10", "training epochs");
  cli.add_flag("scale", "0.5", "dataset scale");
  cli.add_flag("width", "8", "model width");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("csv", "false", "also dump CSV rows");
  cli.add_flag("threads", "0",
               "worker threads (0 = hardware concurrency, 1 = serial)");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);
  apply_obs_flags(cli);
  core::ThreadPool::set_global_threads(
      static_cast<std::size_t>(cli.get_int("threads")));

  experiment::StudyConfig cfg;
  cfg.dataset.kind = data::dataset_from_name(cli.get_string("dataset"));
  cfg.dataset.scale = cli.get_double("scale");
  cfg.model = models::arch_from_name(cli.get_string("model"));
  cfg.model_width = static_cast<std::size_t>(cli.get_int("width"));
  cfg.trials = static_cast<std::size_t>(cli.get_int("trials"));
  cfg.train_opts.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  cfg.seed = cli.get_u64("seed");

  cfg.techniques.clear();
  {
    const std::string list = cli.get_string("techniques");
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::size_t end = comma == std::string::npos ? list.size() : comma;
      cfg.techniques.push_back(
          mitigation::technique_from_name(list.substr(pos, end - pos)));
      pos = end + 1;
    }
  }

  std::vector<faults::FaultType> types;
  const std::string fault = cli.get_string("fault");
  if (fault == "all") {
    types = {faults::FaultType::kMislabelling, faults::FaultType::kRepetition,
             faults::FaultType::kRemoval};
  } else {
    types = {faults::fault_from_name(fault)};
  }

  for (const auto type : types) {
    cfg.fault_levels = experiment::standard_sweep(type);
    const auto result = experiment::run_study(cfg);
    std::cout << experiment::render_ad_table(
                     result, std::string(data::dataset_name(cfg.dataset.kind)) +
                                 " / " + models::arch_name(cfg.model) + " / " +
                                 faults::fault_name(type))
              << experiment::render_winners(result) << '\n';
    if (cli.get_bool("csv")) std::cout << experiment::render_csv(result) << '\n';
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
