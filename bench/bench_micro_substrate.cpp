// E9 — substrate micro-benchmarks (google-benchmark).
//
// Throughput of the numeric kernels everything else stands on: GEMM,
// im2col, layer forward/backward, loss evaluation, fault injection and
// dataset generation.  These are not a paper artefact; they exist so
// performance regressions in the substrate are visible independently of
// the (noisy) end-to-end experiment timings.
#include <benchmark/benchmark.h>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "faults/fault_injector.hpp"
#include "models/model_zoo.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/init.hpp"

namespace {

using namespace tdfm;

// Thread counts swept by the *Threads benchmarks: 1, 2, 4, and the machine's
// hardware concurrency (deduplicated, capped at 8 to keep runs bounded).
void thread_count_args(benchmark::internal::Benchmark* b) {
  const auto hw = static_cast<std::int64_t>(core::ThreadPool::default_threads());
  std::int64_t last = 0;
  for (const std::int64_t t : {std::int64_t{1}, std::int64_t{2}, std::int64_t{4},
                               std::min<std::int64_t>(hw, 8)}) {
    if (t > last) b->Arg(t);
    last = std::max(last, t);
  }
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n), b(n * n), c(n * n);
  Rng rng(1);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  for (auto _ : state) {
    gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

// GEMM throughput vs pool size.  Per-row arithmetic is partition-invariant,
// so C is bit-identical at every thread count — this sweep measures only
// wall-clock scaling of the row-block partitioning.
void BM_GemmNNThreads(benchmark::State& state) {
  core::ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 256;
  std::vector<float> a(n * n), b(n * n), c(n * n);
  Rng rng(1);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  for (auto _ : state) {
    gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
  core::ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_GemmNNThreads)->Apply(thread_count_args);

void BM_Im2Col(benchmark::State& state) {
  const ConvGeometry g{8, 16, 16, 3, 1, 1};
  std::vector<float> img(g.in_c * g.in_h * g.in_w, 0.5F);
  std::vector<float> cols(g.patch_rows() * g.patch_cols());
  for (auto _ : state) {
    im2col(g, img.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_Conv2DForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2D conv(8, 16, 16, 16, 3, 1, 1, rng);
  Tensor x(Shape{16, 8, 16, 16});
  uniform_init(x, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    Tensor gx = conv.backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2DForwardBackward);

// Conv2D forward+backward vs pool size (the dominant training cost).
void BM_Conv2DThreads(benchmark::State& state) {
  core::ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  Rng rng(2);
  nn::Conv2D conv(8, 16, 16, 16, 3, 1, 1, rng);
  Tensor x(Shape{16, 8, 16, 16});
  uniform_init(x, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    Tensor gx = conv.backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
  core::ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_Conv2DThreads)->Apply(thread_count_args);

// End-to-end training throughput vs pool size: one epoch of a small ConvNet
// on synthetic traffic-sign data per iteration.  This is the number the
// `--threads` flag exists for; the 4-thread row should show >= 1.5x the
// items/s of the 1-thread row on a 4-core machine.
void BM_TrainEpochThreads(benchmark::State& state) {
  core::ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kGtsrbSim;
  spec.scale = 0.15;
  const auto pair = data::generate(spec);
  models::ModelConfig cfg = models::ModelConfig::for_dataset(spec);
  cfg.width = 8;
  const Tensor targets = nn::one_hot(pair.train.labels, pair.train.num_classes);
  nn::TrainOptions opts;
  opts.epochs = 1;
  opts.auto_tune = false;
  nn::CrossEntropyLoss ce;
  Rng build_rng(7);
  auto net = models::build_model(models::Arch::kConvNet, cfg, build_rng);
  for (auto _ : state) {
    nn::Trainer trainer(opts);
    Rng fit_rng(9);
    trainer.fit(*net, pair.train.images,
                [&](const Tensor& logits, std::span<const std::size_t> idx,
                    Tensor& grad) {
                  return ce.compute(logits, nn::Trainer::gather(targets, idx), grad);
                },
                fit_rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pair.train.size()));
  core::ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_TrainEpochThreads)->Apply(thread_count_args)->Unit(benchmark::kMillisecond);

void BM_DenseForwardBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Dense dense(256, 128, rng);
  Tensor x(Shape{32, 256});
  uniform_init(x, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    Tensor y = dense.forward(x, true);
    Tensor gx = dense.backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_DenseForwardBackward);

void BM_Loss(benchmark::State& state) {
  Rng rng(4);
  Tensor logits(Shape{32, 43});
  uniform_init(logits, -2.0F, 2.0F, rng);
  std::vector<int> labels(32);
  for (auto& l : labels) l = static_cast<int>(rng.index(43));
  const Tensor targets = nn::one_hot(labels, 43);
  std::unique_ptr<nn::Loss> loss;
  switch (state.range(0)) {
    case 0: loss = std::make_unique<nn::CrossEntropyLoss>(); break;
    case 1: loss = std::make_unique<nn::LabelRelaxationLoss>(0.1F); break;
    default: loss = std::make_unique<nn::APLLoss>(1.0F, 1.0F); break;
  }
  Tensor grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss->compute(logits, targets, grad));
  }
}
BENCHMARK(BM_Loss)->Arg(0)->Arg(1)->Arg(2);

void BM_DatasetGeneration(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.kind = static_cast<data::DatasetKind>(state.range(0));
  spec.scale = 0.2;
  for (auto _ : state) {
    auto pair = data::generate(spec);
    benchmark::DoNotOptimize(pair.train.images.data());
  }
}
BENCHMARK(BM_DatasetGeneration)->Arg(0)->Arg(1)->Arg(2);

void BM_FaultInjection(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kGtsrbSim;
  spec.scale = 0.5;
  const auto pair = data::generate(spec);
  Rng rng(5);
  const faults::FaultSpec f{static_cast<faults::FaultType>(state.range(0)), 30.0};
  for (auto _ : state) {
    auto faulty = faults::inject(pair.train, f, rng);
    benchmark::DoNotOptimize(faulty.images.data());
  }
}
BENCHMARK(BM_FaultInjection)->Arg(0)->Arg(1)->Arg(2);

void BM_ModelBuild(benchmark::State& state) {
  const auto arch = static_cast<models::Arch>(state.range(0));
  models::ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 43;
  cfg.width = 6;
  Rng rng(6);
  for (auto _ : state) {
    auto net = models::build_model(arch, cfg, rng);
    benchmark::DoNotOptimize(net->parameter_count());
  }
}
BENCHMARK(BM_ModelBuild)->Arg(0)->Arg(4)->Arg(5)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
