// study_query — the results-store CLI over tdfm::store.
//
// A finished campaign's JSONL journal is append-friendly but query-hostile:
// every report, grep, or archive pass re-parses every byte.  study_query
// turns a journal into a compressed columnar store once, then answers
// questions from the store's manifest — usually without touching most of
// the compressed bytes at all:
//
//   study_query import --journal fig4.jsonl --store fig4.store
//   study_query info   --store fig4.store
//   study_query filter --store fig4.store --technique Ensemble5
//   study_query grep   --store fig4.store --pattern GTSRB
//   study_query agg    --store fig4.store --report markdown
//   study_query export --store fig4.store --out fig4.roundtrip.jsonl
//
// `import` is lossless: `export` reproduces the journal byte for byte
// (non-canonical lines ride along verbatim in a per-segment exception
// column).  `filter`/`grep` resolve their predicates against the string
// dictionaries first and skip every segment whose zone maps cannot hold a
// match — skipped segments are never read, let alone decompressed; the
// scan counters printed on stderr prove it.  `agg` feeds the matching
// records through the same Analyzer as study_runner --report, so the
// numbers cannot drift between the two tools.
//
// `--obs-dir` at import archives the campaign's observability-plane
// snapshots into the store (restore them with `restore-obs`), making the
// store a single self-contained artefact of a paper run.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "store/store.hpp"

namespace {

using namespace tdfm;

constexpr const char* kUsage =
    "usage: study_query <command> [flags]\n"
    "\n"
    "commands:\n"
    "  import       journal JSONL -> store (lossless; see --verify)\n"
    "  export       store -> journal JSONL (byte-identical to the import)\n"
    "  filter       print matching records as JSONL (predicate pushdown)\n"
    "  grep         filter by substring over the dictionary-encoded fields\n"
    "  agg          aggregate matching records (same Analyzer as --report)\n"
    "  info         print the store's manifest statistics\n"
    "  restore-obs  write the archived telemetry snapshots back out\n"
    "\n"
    "run `study_query <command> --help` for that command's flags\n";

void deliver(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << text;
    return;
  }
  std::ofstream out(out_path, std::ios::trunc | std::ios::binary);
  TDFM_CHECK(out.good(), "cannot open --out file: " + out_path);
  out << text;
  TDFM_CHECK(out.good(), "failed writing --out file: " + out_path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TDFM_CHECK(in.good(), "cannot read file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Shared query flags (filter, grep, agg); unset flags match everything.
void add_query_flags(CliParser& cli) {
  cli.add_flag("dataset", "", "exact dataset name");
  cli.add_flag("model", "", "exact model name");
  cli.add_flag("fault-level", "", "exact fault-level name");
  cli.add_flag("technique", "", "exact technique name");
  cli.add_flag("cell", "", "exact cell id (no zone map: scans all segments)");
  cli.add_flag("trial", "", "exact trial number");
  cli.add_flag("min-ad", "", "keep rows with ad >= this");
  cli.add_flag("max-ad", "", "keep rows with ad <= this");
}

store::Query query_from_flags(const CliParser& cli) {
  store::Query q;
  const auto opt = [&](const char* flag) -> std::optional<std::string> {
    const std::string v = cli.get_string(flag);
    return v.empty() ? std::nullopt : std::optional<std::string>(v);
  };
  q.dataset = opt("dataset");
  q.model = opt("model");
  q.fault_level = opt("fault-level");
  q.technique = opt("technique");
  q.cell = opt("cell");
  if (!cli.get_string("trial").empty()) q.trial = cli.get_u64("trial");
  if (!cli.get_string("min-ad").empty()) q.min_ad = cli.get_double("min-ad");
  if (!cli.get_string("max-ad").empty()) q.max_ad = cli.get_double("max-ad");
  return q;
}

/// The pushdown evidence, printed after every scan: how much of the store
/// the query never had to read.
void print_scan_stats(const store::ScanStats& stats) {
  std::cerr << "scanned " << stats.segments_scanned << "/"
            << stats.segments_total << " segments ("
            << stats.segments_skipped << " skipped by zone maps), "
            << stats.rows_matched << "/" << stats.rows_scanned
            << " decoded rows matched\n";
}

int cmd_import(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("journal", "", "source JSONL journal (required)");
  cli.add_flag("store", "", "store directory to create or extend (required)");
  cli.add_flag("segment-rows", "0",
               "rows per segment (0 = default; an existing store's "
               "geometry wins)");
  cli.add_flag("obs-dir", "",
               "also archive this observability-plane directory's metric "
               "snapshots into the store");
  cli.add_flag("verify", "true",
               "re-export after import and fail unless the bytes match the "
               "journal (modulo a recovered torn tail)");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  const std::string journal = cli.get_string("journal");
  const std::string dir = cli.get_string("store");
  TDFM_CHECK(!journal.empty() && !dir.empty(),
             "import needs --journal and --store");

  store::WriterOptions opts;
  if (cli.get_int("segment-rows") > 0) {
    opts.segment_rows = static_cast<std::size_t>(cli.get_int("segment-rows"));
  }
  const store::ImportStats stats =
      store::import_journal(journal, dir, opts, cli.get_string("obs-dir"));
  std::cerr << "imported " << stats.records << " records into "
            << stats.segments << " segments (" << stats.raw_exceptions
            << " non-canonical lines kept verbatim"
            << (stats.recovered_torn_tail ? ", torn tail recovered" : "")
            << (stats.telemetry_files
                    ? ", " + std::to_string(stats.telemetry_files) +
                          " snapshots archived"
                    : "")
            << "): " << stats.journal_bytes << " journal bytes -> "
            << stats.store_bytes << " store bytes\n";

  if (cli.get_bool("verify")) {
    std::ostringstream exported;
    store::StoreReader(dir).export_jsonl(exported);
    std::string expected = read_file(journal);
    if (stats.recovered_torn_tail) {
      // Import dropped the torn final line exactly as a resume would; the
      // comparable prefix ends at the last newline.
      expected.erase(expected.find_last_of('\n') + 1);
    }
    TDFM_CHECK(exported.str() == expected,
               "import verification failed: export does not reproduce " +
                   journal + " byte-for-byte");
    std::cerr << "verified: export reproduces the journal byte-for-byte\n";
  }
  return 0;
}

int cmd_export(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("store", "", "store directory (required)");
  cli.add_flag("out", "", "output journal path (default: stdout)");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  const std::string dir = cli.get_string("store");
  TDFM_CHECK(!dir.empty(), "export needs --store");
  const std::string out = cli.get_string("out");
  if (out.empty()) {
    store::StoreReader(dir).export_jsonl(std::cout);
  } else {
    store::export_journal(dir, out);
  }
  return 0;
}

int cmd_filter(int argc, char** argv, bool grep_mode) {
  CliParser cli;
  cli.add_flag("store", "", "store directory (required)");
  add_query_flags(cli);
  if (grep_mode) {
    cli.add_flag("pattern", "",
                 "substring matched against dataset/model/fault-level/"
                 "technique (required; dictionary-resolved, so unmatched "
                 "segments are skipped unread)");
  }
  cli.add_flag("out", "", "write matching JSONL to this file (default: stdout)");
  cli.add_flag("count", "false", "print only the match count");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  const std::string dir = cli.get_string("store");
  TDFM_CHECK(!dir.empty(), (grep_mode ? std::string("grep")
                                      : std::string("filter")) +
                               " needs --store");
  store::Query q = query_from_flags(cli);
  if (grep_mode) {
    q.grep = cli.get_string("pattern");
    TDFM_CHECK(!q.grep.empty(), "grep needs --pattern");
  }

  const store::StoreReader reader(dir);
  std::ostringstream lines;
  const store::ScanStats stats = reader.query(
      q, [&](const study::CellRecord& r, const std::string& raw) {
        lines << (raw.empty() ? study::to_jsonl(r) : raw) << '\n';
      });
  if (cli.get_bool("count")) {
    deliver(std::to_string(stats.rows_matched) + "\n", cli.get_string("out"));
  } else {
    deliver(lines.str(), cli.get_string("out"));
  }
  print_scan_stats(stats);
  return 0;
}

int cmd_agg(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("store", "", "store directory (required)");
  add_query_flags(cli);
  cli.add_flag("report", "ascii", "report format: ascii|markdown|csv|json");
  cli.add_flag("timings", "false",
               "include wall-clock columns (breaks byte-identity)");
  cli.add_flag("out", "", "write the report to this file (default: stdout)");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  const std::string dir = cli.get_string("store");
  TDFM_CHECK(!dir.empty(), "agg needs --store");

  const store::StoreReader reader(dir);
  std::vector<study::CellRecord> records;
  const store::ScanStats stats = reader.query(
      query_from_flags(cli),
      [&](const study::CellRecord& r, const std::string&) {
        records.push_back(r);
      });
  // The same fold as study_runner --report: mean ± 95% CI per (dataset,
  // model, fault level, technique) plus the per-technique roll-up.
  const study::CampaignSummary summary = study::summarize_campaign(records);
  study::ReportOptions opts;
  opts.include_timings = cli.get_bool("timings");
  const std::string format = cli.get_string("report");
  std::string text;
  if (format == "ascii") text = study::render_ascii(summary, opts);
  else if (format == "markdown") text = study::render_markdown(summary, opts);
  else if (format == "csv") text = study::render_csv(summary, opts);
  else if (format == "json") text = study::render_json_summary(summary, opts) + "\n";
  else throw ConfigError("unknown --report format '" + format +
                         "' (ascii|markdown|csv|json)");
  deliver(text, cli.get_string("out"));
  print_scan_stats(stats);
  return 0;
}

int cmd_info(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("store", "", "store directory (required)");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  const std::string dir = cli.get_string("store");
  TDFM_CHECK(!dir.empty(), "info needs --store");

  const store::StoreReader reader(dir);
  const store::Manifest& m = reader.manifest();
  std::cout << "store: " << dir << "\n"
            << "rows: " << m.rows << "\n"
            << "segments: " << m.segments.size() << " (" << m.segment_rows
            << " rows each)\n"
            << "data bytes: " << m.data_bytes << "\n"
            << "source: " << (m.source.empty() ? "(unset)" : m.source)
            << (m.source_recovered_torn_tail ? " (torn tail recovered)" : "")
            << "\n";
  for (std::size_t d = 0; d < store::kDictColumns; ++d) {
    std::cout << store::dict_column_name(d) << " dictionary: "
              << m.dicts[d].size() << " entries\n";
  }
  if (m.telemetry_files > 0) {
    std::cout << "telemetry: " << m.telemetry_files << " snapshots, "
              << m.telemetry_bytes << " bytes\n";
  }
  if (reader.recovered_truncated_tail()) {
    std::cout << "warning: truncated tail recovered at open\n";
  }
  std::cout << "codec: " << (store::zlib_available() ? "zlib" : "tlz")
            << " (blocks record their own codec)\n";
  return 0;
}

int cmd_restore_obs(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("store", "", "store directory (required)");
  cli.add_flag("out", "", "directory to restore snapshots into (required)");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  const std::string dir = cli.get_string("store");
  const std::string out = cli.get_string("out");
  TDFM_CHECK(!dir.empty() && !out.empty(), "restore-obs needs --store and --out");
  const std::size_t files = store::StoreReader(dir).restore_telemetry(out);
  std::cerr << "restored " << files << " snapshot files into " << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "help") {
    std::cout << kUsage;
    return argc < 2 ? 1 : 0;
  }
  // CliParser has no positional arguments: the subcommand is argv[1] and the
  // command parses the shifted remainder.
  const std::string cmd = argv[1];
  const int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (cmd == "import") return cmd_import(sub_argc, sub_argv);
  if (cmd == "export") return cmd_export(sub_argc, sub_argv);
  if (cmd == "filter") return cmd_filter(sub_argc, sub_argv, false);
  if (cmd == "grep") return cmd_filter(sub_argc, sub_argv, true);
  if (cmd == "agg") return cmd_agg(sub_argc, sub_argv);
  if (cmd == "info") return cmd_info(sub_argc, sub_argv);
  if (cmd == "restore-obs") return cmd_restore_obs(sub_argc, sub_argv);
  std::cerr << "unknown command '" << cmd << "'\n\n" << kUsage;
  return 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
