// E6 — Fig. 4(b, d, f): AD across datasets, MobileNet, repetition faults.
//
// Three panels: CIFAR-10-sim, GTSRB-sim, Pneumonia-sim with repetition
// percentages {10, 30, 50}.  Expected shapes from the paper: ADs are much
// lower than under mislabelling across all datasets (models tolerate
// duplicated samples well), robust loss shows the highest AD, and
// knowledge distillation the second highest (the repeated data implicitly
// shifts weight away from the teacher's distilled loss).
//
// Thin wrapper over the `fig4-repetition` study preset (which also encodes
// the paper's LC omission for non-mislabelling faults, §IV-C).
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("model", "MobileNet", "panel model");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E6: Fig. 4(b,d,f) — AD across datasets, repetition", s);

  study::StudySpec spec = preset_with_settings("fig4-repetition", s);
  spec.models = {models::arch_from_name(cli.get_string("model"))};

  obs::Stopwatch watch;
  const auto result = study::run_campaign(spec, campaign_run_options(s));
  const auto summary = study::summarize_campaign(result.records);
  std::cout << study::render_ascii(summary);
  std::cout << "paper reference shapes: repetition ADs far below mislabelling "
               "ADs; RL highest, KD second highest.\n";
  std::cout << "dataset cache: " << result.dataset_cache.hits << " hits / "
            << result.dataset_cache.misses << " misses\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  BenchJson json("fig4_repetition", s);
  add_campaign_headlines(json, summary);
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
