// E6 — Fig. 4(b, d, f): AD across datasets, MobileNet, repetition faults.
//
// Three panels: CIFAR-10-sim, GTSRB-sim, Pneumonia-sim with repetition
// percentages {10, 30, 50}.  Expected shapes from the paper: ADs are much
// lower than under mislabelling across all datasets (models tolerate
// duplicated samples well), robust loss shows the highest AD, and
// knowledge distillation the second highest (the repeated data implicitly
// shifts weight away from the teacher's distilled loss).
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("model", "MobileNet", "panel model");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E6: Fig. 4(b,d,f) — AD across datasets, repetition", s);

  const auto model = models::arch_from_name(cli.get_string("model"));
  obs::Stopwatch watch;
  BenchJson json("fig4_repetition", s);
  for (const auto kind :
       {data::DatasetKind::kCifar10Sim, data::DatasetKind::kGtsrbSim,
        data::DatasetKind::kPneumoniaSim}) {
    experiment::StudyConfig cfg = base_study(s, kind, model);
    cfg.fault_levels = experiment::standard_sweep(faults::FaultType::kRepetition);
    // LC is only run for mislabelling faults (§IV-C).
    cfg.techniques = {
        mitigation::TechniqueKind::kBaseline,
        mitigation::TechniqueKind::kLabelSmoothing,
        mitigation::TechniqueKind::kRobustLoss,
        mitigation::TechniqueKind::kKnowledgeDistillation,
        mitigation::TechniqueKind::kEnsemble,
    };
    const auto result = experiment::run_study(cfg);
    std::cout << experiment::render_ad_table(
                     result, std::string("Fig. 4 panel — ") + data::dataset_name(kind) +
                                 " / " + models::arch_name(model) + " / repetition")
              << experiment::render_winners(result) << "\n";
    add_study_headlines(json, result, std::string(data::dataset_name(kind)) + ".");
  }
  std::cout << "paper reference shapes: repetition ADs far below mislabelling "
               "ADs; RL highest, KD second highest.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.write(s.json_path);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
