// E3 — Fig. 3(a-d): AD across models, GTSRB, mislabelling faults.
//
// Four panels (ResNet50, VGG16, ConvNet, MobileNet), fault percentages
// {10, 30, 50}, all six columns (Base + five TDFM techniques).  Expected
// shapes from the paper:
//   - ensembles and label smoothing lowest AD across panels (Observation 1);
//   - KD below baseline at 10% but above it at 30-50% ("garbage in,
//     garbage out");
//   - RL and LC above the baseline on the shallow ConvNet (soft losses
//     inhibit shallow models).
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("models", "ResNet50,ConvNet",
               "comma-separated panel models (paper: ResNet50,VGG16,ConvNet,MobileNet)");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E3: Fig. 3(a-d) — AD across models, GTSRB, mislabelling", s);

  const std::vector<models::Arch> archs = parse_arch_list(cli.get_string("models"));

  experiment::StudyConfig proto =
      base_study(s, data::DatasetKind::kGtsrbSim, archs.front());
  proto.fault_levels = experiment::standard_sweep(faults::FaultType::kMislabelling);

  obs::Stopwatch watch;
  const auto results = experiment::run_multi_model_study(proto, archs);
  for (std::size_t a = 0; a < archs.size(); ++a) {
    std::cout << experiment::render_ad_table(
                     results[a], std::string("Fig. 3 panel — GTSRB-sim / ") +
                                     models::arch_name(archs[a]) +
                                     " / mislabelling")
              << experiment::render_winners(results[a]) << "\n";
  }
  std::cout << "paper reference shapes: Ens & LS lowest AD; KD helps at 10% "
               "but exceeds the baseline at 30-50%; RL/LC hurt ConvNet.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  BenchJson json("fig3_mislabelling", s);
  for (const auto& result : results) add_study_headlines(json, result);
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.write(s.json_path);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
