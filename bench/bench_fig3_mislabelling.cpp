// E3 — Fig. 3(a-d): AD across models, GTSRB, mislabelling faults.
//
// Four panels (ResNet50, VGG16, ConvNet, MobileNet), fault percentages
// {10, 30, 50}, all six columns (Base + five TDFM techniques).  Expected
// shapes from the paper:
//   - ensembles and label smoothing lowest AD across panels (Observation 1);
//   - KD below baseline at 10% but above it at 30-50% ("garbage in,
//     garbage out");
//   - RL and LC above the baseline on the shallow ConvNet (soft losses
//     inhibit shallow models).
//
// Thin wrapper over the `fig3-mislabelling` study preset: the grid lives in
// src/study/presets.cpp; this binary applies the scaling flags and renders
// the campaign summary.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("models", "ResNet50,ConvNet",
               "comma-separated panel models (paper: ResNet50,VGG16,ConvNet,MobileNet)");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E3: Fig. 3(a-d) — AD across models, GTSRB, mislabelling", s);

  study::StudySpec spec = preset_with_settings("fig3-mislabelling", s);
  spec.models = parse_arch_list(cli.get_string("models"));

  obs::Stopwatch watch;
  const auto result = study::run_campaign(spec, campaign_run_options(s));
  const auto summary = study::summarize_campaign(result.records);
  std::cout << study::render_ascii(summary);
  std::cout << "paper reference shapes: Ens & LS lowest AD; KD helps at 10% "
               "but exceeds the baseline at 30-50%; RL/LC hurt ConvNet.\n";
  std::cout << "dataset cache: " << result.dataset_cache.hits << " hits / "
            << result.dataset_cache.misses << " misses\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  BenchJson json("fig3_mislabelling", s);
  add_campaign_headlines(json, summary);
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
