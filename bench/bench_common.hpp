// Shared plumbing for the bench binaries.
//
// Every bench regenerates one of the paper's tables/figures and accepts the
// same scaling flags, so results can be dialled from a minutes-long default
// run to a paper-faithful overnight run:
//   --trials N   repetitions per configuration (paper: 20)
//   --epochs N   training epochs per model
//   --scale F    dataset-size multiplier (1.0 = Table II at 1/45 scale)
//   --seed S     master seed
//   --log L      log verbosity
//   --jobs N     concurrent campaign cells (study-backed benches)
// plus the observability flags (core/cli.hpp): --metrics, --trace,
// --log-timestamps, and --out (or its older alias --json) to write the
// machine-readable result file somewhere instead of stdout.
#pragma once

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "core/table.hpp"
#include "experiment/experiment.hpp"
#include "experiment/report.hpp"
#include "kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "study/study.hpp"

namespace tdfm::bench {

struct BenchSettings {
  std::size_t trials = 2;
  std::size_t epochs = 9;
  double scale = 0.65;
  std::size_t width = 8;
  std::uint64_t seed = 42;
  std::size_t threads = 1;  ///< resolved worker-thread count (never 0)
  std::size_t jobs = 1;     ///< concurrent campaign cells (study benches)
  std::string out_path;     ///< --out result file ("" = print to stdout)
  std::string json_path;    ///< legacy --json alias for --out
  std::string kernel;       ///< resolved GEMM kernel name (scalar/sse2/avx2)
};

/// Parses the common flags; returns false when --help was requested.
inline bool parse_bench_flags(int argc, char** argv, CliParser& cli,
                              BenchSettings& settings,
                              int default_trials = 2, int default_epochs = 9,
                              double default_scale = 0.65,
                              int default_width = 8) {
  cli.add_flag("width", std::to_string(default_width),
               "model base channel width (paper-scale analogue: 8)");
  cli.add_flag("out", "", "write machine-readable bench results to this file "
               "instead of stdout");
  cli.add_flag("json", "", "older alias for --out");
  cli.add_flag("jobs", "1", "concurrent campaign cells (study-backed benches)");
  cli.add_flag("kernel", "",
               "GEMM kernel: scalar|sse2|avx2 (default: best supported; "
               "same as the TDFM_KERNEL env var)");
  add_common_bench_flags(cli, default_trials, default_epochs, default_scale);
  if (!cli.parse(argc, argv)) return false;
  settings.width = static_cast<std::size_t>(cli.get_int("width"));
  settings.trials = static_cast<std::size_t>(cli.get_int("trials"));
  settings.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  settings.scale = cli.get_double("scale");
  settings.seed = cli.get_u64("seed");
  settings.out_path = cli.get_string("out");
  settings.json_path = cli.get_string("json");
  const int jobs = cli.get_int("jobs");
  TDFM_CHECK(jobs >= 0, "--jobs must be >= 0");
  settings.jobs = static_cast<std::size_t>(jobs);
  set_log_level(parse_log_level(cli.get_string("log")));
  apply_obs_flags(cli);
  const int threads = cli.get_int("threads");
  TDFM_CHECK(threads >= 0, "--threads must be >= 0");
  core::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
  settings.threads = core::ThreadPool::global_threads();
  const std::string kernel_flag = cli.get_string("kernel");
  if (!kernel_flag.empty()) {
    const auto kind = kernels::parse_kernel(kernel_flag);
    TDFM_CHECK(kind.has_value(),
               "--kernel must be scalar, sse2, or avx2 (got '" + kernel_flag +
                   "')");
    kernels::set_active_kernel(*kind);  // throws when the host lacks it
  }
  settings.kernel = kernels::kernel_name(kernels::active_kernel());
  return true;
}

/// Builds the study skeleton shared by all benches.  The tiny Pneumonia-sim
/// dataset (~120 samples) gets a smaller batch and proportionally more
/// epochs so every model sees a comparable number of optimisation steps —
/// with the GTSRB/CIFAR settings it would receive ~4 steps per epoch and
/// models would collapse to the class prior.
inline experiment::StudyConfig base_study(const BenchSettings& s,
                                          data::DatasetKind dataset,
                                          models::Arch model) {
  experiment::StudyConfig cfg;
  cfg.dataset.kind = dataset;
  cfg.dataset.scale = s.scale;
  cfg.model = model;
  cfg.trials = s.trials;
  cfg.train_opts.epochs = s.epochs;
  cfg.train_opts.threads = s.threads;
  cfg.model_width = s.width;
  cfg.seed = s.seed;
  if (dataset == data::DatasetKind::kPneumoniaSim) {
    cfg.train_opts.batch_size = 8;
    cfg.train_opts.epochs = s.epochs * 5 / 2;
    // Pneumonia-sim is already tiny (120 train images, mirroring the real
    // dataset's ~1/10 size); scaling it below full size would leave too few
    // samples per class for any model to train.  It is cheap — keep it full.
    cfg.dataset.scale = std::max(s.scale, 1.0);
  }
  return cfg;
}

/// Parses "ResNet50,VGG16,..." into architecture ids.
inline std::vector<models::Arch> parse_arch_list(const std::string& list) {
  std::vector<models::Arch> archs;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    archs.push_back(models::arch_from_name(list.substr(pos, end - pos)));
    pos = end + 1;
  }
  TDFM_CHECK(!archs.empty(), "empty model list");
  return archs;
}

/// Prints a header common to all benches.
inline void print_banner(const std::string& what, const BenchSettings& s) {
  std::cout << "=== " << what << " ===\n"
            << "settings: trials=" << s.trials << " epochs=" << s.epochs
            << " scale=" << s.scale << " seed=" << s.seed
            << " threads=" << s.threads << " kernel=" << s.kernel
            << "  (paper: 20 trials, full datasets)\n\n";
}

/// Machine-readable bench output (--json flag): one JSON object carrying the
/// bench name, the settings it ran with, and an ordered map of headline
/// metrics.  Insertion order is preserved so files diff cleanly across runs.
class BenchJson {
 public:
  BenchJson(std::string bench, const BenchSettings& settings)
      : bench_(std::move(bench)), settings_(settings) {}

  void add(const std::string& key, double value) {
    entries_.emplace_back(key, obs::json_number(value));
  }
  void add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, obs::json_string(value));
  }

  /// The full result document.  All string content is escaped through the
  /// shared obs/json.hpp helpers (add() stores pre-encoded values).
  [[nodiscard]] std::string render() const {
    std::ostringstream out;
    out << "{\n  \"bench\": " << obs::json_string(bench_)
        << ",\n  \"config\": {\"trials\": " << settings_.trials
        << ", \"epochs\": " << settings_.epochs
        << ", \"scale\": " << obs::json_number(settings_.scale)
        << ", \"width\": " << settings_.width
        << ", \"seed\": " << settings_.seed
        << ", \"threads\": " << settings_.threads
        << ", \"kernel\": " << obs::json_string(settings_.kernel)
        << "},\n  \"metrics\": {";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ")
          << obs::json_string(entries_[i].first) << ": " << entries_[i].second;
    }
    out << (entries_.empty() ? "}" : "\n  }") << "\n}\n";
    return out.str();
  }

  /// Writes the file; no-op when `path` is empty (flag not given).
  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path, std::ios::trunc);
    TDFM_CHECK(out.good(), "cannot open --out output file: " + path);
    out << render();
    TDFM_CHECK(out.good(), "failed writing --out output file: " + path);
  }

  /// Emits the results where the flags asked for them: `--out` wins, the
  /// legacy `--json` alias still works, and with neither the document goes
  /// to stdout (scripted sweeps redirect with --out).
  void emit(const BenchSettings& s) const {
    if (!s.out_path.empty()) {
      write(s.out_path);
    } else if (!s.json_path.empty()) {
      write(s.json_path);
    } else {
      std::cout << render();
    }
  }

 private:
  std::string bench_;
  BenchSettings settings_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Adds a study's standard headline metrics: golden accuracy plus the mean
/// accuracy delta of every (fault level, technique) cell.  `prefix`
/// disambiguates keys when one bench runs several studies per model
/// (e.g. a dataset sweep).
inline void add_study_headlines(BenchJson& json,
                                const experiment::StudyResult& result,
                                const std::string& prefix = "") {
  const std::string model = prefix + models::arch_name(result.config.model);
  json.add(model + ".golden_accuracy", result.golden_accuracy.mean);
  for (std::size_t fl = 0; fl < result.config.fault_levels.size(); ++fl) {
    const std::string level = result.config.fault_level_name(fl);
    for (std::size_t ti = 0; ti < result.config.techniques.size(); ++ti) {
      const std::string technique =
          mitigation::technique_name(result.config.techniques[ti]);
      json.add(model + "." + level + "." + technique + ".ad",
               result.cells[fl][ti].ad.mean);
    }
  }
}

/// Looks up a study preset and applies the shared bench flags on top, so the
/// fig3/fig4/table4 benches stay thin wrappers: the grid lives in the preset,
/// the scaling knobs live here.
inline study::StudySpec preset_with_settings(const std::string& preset,
                                             const BenchSettings& s) {
  study::StudySpec spec = study::preset_spec(preset);
  spec.trials = s.trials;
  spec.scale = s.scale;
  spec.model_width = s.width;
  spec.seed = s.seed;
  spec.train_opts.epochs = s.epochs;
  spec.train_opts.threads = s.threads;
  return spec;
}

/// Campaign run options from the shared bench flags (journal-less: benches
/// print reports; use study_runner for resumable sweeps).
inline study::RunOptions campaign_run_options(const BenchSettings& s) {
  study::RunOptions run;
  run.jobs = s.jobs;
  return run;
}

/// Adds a campaign's standard headline metrics: golden accuracy per
/// (dataset, model) panel plus the mean AD of every group.
inline void add_campaign_headlines(BenchJson& json,
                                   const study::CampaignSummary& summary) {
  std::vector<std::string> seen;
  for (const study::GroupStats& g : summary.groups) {
    const std::string panel = g.dataset + "." + g.model;
    if (std::find(seen.begin(), seen.end(), panel) == seen.end()) {
      seen.push_back(panel);
      json.add(panel + ".golden_accuracy", g.golden_accuracy.mean);
    }
    json.add(panel + "." + g.fault_level + "." + g.technique + ".ad", g.ad.mean);
  }
}

}  // namespace tdfm::bench
