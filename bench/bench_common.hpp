// Shared plumbing for the bench binaries.
//
// Every bench regenerates one of the paper's tables/figures and accepts the
// same scaling flags, so results can be dialled from a minutes-long default
// run to a paper-faithful overnight run:
//   --trials N   repetitions per configuration (paper: 20)
//   --epochs N   training epochs per model
//   --scale F    dataset-size multiplier (1.0 = Table II at 1/45 scale)
//   --seed S     master seed
//   --log L      log verbosity
#pragma once

#include <algorithm>
#include <iostream>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/stopwatch.hpp"
#include "core/thread_pool.hpp"
#include "core/table.hpp"
#include "experiment/experiment.hpp"
#include "experiment/report.hpp"

namespace tdfm::bench {

struct BenchSettings {
  std::size_t trials = 2;
  std::size_t epochs = 9;
  double scale = 0.65;
  std::size_t width = 8;
  std::uint64_t seed = 42;
  std::size_t threads = 1;  ///< resolved worker-thread count (never 0)
};

/// Parses the common flags; returns false when --help was requested.
inline bool parse_bench_flags(int argc, char** argv, CliParser& cli,
                              BenchSettings& settings,
                              int default_trials = 2, int default_epochs = 9,
                              double default_scale = 0.65,
                              int default_width = 8) {
  cli.add_flag("width", std::to_string(default_width),
               "model base channel width (paper-scale analogue: 8)");
  add_common_bench_flags(cli, default_trials, default_epochs, default_scale);
  if (!cli.parse(argc, argv)) return false;
  settings.width = static_cast<std::size_t>(cli.get_int("width"));
  settings.trials = static_cast<std::size_t>(cli.get_int("trials"));
  settings.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  settings.scale = cli.get_double("scale");
  settings.seed = cli.get_u64("seed");
  set_log_level(parse_log_level(cli.get_string("log")));
  const int threads = cli.get_int("threads");
  TDFM_CHECK(threads >= 0, "--threads must be >= 0");
  core::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
  settings.threads = core::ThreadPool::global_threads();
  return true;
}

/// Builds the study skeleton shared by all benches.  The tiny Pneumonia-sim
/// dataset (~120 samples) gets a smaller batch and proportionally more
/// epochs so every model sees a comparable number of optimisation steps —
/// with the GTSRB/CIFAR settings it would receive ~4 steps per epoch and
/// models would collapse to the class prior.
inline experiment::StudyConfig base_study(const BenchSettings& s,
                                          data::DatasetKind dataset,
                                          models::Arch model) {
  experiment::StudyConfig cfg;
  cfg.dataset.kind = dataset;
  cfg.dataset.scale = s.scale;
  cfg.model = model;
  cfg.trials = s.trials;
  cfg.train_opts.epochs = s.epochs;
  cfg.train_opts.threads = s.threads;
  cfg.model_width = s.width;
  cfg.seed = s.seed;
  if (dataset == data::DatasetKind::kPneumoniaSim) {
    cfg.train_opts.batch_size = 8;
    cfg.train_opts.epochs = s.epochs * 5 / 2;
    // Pneumonia-sim is already tiny (120 train images, mirroring the real
    // dataset's ~1/10 size); scaling it below full size would leave too few
    // samples per class for any model to train.  It is cheap — keep it full.
    cfg.dataset.scale = std::max(s.scale, 1.0);
  }
  return cfg;
}

/// Parses "ResNet50,VGG16,..." into architecture ids.
inline std::vector<models::Arch> parse_arch_list(const std::string& list) {
  std::vector<models::Arch> archs;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    archs.push_back(models::arch_from_name(list.substr(pos, end - pos)));
    pos = end + 1;
  }
  TDFM_CHECK(!archs.empty(), "empty model list");
  return archs;
}

/// Prints a header common to all benches.
inline void print_banner(const std::string& what, const BenchSettings& s) {
  std::cout << "=== " << what << " ===\n"
            << "settings: trials=" << s.trials << " epochs=" << s.epochs
            << " scale=" << s.scale << " seed=" << s.seed
            << " threads=" << s.threads
            << "  (paper: 20 trials, full datasets)\n\n";
}

}  // namespace tdfm::bench
