// E4 — Fig. 3(e-h): AD across models, GTSRB, data-removal faults.
//
// Same four panels as Fig. 3(a-d) but with removal faults.  Per the paper,
// label correction is omitted (it has no effect on non-mislabelling
// faults), all ADs are much lower than under mislabelling (models still
// learn with up to 50% fewer samples), and the techniques that help against
// mislabelling also help here — except robust loss on ConvNet.
//
// Thin wrapper over the `fig3-removal` study preset: the grid (including
// the LC omission) lives in src/study/presets.cpp.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("models", "ResNet50,ConvNet",
               "comma-separated panel models (paper: ResNet50,VGG16,ConvNet,MobileNet)");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E4: Fig. 3(e-h) — AD across models, GTSRB, removal", s);

  study::StudySpec spec = preset_with_settings("fig3-removal", s);
  spec.models = parse_arch_list(cli.get_string("models"));

  obs::Stopwatch watch;
  const auto result = study::run_campaign(spec, campaign_run_options(s));
  const auto summary = study::summarize_campaign(result.records);
  std::cout << study::render_ascii(summary);
  std::cout << "paper reference shapes: all ADs well below the mislabelling "
               "ADs; most techniques still at or below the baseline.\n";
  std::cout << "dataset cache: " << result.dataset_cache.hits << " hits / "
            << result.dataset_cache.misses << " misses\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  BenchJson json("fig3_removal", s);
  add_campaign_headlines(json, summary);
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
