// E4 — Fig. 3(e-h): AD across models, GTSRB, data-removal faults.
//
// Same four panels as Fig. 3(a-d) but with removal faults.  Per the paper,
// label correction is omitted (it has no effect on non-mislabelling
// faults), all ADs are much lower than under mislabelling (models still
// learn with up to 50% fewer samples), and the techniques that help against
// mislabelling also help here — except robust loss on ConvNet.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("models", "ResNet50,ConvNet",
               "comma-separated panel models (paper: ResNet50,VGG16,ConvNet,MobileNet)");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E4: Fig. 3(e-h) — AD across models, GTSRB, removal", s);

  const std::vector<models::Arch> archs = parse_arch_list(cli.get_string("models"));

  experiment::StudyConfig proto =
      base_study(s, data::DatasetKind::kGtsrbSim, archs.front());
  proto.fault_levels = experiment::standard_sweep(faults::FaultType::kRemoval);
  // The paper runs LC only for mislabelling faults (§IV-C).
  proto.techniques = {
      mitigation::TechniqueKind::kBaseline,
      mitigation::TechniqueKind::kLabelSmoothing,
      mitigation::TechniqueKind::kRobustLoss,
      mitigation::TechniqueKind::kKnowledgeDistillation,
      mitigation::TechniqueKind::kEnsemble,
  };

  obs::Stopwatch watch;
  const auto results = experiment::run_multi_model_study(proto, archs);
  for (std::size_t a = 0; a < archs.size(); ++a) {
    std::cout << experiment::render_ad_table(
                     results[a], std::string("Fig. 3 panel — GTSRB-sim / ") +
                                     models::arch_name(archs[a]) + " / removal")
              << experiment::render_winners(results[a]) << "\n";
  }
  std::cout << "paper reference shapes: all ADs well below the mislabelling "
               "ADs; most techniques still at or below the baseline.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  BenchJson json("fig3_removal", s);
  for (const auto& result : results) add_study_headlines(json, result);
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.write(s.json_path);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
