// Ablation — ensemble size and composition (DESIGN.md §5).
//
// The paper fixes n = 5 (found most effective in the authors' prior work
// [21]) with the five lowest-baseline-AD members.  This ablation sweeps the
// member count and compares a diverse member set against a homogeneous one
// (five ConvNets), quantifying how much of the ensemble's resilience comes
// from *diversity* rather than mere replication (§IV-B's claim).
#include "bench_common.hpp"

#include "mitigation/ensemble.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("percent", "30", "mislabelling percentage");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/2, /*epochs=*/10,
                         /*scale=*/0.5, /*width=*/8)) {
    return 0;
  }
  print_banner("ablation: ensemble size & diversity (DESIGN.md §5)", s);

  using models::Arch;
  struct Variant {
    const char* label;
    std::vector<Arch> members;
  };
  const std::vector<Variant> variants{
      {"n=1 (ConvNet)", {Arch::kConvNet}},
      {"n=3 diverse", {Arch::kConvNet, Arch::kVGG11, Arch::kMobileNet}},
      {"n=5 diverse (paper)", mitigation::EnsembleTechnique::default_members()},
      {"n=5 homogeneous",
       {Arch::kConvNet, Arch::kConvNet, Arch::kConvNet, Arch::kConvNet,
        Arch::kConvNet}},
  };

  obs::Stopwatch watch;
  BenchJson json("ablation_ensemble_size", s);
  AsciiTable table({"variant", "AD", "accuracy", "train time"});
  for (const Variant& v : variants) {
    experiment::StudyConfig cfg =
        base_study(s, data::DatasetKind::kGtsrbSim, Arch::kConvNet);
    cfg.techniques = {mitigation::TechniqueKind::kEnsemble};
    cfg.hyperparams.ens_members = v.members;
    cfg.fault_levels = {{faults::FaultSpec{faults::FaultType::kMislabelling,
                                           cli.get_double("percent")}}};
    const auto r = experiment::run_study(cfg);
    const auto& cell = r.cells[0][0];
    table.add_row({v.label,
                   percent_with_ci(cell.ad.mean, cell.ad.ci95_half_width),
                   percent(cell.faulty_accuracy.mean, 0),
                   fixed(cell.train_seconds.mean, 1) + "s"});
    json.add(std::string(v.label) + ".ad", cell.ad.mean);
    json.add(std::string(v.label) + ".train_seconds", cell.train_seconds.mean);
  }
  std::cout << table.render()
            << "\nexpected shape: AD falls as members are added, and the "
               "diverse 5-member set beats five copies of one architecture "
               "(architectural diversity is the mechanism, §IV-B).\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
