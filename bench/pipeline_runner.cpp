// pipeline_runner: drive the online faulty-stream pipeline end to end.
//
// One process runs the full closed loop — faulty stream ingest, windowed
// retraining with a chosen mitigation technique, AD-guarded canary judgement,
// hot swap through the model registry — and prints the decision history.
// With --rounds (the default) the run is fully deterministic: the decision
// log (--decision-log) is bit-identical across reruns and --jobs counts,
// which scripts/pipeline_smoke.sh asserts with cmp.  --duration switches to
// wall-clock mode for soak runs (log no longer replay-stable).
//
//   pipeline_runner --fault-rate 30 --window 96 --retrain-every 2 \
//       --canary-fraction 0.25 --ad-threshold 0.15 --rounds 8 --seed 7 \
//       --corrupt-round 3 --decision-log decisions.jsonl --out result.json
#include "bench_common.hpp"
#include "pipeline/pipeline.hpp"

namespace tdfm {
namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("dataset", "cifar10", "cifar10|gtsrb|pneumonia (simulated)");
  cli.add_flag("model", "ConvNet", "zoo architecture to retrain");
  cli.add_flag("technique", "Base",
               "mitigation technique for retraining: Base|LS|LC|RL|KD");
  cli.add_flag("fault-rate", "20", "stream mislabelling rate (percent)");
  cli.add_flag("repeat-rate", "0", "stream repetition rate (percent)");
  cli.add_flag("remove-rate", "0", "stream removal rate (percent)");
  cli.add_flag("chunk", "48", "base samples per stream chunk");
  cli.add_flag("window", "96", "samples per retraining window");
  cli.add_flag("hop", "0", "window hop (0 = tumbling)");
  cli.add_flag("capacity", "0", "ingest buffer bound (0 = 4x window)");
  cli.add_flag("retrain-every", "2", "rounds between retraining attempts");
  cli.add_flag("rounds", "8", "rounds to run (0 = use --duration)");
  cli.add_flag("duration", "0", "wall-clock seconds to run when --rounds 0");
  cli.add_flag("serve-per-round", "24", "live requests served per round");
  cli.add_flag("canary-fraction", "0.25", "test fraction held as canary slice");
  cli.add_flag("ad-threshold", "0.1", "promotion guardrail: max candidate AD");
  cli.add_flag("accuracy-margin", "0.05",
               "candidate may trail live accuracy by this much");
  cli.add_flag("rollback-factor", "1.5",
               "rollback threshold as a multiple of --ad-threshold");
  cli.add_flag("metamorphic", "0", "metamorphic re-training augmentation");
  cli.add_flag("meta-factor", "1", "augmented copies per sample");
  cli.add_flag("fault-aware", "0",
               "fault-aware training: corrupt weights each epoch (baseline)");
  cli.add_flag("quantize", "0", "serve promoted candidates in q8_0 form");
  cli.add_flag("corrupt-round", "0",
               "corruption drill round: install damaged weights bypassing "
               "the canary (0 = off)");
  cli.add_flag("corrupt-mode", "signflip", "bitflip|signflip|zero|perturb");
  cli.add_flag("corrupt-fraction", "0.05", "drill per-scalar hit probability");
  cli.add_flag("bootstrap-epochs", "1", "epochs of the weak initial version");
  cli.add_flag("max-batch", "8", "serving micro-batch flush threshold");
  cli.add_flag("queue-delay-us", "500", "serving oldest-request wait bound");
  cli.add_flag("queue-depth", "256", "serving admission bound");
  cli.add_flag("decision-log", "",
               "append decisions to this JSONL file (crash-safe)");
  cli.add_flag("ckpt-dir", "",
               "promote via self-describing checkpoints in this directory");

  bench::BenchSettings settings;
  if (!bench::parse_bench_flags(argc, argv, cli, settings,
                                /*default_trials=*/1, /*default_epochs=*/2,
                                /*default_scale=*/0.4)) {
    return 0;
  }

  pipeline::PipelineConfig cfg;
  cfg.dataset.kind = data::dataset_from_name(cli.get_string("dataset"));
  cfg.dataset.scale = settings.scale;
  cfg.stream.mislabel_percent = cli.get_double("fault-rate");
  cfg.stream.repeat_percent = cli.get_double("repeat-rate");
  cfg.stream.remove_percent = cli.get_double("remove-rate");
  cfg.stream.chunk_size = static_cast<std::size_t>(cli.get_int("chunk"));
  cfg.ingest.window = static_cast<std::size_t>(cli.get_int("window"));
  cfg.ingest.hop = static_cast<std::size_t>(cli.get_int("hop"));
  const std::size_t capacity = static_cast<std::size_t>(cli.get_int("capacity"));
  cfg.ingest.capacity = capacity == 0 ? cfg.ingest.window * 4 : capacity;
  cfg.retrain.arch = models::arch_from_name(cli.get_string("model"));
  cfg.retrain.model_config.width = settings.width;
  cfg.retrain.technique =
      mitigation::technique_from_name(cli.get_string("technique"));
  cfg.retrain.train_opts.epochs = settings.epochs;
  cfg.retrain.train_opts.threads = settings.threads;
  cfg.retrain.metamorphic = cli.get_bool("metamorphic");
  cfg.retrain.metamorphic_factor =
      static_cast<std::size_t>(cli.get_int("meta-factor"));
  cfg.retrain.fault_aware = cli.get_bool("fault-aware");
  cfg.canary.ad_threshold = cli.get_double("ad-threshold");
  cfg.canary.accuracy_margin = cli.get_double("accuracy-margin");
  cfg.canary.rollback_factor = cli.get_double("rollback-factor");
  cfg.engine.workers = std::max<std::size_t>(1, settings.jobs);
  cfg.engine.batching.max_batch_size =
      static_cast<std::size_t>(cli.get_int("max-batch"));
  cfg.engine.batching.max_queue_delay_us = cli.get_u64("queue-delay-us");
  cfg.engine.batching.max_queue_depth =
      static_cast<std::size_t>(cli.get_int("queue-depth"));
  cfg.canary_fraction = cli.get_double("canary-fraction");
  cfg.serve_per_round = static_cast<std::size_t>(cli.get_int("serve-per-round"));
  cfg.retrain_every = static_cast<std::size_t>(cli.get_int("retrain-every"));
  cfg.rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  cfg.duration_s = cli.get_double("duration");
  cfg.corrupt_round = cli.get_u64("corrupt-round");
  cfg.corruption.mode =
      pipeline::corruption_mode_from_name(cli.get_string("corrupt-mode"));
  cfg.corruption.fraction = cli.get_double("corrupt-fraction");
  cfg.quantize = cli.get_bool("quantize");
  cfg.bootstrap_epochs =
      static_cast<std::size_t>(cli.get_int("bootstrap-epochs"));
  cfg.decision_log_path = cli.get_string("decision-log");
  cfg.checkpoint_dir = cli.get_string("ckpt-dir");
  cfg.seed = settings.seed;

  bench::print_banner("online pipeline: ingest -> retrain -> canary -> swap",
                      settings);
  std::cout << "stream: mislabel=" << cfg.stream.mislabel_percent
            << "% repeat=" << cfg.stream.repeat_percent
            << "% remove=" << cfg.stream.remove_percent
            << "%  window=" << cfg.ingest.window
            << " retrain-every=" << cfg.retrain_every
            << " ad-threshold=" << cfg.canary.ad_threshold
            << " workers=" << cfg.engine.workers
            << (cfg.quantize ? " q8_0" : " fp32") << "\n\n";

  pipeline::OnlinePipeline pipe(cfg);
  const pipeline::PipelineResult result = pipe.run();

  AsciiTable table({"round", "action", "live", "cand", "acc(c)", "acc(l)",
                    "ad", "reason"});
  for (const pipeline::Decision& d : result.decisions) {
    table.add_row({std::to_string(d.round), pipeline::action_name(d.action),
                   std::to_string(d.live_version),
                   std::to_string(d.candidate_version),
                   fixed(d.candidate_accuracy, 3), fixed(d.live_accuracy, 3),
                   fixed(d.candidate_ad, 3), d.reason});
  }
  std::cout << table.render();
  std::cout << "\nrounds=" << result.rounds_run
            << " promotions=" << result.promotions
            << " holds=" << result.holds
            << " rollbacks=" << result.rollbacks
            << " drills=" << result.corruptions
            << " live=v" << result.live_version << "\n"
            << "streamed=" << result.samples_streamed
            << " ingest{pushed=" << result.ingest.pushed
            << " dropped=" << result.ingest.dropped
            << " windows=" << result.ingest.windows
            << " watermark=" << result.ingest.watermark << "}\n"
            << "traffic: served=" << result.traffic_served
            << " accuracy=" << fixed(result.traffic_accuracy(), 4)
            << " engine{batches=" << result.engine.batches
            << " served=" << result.engine.served << "}\n";

  bench::BenchJson json("pipeline_runner", settings);
  json.add("rounds", static_cast<double>(result.rounds_run));
  json.add("promotions", static_cast<double>(result.promotions));
  json.add("holds", static_cast<double>(result.holds));
  json.add("rollbacks", static_cast<double>(result.rollbacks));
  json.add("drills", static_cast<double>(result.corruptions));
  json.add("live_version", static_cast<double>(result.live_version));
  json.add("samples_streamed", static_cast<double>(result.samples_streamed));
  json.add("ingest_dropped", static_cast<double>(result.ingest.dropped));
  json.add("traffic_accuracy", result.traffic_accuracy());
  json.add("decisions", static_cast<double>(result.decisions.size()));
  json.emit(settings);
  return 0;
}

}  // namespace
}  // namespace tdfm

int main(int argc, char** argv) {
  try {
    return tdfm::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "pipeline_runner: " << e.what() << "\n";
    return 1;
  }
}
