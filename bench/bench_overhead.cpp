// E8 — §IV-E: runtime overhead analysis.
//
// Training and inference wall-clock of every technique, normalised to the
// unprotected baseline.  Expected shapes from the paper:
//   - inference overhead 1x for all techniques except ensembles (5x —
//     five member models are consulted);
//   - LS cheapest to train (~1x); KD ~1.5x (teacher + faster student);
//   - LC higher than most (secondary model trained concurrently);
//   - Ens highest training overhead (five models).
// The bench also prints the AD vs naive-accuracy-drop ablation (DESIGN.md
// §5) in --verbose mode.
#include "bench_common.hpp"

#include <cstdio>

#include "data/synthetic.hpp"
#include "nn/trainer.hpp"
#include "pipeline/decision_log.hpp"
#include "pipeline/ingest_buffer.hpp"
#include "pipeline/stream_source.hpp"

namespace {

// Builds the small GTSRB-sim training closure shared by the thread sweep and
// the instrumentation-overhead section; returns wall seconds for one 2-epoch
// fit from a fixed seed.
struct MicroTrain {
  MicroTrain(const tdfm::bench::BenchSettings& s, tdfm::models::Arch model)
      : settings(s), arch(model) {
    spec.kind = tdfm::data::DatasetKind::kGtsrbSim;
    spec.scale = std::min(s.scale, 0.4);
    pair = tdfm::data::generate(spec);
    mc = tdfm::models::ModelConfig::for_dataset(spec);
    mc.width = s.width;
    targets = tdfm::nn::one_hot(pair.train.labels, pair.train.num_classes);
    opts.epochs = 2;
    opts.auto_tune = false;
  }

  double run_once() {
    using namespace tdfm;
    Rng build_rng(settings.seed);
    auto net = models::build_model(arch, mc, build_rng);
    nn::Trainer trainer(opts);
    Rng fit_rng(settings.seed + 1);
    obs::Stopwatch watch;
    trainer.fit(*net, pair.train.images,
                [&](const Tensor& logits, std::span<const std::size_t> idx,
                    Tensor& grad) {
                  return ce.compute(logits, nn::Trainer::gather(targets, idx), grad);
                },
                fit_rng);
    return watch.elapsed_seconds();
  }

  tdfm::bench::BenchSettings settings;
  tdfm::models::Arch arch;
  tdfm::data::SyntheticSpec spec;
  tdfm::data::TrainTestPair pair;
  tdfm::models::ModelConfig mc;
  tdfm::Tensor targets;
  tdfm::nn::CrossEntropyLoss ce;
  tdfm::nn::TrainOptions opts;
};

// Times one training epoch of the technique-agnostic trainer at each thread
// count and prints throughput plus speedup over the 1-thread row.  The
// trained weights are bit-identical across rows (asserted in nn_tests); this
// table shows what the `--threads` flag buys in wall-clock.
void print_thread_sweep(const tdfm::bench::BenchSettings& s, tdfm::models::Arch model) {
  using namespace tdfm;
  MicroTrain micro(s, model);
  AsciiTable table({"threads", "train s", "samples/s", "speedup"});
  double base_seconds = 0.0;
  const std::size_t hw = core::ThreadPool::default_threads();
  for (std::size_t t = 1; t <= std::max<std::size_t>(hw, 4); t *= 2) {
    core::ThreadPool::set_global_threads(t);
    const double seconds = micro.run_once();
    if (t == 1) base_seconds = seconds;
    const double samples =
        static_cast<double>(micro.pair.train.size() * micro.opts.epochs) / seconds;
    table.add_row({std::to_string(t), fixed(seconds, 3), fixed(samples, 0),
                   fixed(base_seconds / seconds, 2) + "x"});
  }
  core::ThreadPool::set_global_threads(s.threads);
  std::cout << "\nper-thread-count training throughput ("
            << models::arch_name(model) << ", GTSRB-sim):\n"
            << table.render();
}

// Measures the cost of the obs instrumentation itself (ISSUE: disabled path
// must stay <2% of training time).  Three layers:
//   1. micro: ns per disabled Counter::add and per disabled/enabled
//      flight::record (the two checks that sit on hot paths);
//   2. macro: the same small training run with obs off / metrics on /
//      metrics+trace on / flight recorder on / snapshot exporter live;
//   3. estimate: instrumentation checks per run (GEMM calls dominate) times
//      the micro cost, as a fraction of the uninstrumented run.
void print_obs_overhead(const tdfm::bench::BenchSettings& s,
                        tdfm::models::Arch model, tdfm::bench::BenchJson& json) {
  using namespace tdfm;
  const bool metrics_was_on = obs::metrics_enabled();
  const bool trace_was_on = obs::trace_enabled();
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  obs::flight::set_enabled(false);

  obs::Counter probe = obs::Registry::global().counter("bench.obs_probe");
  constexpr std::size_t kIters = 50'000'000;
  obs::Stopwatch micro_watch;
  for (std::size_t i = 0; i < kIters; ++i) probe.add(1);
  const double ns_per_check =
      micro_watch.elapsed_seconds() * 1e9 / static_cast<double>(kIters);

  // Flight recorder: the disabled path is the same shape (relaxed load +
  // branch); the enabled path is a few stores into this thread's own ring.
  obs::Stopwatch flight_off_watch;
  for (std::size_t i = 0; i < kIters; ++i) {
    obs::flight::record(obs::flight::EventKind::kCellBegin, "probe");
  }
  const double flight_off_ns =
      flight_off_watch.elapsed_seconds() * 1e9 / static_cast<double>(kIters);
  obs::flight::set_enabled(true);
  constexpr std::size_t kFlightIters = 5'000'000;
  obs::Stopwatch flight_on_watch;
  for (std::size_t i = 0; i < kFlightIters; ++i) {
    obs::flight::record(obs::flight::EventKind::kCellBegin, "probe");
  }
  const double flight_on_ns =
      flight_on_watch.elapsed_seconds() * 1e9 /
      static_cast<double>(kFlightIters);
  obs::flight::set_enabled(false);

  MicroTrain micro(s, model);
  const double off_s = micro.run_once();
  // reset_values gives a clean per-run count of instrumentation hits; any
  // user-requested --metrics scrape at exit reflects post-reset values.
  obs::Registry::global().reset_values();
  obs::set_metrics_enabled(true);
  const double metrics_s = micro.run_once();
  const double checks = static_cast<double>(
      obs::Registry::global().counter("gemm.calls").value() +
      obs::Registry::global().counter("conv.images").value());
  obs::set_trace_enabled(true);
  const double trace_s = micro.run_once();
  obs::set_trace_enabled(false);
  // Flight recorder armed: every Span begin/end also drops a ring entry.
  obs::flight::set_enabled(true);
  const double flight_s = micro.run_once();
  obs::flight::set_enabled(false);
  // Live snapshot exporter scraping alongside the run (the --spawn worker
  // configuration): a background thread, not a hot-path tax.
  double exporter_s;
  {
    obs::SnapshotExporter exporter;
    obs::ExporterOptions eopts;
    eopts.dir = "bench_overhead.obs";
    eopts.label = "bench_overhead";
    eopts.interval_ms = 100;
    exporter.start(std::move(eopts));
    exporter_s = micro.run_once();
  }

  obs::set_metrics_enabled(metrics_was_on);
  obs::set_trace_enabled(trace_was_on);
  if (!trace_was_on) obs::clear_trace_events();

  const double est_disabled_pct =
      off_s > 0.0
          ? checks * (ns_per_check + flight_off_ns) * 1e-9 / off_s * 100.0
          : 0.0;
  AsciiTable table({"configuration", "train s", "vs off"});
  const auto ratio = [&](double seconds) {
    return fixed(off_s > 0 ? seconds / off_s : 0.0, 2) + "x";
  };
  table.add_row({"obs off", fixed(off_s, 3), "1.00x"});
  table.add_row({"metrics on", fixed(metrics_s, 3), ratio(metrics_s)});
  table.add_row({"metrics + trace on", fixed(trace_s, 3), ratio(trace_s)});
  table.add_row({"metrics + flight recorder", fixed(flight_s, 3),
                 ratio(flight_s)});
  table.add_row({"metrics + snapshot exporter", fixed(exporter_s, 3),
                 ratio(exporter_s)});
  std::cout << "\nobs instrumentation overhead (" << models::arch_name(model)
            << ", GTSRB-sim, 2 epochs):\n"
            << table.render() << "disabled checks: counter "
            << fixed(ns_per_check, 2) << " ns/op, flight "
            << fixed(flight_off_ns, 2) << " ns/op (enabled "
            << fixed(flight_on_ns, 1) << " ns/op); ~" << fixed(checks, 0)
            << " checks per run -> estimated disabled-path overhead "
            << fixed(est_disabled_pct, 3) << "% (target <2%)\n";

  json.add("obs.disabled_check_ns", ns_per_check);
  json.add("obs.flight_disabled_check_ns", flight_off_ns);
  json.add("obs.flight_record_ns", flight_on_ns);
  json.add("obs.train_off_seconds", off_s);
  json.add("obs.train_metrics_seconds", metrics_s);
  json.add("obs.train_trace_seconds", trace_s);
  json.add("obs.train_flight_seconds", flight_s);
  json.add("obs.train_exporter_seconds", exporter_s);
  json.add("obs.est_disabled_overhead_pct", est_disabled_pct);
}

// The online pipeline's non-training hot paths: what does it cost to move a
// faulty sample from the stream into a retraining window, and to land one
// crash-safe decision record?  Training dominates the loop by orders of
// magnitude; these rows show the plumbing is never the bottleneck.
void print_pipeline_overhead(const tdfm::bench::BenchSettings& s,
                             tdfm::bench::BenchJson& json) {
  using namespace tdfm;

  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kCifar10Sim;
  spec.scale = std::min(s.scale, 0.4);
  const data::Dataset base = data::generate(spec).train;

  pipeline::StreamConfig scfg;
  scfg.mislabel_percent = 20.0;
  scfg.repeat_percent = 5.0;
  scfg.chunk_size = 64;
  scfg.seed = s.seed;
  pipeline::IngestConfig icfg;
  icfg.window = 256;
  icfg.hop = 0;
  icfg.capacity = 1024;

  // Stream -> ingest -> window: fault injection, sequence accounting, and
  // window assembly, excluding any training.
  pipeline::StreamSource stream(base, scfg);
  pipeline::IngestBuffer buffer(icfg);
  constexpr std::size_t kChunks = 256;
  std::size_t windows = 0;
  obs::Stopwatch ingest_watch;
  for (std::size_t i = 0; i < kChunks; ++i) {
    buffer.push(stream.next());
    if (buffer.window_ready()) {
      const data::Dataset w = buffer.take_window();
      windows += w.size() > 0 ? 1 : 0;
    }
  }
  const double ingest_s = ingest_watch.elapsed_seconds();
  const double streamed = static_cast<double>(stream.emitted());
  const double samples_per_s = ingest_s > 0.0 ? streamed / ingest_s : 0.0;

  // Decision log: one append = serialize + write + flush (the crash-safety
  // contract), measured on a real file.
  const std::string log_path = "bench_overhead_decisions.jsonl";
  constexpr std::size_t kAppends = 2000;
  double append_us = 0.0;
  {
    pipeline::DecisionLog log(log_path);
    pipeline::Decision d;
    d.action = pipeline::Action::kHold;
    d.technique = "Base";
    d.reason = "bench: representative hold record";
    obs::Stopwatch append_watch;
    for (std::size_t i = 0; i < kAppends; ++i) {
      d.round = i;
      log.append(d);
    }
    append_us = append_watch.elapsed_seconds() * 1e6 /
                static_cast<double>(kAppends);
  }
  std::remove(log_path.c_str());

  AsciiTable table({"pipeline stage", "throughput / latency"});
  table.add_row({"stream -> ingest -> window",
                 fixed(samples_per_s / 1e6, 2) + "M samples/s"});
  table.add_row({"decision-log append (flushed)",
                 fixed(append_us, 1) + " us/record"});
  std::cout << "\nonline pipeline plumbing (" << streamed << " samples, "
            << windows << " windows, " << kAppends << " decisions):\n"
            << table.render();

  json.add("pipeline.ingest_samples_per_s", samples_per_s);
  json.add("pipeline.decision_append_us", append_us);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("model", "ConvNet", "model under test");
  cli.add_flag("verbose", "false", "also print the AD-definition ablation");
  cli.add_flag("thread-sweep", "false",
               "also time training at 1..N threads and print the speedup table");
  cli.add_flag("obs-overhead", "true",
               "measure the obs instrumentation's own cost (disabled and enabled)");
  cli.add_flag("pipeline-overhead", "true",
               "time the online pipeline's stream/ingest and decision-log paths");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/8,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E8: runtime overhead of the TDFM techniques (§IV-E)", s);

  const auto model = models::arch_from_name(cli.get_string("model"));
  experiment::StudyConfig cfg = base_study(s, data::DatasetKind::kGtsrbSim, model);
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};

  obs::Stopwatch watch;
  const auto result = experiment::run_study(cfg);
  std::cout << experiment::render_overhead_table(
      result, std::string("overheads — GTSRB-sim / ") + models::arch_name(model) +
                  " / 30% mislabelling");

  if (cli.get_bool("verbose")) {
    std::cout << "\nAD-definition ablation (per §III-C AD avoids double-"
                 "counting; naive drop conflates golden mistakes):\n";
    AsciiTable ab({"technique", "AD", "reverse AD", "naive accuracy drop"});
    for (std::size_t ti = 0; ti < result.config.techniques.size(); ++ti) {
      const auto& cell = result.cells[0][ti];
      double rad = 0.0;
      double drop = 0.0;
      for (const auto& t : cell.trials) {
        rad += t.reverse_ad;
        drop += t.naive_drop;
      }
      const auto n = static_cast<double>(cell.trials.size());
      ab.add_row({std::string(mitigation::technique_name(result.config.techniques[ti])),
                  percent(cell.ad.mean), percent(rad / n), percent(drop / n)});
    }
    std::cout << ab.render();
  }
  if (cli.get_bool("thread-sweep")) print_thread_sweep(s, model);

  BenchJson json("overhead", s);
  add_study_headlines(json, result);
  for (std::size_t ti = 0; ti < result.config.techniques.size(); ++ti) {
    const std::string tname =
        mitigation::technique_name(result.config.techniques[ti]);
    json.add(tname + ".train_seconds", result.cells[0][ti].train_seconds.mean);
    json.add(tname + ".infer_seconds", result.cells[0][ti].infer_seconds.mean);
  }
  if (cli.get_bool("obs-overhead")) print_obs_overhead(s, model, json);
  if (cli.get_bool("pipeline-overhead")) print_pipeline_overhead(s, json);

  std::cout << "\npaper reference: inference 1x everywhere except Ens (5x); "
               "training LS ~1x, KD ~1.5x, LC high, Ens highest.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
