// E8 — §IV-E: runtime overhead analysis.
//
// Training and inference wall-clock of every technique, normalised to the
// unprotected baseline.  Expected shapes from the paper:
//   - inference overhead 1x for all techniques except ensembles (5x —
//     five member models are consulted);
//   - LS cheapest to train (~1x); KD ~1.5x (teacher + faster student);
//   - LC higher than most (secondary model trained concurrently);
//   - Ens highest training overhead (five models).
// The bench also prints the AD vs naive-accuracy-drop ablation (DESIGN.md
// §5) in --verbose mode.
#include "bench_common.hpp"

#include "data/synthetic.hpp"
#include "nn/trainer.hpp"

namespace {

// Times one training epoch of the technique-agnostic trainer at each thread
// count and prints throughput plus speedup over the 1-thread row.  The
// trained weights are bit-identical across rows (asserted in nn_tests); this
// table shows what the `--threads` flag buys in wall-clock.
void print_thread_sweep(const tdfm::bench::BenchSettings& s, tdfm::models::Arch model) {
  using namespace tdfm;
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kGtsrbSim;
  spec.scale = std::min(s.scale, 0.4);
  const auto pair = data::generate(spec);
  models::ModelConfig mc = models::ModelConfig::for_dataset(spec);
  mc.width = s.width;
  const Tensor targets = nn::one_hot(pair.train.labels, pair.train.num_classes);
  nn::CrossEntropyLoss ce;
  nn::TrainOptions opts;
  opts.epochs = 2;
  opts.auto_tune = false;

  AsciiTable table({"threads", "train s", "samples/s", "speedup"});
  double base_seconds = 0.0;
  const std::size_t hw = core::ThreadPool::default_threads();
  for (std::size_t t = 1; t <= std::max<std::size_t>(hw, 4); t *= 2) {
    core::ThreadPool::set_global_threads(t);
    Rng build_rng(s.seed);
    auto net = models::build_model(model, mc, build_rng);
    nn::Trainer trainer(opts);
    Rng fit_rng(s.seed + 1);
    Stopwatch watch;
    trainer.fit(*net, pair.train.images,
                [&](const Tensor& logits, std::span<const std::size_t> idx,
                    Tensor& grad) {
                  return ce.compute(logits, nn::Trainer::gather(targets, idx), grad);
                },
                fit_rng);
    const double seconds = watch.elapsed_seconds();
    if (t == 1) base_seconds = seconds;
    const double samples =
        static_cast<double>(pair.train.size() * opts.epochs) / seconds;
    table.add_row({std::to_string(t), fixed(seconds, 3), fixed(samples, 0),
                   fixed(base_seconds / seconds, 2) + "x"});
  }
  core::ThreadPool::set_global_threads(s.threads);
  std::cout << "\nper-thread-count training throughput ("
            << models::arch_name(model) << ", GTSRB-sim):\n"
            << table.render();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("model", "ConvNet", "model under test");
  cli.add_flag("verbose", "false", "also print the AD-definition ablation");
  cli.add_flag("thread-sweep", "false",
               "also time training at 1..N threads and print the speedup table");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/8,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E8: runtime overhead of the TDFM techniques (§IV-E)", s);

  const auto model = models::arch_from_name(cli.get_string("model"));
  experiment::StudyConfig cfg = base_study(s, data::DatasetKind::kGtsrbSim, model);
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};

  Stopwatch watch;
  const auto result = experiment::run_study(cfg);
  std::cout << experiment::render_overhead_table(
      result, std::string("overheads — GTSRB-sim / ") + models::arch_name(model) +
                  " / 30% mislabelling");

  if (cli.get_bool("verbose")) {
    std::cout << "\nAD-definition ablation (per §III-C AD avoids double-"
                 "counting; naive drop conflates golden mistakes):\n";
    AsciiTable ab({"technique", "AD", "reverse AD", "naive accuracy drop"});
    for (std::size_t ti = 0; ti < result.config.techniques.size(); ++ti) {
      const auto& cell = result.cells[0][ti];
      double rad = 0.0;
      double drop = 0.0;
      for (const auto& t : cell.trials) {
        rad += t.reverse_ad;
        drop += t.naive_drop;
      }
      const auto n = static_cast<double>(cell.trials.size());
      ab.add_row({std::string(mitigation::technique_name(result.config.techniques[ti])),
                  percent(cell.ad.mean), percent(rad / n), percent(drop / n)});
    }
    std::cout << ab.render();
  }
  if (cli.get_bool("thread-sweep")) print_thread_sweep(s, model);

  std::cout << "\npaper reference: inference 1x everywhere except Ens (5x); "
               "training LS ~1x, KD ~1.5x, LC high, Ens highest.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
