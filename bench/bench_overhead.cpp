// E8 — §IV-E: runtime overhead analysis.
//
// Training and inference wall-clock of every technique, normalised to the
// unprotected baseline.  Expected shapes from the paper:
//   - inference overhead 1x for all techniques except ensembles (5x —
//     five member models are consulted);
//   - LS cheapest to train (~1x); KD ~1.5x (teacher + faster student);
//   - LC higher than most (secondary model trained concurrently);
//   - Ens highest training overhead (five models).
// The bench also prints the AD vs naive-accuracy-drop ablation (DESIGN.md
// §5) in --verbose mode.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("model", "ConvNet", "model under test");
  cli.add_flag("verbose", "false", "also print the AD-definition ablation");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/8,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E8: runtime overhead of the TDFM techniques (§IV-E)", s);

  const auto model = models::arch_from_name(cli.get_string("model"));
  experiment::StudyConfig cfg = base_study(s, data::DatasetKind::kGtsrbSim, model);
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};

  Stopwatch watch;
  const auto result = experiment::run_study(cfg);
  std::cout << experiment::render_overhead_table(
      result, std::string("overheads — GTSRB-sim / ") + models::arch_name(model) +
                  " / 30% mislabelling");

  if (cli.get_bool("verbose")) {
    std::cout << "\nAD-definition ablation (per §III-C AD avoids double-"
                 "counting; naive drop conflates golden mistakes):\n";
    AsciiTable ab({"technique", "AD", "reverse AD", "naive accuracy drop"});
    for (std::size_t ti = 0; ti < result.config.techniques.size(); ++ti) {
      const auto& cell = result.cells[0][ti];
      double rad = 0.0;
      double drop = 0.0;
      for (const auto& t : cell.trials) {
        rad += t.reverse_ad;
        drop += t.naive_drop;
      }
      const auto n = static_cast<double>(cell.trials.size());
      ab.add_row({std::string(mitigation::technique_name(result.config.techniques[ti])),
                  percent(cell.ad.mean), percent(rad / n), percent(drop / n)});
    }
    std::cout << ab.render();
  }
  std::cout << "\npaper reference: inference 1x everywhere except Ens (5x); "
               "training LS ~1x, KD ~1.5x, LC high, Ens highest.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
