// bench_serving: throughput/latency of the tdfm::serve layer under
// open-loop load, swept across micro-batch configurations.
//
// The pipeline mirrors a real deployment: quick-train a ConvNet, save a
// self-describing v2 checkpoint, load it into a ModelRegistry, then drive
// an InferenceEngine with a load generator.  For each --batch-sizes entry
// the bench reports saturated (or --rate-limited) throughput, latency
// percentiles (queue wait + compute), and admission-control rejections.
// The headline number is the batched-vs-single speedup.  With --workers 1
// the engine fans each micro-batch's rows out across the --threads pool
// (conv and GEMM split on the batch dimension), so on a host with >= 2
// cores max_batch_size >= 8 beats max_batch_size = 1 by >= 2x at
// saturation — batch-size-1 forwards can only ever use one core.  On a
// single-core host forwards are compute-bound and the sweep stays flat.
//
//   $ ./bench/bench_serving --duration 2 --batch-sizes 1,4,8,16 --threads 0
//   $ ./bench/bench_serving --rate 500 --deadline-ms 50 --json serving.json
#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <thread>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"
#include "serve/serve.hpp"

namespace tdfm::bench {
namespace {

struct LoadResult {
  std::vector<double> latency_us;  ///< queue wait + compute, served only
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  double elapsed_s = 0.0;
};

/// Open-loop load: submissions are paced by --rate alone (0 = as fast as
/// possible), never by completions — slow service shows up as queue wait
/// and rejections, exactly as production overload would.
LoadResult run_load(serve::InferenceEngine& engine, const std::vector<Tensor>& pool,
                    double duration_s, double rate_rps, bool record) {
  LoadResult res;
  std::deque<std::future<serve::Response>> inflight;
  const auto settle = [&](serve::Response r) {
    if (r.ok()) {
      ++res.ok;
      if (record) res.latency_us.push_back(r.queue_us + r.compute_us);
    } else {
      ++res.rejected;
    }
  };

  const auto start = serve::Clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<serve::Clock::duration>(
                  std::chrono::duration<double>(duration_s));
  const bool throttled = rate_rps > 0.0;
  const auto period =
      throttled ? std::chrono::duration_cast<serve::Clock::duration>(
                      std::chrono::duration<double>(1.0 / rate_rps))
                : serve::Clock::duration::zero();
  auto next = start;
  std::size_t i = 0;
  while (serve::Clock::now() < stop_at) {
    if (throttled) {
      std::this_thread::sleep_until(next);
      next += period;  // fixed schedule: missed slots are not re-paced
    }
    inflight.push_back(engine.submit(pool[i++ % pool.size()]));
    // Bound memory at saturation; rejected futures are already resolved.
    while (inflight.size() >= 8192 ||
           (!inflight.empty() &&
            inflight.front().wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready)) {
      settle(inflight.front().get());
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    settle(inflight.front().get());
    inflight.pop_front();
  }
  res.elapsed_s = std::chrono::duration<double>(serve::Clock::now() - start).count();
  return res;
}

/// Nearest-rank percentile over an already sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(std::lround(pos))];
}

/// Slices row `i` of an [N, ...] tensor into a standalone sample tensor.
Tensor slice_sample(const Tensor& images, std::size_t i) {
  std::vector<std::size_t> dims;
  for (std::size_t d = 1; d < images.rank(); ++d) dims.push_back(images.dim(d));
  Tensor out{Shape(dims)};
  std::memcpy(out.data(), images.data() + i * out.numel(),
              out.numel() * sizeof(float));
  return out;
}

std::vector<std::size_t> parse_size_list(const std::string& list) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    const int v = std::stoi(list.substr(pos, end - pos));
    TDFM_CHECK(v >= 1, "--batch-sizes entries must be >= 1");
    sizes.push_back(static_cast<std::size_t>(v));
    pos = end + 1;
  }
  TDFM_CHECK(!sizes.empty(), "empty --batch-sizes list");
  return sizes;
}

int run(int argc, char** argv) {
  CliParser cli;
  BenchSettings settings;
  cli.add_flag("workers", "1",
               "engine worker threads (= replica slots); 1 = the worker fans "
               "each micro-batch out across --threads pool threads");
  cli.add_flag("batch-sizes", "1,4,8,16",
               "comma list of max_batch_size configs to sweep");
  cli.add_flag("queue-delay-us", "1000",
               "max time a request may wait for batch-mates");
  cli.add_flag("queue-depth", "512", "admission-control queue bound");
  cli.add_flag("deadline-ms", "0", "per-request deadline (0 = none)");
  cli.add_flag("checkpoint", "bench_serving.ckpt",
               "where to write the v2 model checkpoint");
  cli.add_flag("quantize", "0",
               "serve q8_0-quantized replicas (1) instead of fp32 (0)");
  add_loadgen_flags(cli, /*default_duration=*/2.0, /*default_rate=*/0.0,
                    /*default_warmup=*/0.25);
  if (!parse_bench_flags(argc, argv, cli, settings, /*default_trials=*/1,
                         /*default_epochs=*/3, /*default_scale=*/0.5,
                         /*default_width=*/8)) {
    return 0;
  }
  const LoadgenOptions load = parse_loadgen_flags(cli);
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  TDFM_CHECK(workers >= 1, "--workers must be >= 1");
  const std::vector<std::size_t> batch_sizes =
      parse_size_list(cli.get_string("batch-sizes"));
  const auto queue_delay_us = cli.get_u64("queue-delay-us");
  const auto queue_depth = static_cast<std::size_t>(cli.get_int("queue-depth"));
  const auto deadline_ms = cli.get_u64("deadline-ms");
  const std::string ckpt_path = cli.get_string("checkpoint");
  const bool quantize = cli.get_bool("quantize");

  print_banner("serving layer: dynamic micro-batching under open-loop load",
               settings);
  std::cout << "load: duration=" << load.duration_s << "s rate="
            << (load.rate_rps > 0 ? std::to_string(load.rate_rps) + " rps"
                                  : std::string("unthrottled (saturate)"))
            << " warmup=" << load.warmup_s << "s workers=" << workers
            << " queue-delay=" << queue_delay_us << "us depth=" << queue_depth
            << " weights=" << (quantize ? "q8_0" : "fp32") << "\n\n";

  // 1. Quick-train a ConvNet and ship it as a self-describing checkpoint.
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kCifar10Sim;
  spec.scale = settings.scale;
  spec.seed = settings.seed;
  const data::TrainTestPair dataset = data::generate(spec);
  const models::ModelConfig config =
      models::ModelConfig::for_dataset(spec, settings.width);
  Rng rng(settings.seed);
  auto net = models::build_model(models::Arch::kConvNet, config, rng);
  {
    const Tensor targets =
        nn::one_hot(dataset.train.labels, dataset.train.num_classes);
    nn::CrossEntropyLoss ce;
    nn::TrainOptions opts;
    opts.epochs = settings.epochs;
    opts.threads = settings.threads;
    nn::Trainer trainer(opts);
    Rng train_rng = rng.fork(1);
    const double loss = trainer.fit(
        *net, dataset.train.images,
        [&](const Tensor& logits, std::span<const std::size_t> idx,
            Tensor& grad) {
          const Tensor batch_targets = nn::Trainer::gather(targets, idx);
          return ce.compute(logits, batch_targets, grad);
        },
        train_rng);
    std::cout << "trained ConvNet (" << settings.epochs
              << " epochs, final loss " << fixed(loss, 3) << "), checkpoint -> "
              << ckpt_path << "\n";
  }
  nn::save_checkpoint(*net, ckpt_path,
                      models::checkpoint_meta(models::Arch::kConvNet, config));

  // Request pool: real test-set images, sliced once up front.
  std::vector<Tensor> pool;
  const std::size_t pool_size = std::min<std::size_t>(64, dataset.test.size());
  pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(slice_sample(dataset.test.images, i));
  }

  // 2. Sweep micro-batch configurations against the same checkpoint.  The
  // engine's own serve.{queue_wait,compute}_us histograms are snapshotted
  // per configuration and folded with obs::Aggregator afterwards — the same
  // snapshot/merge path the multi-process campaign plane uses, exercised
  // here in-process so --json carries histogram-estimated percentiles next
  // to the exact sample-based ones.
  obs::set_metrics_enabled(true);
  std::vector<obs::MetricsSnapshot> sweep_snapshots;
  BenchJson json("serving", settings);
  json.add("weights", std::string(quantize ? "q8_0" : "fp32"));
  AsciiTable table({"max_batch", "throughput rps", "p50 us", "p95 us", "p99 us",
                    "served", "rejected"});
  double single_rps = 0.0;
  double best_batched_rps = 0.0;
  std::size_t best_batched = 0;
  for (const std::size_t max_batch : batch_sizes) {
    serve::ModelRegistry registry(workers);
    // v2: the header names the arch; `quantize` swaps every replica's Dense
    // and Conv2D weights for q8_0 blocks at load time.
    (void)registry.load("convnet", ckpt_path, quantize);
    serve::EngineConfig ecfg;
    ecfg.workers = workers;
    ecfg.batching.max_batch_size = max_batch;
    ecfg.batching.max_queue_delay_us = queue_delay_us;
    ecfg.batching.max_queue_depth = std::max(queue_depth, max_batch);
    ecfg.default_deadline_us = deadline_ms * 1000;
    // Single worker: spread each batch's rows across the pool — the
    // configuration where micro-batching converts queue depth into
    // multi-core data parallelism.  (On a 1-core host forwards are
    // compute-bound and throughput stays flat across batch sizes.)
    ecfg.use_thread_pool = workers == 1;
    serve::InferenceEngine engine(registry, "convnet", ecfg);

    if (load.warmup_s > 0.0) {
      (void)run_load(engine, pool, load.warmup_s, load.rate_rps, false);
    }
    obs::Registry::global().reset_values();  // measured window only
    LoadResult res = run_load(engine, pool, load.duration_s, load.rate_rps, true);
    std::sort(res.latency_us.begin(), res.latency_us.end());
    const double rps = static_cast<double>(res.ok) / res.elapsed_s;
    const double p50 = percentile(res.latency_us, 50);
    const double p95 = percentile(res.latency_us, 95);
    const double p99 = percentile(res.latency_us, 99);
    table.add_row({std::to_string(max_batch), fixed(rps, 0), fixed(p50, 0),
                   fixed(p95, 0), fixed(p99, 0), std::to_string(res.ok),
                   std::to_string(res.rejected)});
    std::string key = "b";
    key += std::to_string(max_batch);
    json.add(key + ".throughput_rps", rps);
    json.add(key + ".p50_us", p50);
    json.add(key + ".p95_us", p95);
    json.add(key + ".p99_us", p99);
    json.add(key + ".served", static_cast<double>(res.ok));
    json.add(key + ".rejected", static_cast<double>(res.rejected));
    if (max_batch == 1) single_rps = rps;
    if (max_batch >= 8 && rps > best_batched_rps) {
      best_batched_rps = rps;
      best_batched = max_batch;
    }
    obs::SnapshotMeta meta;
    meta.seq = sweep_snapshots.size() + 1;
    meta.label = "max_batch=" + std::to_string(max_batch);
    sweep_snapshots.push_back(obs::collect_snapshot(std::move(meta)));
  }
  std::cout << "\n" << table.render() << "\n";

  // Fold the per-config snapshots and report histogram-estimated latency
  // quantiles across the whole sweep (counters sum, buckets sum — exactly
  // what a --progress driver sees across shard processes).
  obs::Aggregator agg;
  for (const obs::MetricsSnapshot& s : sweep_snapshots) agg.add(s);
  for (const obs::MetricSample& sample : agg.samples()) {
    if (sample.kind != obs::MetricSample::Kind::kHistogram) continue;
    if (sample.name != "serve.queue_wait_us" &&
        sample.name != "serve.compute_us") {
      continue;
    }
    const double h50 = obs::histogram_quantile(sample, 0.50);
    const double h95 = obs::histogram_quantile(sample, 0.95);
    const double h99 = obs::histogram_quantile(sample, 0.99);
    std::cout << sample.name << " (aggregated histogram, " << sample.count
              << " obs): p50 ~" << fixed(h50, 0) << "us p95 ~" << fixed(h95, 0)
              << "us p99 ~" << fixed(h99, 0) << "us\n";
    json.add(sample.name + ".hist_p50_us", h50);
    json.add(sample.name + ".hist_p95_us", h95);
    json.add(sample.name + ".hist_p99_us", h99);
    json.add(sample.name + ".hist_count", static_cast<double>(sample.count));
  }

  if (single_rps > 0.0 && best_batched > 0) {
    const double speedup = best_batched_rps / single_rps;
    std::cout << "micro-batching speedup (max_batch=" << best_batched
              << " vs 1): " << fixed(speedup, 2) << "x\n";
    json.add("speedup_batched_vs_single", speedup);
  }
  json.emit(settings);
  return 0;
}

}  // namespace
}  // namespace tdfm::bench

int main(int argc, char** argv) try {
  return tdfm::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_serving failed: " << e.what() << "\n";
  return 1;
}
