// study_runner — the campaign CLI over tdfm::study.
//
// Runs a named preset grid (or any preset with overridden axes/knobs) as a
// resumable, parallel campaign:
//
//   study_runner --list-presets true
//   study_runner --preset fig3-mislabelling --journal fig3.jsonl --jobs 4
//   <ctrl-C mid-run>
//   study_runner --preset fig3-mislabelling --journal fig3.jsonl --jobs 4
//                --resume true          # completes only the remaining cells
//   study_runner --journal fig3.jsonl --report markdown --report-only true
//
// A campaign also shards across processes with zero coordination (cells are
// content-hashed, so hash(cell) % N partitions the grid identically in every
// process):
//
//   study_runner --preset fig4 --shard 0/3 --journal fig4.s0.jsonl   # 3 shells
//   study_runner --preset fig4 --shard 1/3 --journal fig4.s1.jsonl   # ...
//   study_runner --preset fig4 --shard 2/3 --journal fig4.s2.jsonl
//   study_runner --merge fig4.s0.jsonl,fig4.s1.jsonl,fig4.s2.jsonl
//                --journal fig4.jsonl               # fuse + dedup + report
//   study_runner --merge auto --journal fig4.jsonl  # same, discovering the
//                # <journal>.shard<i>of<N>.jsonl siblings automatically
//
//   study_runner --preset fig4 --spawn 3 --journal fig4.jsonl        # or: one
//                # driver that spawns the 3 shard processes and merges
//
// Reports exclude wall-clock timings by default, so a resumed, sharded, or
// merged run's report is byte-identical to an uninterrupted single-process
// one at any --jobs value; pass --timings true for the §IV-E overhead view.
//
// The observability plane rides along without perturbing any of that:
//
//   study_runner --preset fig4 --spawn 3 --journal fig4.jsonl
//                --progress true --trace fig4.trace.json --flight true
//
// renders a live fleet status line (per-shard throughput, ETA, cache hit
// rates), merges the per-shard Chrome traces into one timeline spanning all
// shards, and — should a worker crash — leaves its flight recorder at
// <journal>.obs/crash-<pid>.json naming the cell it died in.  The plane is
// strictly read-only over campaign state: journal bytes and reports are
// identical with it on or off.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "bench_common.hpp"
#include "core/process.hpp"
#include "store/reader.hpp"
#include "study/progress.hpp"

namespace {

using namespace tdfm;

/// Writes `text` to --out (or stdout when --out is empty).
void deliver(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << text;
    return;
  }
  std::ofstream out(out_path, std::ios::trunc);
  TDFM_CHECK(out.good(), "cannot open --out file: " + out_path);
  out << text;
  TDFM_CHECK(out.good(), "failed writing --out file: " + out_path);
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > pos) out.push_back(list.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

/// Parses "--shard i/N" (0-based shard index).  Empty means unsharded.
void parse_shard(const std::string& text, std::size_t* index,
                 std::size_t* count) {
  *index = 0;
  *count = 1;
  if (text.empty()) return;
  const std::size_t slash = text.find('/');
  try {
    if (slash == std::string::npos) throw std::invalid_argument(text);
    *index = std::stoul(text.substr(0, slash));
    *count = std::stoul(text.substr(slash + 1));
  } catch (const std::exception&) {
    throw ConfigError("--shard wants i/N (e.g. 0/3), got '" + text + "'");
  }
  TDFM_CHECK(*count >= 1 && *index < *count,
             "--shard index must satisfy 0 <= i < N");
}

/// Per-shard journal path: <journal>.shard<i>of<N>.jsonl — the naming the
/// --spawn driver and the smoke script agree on.
std::string shard_journal_path(const std::string& base, std::size_t i,
                               std::size_t n) {
  return base + ".shard" + std::to_string(i) + "of" + std::to_string(n) +
         ".jsonl";
}

/// Orders journal records by the spec's expansion order (foreign cell ids
/// sort last, by id).  The journal is in completion order, which depends on
/// --jobs, sharding, and timing; reports must not.
void sort_by_expansion(std::vector<study::CellRecord>& records,
                       const study::StudySpec& spec) {
  std::unordered_map<std::string, std::size_t> expansion_order;
  const auto cells = study::expand_cells(spec);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expansion_order.emplace(study::cell_id(spec, cells[i]), i);
  }
  const auto rank = [&](const study::CellRecord& r) {
    const auto it = expansion_order.find(r.cell);
    return it == expansion_order.end() ? cells.size() : it->second;
  };
  std::stable_sort(records.begin(), records.end(),
                   [&](const auto& a, const auto& b) {
                     const std::size_t ra = rank(a), rb = rank(b);
                     return ra != rb ? ra < rb : a.cell < b.cell;
                   });
}

/// Per-shard trace path, derived from the shard journal path the same way
/// the --spawn driver derives everything else.
std::string shard_trace_path(const std::string& shard_journal) {
  return shard_journal + ".trace.json";
}

/// Fuses the per-shard Chrome traces next to `shard_paths` into `out_path`
/// (used by both --spawn and --merge when --trace names an output).
void merge_shard_traces(const std::vector<std::string>& shard_paths,
                        const std::string& out_path) {
  std::vector<std::string> traces;
  traces.reserve(shard_paths.size());
  for (const std::string& p : shard_paths) traces.push_back(shard_trace_path(p));
  const obs::TraceMergeResult tm = obs::merge_chrome_traces(traces, out_path);
  std::cerr << "merged " << tm.inputs << " shard traces: " << tm.events
            << " events (" << tm.skipped_lines << " torn lines dropped, "
            << tm.missing << " files missing) -> " << out_path << "\n";
}

/// One aggregation pass over the plane directory.
obs::Aggregator aggregate_snapshot_dir(const std::string& dir,
                                       std::size_t* skipped = nullptr) {
  const obs::SnapshotScan scan = obs::read_snapshot_dir(dir);
  obs::Aggregator agg;
  for (const obs::MetricsSnapshot& s : scan.snapshots) agg.add(s);
  if (skipped) *skipped = scan.skipped;
  return agg;
}

std::string render_report(const study::CampaignSummary& summary,
                          const std::string& format,
                          const study::ReportOptions& opts) {
  if (format == "ascii") return study::render_ascii(summary, opts);
  if (format == "markdown") return study::render_markdown(summary, opts);
  if (format == "csv") return study::render_csv(summary, opts);
  if (format == "json") return study::render_json_summary(summary, opts) + "\n";
  if (format == "none") return "";
  throw ConfigError("unknown --report format '" + format +
                    "' (ascii|markdown|csv|json|none)");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace tdfm;

  CliParser cli;
  cli.add_flag("preset", "smoke", "campaign preset (see --list-presets true)");
  cli.add_flag("list-presets", "false", "print the preset catalogue and exit");
  cli.add_flag("journal", "", "JSONL journal file (enables --resume)");
  cli.add_flag("resume", "false", "skip cells already recorded in --journal");
  cli.add_flag("report-only", "false",
               "do not run anything; report the --journal contents");
  cli.add_flag("store", "",
               "with --report-only: read records from this results-store "
               "directory (study_query import) instead of --journal; the "
               "report is byte-identical to the JSONL-backed one");
  cli.add_flag("jobs", "1", "concurrent cells (0 = hardware concurrency)");
  cli.add_flag("shard", "",
               "run only this shard of the grid, as i/N (0-based); cells are "
               "partitioned by hash(cell_id) % N");
  cli.add_flag("merge", "",
               "fuse these comma-separated shard journals into --journal "
               "(dedup + conflict check), then report; runs nothing; 'auto' "
               "discovers the <journal>.shard<i>of<N>.jsonl siblings");
  cli.add_flag("spawn", "0",
               "driver mode: spawn N shard worker processes over --journal's "
               "derived per-shard journals, merge on completion");
  cli.add_flag("steal", "false",
               "sharded runs: after draining the own shard, claim cells no "
               "sibling journal records yet (idle shards help slow ones)");
  cli.add_flag("siblings", "",
               "comma-separated sibling shard journals consulted by --steal "
               "(--spawn fills this in automatically)");
  cli.add_flag("shuffle", "0",
               "non-zero: run pending cells in this seed's shuffled order");
  cli.add_flag("progress", "false",
               "driver mode (--spawn): render a live aggregated status line "
               "on stderr from the shards' metric snapshots; strictly "
               "read-only (journal and report bytes are unchanged)");
  cli.add_flag("obs-dir", "",
               "observability-plane directory for metric snapshots and crash "
               "dumps (default: <journal>.obs when --progress, --flight, or "
               "--obs-report need one)");
  cli.add_flag("obs-interval-ms", "500",
               "metric-snapshot export period for campaign workers");
  cli.add_flag("flight", "false",
               "arm the in-memory flight recorder; SIGSEGV/SIGABRT/SIGBUS "
               "dump it to <obs-dir>/crash-<pid>.json");
  cli.add_flag("abort-after-cells", "0",
               "crash drill: SIGABRT after beginning the Nth cell (tests "
               "the flight recorder's crash dump; 0 = off)");
  cli.add_flag("obs-report", "false",
               "aggregate the snapshots in --obs-dir (or <journal>.obs) and "
               "print the merged snapshot as JSON lines; runs nothing");
  cli.add_flag("validate-json", "",
               "strictly parse this file as JSON and exit 0/1 (tooling "
               "helper for scripts; runs nothing)");
  cli.add_flag("report", "ascii", "report format: ascii|markdown|csv|json|none");
  cli.add_flag("timings", "false",
               "include wall-clock columns (breaks byte-identity across runs)");
  cli.add_flag("out", "", "write the report to this file instead of stdout");
  // Preset overrides; the "preset" sentinel keeps the preset's value.
  cli.add_flag("models", "preset", "override the model axis (comma-separated)");
  cli.add_flag("datasets", "preset",
               "override the dataset axis (comma-separated)");
  cli.add_flag("trials", "preset", "override trials per cell");
  cli.add_flag("epochs", "preset", "override training epochs");
  cli.add_flag("scale", "preset", "override the dataset-size multiplier");
  cli.add_flag("width", "preset", "override the model base channel width");
  cli.add_flag("seed", "preset", "override the campaign master seed");
  cli.add_flag("threads", "0",
               "global-pool threads per cell at --jobs 1 (ignored above)");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  apply_obs_flags(cli);

  if (cli.get_bool("list-presets")) {
    for (const study::Preset& p : study::all_presets()) {
      std::cout << p.name << ": " << p.description << " ("
                << p.spec.cell_count() << " cells)\n";
    }
    return 0;
  }

  // Tooling helper: strict RFC 8259 validation with the repo's own parser,
  // so scripts need no external JSON tooling to check merged traces and
  // crash dumps.
  if (!cli.get_string("validate-json").empty()) {
    const std::string path = cli.get_string("validate-json");
    std::ifstream in(path, std::ios::binary);
    TDFM_CHECK(in.good(), "cannot open --validate-json file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (obs::json_valid(buf.str())) {
      std::cout << path << ": valid JSON\n";
      return 0;
    }
    std::cerr << path << ": invalid JSON\n";
    return 1;
  }

  const std::string journal_path = cli.get_string("journal");
  const bool progress = cli.get_bool("progress");
  const bool flight = cli.get_bool("flight");
  std::string obs_dir = cli.get_string("obs-dir");
  if (obs_dir.empty() && !journal_path.empty() &&
      (progress || flight || cli.get_bool("obs-report"))) {
    obs_dir = journal_path + ".obs";
  }

  // Observer mode: fold the plane directory and print the aggregate.  The
  // merged counters are the sums of the per-shard counters, which is what
  // the smoke script asserts.
  if (cli.get_bool("obs-report")) {
    TDFM_CHECK(!obs_dir.empty(), "--obs-report needs --obs-dir or --journal");
    std::size_t skipped = 0;
    const obs::Aggregator agg = aggregate_snapshot_dir(obs_dir, &skipped);
    const study::ProgressSummary p = study::summarize_progress(agg);
    obs::MetricsSnapshot merged;
    merged.meta.label = "aggregate of " +
                        std::to_string(agg.sources().size()) + " snapshots";
    merged.meta.shard_count = p.shards == 0 ? 1 : p.shards;
    merged.meta.grid_cells = p.grid_cells;
    merged.meta.cells_done = p.done;
    merged.meta.cells_executed = p.executed;
    merged.meta.cells_stolen = p.stolen;
    merged.samples = agg.samples();
    // Surface the plane's own health in the report itself (not only on
    // stderr): how many snapshot files were skipped as torn/foreign, and —
    // when a journal rides along — whether loading it had to recover a
    // torn tail (the kill -9 signature).
    const auto add_counter = [&](const std::string& name, std::uint64_t n) {
      obs::MetricSample s;
      s.kind = obs::MetricSample::Kind::kCounter;
      s.name = name;
      s.count = n;
      merged.samples.push_back(std::move(s));
    };
    add_counter("obs_report_snapshots_skipped", skipped);
    std::string journal_note;
    if (!journal_path.empty()) {
      try {
        bool torn = false;
        const auto records = study::Journal::load(journal_path, &torn);
        add_counter("obs_report_journal_records", records.size());
        add_counter("obs_report_journal_torn_tail_recovered", torn ? 1 : 0);
        journal_note = " | journal: " + std::to_string(records.size()) +
                       " records" + (torn ? ", torn tail recovered" : "");
      } catch (const ConfigError& e) {
        // The plane is an observer: a damaged journal degrades the report,
        // never fails it.
        TDFM_LOG(kWarn) << "obs-report: cannot load journal " << journal_path
                        << ": " << e.what();
        journal_note = " | journal: unreadable";
      }
    }
    std::sort(merged.samples.begin(), merged.samples.end(),
              [](const obs::MetricSample& a, const obs::MetricSample& b) {
                return a.name < b.name;
              });
    deliver(obs::serialize_snapshot(merged), cli.get_string("out"));
    std::cerr << study::render_progress_line(p)
              << (skipped ? " | " + std::to_string(skipped) + " torn" : "")
              << journal_note << "\n";
    return 0;
  }

  study::ReportOptions report_opts;
  report_opts.include_timings = cli.get_bool("timings");
  const std::string format = cli.get_string("report");

  study::StudySpec spec = study::preset_spec(cli.get_string("preset"));
  const auto overridden = [&](const std::string& flag) {
    return cli.get_string(flag) != "preset";
  };
  if (overridden("models")) {
    spec.models = bench::parse_arch_list(cli.get_string("models"));
  }
  if (overridden("datasets")) {
    spec.datasets.clear();
    for (const std::string& name : split_csv(cli.get_string("datasets"))) {
      spec.datasets.push_back(data::dataset_from_name(name));
    }
  }
  if (overridden("trials")) {
    spec.trials = static_cast<std::size_t>(cli.get_int("trials"));
  }
  if (overridden("epochs")) {
    spec.train_opts.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  }
  if (overridden("scale")) spec.scale = cli.get_double("scale");
  if (overridden("width")) {
    spec.model_width = static_cast<std::size_t>(cli.get_int("width"));
  }
  if (overridden("seed")) spec.seed = cli.get_u64("seed");
  spec.train_opts.threads = static_cast<std::size_t>(cli.get_int("threads"));

  // Merge mode: fuse per-shard journals into --journal, then report.
  if (!cli.get_string("merge").empty()) {
    TDFM_CHECK(!journal_path.empty(), "--merge needs --journal (the output)");
    std::vector<std::string> shard_paths;
    if (cli.get_string("merge") == "auto") {
      // Discover the <journal>.shard<i>of<N>.jsonl siblings the --spawn
      // driver (or a by-hand sharded run following its naming) left behind.
      shard_paths = study::discover_shard_journals(journal_path);
      TDFM_CHECK(!shard_paths.empty(),
                 "--merge auto found no " + journal_path +
                     ".shard<i>of<N>.jsonl siblings");
      std::cerr << "discovered " << shard_paths.size() << " shard journals"
                << " next to " << journal_path << "\n";
    } else {
      shard_paths = split_csv(cli.get_string("merge"));
    }
    auto merged = study::merge_journals(shard_paths);
    study::write_journal(journal_path, merged.records);
    std::cerr << "merged " << shard_paths.size() << " journals: "
              << merged.inputs << " records in, " << merged.records.size()
              << " unique cells out (" << merged.duplicates
              << " timing-duplicates dropped) -> " << journal_path << "\n";
    if (!cli.get_string("trace").empty()) {
      // The merge itself is not traced: cancel our own at-exit trace write
      // so it cannot clobber the merged timeline.
      const std::string trace_path = cli.get_string("trace");
      obs::set_trace_enabled(false);
      obs::set_trace_output("");
      merge_shard_traces(shard_paths, trace_path);
    }
    if (format != "none") {
      sort_by_expansion(merged.records, spec);
      const auto summary = study::summarize_campaign(merged.records);
      deliver(render_report(summary, format, report_opts),
              cli.get_string("out"));
    }
    return 0;
  }

  if (cli.get_bool("report-only")) {
    const std::string store_dir = cli.get_string("store");
    TDFM_CHECK(!journal_path.empty() || !store_dir.empty(),
               "--report-only needs --journal or --store");
    // The store-backed path feeds the same Analyzer the same records in the
    // same order, so the report bytes cannot depend on which backend held
    // them (store_smoke.sh asserts this with cmp).
    auto records = store_dir.empty() ? study::Journal::load(journal_path)
                                     : store::read_all_records(store_dir);
    // Order records by the preset's expansion order so the report is
    // byte-identical to the one the live run printed.
    sort_by_expansion(records, spec);
    const auto summary = study::summarize_campaign(records);
    deliver(render_report(summary, format, report_opts), cli.get_string("out"));
    return 0;
  }

  // Driver mode: one worker process per shard, then merge and report.
  TDFM_CHECK(cli.get_int("spawn") >= 0, "--spawn wants N >= 0");
  const std::size_t spawn = static_cast<std::size_t>(cli.get_int("spawn"));
  if (spawn > 0) {
    TDFM_CHECK(!journal_path.empty(),
               "--spawn needs --journal (merge target; per-shard journals "
               "derive from it)");
    std::vector<std::string> shard_paths(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
      shard_paths[i] = shard_journal_path(journal_path, i, spawn);
    }
    const bool steal = cli.get_bool("steal");
    const std::string trace_path = cli.get_string("trace");
    if (!trace_path.empty()) {
      // The shards trace; the driver only merges.  Cancel the driver's own
      // at-exit trace write so it cannot clobber the merged timeline.
      obs::set_trace_enabled(false);
      obs::set_trace_output("");
    }
    std::vector<pid_t> pids(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
      std::vector<std::string> child = {argv[0],
                                        "--preset", cli.get_string("preset"),
                                        "--shard", std::to_string(i) + "/" +
                                                       std::to_string(spawn),
                                        "--journal", shard_paths[i],
                                        "--jobs", cli.get_string("jobs"),
                                        "--threads", cli.get_string("threads"),
                                        "--log", cli.get_string("log"),
                                        "--report", "none"};
      for (const char* flag : {"models", "datasets", "trials", "epochs",
                               "scale", "width", "seed"}) {
        if (overridden(flag)) {
          child.insert(child.end(), {std::string("--") + flag,
                                     cli.get_string(flag)});
        }
      }
      if (cli.get_bool("resume")) child.insert(child.end(), {"--resume", "true"});
      if (steal) {
        std::string siblings;
        for (std::size_t k = 0; k < spawn; ++k) {
          if (k == i) continue;
          if (!siblings.empty()) siblings += ',';
          siblings += shard_paths[k];
        }
        child.insert(child.end(),
                     {"--steal", "true", "--siblings", siblings});
      }
      if (!obs_dir.empty()) {
        child.insert(child.end(),
                     {"--obs-dir", obs_dir, "--obs-interval-ms",
                      cli.get_string("obs-interval-ms")});
      }
      if (flight) child.insert(child.end(), {"--flight", "true"});
      if (!trace_path.empty()) {
        child.insert(child.end(), {"--trace", shard_trace_path(shard_paths[i])});
      }
      pids[i] = core::spawn_process(child);
    }
    // Poll the fleet instead of blocking per child, so --progress can fold
    // the plane directory between checks and render a live status line.
    std::string failures;
    std::vector<bool> exited(spawn, false);
    std::size_t live = spawn;
    std::size_t last_len = 0;
    while (live > 0) {
      for (std::size_t i = 0; i < spawn; ++i) {
        if (exited[i]) continue;
        core::ProcessExit exit;
        if (!core::try_wait_process(pids[i], &exit)) continue;
        exited[i] = true;
        --live;
        if (!exit.ok()) {
          failures += (failures.empty() ? "" : ", ") + std::string("shard ") +
                      std::to_string(i) + ": " + exit.describe();
        }
      }
      if (progress) {
        std::string line = study::render_progress_line(
            study::summarize_progress(aggregate_snapshot_dir(obs_dir)));
        const std::size_t len = line.size();
        if (len < last_len) line.append(last_len - len, ' ');  // erase tail
        last_len = len;
        std::cerr << '\r' << line << std::flush;
      }
      if (live > 0) std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    if (progress) std::cerr << '\n';
    // Completed shards keep their journals either way: a rerun with
    // --resume true recomputes only what is missing.
    TDFM_CHECK(failures.empty(), "shard workers failed (" + failures +
                                     "); rerun with --resume true");
    auto merged = study::merge_journals(shard_paths);
    study::write_journal(journal_path, merged.records);
    std::cerr << "spawned " << spawn << " shard workers; merged "
              << merged.inputs << " records into " << merged.records.size()
              << " unique cells (" << merged.duplicates
              << " timing-duplicates) -> " << journal_path << "\n";
    if (!trace_path.empty()) merge_shard_traces(shard_paths, trace_path);
    if (format != "none") {
      sort_by_expansion(merged.records, spec);
      const auto summary = study::summarize_campaign(merged.records);
      deliver(render_report(summary, format, report_opts),
              cli.get_string("out"));
    }
    return 0;
  }

  study::RunOptions run;
  run.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  run.resume = cli.get_bool("resume");
  run.journal_path = journal_path;
  run.shuffle_seed = cli.get_u64("shuffle");
  parse_shard(cli.get_string("shard"), &run.shard_index, &run.shard_count);
  run.work_steal = cli.get_bool("steal");
  run.sibling_journals = split_csv(cli.get_string("siblings"));
  run.obs_dir = obs_dir;
  run.obs_interval_ms = cli.get_int("obs-interval-ms");
  run.abort_after_cells = cli.get_u64("abort-after-cells");

  // Sharded workers qualify everything they emit: log lines get a
  // "[shard i/N]" prefix, trace events a process_name row, snapshots and
  // crash dumps a label — so merged views stay attributable.
  const std::string shard_label =
      run.shard_count > 1
          ? "shard " + std::to_string(run.shard_index) + "/" +
                std::to_string(run.shard_count)
          : "";
  if (!shard_label.empty()) {
    set_log_prefix("[" + shard_label + "] ");
    obs::set_trace_process(0, shard_label);
  }
  if (flight) {
    obs::flight::install_crash_handler(
        obs_dir.empty() ? std::string(".") : obs_dir,
        shard_label.empty() ? spec.name : shard_label);
  }

  std::cerr << "campaign '" << spec.name << "': " << spec.cell_count()
            << " cells, jobs=" << run.jobs
            << (run.shard_count > 1
                    ? ", shard " + std::to_string(run.shard_index) + "/" +
                          std::to_string(run.shard_count)
                    : "")
            << (run.resume ? ", resuming from " + journal_path : "") << "\n";
  const auto result = study::run_campaign(spec, run);
  std::cerr << "executed " << result.executed << " cells ("
            << result.stolen << " stolen), skipped " << result.skipped
            << " (journaled); dataset cache " << result.dataset_cache.hits
            << "/" << result.dataset_cache.hits + result.dataset_cache.misses
            << " hits, golden cache " << result.golden_cache.hits << "/"
            << result.golden_cache.hits + result.golden_cache.misses
            << " hits, shared-fit cache " << result.shared_fit_cache.hits
            << "/" << result.shared_fit_cache.hits + result.shared_fit_cache.misses
            << " hits; " << fixed(result.elapsed_seconds, 1) << "s\n";

  const auto summary = study::summarize_campaign(result.records);
  deliver(render_report(summary, format, report_opts), cli.get_string("out"));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
