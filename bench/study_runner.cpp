// study_runner — the campaign CLI over tdfm::study.
//
// Runs a named preset grid (or any preset with overridden axes/knobs) as a
// resumable, parallel campaign:
//
//   study_runner --list-presets true
//   study_runner --preset fig3-mislabelling --journal fig3.jsonl --jobs 4
//   <ctrl-C mid-run>
//   study_runner --preset fig3-mislabelling --journal fig3.jsonl --jobs 4
//                --resume true          # completes only the remaining cells
//   study_runner --journal fig3.jsonl --report markdown --report-only true
//
// Reports exclude wall-clock timings by default, so a resumed run's report
// is byte-identical to an uninterrupted one at any --jobs value; pass
// --timings true for the §IV-E overhead view.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <unordered_map>

#include "bench_common.hpp"

namespace {

using namespace tdfm;

/// Writes `text` to --out (or stdout when --out is empty).
void deliver(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << text;
    return;
  }
  std::ofstream out(out_path, std::ios::trunc);
  TDFM_CHECK(out.good(), "cannot open --out file: " + out_path);
  out << text;
  TDFM_CHECK(out.good(), "failed writing --out file: " + out_path);
}

std::string render_report(const study::CampaignSummary& summary,
                          const std::string& format,
                          const study::ReportOptions& opts) {
  if (format == "ascii") return study::render_ascii(summary, opts);
  if (format == "markdown") return study::render_markdown(summary, opts);
  if (format == "csv") return study::render_csv(summary, opts);
  if (format == "json") return study::render_json_summary(summary, opts) + "\n";
  if (format == "none") return "";
  throw ConfigError("unknown --report format '" + format +
                    "' (ascii|markdown|csv|json|none)");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace tdfm;

  CliParser cli;
  cli.add_flag("preset", "smoke", "campaign preset (see --list-presets true)");
  cli.add_flag("list-presets", "false", "print the preset catalogue and exit");
  cli.add_flag("journal", "", "JSONL journal file (enables --resume)");
  cli.add_flag("resume", "false", "skip cells already recorded in --journal");
  cli.add_flag("report-only", "false",
               "do not run anything; report the --journal contents");
  cli.add_flag("jobs", "1", "concurrent cells (0 = hardware concurrency)");
  cli.add_flag("shuffle", "0",
               "non-zero: run pending cells in this seed's shuffled order");
  cli.add_flag("report", "ascii", "report format: ascii|markdown|csv|json|none");
  cli.add_flag("timings", "false",
               "include wall-clock columns (breaks byte-identity across runs)");
  cli.add_flag("out", "", "write the report to this file instead of stdout");
  // Preset overrides; the "preset" sentinel keeps the preset's value.
  cli.add_flag("models", "preset", "override the model axis (comma-separated)");
  cli.add_flag("datasets", "preset",
               "override the dataset axis (comma-separated)");
  cli.add_flag("trials", "preset", "override trials per cell");
  cli.add_flag("epochs", "preset", "override training epochs");
  cli.add_flag("scale", "preset", "override the dataset-size multiplier");
  cli.add_flag("width", "preset", "override the model base channel width");
  cli.add_flag("seed", "preset", "override the campaign master seed");
  cli.add_flag("threads", "0",
               "global-pool threads per cell at --jobs 1 (ignored above)");
  cli.add_flag("log", "info", "log level: debug|info|warn|error|off");
  add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(cli.get_string("log")));
  apply_obs_flags(cli);

  if (cli.get_bool("list-presets")) {
    for (const study::Preset& p : study::all_presets()) {
      std::cout << p.name << ": " << p.description << " ("
                << p.spec.cell_count() << " cells)\n";
    }
    return 0;
  }

  const std::string journal_path = cli.get_string("journal");
  study::ReportOptions report_opts;
  report_opts.include_timings = cli.get_bool("timings");
  const std::string format = cli.get_string("report");

  study::StudySpec spec = study::preset_spec(cli.get_string("preset"));
  const auto overridden = [&](const std::string& flag) {
    return cli.get_string(flag) != "preset";
  };
  if (overridden("models")) {
    spec.models = bench::parse_arch_list(cli.get_string("models"));
  }
  if (overridden("datasets")) {
    spec.datasets.clear();
    const std::string list = cli.get_string("datasets");
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::size_t end = comma == std::string::npos ? list.size() : comma;
      spec.datasets.push_back(data::dataset_from_name(list.substr(pos, end - pos)));
      pos = end + 1;
    }
  }
  if (overridden("trials")) {
    spec.trials = static_cast<std::size_t>(cli.get_int("trials"));
  }
  if (overridden("epochs")) {
    spec.train_opts.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  }
  if (overridden("scale")) spec.scale = cli.get_double("scale");
  if (overridden("width")) {
    spec.model_width = static_cast<std::size_t>(cli.get_int("width"));
  }
  if (overridden("seed")) spec.seed = cli.get_u64("seed");
  spec.train_opts.threads = static_cast<std::size_t>(cli.get_int("threads"));

  if (cli.get_bool("report-only")) {
    TDFM_CHECK(!journal_path.empty(), "--report-only needs --journal");
    auto records = study::Journal::load(journal_path);
    // The journal is in completion order, which depends on --jobs and timing;
    // re-rendering must not.  Order records by the preset's expansion order
    // (foreign cell ids sort last, by id) so the report is byte-identical to
    // the one the live run printed.
    std::unordered_map<std::string, std::size_t> expansion_order;
    const auto cells = study::expand_cells(spec);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      expansion_order.emplace(study::cell_id(spec, cells[i]), i);
    }
    const auto rank = [&](const study::CellRecord& r) {
      const auto it = expansion_order.find(r.cell);
      return it == expansion_order.end() ? cells.size() : it->second;
    };
    std::stable_sort(records.begin(), records.end(),
                     [&](const auto& a, const auto& b) {
                       const std::size_t ra = rank(a), rb = rank(b);
                       return ra != rb ? ra < rb : a.cell < b.cell;
                     });
    const auto summary = study::summarize_campaign(records);
    deliver(render_report(summary, format, report_opts), cli.get_string("out"));
    return 0;
  }

  study::RunOptions run;
  run.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  run.resume = cli.get_bool("resume");
  run.journal_path = journal_path;
  run.shuffle_seed = cli.get_u64("shuffle");

  std::cerr << "campaign '" << spec.name << "': " << spec.cell_count()
            << " cells, jobs=" << run.jobs
            << (run.resume ? ", resuming from " + journal_path : "") << "\n";
  const auto result = study::run_campaign(spec, run);
  std::cerr << "executed " << result.executed << " cells, skipped "
            << result.skipped << " (journaled); dataset cache "
            << result.dataset_cache.hits << "/"
            << result.dataset_cache.hits + result.dataset_cache.misses
            << " hits, golden cache " << result.golden_cache.hits << "/"
            << result.golden_cache.hits + result.golden_cache.misses
            << " hits, shared-fit cache " << result.shared_fit_cache.hits
            << "/" << result.shared_fit_cache.hits + result.shared_fit_cache.misses
            << " hits; " << fixed(result.elapsed_seconds, 1) << "s\n";

  const auto summary = study::summarize_campaign(result.records);
  deliver(render_report(summary, format, report_opts), cli.get_string("out"));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
