// bench_kernels: GFLOP/s of every dispatchable GEMM kernel at model-zoo
// shapes, plus the q8_0 quantized matmul.
//
// Each (shape, variant, kernel) cell times direct calls into the kernel
// table — single thread, full row range — so the numbers are pure kernel
// throughput with no pool or dispatch overhead.  Shapes are the GEMMs the
// repo's model zoo actually runs: im2col'd 3x3 conv layers at the three
// spatial resolutions, a VGG-width block, the Dense classifier head, and a
// square reference point.  The headline is the geomean AVX2-over-scalar
// speedup across all fp32 GEMM cells (the ISSUE's >= 3x acceptance gate).
//
//   $ ./bench/bench_kernels                      # sweep every supported kernel
//   $ ./bench/bench_kernels --kernel avx2        # one kernel only
//   $ ./bench/bench_kernels --json BENCH_kernels.json
#include <chrono>
#include <cmath>
#include <random>

#include "bench_common.hpp"
#include "kernels/aligned.hpp"
#include "kernels/quant.hpp"

namespace tdfm::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// One GEMM problem size.  Tags name the model-zoo site the shape comes
/// from (C[m,n] = A[m,k] * B[k,n] modulo the variant's transposes).
struct ShapeSpec {
  const char* tag;
  std::size_t m, n, k;
};

constexpr ShapeSpec kShapes[] = {
    {"conv3x3_first", 8, 1024, 27},   // first conv: 3ch in, 32x32 spatial
    {"conv3x3_mid", 16, 256, 72},     // mid conv after one downsample
    {"conv3x3_deep", 32, 64, 144},    // deep conv at 8x8 spatial
    {"vgg_block", 32, 64, 288},       // VGG-width 3x3 block
    {"dense_head", 64, 10, 512},      // classifier head (batch 64)
    {"square256", 256, 256, 256},     // square reference point
};

constexpr const char* kVariants[] = {"nn", "nt", "tn"};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void fill_random(float* p, std::size_t n, std::uint64_t seed) {
  std::mt19937 gen(static_cast<std::uint32_t>(seed));
  std::uniform_real_distribution<float> dist(-1.0F, 1.0F);
  for (std::size_t i = 0; i < n; ++i) p[i] = dist(gen);
}

kernels::GemmRowsFn variant_fn(const kernels::KernelTable& table,
                               std::size_t variant) {
  switch (variant) {
    case 0: return table.nn;
    case 1: return table.nt;
    default: return table.tn;
  }
}

/// Times `body` (already warmed up once by the caller): doubles the rep
/// count until one measurement takes >= 10 ms, then reports the best of
/// three runs at that count — the minimum is the least-preempted sample,
/// which matters on shared/single-core hosts.
template <typename Fn>
double time_per_call(Fn&& body) {
  std::size_t reps = 1;
  double elapsed = 0.0;
  while (true) {
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) body();
    elapsed = seconds_since(t0);
    if (elapsed >= 0.010 || reps >= (1ULL << 24)) break;
    reps *= 2;
  }
  for (int run = 0; run < 2; ++run) {
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) body();
    elapsed = std::min(elapsed, seconds_since(t0));
  }
  return elapsed / static_cast<double>(reps);
}

int run(int argc, char** argv) {
  CliParser cli;
  BenchSettings settings;
  if (!parse_bench_flags(argc, argv, cli, settings, /*default_trials=*/1,
                         /*default_epochs=*/1, /*default_scale=*/1.0,
                         /*default_width=*/8)) {
    return 0;
  }
  // --kernel restricts the sweep; otherwise bench everything the host runs.
  const std::vector<kernels::KernelKind> kinds =
      cli.get_string("kernel").empty()
          ? kernels::supported_kernels()
          : std::vector<kernels::KernelKind>{kernels::active_kernel()};

  print_banner("kernel microbenchmarks: fp32 GEMM variants + q8_0 matmul",
               settings);

  BenchJson json("kernels", settings);
  std::vector<std::string> columns = {"shape", "variant", "MFLOP"};
  for (const kernels::KernelKind kind : kinds) {
    columns.push_back(std::string(kernels::kernel_name(kind)) + " GFLOP/s");
  }
  AsciiTable table(columns);

  // Geomean/min speedup accumulators for the fp32 GEMM headline.
  double log_speedup_sum = 0.0;
  double min_speedup = 0.0;
  std::size_t speedup_cells = 0;

  std::size_t shape_idx = 0;
  for (const ShapeSpec& s : kShapes) {
    // One buffer pool per shape, sized for the worst-case operand layout
    // across variants (nn: A[m,k] B[k,n]; nt: B[n,k]; tn: A[k,m]).
    kernels::AlignedBuffer<float> a(s.m * s.k);
    kernels::AlignedBuffer<float> b(s.k * s.n);
    kernels::AlignedBuffer<float> c(s.m * s.n);
    fill_random(a.data(), a.size(), 1000 + shape_idx);
    fill_random(b.data(), b.size(), 2000 + shape_idx);
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) * static_cast<double>(s.k);

    for (std::size_t v = 0; v < 3; ++v) {
      std::vector<std::string> row = {s.tag, kVariants[v],
                                      fixed(flops / 1e6, 2)};
      double scalar_gflops = 0.0;
      for (const kernels::KernelKind kind : kinds) {
        const kernels::GemmRowsFn fn =
            variant_fn(kernels::kernel_table(kind), v);
        const auto body = [&] {
          fn(0, s.m, s.m, s.n, s.k, a.data(), b.data(), c.data(),
             /*accumulate=*/false);
        };
        body();  // warm up (page-in, icache)
        const double sec = time_per_call(body);
        const double gflops = flops / sec / 1e9;
        row.push_back(fixed(gflops, 2));
        json.add(std::string(s.tag) + "." + kVariants[v] + "." +
                     kernels::kernel_name(kind) + ".gflops",
                 gflops);
        if (kind == kernels::KernelKind::kScalar) scalar_gflops = gflops;
        if (kind == kernels::KernelKind::kAvx2 && scalar_gflops > 0.0) {
          const double speedup = gflops / scalar_gflops;
          log_speedup_sum += std::log(speedup);
          min_speedup = speedup_cells == 0 ? speedup
                                           : std::min(min_speedup, speedup);
          ++speedup_cells;
        }
      }
      table.add_row(row);
    }

    // q8_0 matmul at the nt layout (the only layout inference uses):
    // C[m,n] from quantized A[m,k] against quantized B[n,k].
    {
      kernels::Q8Matrix qa = kernels::quantize_rows_q8(a.data(), s.m, s.k);
      kernels::AlignedBuffer<float> bt(s.n * s.k);
      fill_random(bt.data(), bt.size(), 3000 + shape_idx);
      kernels::Q8Matrix qb = kernels::quantize_rows_q8(bt.data(), s.n, s.k);
      std::vector<std::string> row = {s.tag, "q8_nt", fixed(flops / 1e6, 2)};
      for (const kernels::KernelKind kind : kinds) {
        const kernels::GemmQ8RowsFn fn = kernels::kernel_table(kind).q8_nt;
        const auto body = [&] {
          fn(0, s.m, s.n, qa.blocks_per_row, qa.data.data(), qa.scales.data(),
             qb.data.data(), qb.scales.data(), c.data());
        };
        body();
        const double sec = time_per_call(body);
        const double gflops = flops / sec / 1e9;
        row.push_back(fixed(gflops, 2));
        json.add(std::string(s.tag) + ".q8_nt." +
                     kernels::kernel_name(kind) + ".gflops",
                 gflops);
      }
      table.add_row(row);
    }
    ++shape_idx;
  }

  std::cout << table.render() << "\n";

  if (speedup_cells > 0) {
    const double geomean =
        std::exp(log_speedup_sum / static_cast<double>(speedup_cells));
    std::cout << "fp32 GEMM speedup, avx2 over scalar: geomean "
              << fixed(geomean, 2) << "x, min " << fixed(min_speedup, 2)
              << "x over " << speedup_cells << " (shape, variant) cells\n";
    json.add("speedup.gemm.avx2_over_scalar.geomean", geomean);
    json.add("speedup.gemm.avx2_over_scalar.min", min_speedup);
  }
  json.emit(settings);
  return 0;
}

}  // namespace
}  // namespace tdfm::bench

int main(int argc, char** argv) try {
  return tdfm::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::cerr << "bench_kernels failed: " << e.what() << "\n";
  return 1;
}
