// E5 — Fig. 4(a, c, e): AD across datasets, ResNet50, mislabelling.
//
// Three panels: CIFAR-10-sim, GTSRB-sim, Pneumonia-sim, each with fault
// percentages {10, 30, 50}.  Expected shapes from the paper:
//   - CIFAR-10 and Pneumonia show higher AD than GTSRB (clutter / size);
//   - ensembles resilient across all three; label smoothing second;
//   - LC relatively better on few-class datasets (CIFAR, Pneumonia) and
//     poor on 43-class GTSRB;
//   - RL degrades at 50% mislabelling and is poor on Pneumonia throughout.
//
// Thin wrapper over the `fig4-mislabelling` study preset.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("model", "ResNet50", "panel model");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E5: Fig. 4(a,c,e) — AD across datasets, mislabelling", s);

  study::StudySpec spec = preset_with_settings("fig4-mislabelling", s);
  spec.models = {models::arch_from_name(cli.get_string("model"))};

  obs::Stopwatch watch;
  const auto result = study::run_campaign(spec, campaign_run_options(s));
  const auto summary = study::summarize_campaign(result.records);
  std::cout << study::render_ascii(summary);
  std::cout << "paper reference shapes: GTSRB lowest ADs; Ens resilient "
               "everywhere, LS second; LC best at 50% on CIFAR/Pneumonia but "
               "near-worst on GTSRB; RL collapses at 50%.\n";
  std::cout << "dataset cache: " << result.dataset_cache.hits << " hits / "
            << result.dataset_cache.misses << " misses\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  BenchJson json("fig4_mislabelling", s);
  add_campaign_headlines(json, summary);
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
