// E7 — §IV-C: combinations of multiple fault types.
//
// The paper injects pairs of fault types (mislabelling+removal,
// mislabelling+repetition, removal+repetition) and finds the AD
// statistically similar to that of the dominant single fault type:
// combinations containing mislabelling behave like mislabelling alone, and
// removal+repetition behaves like repetition alone.  This bench reproduces
// the comparison and runs Welch's t-test on the per-trial AD samples.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("model", "ConvNet", "model under test");
  cli.add_flag("percent", "30", "fault percentage for every campaign");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/3, /*epochs=*/16,
                         /*scale=*/0.8, /*width=*/8)) {
    return 0;
  }
  print_banner("E7: combined fault types vs single fault types (§IV-C)", s);

  const auto model = models::arch_from_name(cli.get_string("model"));
  const double pct = cli.get_double("percent");
  using faults::FaultSpec;
  using faults::FaultType;

  experiment::StudyConfig cfg = base_study(s, data::DatasetKind::kGtsrbSim, model);
  cfg.techniques = {mitigation::TechniqueKind::kBaseline};
  cfg.fault_levels = {
      {FaultSpec{FaultType::kMislabelling, pct}},                                  // 0
      {FaultSpec{FaultType::kRemoval, pct}},                                       // 1
      {FaultSpec{FaultType::kRepetition, pct}},                                    // 2
      {FaultSpec{FaultType::kMislabelling, pct}, FaultSpec{FaultType::kRemoval, pct}},    // 3
      {FaultSpec{FaultType::kMislabelling, pct}, FaultSpec{FaultType::kRepetition, pct}}, // 4
      {FaultSpec{FaultType::kRemoval, pct}, FaultSpec{FaultType::kRepetition, pct}},      // 5
  };

  obs::Stopwatch watch;
  const auto result = experiment::run_study(cfg);
  std::cout << experiment::render_ad_table(result,
                                           "AD of single vs combined fault types");
  BenchJson json("combined_faults", s);
  add_study_headlines(json, result);

  // Welch t-tests: combination vs its dominant single fault type.
  struct Pair {
    std::size_t combined;
    std::size_t single;
    const char* label;
  };
  const Pair pairs[] = {
      {3, 0, "mislabel+removal    vs mislabel  "},
      {4, 0, "mislabel+repetition vs mislabel  "},
      {5, 2, "removal+repetition  vs repetition"},
  };
  std::cout << "\nWelch t-tests on per-trial AD samples (the paper reports "
               "all three pairs statistically similar):\n";
  for (const Pair& p : pairs) {
    const auto a = result.cells[p.combined][0].ad_samples();
    const auto b = result.cells[p.single][0].ad_samples();
    const WelchResult w = welch_t_test(a, b);
    std::cout << "  " << p.label << ": t=" << fixed(w.t, 2)
              << " dof=" << fixed(w.dof, 1)
              << (w.significant_at_05 ? "  -> DIFFERENT at 5%"
                                      : "  -> statistically similar")
              << '\n';
    json.add(std::string("welch.") + p.label, w.t);
  }
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
