// Ablation — label relaxation vs classical label smoothing, and the
// AD-vs-naive-drop metric comparison (DESIGN.md §5).
//
// Table I selects *label relaxation* [16] as the representative of the
// label-smoothing family; classical fixed-alpha smoothing is the obvious
// foil.  This bench compares both (at two alphas each) against the
// baseline under mislabelling, and prints the same cells under the naive
// accuracy-drop metric to show why the paper's AD definition matters.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("percent", "30", "mislabelling percentage");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/2, /*epochs=*/16,
                         /*scale=*/0.5, /*width=*/8)) {
    return 0;
  }
  print_banner("ablation: label relaxation vs classical smoothing", s);

  struct Variant {
    const char* label;
    bool relaxation;
    float alpha;
  };
  const std::vector<Variant> variants{
      {"relaxation a=0.1 (paper)", true, 0.1F},
      {"relaxation a=0.3", true, 0.3F},
      {"classical  a=0.1", false, 0.1F},
      {"classical  a=0.3", false, 0.3F},
  };

  obs::Stopwatch watch;
  BenchJson json("ablation_ls_variant", s);
  AsciiTable table({"variant", "AD", "naive drop", "accuracy"});
  // Baseline row first, from a Base-only study.
  experiment::StudyConfig base_cfg =
      base_study(s, data::DatasetKind::kGtsrbSim, models::Arch::kConvNet);
  base_cfg.techniques = {mitigation::TechniqueKind::kBaseline,
                         mitigation::TechniqueKind::kLabelSmoothing};
  base_cfg.fault_levels = {{faults::FaultSpec{faults::FaultType::kMislabelling,
                                              cli.get_double("percent")}}};

  const auto add_row = [&table, &json](const char* label,
                                       const experiment::CellResult& cell) {
    double drop = 0.0;
    for (const auto& t : cell.trials) drop += t.naive_drop;
    drop /= static_cast<double>(cell.trials.size());
    table.add_row({label, percent_with_ci(cell.ad.mean, cell.ad.ci95_half_width),
                   percent(drop), percent(cell.faulty_accuracy.mean, 0)});
    json.add(std::string(label) + ".ad", cell.ad.mean);
    json.add(std::string(label) + ".naive_drop", drop);
  };

  {
    const auto r = experiment::run_study(base_cfg);
    add_row("baseline (no technique)",
            r.cell(0, mitigation::TechniqueKind::kBaseline));
  }
  for (const Variant& v : variants) {
    experiment::StudyConfig cfg = base_cfg;
    cfg.techniques = {mitigation::TechniqueKind::kLabelSmoothing};
    cfg.hyperparams.ls_use_relaxation = v.relaxation;
    cfg.hyperparams.ls_alpha = v.alpha;
    const auto r = experiment::run_study(cfg);
    add_row(v.label, r.cells[0][0]);
  }
  std::cout << table.render()
            << "\nnotes: AD and naive drop diverge whenever the protected "
               "model trades mistakes instead of losing accuracy outright — "
               "AD (§III-C) counts only golden-correct images lost.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
