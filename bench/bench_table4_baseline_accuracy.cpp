// E2 — Table IV: model accuracies when trained without fault injection.
//
// Four models (ResNet50, VGG16, ConvNet, MobileNet) x three datasets x all
// six columns.  "Faulty" training here uses the *clean* data — the table
// isolates what each technique does to accuracy before any faults are
// injected.  Expected shapes from the paper:
//   - most techniques leave golden accuracy roughly unchanged;
//   - LC and RL degrade accuracy on the small Pneumonia dataset;
//   - KD reaches the highest accuracies on GTSRB;
//   - LC is skipped on MobileNet (the paper could not run it there; we run
//     the same grid and mark the cell, keeping the table shape identical).
//
// Thin wrapper over the `table4` study preset: the grid lives in
// src/study/presets.cpp; this binary reshapes the campaign summary into the
// paper's table layout.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("models", "ResNet50,ConvNet",
               "comma-separated table rows (paper: ResNet50,VGG16,ConvNet,MobileNet)");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E2: Table IV — accuracies without fault injection", s);

  study::StudySpec spec = preset_with_settings("table4", s);
  spec.models = parse_arch_list(cli.get_string("models"));

  obs::Stopwatch watch;
  const auto result = study::run_campaign(spec, campaign_run_options(s));
  const auto summary = study::summarize_campaign(result.records);
  BenchJson json("table4_baseline_accuracy", s);
  add_campaign_headlines(json, summary);

  const auto group_for = [&](const std::string& dataset, const std::string& model,
                             const std::string& technique) {
    const auto it = std::find_if(
        summary.groups.begin(), summary.groups.end(),
        [&](const study::GroupStats& g) {
          return g.dataset == dataset && g.model == model &&
                 g.fault_level == "none" && g.technique == technique;
        });
    TDFM_CHECK(it != summary.groups.end(), "missing Table IV cell");
    return *it;
  };

  // The paper's layout: rows = (model, dataset), columns = techniques.  The
  // Base column reports golden accuracy (the baseline trained on clean data
  // IS the golden model of this table).
  AsciiTable table({"model", "dataset", "Base", "LS", "LC", "RL", "KD", "Ens"});
  for (const std::string& dataset : summary.datasets) {
    for (const std::string& model : summary.models) {
      std::vector<std::string> row{model, dataset};
      for (const std::string& technique : summary.techniques) {
        if (technique == "Base") {
          row.push_back(percent(group_for(dataset, model, "Base")
                                    .golden_accuracy.mean, 0));
          continue;
        }
        if (technique == "LC" && model == "MobileNet") {
          row.push_back("-");  // paper: "we were not able to run LC on MobileNet"
          continue;
        }
        row.push_back(
            percent(group_for(dataset, model, technique).faulty_accuracy.mean, 0));
      }
      table.add_row(std::move(row));
    }
  }
  std::cout << table.render();
  std::cout << "\npaper reference: Table IV — techniques mostly preserve "
               "accuracy; LC/RL degrade on Pneumonia; KD highest on GTSRB.\n";
  std::cout << "dataset cache: " << result.dataset_cache.hits << " hits / "
            << result.dataset_cache.misses << " misses\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
