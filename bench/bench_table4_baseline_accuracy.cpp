// E2 — Table IV: model accuracies when trained without fault injection.
//
// Four models (ResNet50, VGG16, ConvNet, MobileNet) x three datasets x all
// six columns.  "Faulty" training here uses the *clean* data — the table
// isolates what each technique does to accuracy before any faults are
// injected.  Expected shapes from the paper:
//   - most techniques leave golden accuracy roughly unchanged;
//   - LC and RL degrade accuracy on the small Pneumonia dataset;
//   - KD reaches the highest accuracies on GTSRB;
//   - LC is skipped on MobileNet (the paper could not run it there; we run
//     the same grid and mark the cell, keeping the table shape identical).
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  cli.add_flag("models", "ResNet50,ConvNet",
               "comma-separated table rows (paper: ResNet50,VGG16,ConvNet,MobileNet)");
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/1, /*epochs=*/10,
                         /*scale=*/0.4, /*width=*/8)) {
    return 0;
  }
  print_banner("E2: Table IV — accuracies without fault injection", s);

  const std::vector<models::Arch> archs = parse_arch_list(cli.get_string("models"));
  obs::Stopwatch watch;
  BenchJson json("table4_baseline_accuracy", s);

  AsciiTable table({"model", "dataset", "Base", "LS", "LC", "RL", "KD", "Ens"});
  const std::array<data::DatasetKind, 3> datasets{data::DatasetKind::kCifar10Sim,
                                                  data::DatasetKind::kGtsrbSim,
                                                  data::DatasetKind::kPneumoniaSim};
  for (const auto kind : datasets) {
    experiment::StudyConfig proto = base_study(s, kind, archs.front());
    proto.fault_levels = {{}};  // no injection: Table IV measures clean training
    const auto results = experiment::run_multi_model_study(proto, archs);
    for (std::size_t a = 0; a < archs.size(); ++a) {
      const auto& r = results[a];
      add_study_headlines(json, r, std::string(data::dataset_name(kind)) + ".");
      std::vector<std::string> row{models::arch_name(archs[a]),
                                   data::dataset_name(kind)};
      for (const auto tech : r.config.techniques) {
        if (tech == mitigation::TechniqueKind::kBaseline) {
          row.push_back(percent(r.golden_accuracy.mean, 0));
          continue;
        }
        if (tech == mitigation::TechniqueKind::kLabelCorrection &&
            archs[a] == models::Arch::kMobileNet) {
          row.push_back("-");  // paper: "we were not able to run LC on MobileNet"
          continue;
        }
        row.push_back(percent(r.cell(0, tech).faulty_accuracy.mean, 0));
      }
      table.add_row(std::move(row));
    }
  }
  std::cout << table.render();
  std::cout << "\npaper reference: Table IV — techniques mostly preserve "
               "accuracy; LC/RL degrade on Pneumonia; KD highest on GTSRB.\n";
  std::cout << "elapsed: " << fixed(watch.elapsed_seconds(), 1) << "s\n";
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.write(s.json_path);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
