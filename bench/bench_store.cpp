// bench_store: the results-store's three headline numbers on a synthetic
// campaign journal — compression ratio, import throughput, and the
// filtered-query speedup of predicate pushdown over JSONL re-parsing.
//
// The journal is synthesized campaign-shaped (real axis names, 16-hex cell
// ids, accuracy-like doubles) so dictionary and zone-map behaviour match a
// paper-full run rather than a best case: every segment holds a handful of
// technique ids, so a one-technique query skips nothing by dictionary alone
// at small segment counts but prunes hard once segments outnumber the
// technique stride.  The query benchmark compares the same question asked
// both ways:
//
//   JSONL:  read the file, parse every line, keep matching records
//   store:  resolve the predicate against the dictionary, skip segments by
//           zone map, decode only the survivors
//
//   $ ./bench/bench_store --rows 50000 --out BENCH_store.json
#include <chrono>
#include <filesystem>
#include <random>

#include "bench_common.hpp"
#include "core/varint.hpp"
#include "store/store.hpp"

namespace tdfm::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr const char* kDatasets[] = {"GTSRB", "CIFAR-10", "Pneumonia"};
constexpr const char* kModels[] = {"ResNet50", "VGG16", "ConvNet"};
constexpr const char* kFaultLevels[] = {"10%", "30%", "50%"};
constexpr const char* kTechniques[] = {"None",       "Removal",
                                       "Relabelling", "LossCorrection",
                                       "Ensemble3",  "Ensemble5",
                                       "DataValuation"};

/// Campaign-shaped synthetic journal: one record per (context, technique,
/// trial) cell in expansion order, accuracy-like doubles with per-cell
/// noise.  Deterministic in `seed`.
std::vector<study::CellRecord> synthesize(std::size_t rows,
                                          std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  std::vector<study::CellRecord> records;
  records.reserve(rows);
  std::size_t i = 0;
  while (records.size() < rows) {
    study::CellRecord r;
    r.dataset = kDatasets[(i / 7) % 3];
    r.model = kModels[(i / 21) % 3];
    r.fault_level = kFaultLevels[(i / 63) % 3];
    r.technique = kTechniques[i % 7];
    r.trial = 1 + (i / 189) % 20;
    char cell[20];
    std::snprintf(cell, sizeof(cell), "%016llx",
                  static_cast<unsigned long long>(
                      core::fnv1a64(r.dataset + r.model + r.fault_level +
                                    r.technique + std::to_string(i))));
    r.cell = cell;
    r.golden_accuracy = 0.9 + noise(gen) / 5;
    r.faulty_accuracy = 0.8 + noise(gen);
    r.ad = r.golden_accuracy - r.faulty_accuracy;
    r.reverse_ad = -r.ad;
    r.naive_drop = r.ad + noise(gen) / 10;
    r.train_seconds = 2.0 + noise(gen) * 20;
    r.infer_seconds = 0.1 + noise(gen);
    r.inference_models = r.technique.rfind("Ensemble", 0) == 0
                             ? static_cast<double>(r.technique.back() - '0')
                             : 1.0;
    r.shared_fit = r.inference_models > 1.0;
    records.push_back(std::move(r));
    ++i;
  }
  return records;
}

}  // namespace
}  // namespace tdfm::bench

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;
  namespace fs = std::filesystem;

  CliParser cli;
  cli.add_flag("rows", "50000", "synthetic journal rows");
  cli.add_flag("segment-rows", "0", "rows per store segment (0 = default)");
  cli.add_flag("dir", "",
               "working directory for the journal and store (default: a "
               "bench_store.tmp directory next to the binary, removed after)");
  BenchSettings settings;
  if (!parse_bench_flags(argc, argv, cli, settings)) return 0;

  const std::size_t rows = static_cast<std::size_t>(cli.get_int("rows"));
  const bool keep = !cli.get_string("dir").empty();
  const std::string dir =
      keep ? cli.get_string("dir") : std::string("bench_store.tmp");
  fs::create_directories(dir);
  const std::string journal_path = dir + "/journal.jsonl";
  const std::string store_dir = dir + "/store";
  fs::remove_all(store_dir);

  std::cout << "=== bench_store ===\n"
            << "rows=" << rows << " seed=" << settings.seed
            << " codec=" << (store::zlib_available() ? "zlib" : "tlz") << "\n\n";

  const auto records = synthesize(rows, settings.seed);
  {
    std::ofstream out(journal_path, std::ios::trunc | std::ios::binary);
    TDFM_CHECK(out.good(), "cannot write " + journal_path);
    for (const auto& r : records) out << study::to_jsonl(r) << '\n';
  }

  store::WriterOptions opts;
  if (cli.get_int("segment-rows") > 0) {
    opts.segment_rows = static_cast<std::size_t>(cli.get_int("segment-rows"));
  }
  const auto t_import = Clock::now();
  const store::ImportStats import =
      store::import_journal(journal_path, store_dir, opts);
  const double import_seconds = seconds_since(t_import);
  const double ratio = static_cast<double>(import.journal_bytes) /
                       static_cast<double>(import.store_bytes);
  const double import_mb_s = static_cast<double>(import.journal_bytes) /
                             (1024.0 * 1024.0) / import_seconds;
  std::cout << "import: " << import.records << " records, "
            << import.segments << " segments, " << import.journal_bytes
            << " -> " << import.store_bytes << " bytes ("
            << fixed(ratio, 2) << "x smaller), "
            << fixed(import_mb_s, 1) << " MB/s\n";

  // Round-trip check: the bench never reports numbers for a lossy store.
  {
    std::ostringstream exported;
    store::StoreReader(store_dir).export_jsonl(exported);
    std::ostringstream expected;
    for (const auto& r : records) expected << study::to_jsonl(r) << '\n';
    TDFM_CHECK(exported.str() == expected.str(),
               "store export does not reproduce the journal");
  }

  // Filtered query, asked both ways.  The store is opened per-iteration:
  // manifest parsing is part of the price of answering from a cold store.
  const std::string technique = "Ensemble5";
  const auto t_jsonl = Clock::now();
  std::size_t jsonl_matches = 0;
  {
    std::ifstream in(journal_path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (study::parse_record(line).technique == technique) ++jsonl_matches;
    }
  }
  const double jsonl_seconds = seconds_since(t_jsonl);

  const auto t_store = Clock::now();
  store::Query q;
  q.technique = technique;
  std::size_t store_matches = 0;
  const store::ScanStats scan = store::StoreReader(store_dir).query(
      q, [&](const study::CellRecord&, const std::string&) {
        ++store_matches;
      });
  const double store_seconds = seconds_since(t_store);
  TDFM_CHECK(store_matches == jsonl_matches,
             "store and JSONL disagree on the match count");
  const double speedup = jsonl_seconds / store_seconds;
  std::cout << "query technique=" << technique << ": " << store_matches
            << " matches; JSONL " << fixed(jsonl_seconds * 1e3, 1)
            << " ms vs store " << fixed(store_seconds * 1e3, 1) << " ms ("
            << fixed(speedup, 2) << "x), " << scan.segments_skipped << "/"
            << scan.segments_total << " segments skipped unread\n";

  // Zone-map pruning needs a predicate with segment-level locality; trials
  // change every 189 rows, so a one-trial query can skip most segments.
  const auto t_trial = Clock::now();
  store::Query qt;
  qt.trial = 1;
  std::size_t trial_matches = 0;
  const store::ScanStats trial_scan = store::StoreReader(store_dir).query(
      qt, [&](const study::CellRecord&, const std::string&) {
        ++trial_matches;
      });
  const double trial_seconds = seconds_since(t_trial);
  std::cout << "query trial=1: " << trial_matches << " matches in "
            << fixed(trial_seconds * 1e3, 1) << " ms, "
            << trial_scan.segments_skipped << "/" << trial_scan.segments_total
            << " segments skipped unread\n";

  BenchJson json("store", settings);
  json.add("rows", static_cast<double>(rows));
  json.add("journal_bytes", static_cast<double>(import.journal_bytes));
  json.add("store_bytes", static_cast<double>(import.store_bytes));
  json.add("compression_ratio", ratio);
  json.add("import_mb_per_s", import_mb_s);
  json.add("segments", static_cast<double>(import.segments));
  json.add("query_jsonl_seconds", jsonl_seconds);
  json.add("query_store_seconds", store_seconds);
  json.add("query_speedup", speedup);
  json.add("query_segments_skipped", static_cast<double>(scan.segments_skipped));
  json.add("query_segments_total", static_cast<double>(scan.segments_total));
  json.add("trial_query_seconds", trial_seconds);
  json.add("trial_query_segments_skipped",
           static_cast<double>(trial_scan.segments_skipped));
  json.add("codec", store::zlib_available() ? "zlib" : "tlz");
  json.emit(settings);

  if (!keep) fs::remove_all(dir);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
