// E1 — §II / §III-D motivating example.
//
// Pneumonia dataset, ResNet50, 10% mislabelling.  The paper reports: golden
// accuracy 90%, unprotected faulty accuracy 55%, and per-technique AD of
// LS 5%, LC 29%, RL 15%, KD 13%, Ens 5% — label smoothing and ensembles are
// the most resilient.  This bench regenerates those rows.
#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace tdfm;
  using namespace tdfm::bench;

  CliParser cli;
  BenchSettings s;
  if (!parse_bench_flags(argc, argv, cli, s, /*trials=*/2, /*epochs=*/8,
                         /*scale=*/1.0, /*width=*/8)) {
    return 0;
  }
  print_banner("E1: motivating example — Pneumonia, ResNet50, 10% mislabelling", s);

  experiment::StudyConfig cfg =
      base_study(s, data::DatasetKind::kPneumoniaSim, models::Arch::kResNet50);
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 10.0}}};

  obs::Stopwatch watch;
  const experiment::StudyResult result = experiment::run_study(cfg);

  std::cout << experiment::render_ad_table(
      result, "AD, Pneumonia-sim / ResNet50 / 10% mislabelling");
  std::cout << "\n"
            << experiment::render_accuracy_table(
                   result, "accuracy under 10% mislabelling");
  std::cout << "\n" << experiment::render_winners(result);
  std::cout << "\npaper reference: golden 90%, faulty base 55% accuracy; AD "
               "LS 5%, LC 29%, RL 15%, KD 13%, Ens 5%\n";
  std::cout << "elapsed: " << tdfm::fixed(watch.elapsed_seconds(), 1) << "s\n";
  BenchJson json("motivating_example", s);
  add_study_headlines(json, result);
  json.add("elapsed_seconds", watch.elapsed_seconds());
  json.emit(s);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
