#include "faults/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"

namespace tdfm::faults {
namespace {

data::Dataset make_clean(std::size_t n = 100, std::size_t classes = 5) {
  data::Dataset ds;
  ds.name = "clean";
  ds.num_classes = classes;
  ds.images = Tensor(Shape{n, 1, 2, 2});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.labels[i] = static_cast<int>(i % classes);
    ds.images[i * 4] = static_cast<float>(i);  // origin marker
  }
  return ds;
}

TEST(FaultInjector, MislabellingChangesExactCount) {
  const auto clean = make_clean();
  Rng rng(1);
  InjectionReport report;
  const auto faulty =
      inject(clean, FaultSpec{FaultType::kMislabelling, 30.0}, rng, &report);
  EXPECT_EQ(report.mislabelled, 30U);
  EXPECT_EQ(faulty.size(), clean.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (faulty.labels[i] != clean.labels[i]) ++changed;
  }
  EXPECT_EQ(changed, 30U);  // every victim gets a *different* label
}

TEST(FaultInjector, MislabelledLabelsStayInRange) {
  const auto clean = make_clean(200, 3);
  Rng rng(2);
  const auto faulty =
      inject(clean, FaultSpec{FaultType::kMislabelling, 50.0}, rng);
  faulty.validate();
}

TEST(FaultInjector, MislabellingNeverAssignsSameLabel) {
  // Property over many draws: a victim's new label is never its old one.
  const auto clean = make_clean(50, 2);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto faulty =
        inject(clean, FaultSpec{FaultType::kMislabelling, 100.0}, rng);
    for (std::size_t i = 0; i < clean.size(); ++i) {
      ASSERT_NE(faulty.labels[i], clean.labels[i]);
    }
  }
}

TEST(FaultInjector, RepetitionAppendsCopies) {
  const auto clean = make_clean();
  Rng rng(3);
  InjectionReport report;
  const auto faulty =
      inject(clean, FaultSpec{FaultType::kRepetition, 20.0}, rng, &report);
  EXPECT_EQ(report.repeated, 20U);
  EXPECT_EQ(faulty.size(), 120U);
  // Every appended sample must be an exact copy of an original.
  for (std::size_t i = 100; i < 120; ++i) {
    const auto origin = static_cast<std::size_t>(faulty.images[i * 4]);
    EXPECT_LT(origin, 100U);
    EXPECT_EQ(faulty.labels[i], clean.labels[origin]);
  }
}

TEST(FaultInjector, RemovalDeletesExactCount) {
  const auto clean = make_clean();
  Rng rng(4);
  InjectionReport report;
  const auto faulty =
      inject(clean, FaultSpec{FaultType::kRemoval, 30.0}, rng, &report);
  EXPECT_EQ(report.removed, 30U);
  EXPECT_EQ(faulty.size(), 70U);
  // Survivors keep their original image/label pairing.
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    const auto origin = static_cast<std::size_t>(faulty.images[i * 4]);
    EXPECT_EQ(faulty.labels[i], clean.labels[origin]);
  }
}

TEST(FaultInjector, RemovalOfEverythingThrows) {
  const auto clean = make_clean(10);
  Rng rng(5);
  EXPECT_THROW((void)inject(clean, FaultSpec{FaultType::kRemoval, 100.0}, rng),
               InvariantError);
}

TEST(FaultInjector, ZeroPercentIsNoOp) {
  const auto clean = make_clean();
  for (const auto type :
       {FaultType::kMislabelling, FaultType::kRepetition, FaultType::kRemoval}) {
    Rng rng(6);
    const auto faulty = inject(clean, FaultSpec{type, 0.0}, rng);
    EXPECT_EQ(faulty.size(), clean.size());
    EXPECT_EQ(faulty.labels, clean.labels);
  }
}

TEST(FaultInjector, PercentOutOfRangeThrows) {
  const auto clean = make_clean();
  Rng rng(7);
  EXPECT_THROW(
      (void)inject(clean, FaultSpec{FaultType::kMislabelling, 101.0}, rng),
      InvariantError);
  EXPECT_THROW(
      (void)inject(clean, FaultSpec{FaultType::kMislabelling, -1.0}, rng),
      InvariantError);
}

TEST(FaultInjector, InputDatasetIsNeverModified) {
  const auto clean = make_clean();
  const auto labels_before = clean.labels;
  Rng rng(8);
  (void)inject(clean, FaultSpec{FaultType::kMislabelling, 50.0}, rng);
  EXPECT_EQ(clean.labels, labels_before);
  EXPECT_EQ(clean.size(), 100U);
}

TEST(FaultInjector, DeterministicGivenSameRngState) {
  const auto clean = make_clean();
  Rng a(9);
  Rng b(9);
  const auto fa = inject(clean, FaultSpec{FaultType::kMislabelling, 40.0}, a);
  const auto fb = inject(clean, FaultSpec{FaultType::kMislabelling, 40.0}, b);
  EXPECT_EQ(fa.labels, fb.labels);
}

TEST(FaultInjector, CombinedFaultsApplyInOrder) {
  const auto clean = make_clean();
  Rng rng(10);
  const std::vector<FaultSpec> campaign{
      FaultSpec{FaultType::kMislabelling, 20.0},
      FaultSpec{FaultType::kRemoval, 10.0},
  };
  InjectionReport report;
  const auto faulty = inject(clean, campaign, rng, &report);
  EXPECT_EQ(report.mislabelled, 20U);
  EXPECT_EQ(report.removed, 10U);
  EXPECT_EQ(faulty.size(), 90U);
  EXPECT_EQ(report.original_size, 100U);
  EXPECT_EQ(report.resulting_size, 90U);
}

TEST(FaultInjector, RepetitionThenRemovalUsesCurrentSize) {
  const auto clean = make_clean();
  Rng rng(11);
  const std::vector<FaultSpec> campaign{
      FaultSpec{FaultType::kRepetition, 50.0},  // 100 -> 150
      FaultSpec{FaultType::kRemoval, 10.0},     // 150 -> 135
  };
  const auto faulty = inject(clean, campaign, rng);
  EXPECT_EQ(faulty.size(), 135U);
}

TEST(FaultInjector, NameRoundTrip) {
  for (const auto type :
       {FaultType::kMislabelling, FaultType::kRepetition, FaultType::kRemoval}) {
    EXPECT_EQ(fault_from_name(fault_name(type)), type);
  }
  EXPECT_THROW((void)fault_from_name("bitflip"), ConfigError);
}

TEST(FaultSpecTest, ToStringFormat) {
  EXPECT_EQ((FaultSpec{FaultType::kMislabelling, 30.0}).to_string(),
            "mislabelling@30%");
  EXPECT_EQ((FaultSpec{FaultType::kRemoval, 10.0}).to_string(), "removal@10%");
}

TEST(FaultSpecTest, ToStringKeepsFractionalPercentages) {
  // Regression: the label used to round to the nearest integer, so sweep
  // points like 12.5% and 13% collided in reports and CSV keys.
  EXPECT_EQ((FaultSpec{FaultType::kMislabelling, 12.5}).to_string(),
            "mislabelling@12.5%");
  EXPECT_EQ((FaultSpec{FaultType::kRepetition, 0.1}).to_string(),
            "repetition@0.1%");
  // Whole numbers stay unpadded.
  EXPECT_EQ((FaultSpec{FaultType::kRemoval, 5.0}).to_string(), "removal@5%");
}

class MislabelRateTest : public ::testing::TestWithParam<double> {};

TEST_P(MislabelRateTest, AffectedCountMatchesRate) {
  const auto clean = make_clean(200, 4);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  InjectionReport report;
  (void)inject(clean, FaultSpec{FaultType::kMislabelling, GetParam()}, rng,
               &report);
  EXPECT_EQ(report.mislabelled,
            static_cast<std::size_t>(std::llround(200.0 * GetParam() / 100.0)));
}

INSTANTIATE_TEST_SUITE_P(Rates, MislabelRateTest,
                         ::testing::Values(5.0, 10.0, 25.0, 30.0, 50.0, 75.0));

}  // namespace
}  // namespace tdfm::faults
