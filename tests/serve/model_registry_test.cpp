// ModelRegistry: checkpoint-driven instantiation (v2 self-describing, v1
// with explicit arch), metadata mismatch rejection, version bumping, and
// replica consistency across slots.
#include "serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.hpp"
#include "nn/checkpoint.hpp"
#include "nn/trainer.hpp"

namespace tdfm::serve {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

models::ModelConfig small_config() {
  models::ModelConfig c;
  c.in_channels = 3;
  c.image_size = 16;
  c.num_classes = 5;
  c.width = 2;
  return c;
}

Tensor test_batch(std::size_t n, std::uint64_t seed = 7) {
  Rng rng(seed);
  Tensor batch{Shape{n, 3, 16, 16}};
  for (float& v : batch.flat()) v = rng.uniform(-1.0F, 1.0F);
  return batch;
}

TEST(ModelRegistry, LoadsSelfDescribingV2Checkpoint) {
  const models::ModelConfig config = small_config();
  Rng rng(11);
  auto fitted = models::build_model(models::Arch::kConvNet, config, rng);
  const TempFile file("registry_v2.ckpt");
  nn::save_checkpoint(*fitted, file.path,
                      models::checkpoint_meta(models::Arch::kConvNet, config));

  ModelRegistry registry(/*replica_slots=*/2);
  // No out-of-band configuration: the header names the architecture.
  EXPECT_EQ(registry.load("m", file.path), 1U);
  auto model = registry.current("m");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->version(), 1U);
  EXPECT_EQ(model->num_members(), 1U);
  EXPECT_EQ(model->num_classes(), 5U);

  // Every replica slot predicts exactly what the fitted network predicts.
  const Tensor batch = test_batch(6);
  const std::vector<int> want = nn::predict_batch(*fitted, batch);
  EXPECT_EQ(model->predict(batch, 0), want);
  EXPECT_EQ(model->predict(batch, 1), want);
}

TEST(ModelRegistry, V3QuantizeFlagAutoQuantizesOnLoad) {
  const models::ModelConfig config = small_config();
  Rng rng(12);
  auto fitted = models::build_model(models::Arch::kConvNet, config, rng);
  const TempFile file("registry_v3.ckpt");
  nn::CheckpointMeta meta =
      models::checkpoint_meta(models::Arch::kConvNet, config);
  meta.quantize = true;  // the checkpoint says "deploy me in q8_0 form"
  nn::save_checkpoint(*fitted, file.path, meta);

  ModelRegistry registry(/*replica_slots=*/2);
  // No quantize argument: the self-describing header alone must trigger it.
  EXPECT_EQ(registry.load("m", file.path), 1U);
  auto model = registry.current("m");
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->quantized());

  // The replicas serve the *quantized* predictions: identical across slots,
  // and matching a locally quantized copy of the same weights.
  auto twin = models::build_model(models::Arch::kConvNet, config, rng);
  twin->copy_weights_from(*fitted);
  twin->quantize_for_inference();
  const Tensor batch = test_batch(6);
  const std::vector<int> want = nn::predict_batch(*twin, batch);
  EXPECT_EQ(model->predict(batch, 0), want);
  EXPECT_EQ(model->predict(batch, 1), want);
}

TEST(ModelRegistry, V1CheckpointNeedsExplicitArch) {
  const models::ModelConfig config = small_config();
  Rng rng(12);
  auto fitted = models::build_model(models::Arch::kConvNet, config, rng);
  const TempFile file("registry_v1.ckpt");
  nn::save_checkpoint(*fitted, file.path);  // count-only v1

  ModelRegistry registry;
  EXPECT_THROW((void)registry.load("m", file.path), Error);  // no metadata
  EXPECT_EQ(registry.load("m", file.path, models::Arch::kConvNet, config), 1U);
  auto model = registry.current("m");
  ASSERT_NE(model, nullptr);
  const Tensor batch = test_batch(3);
  EXPECT_EQ(model->predict(batch, 0), nn::predict_batch(*fitted, batch));
}

TEST(ModelRegistry, TamperedArchMetadataRejected) {
  const models::ModelConfig config = small_config();
  Rng rng(13);
  auto fitted = models::build_model(models::Arch::kConvNet, config, rng);
  const TempFile file("registry_tampered.ckpt");
  // Claim the weights belong to VGG11: the registry builds a VGG11 and the
  // stored scalar count no longer matches its structure.
  nn::CheckpointMeta meta = models::checkpoint_meta(models::Arch::kConvNet, config);
  meta.arch = "VGG11";
  nn::save_checkpoint(*fitted, file.path, meta);

  ModelRegistry registry;
  EXPECT_THROW((void)registry.load("m", file.path), Error);
  EXPECT_EQ(registry.current("m"), nullptr);
}

TEST(ModelRegistry, UnknownArchNameRejected) {
  const models::ModelConfig config = small_config();
  Rng rng(14);
  auto fitted = models::build_model(models::Arch::kConvNet, config, rng);
  const TempFile file("registry_unknown.ckpt");
  nn::CheckpointMeta meta = models::checkpoint_meta(models::Arch::kConvNet, config);
  meta.arch = "NotANetwork";
  nn::save_checkpoint(*fitted, file.path, meta);
  ModelRegistry registry;
  EXPECT_THROW((void)registry.load("m", file.path), Error);
}

TEST(ModelRegistry, HotSwapBumpsVersionAndKeepsOldSnapshotAlive) {
  const models::ModelConfig config = small_config();
  Rng rng(15);
  auto v1_net = models::build_model(models::Arch::kConvNet, config, rng);
  auto v2_net = models::build_model(models::Arch::kConvNet, config, rng);
  const TempFile file("registry_swap.ckpt");
  const nn::CheckpointMeta meta =
      models::checkpoint_meta(models::Arch::kConvNet, config);

  ModelRegistry registry;
  nn::save_checkpoint(*v1_net, file.path, meta);
  EXPECT_EQ(registry.load("m", file.path), 1U);
  auto old_snapshot = registry.current("m");

  nn::save_checkpoint(*v2_net, file.path, meta);
  EXPECT_EQ(registry.load("m", file.path), 2U);
  auto new_snapshot = registry.current("m");
  ASSERT_NE(new_snapshot, nullptr);
  EXPECT_EQ(new_snapshot->version(), 2U);

  // An in-flight batch holding the old version still serves the old weights.
  ASSERT_NE(old_snapshot, nullptr);
  EXPECT_EQ(old_snapshot->version(), 1U);
  const Tensor batch = test_batch(4);
  EXPECT_EQ(old_snapshot->predict(batch, 0), nn::predict_batch(*v1_net, batch));
  EXPECT_EQ(new_snapshot->predict(batch, 0), nn::predict_batch(*v2_net, batch));
}

TEST(ModelRegistry, EnsembleCheckpointsServeAsOneLogicalModel) {
  const models::ModelConfig config = small_config();
  Rng rng(16);
  auto a = models::build_model(models::Arch::kConvNet, config, rng);
  auto b = models::build_model(models::Arch::kDeconvNet, config, rng);
  const TempFile fa("registry_ens_a.ckpt");
  const TempFile fb("registry_ens_b.ckpt");
  nn::save_checkpoint(*a, fa.path,
                      models::checkpoint_meta(models::Arch::kConvNet, config));
  nn::save_checkpoint(*b, fb.path,
                      models::checkpoint_meta(models::Arch::kDeconvNet, config));

  ModelRegistry registry;
  EXPECT_EQ(registry.load_ensemble("ens", {fa.path, fb.path}), 1U);
  auto model = registry.current("ens");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->num_members(), 2U);
  const Tensor batch = test_batch(4);
  const std::vector<int> preds = model->predict(batch, 0);
  EXPECT_EQ(preds.size(), 4U);
  for (const int p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5);
  }
}

TEST(ModelRegistry, HandleBeforeLoadSeesLaterVersions) {
  ModelRegistry registry;
  ModelRegistry::Handle handle = registry.handle("late");
  EXPECT_EQ(handle.snapshot(), nullptr);
  EXPECT_TRUE(registry.names().empty());  // empty entries are not listed

  const models::ModelConfig config = small_config();
  Rng rng(17);
  auto fitted = models::build_model(models::Arch::kConvNet, config, rng);
  const TempFile file("registry_late.ckpt");
  nn::save_checkpoint(*fitted, file.path,
                      models::checkpoint_meta(models::Arch::kConvNet, config));
  (void)registry.load("late", file.path);
  ASSERT_NE(handle.snapshot(), nullptr);
  EXPECT_EQ(handle.snapshot()->version(), 1U);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"late"});
}

}  // namespace
}  // namespace tdfm::serve
