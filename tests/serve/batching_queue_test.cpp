// BatchingQueue: flush rules (size vs delay), admission control, shutdown
// drain, and the deadline-expired-requests-never-reach-a-worker contract.
#include "serve/batching_queue.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace tdfm::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

Tensor sample_image(float value = 1.0F) {
  Tensor t{Shape{2}};
  t[0] = value;
  t[1] = -value;
  return t;
}

constexpr auto kNoDeadline = Clock::time_point::max();

TEST(BatchingQueue, TimeoutOnlyFlushUnderTrickleLoad) {
  BatchingConfig cfg;
  cfg.max_batch_size = 8;
  cfg.max_queue_delay_us = 2000;
  BatchingQueue queue(cfg);
  auto future = queue.push(sample_image(), kNoDeadline);
  // One pending request, far below max_batch_size: only the delay bound can
  // flush it.
  const auto t0 = Clock::now();
  const std::vector<Request> batch = queue.pop_batch();
  const auto waited = Clock::now() - t0;
  ASSERT_EQ(batch.size(), 1U);
  EXPECT_GE(Clock::now() - batch.front().enqueue, microseconds(2000));
  EXPECT_LT(waited, milliseconds(500));  // flushed promptly after the bound
  (void)future;
}

TEST(BatchingQueue, FlushOnExactMaxBatchSize) {
  BatchingConfig cfg;
  cfg.max_batch_size = 4;
  cfg.max_queue_delay_us = 60'000'000;  // delay can never be the trigger here
  BatchingQueue queue(cfg);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(queue.push(sample_image(), kNoDeadline));
  const std::vector<Request> batch = queue.pop_batch();
  EXPECT_EQ(batch.size(), 4U);
  EXPECT_EQ(queue.depth(), 0U);
}

TEST(BatchingQueue, BatchIsCappedAtMaxBatchSize) {
  BatchingConfig cfg;
  cfg.max_batch_size = 4;
  cfg.max_queue_delay_us = 60'000'000;
  cfg.max_queue_depth = 64;
  BatchingQueue queue(cfg);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 7; ++i) futures.push_back(queue.push(sample_image(), kNoDeadline));
  EXPECT_EQ(queue.pop_batch().size(), 4U);
  EXPECT_EQ(queue.depth(), 3U);
}

TEST(BatchingQueue, OverCapacityPushRejectedImmediately) {
  BatchingConfig cfg;
  cfg.max_batch_size = 2;
  cfg.max_queue_delay_us = 60'000'000;
  cfg.max_queue_depth = 2;
  BatchingQueue queue(cfg);
  auto a = queue.push(sample_image(), kNoDeadline);
  auto b = queue.push(sample_image(), kNoDeadline);
  auto rejected = queue.push(sample_image(), kNoDeadline);
  // The rejection resolves without any worker involvement.
  ASSERT_EQ(rejected.wait_for(milliseconds(0)), std::future_status::ready);
  EXPECT_EQ(rejected.get().status, Status::kRejectedQueueFull);
  EXPECT_EQ(queue.rejected_capacity(), 1U);
  EXPECT_EQ(queue.depth(), 2U);
  queue.shutdown();
}

TEST(BatchingQueue, ShutdownDrainsPendingWithRejectionStatus) {
  BatchingConfig cfg;
  cfg.max_batch_size = 8;
  cfg.max_queue_delay_us = 60'000'000;
  BatchingQueue queue(cfg);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(queue.push(sample_image(), kNoDeadline));
  queue.shutdown();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(milliseconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().status, Status::kRejectedShutdown);
  }
  // Drained and terminal: pop_batch returns the worker-exit signal, and
  // later pushes are rejected the same way.
  EXPECT_TRUE(queue.pop_batch().empty());
  auto late = queue.push(sample_image(), kNoDeadline);
  EXPECT_EQ(late.get().status, Status::kRejectedShutdown);
}

TEST(BatchingQueue, ShutdownWakesBlockedPopper) {
  BatchingConfig cfg;
  cfg.max_queue_delay_us = 60'000'000;
  BatchingQueue queue(cfg);
  std::thread popper([&] { EXPECT_TRUE(queue.pop_batch().empty()); });
  std::this_thread::sleep_for(milliseconds(20));
  queue.shutdown();
  popper.join();
}

TEST(BatchingQueue, ExpiredDeadlineNeverReachesAWorker) {
  BatchingConfig cfg;
  cfg.max_batch_size = 2;
  cfg.max_queue_delay_us = 60'000'000;
  BatchingQueue queue(cfg);
  // Expires while queued (after admission, before batch formation).
  auto doomed = queue.push(sample_image(), Clock::now() + microseconds(1));
  std::this_thread::sleep_for(milliseconds(5));
  auto ok1 = queue.push(sample_image(), kNoDeadline);
  auto ok2 = queue.push(sample_image(), kNoDeadline);
  const std::vector<Request> batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 2U);  // the expired request was dropped, not batched
  for (const Request& req : batch) EXPECT_GT(req.deadline, Clock::now());
  ASSERT_EQ(doomed.wait_for(milliseconds(0)), std::future_status::ready);
  EXPECT_EQ(doomed.get().status, Status::kRejectedDeadline);
  EXPECT_EQ(queue.rejected_deadline(), 1U);
  queue.shutdown();
}

TEST(BatchingQueue, AlreadyExpiredDeadlineRejectedAtAdmission) {
  BatchingQueue queue(BatchingConfig{});
  auto f = queue.push(sample_image(), Clock::now() - milliseconds(1));
  ASSERT_EQ(f.wait_for(milliseconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().status, Status::kRejectedDeadline);
  EXPECT_EQ(queue.depth(), 0U);
  queue.shutdown();
}

TEST(BatchingQueue, DepthRequiresAtLeastOneFullBatch) {
  BatchingConfig cfg;
  cfg.max_batch_size = 16;
  cfg.max_queue_depth = 8;
  EXPECT_THROW(BatchingQueue{cfg}, Error);
}

}  // namespace
}  // namespace tdfm::serve
