// InferenceEngine end-to-end: correct predictions, micro-batching under
// burst load, admission control, and the hot-swap-under-load guarantee (no
// request dropped, no request served by a partially-swapped model).  This
// suite is a primary TSan target (ctest -L serve on a TDFM_SANITIZE=thread
// build).
#include "serve/inference_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"

namespace tdfm::serve {
namespace {

using std::chrono::milliseconds;

constexpr std::size_t kClasses = 10;

/// Tiny Dense-only factory: serving is architecture-agnostic, and a 4->10
/// net keeps every forward microseconds-cheap even under TSan.
nn::NetworkFactory toy_factory() {
  return [](Rng& rng) {
    auto body = std::make_unique<nn::Sequential>();
    body->emplace<nn::Dense>(4, kClasses, rng);
    return std::make_unique<nn::Network>("toy", std::move(body), kClasses);
  };
}

/// The fitted network of version `v` — rebuilt bit-identically on demand so
/// tests can both install it and precompute its expected predictions.
std::unique_ptr<nn::Network> version_net(std::uint64_t v) {
  Rng rng(1000 + v);
  return toy_factory()(rng);
}

Tensor probe_image() {
  Tensor t{Shape{4}};
  t[0] = 0.3F;
  t[1] = -1.2F;
  t[2] = 0.7F;
  t[3] = 2.0F;
  return t;
}

/// What version v predicts for the probe image.
int expected_class(std::uint64_t v) {
  auto net = version_net(v);
  Tensor batch{Shape{1, 4}};
  for (std::size_t i = 0; i < 4; ++i) batch[i] = probe_image()[i];
  return nn::predict_batch(*net, batch)[0];
}

std::uint64_t install_version(ModelRegistry& registry, const std::string& name,
                              std::uint64_t v) {
  std::vector<MemberInit> members;
  members.push_back(MemberInit{toy_factory(), version_net(v)});
  return registry.install(name, std::move(members));
}

TEST(InferenceEngine, ServesCorrectPredictions) {
  ModelRegistry registry(/*replica_slots=*/2);
  ASSERT_EQ(install_version(registry, "toy", 1), 1U);
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batching.max_queue_delay_us = 200;
  InferenceEngine engine(registry, "toy", cfg);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(engine.submit(probe_image()));
  const int want = expected_class(1);
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk) << status_name(r.status);
    EXPECT_EQ(r.predicted_class, want);
    EXPECT_EQ(r.model_version, 1U);
    EXPECT_GE(r.batch_size, 1U);
    EXPECT_GE(r.compute_us, 0.0);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 32U);
  EXPECT_EQ(stats.served, 32U);
  EXPECT_GE(stats.batches, 1U);
}

TEST(InferenceEngine, BurstLoadFormsMicroBatches) {
  ModelRegistry registry(/*replica_slots=*/1);
  install_version(registry, "toy", 1);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.batching.max_batch_size = 8;
  cfg.batching.max_queue_delay_us = 5000;
  InferenceEngine engine(registry, "toy", cfg);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(engine.submit(probe_image()));
  std::size_t max_batch = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    max_batch = std::max(max_batch, r.batch_size);
    EXPECT_LE(r.batch_size, 8U);
  }
  // A 64-request burst against one worker must have coalesced somewhere.
  EXPECT_GT(max_batch, 1U);
  EXPECT_LT(engine.stats().batches, 64U);
}

TEST(InferenceEngine, SingleWorkerCanFanBatchesAcrossThePool) {
  const std::size_t prev_threads = core::ThreadPool::global_threads();
  core::ThreadPool::set_global_threads(2);
  {
    ModelRegistry registry(/*replica_slots=*/1);
    install_version(registry, "toy", 1);
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.use_thread_pool = true;  // intra-batch parallelism mode
    cfg.batching.max_batch_size = 8;
    cfg.batching.max_queue_delay_us = 500;
    InferenceEngine engine(registry, "toy", cfg);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 48; ++i) futures.push_back(engine.submit(probe_image()));
    const int want = expected_class(1);
    for (auto& f : futures) {
      const Response r = f.get();
      ASSERT_EQ(r.status, Status::kOk);
      EXPECT_EQ(r.predicted_class, want);  // bit-identical across thread counts
    }
  }
  core::ThreadPool::set_global_threads(prev_threads);
}

TEST(InferenceEngine, PoolModeRequiresSingleWorker) {
  ModelRegistry registry(/*replica_slots=*/2);
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.use_thread_pool = true;
  EXPECT_THROW(InferenceEngine(registry, "toy", cfg), Error);
}

TEST(InferenceEngine, NoModelLoadedRejectsCleanly) {
  ModelRegistry registry;
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.batching.max_queue_delay_us = 100;
  InferenceEngine engine(registry, "ghost", cfg);
  const Response r = engine.submit(probe_image()).get();
  EXPECT_EQ(r.status, Status::kRejectedNoModel);
  EXPECT_EQ(engine.stats().rejected_no_model, 1U);
}

TEST(InferenceEngine, DefaultDeadlineRejectsStaleRequests) {
  ModelRegistry registry;
  install_version(registry, "toy", 1);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.default_deadline_us = 1;  // effectively "already late"
  cfg.batching.max_queue_delay_us = 5000;
  InferenceEngine engine(registry, "toy", cfg);
  std::this_thread::sleep_for(milliseconds(1));
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.submit(probe_image()));
  std::size_t rejected = 0;
  for (auto& f : futures) {
    if (f.get().status == Status::kRejectedDeadline) ++rejected;
  }
  EXPECT_GT(rejected, 0U);
  EXPECT_EQ(engine.stats().rejected_deadline, rejected);
}

TEST(InferenceEngine, ShutdownResolvesEveryPendingFuture) {
  ModelRegistry registry;
  install_version(registry, "toy", 1);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.batching.max_queue_delay_us = 60'000'000;
  cfg.batching.max_batch_size = 128;  // never fills: requests sit pending
  cfg.batching.max_queue_depth = 256;
  auto engine = std::make_unique<InferenceEngine>(registry, "toy", cfg);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine->submit(probe_image()));
  engine.reset();  // destructor = shutdown + join
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(milliseconds(0)), std::future_status::ready);
    const Status s = f.get().status;
    EXPECT_TRUE(s == Status::kOk || s == Status::kRejectedShutdown)
        << status_name(s);
  }
}

// drain() is the graceful counterpart of shutdown(): admission stops, but
// every already-accepted request is *served*.  The queue settings here make
// the distinction observable — the batch never fills and the delay bound is
// effectively infinite, so only drain's flush-immediately rule can get the
// backlog to a worker.  Shutdown under the same settings rejects (see
// ShutdownResolvesEveryPendingFuture, which accepts either status).
TEST(InferenceEngine, DrainServesEveryAcceptedRequest) {
  ModelRegistry registry;
  install_version(registry, "toy", 1);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.batching.max_queue_delay_us = 60'000'000;
  cfg.batching.max_batch_size = 128;  // never fills: requests sit pending
  cfg.batching.max_queue_depth = 256;
  InferenceEngine engine(registry, "toy", cfg);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine.submit(probe_image()));
  engine.drain();

  const int want = expected_class(1);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(milliseconds(0)), std::future_status::ready);
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk) << status_name(r.status);
    EXPECT_EQ(r.predicted_class, want);
  }
  EXPECT_EQ(engine.stats().served, 16U);

  // Once drained the engine behaves like a shut-down one: new submissions
  // are rejected, and both teardown calls stay idempotent.
  EXPECT_EQ(engine.submit(probe_image()).get().status,
            Status::kRejectedShutdown);
  engine.drain();
  engine.shutdown();
}

// The acceptance-criteria test: versions are swapped while clients hammer
// the engine.  Every request must terminate (prediction or explicit
// rejection), and every prediction must match what the *claimed* version
// computes for the probe image — a batch served by a half-swapped model
// would violate that.  Metrics stay enabled so the obs hot path is
// exercised by the same TSan run.
TEST(InferenceEngine, HotSwapUnderLoadDropsNothingAndNeverMixesVersions) {
  const bool metrics_were_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);

  constexpr std::uint64_t kVersions = 6;
  int expected[kVersions + 1] = {};
  for (std::uint64_t v = 1; v <= kVersions; ++v) {
    expected[v] = expected_class(v);
  }

  ModelRegistry registry(/*replica_slots=*/3);
  install_version(registry, "toy", 1);
  EngineConfig cfg;
  cfg.workers = 3;
  cfg.batching.max_batch_size = 8;
  cfg.batching.max_queue_delay_us = 200;
  cfg.batching.max_queue_depth = 4096;
  InferenceEngine engine(registry, "toy", cfg);

  std::thread swapper([&] {
    for (std::uint64_t v = 2; v <= kVersions; ++v) {
      std::this_thread::sleep_for(milliseconds(5));
      EXPECT_EQ(install_version(registry, "toy", v), v);
    }
  });

  constexpr int kClients = 2;
  constexpr int kPerClient = 400;
  std::vector<std::vector<std::future<Response>>> futures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      futures[c].reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        futures[c].push_back(engine.submit(probe_image()));
        if (i % 16 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  for (auto& t : clients) t.join();
  swapper.join();

  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  for (auto& client_futures : futures) {
    for (auto& f : client_futures) {
      const Response r = f.get();  // every future terminates
      if (r.status == Status::kOk) {
        ++ok;
        ASSERT_GE(r.model_version, 1U);
        ASSERT_LE(r.model_version, kVersions);
        // A fully-swapped model predicts exactly its version's class.
        EXPECT_EQ(r.predicted_class, expected[r.model_version])
            << "request served by a partially-swapped model (claimed v"
            << r.model_version << ")";
      } else {
        ++rejected;
      }
    }
  }
  EXPECT_EQ(ok + rejected, kClients * kPerClient);  // nothing dropped
  EXPECT_GT(ok, 0U);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.served, ok);

  engine.shutdown();
  obs::set_metrics_enabled(metrics_were_enabled);
}

}  // namespace
}  // namespace tdfm::serve
