// Bit-for-bit determinism across thread counts.
//
// The thread pool's contract (core/thread_pool.hpp) is that parallelism may
// change only wall-clock, never results: GEMM partitions rows without
// changing per-row arithmetic, convolution reduces per-image gradient slices
// in fixed image order, and the ensemble forks its RNG streams serially
// before training members concurrently.  These tests pin that contract by
// comparing exact floats between a 1-thread and a 4-thread run (the pool is
// deliberately oversubscribed relative to small CI machines — determinism
// must hold regardless of physical cores).
#include <gtest/gtest.h>

#include <vector>

#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/ensemble.hpp"
#include "models/model_zoo.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/init.hpp"

namespace tdfm {
namespace {

// Restores the global pool on scope exit so test order doesn't matter.
struct PoolGuard {
  std::size_t previous = core::ThreadPool::global_threads();
  ~PoolGuard() { core::ThreadPool::set_global_threads(previous); }
};

TEST(ThreadingDeterminism, GemmKernelsAreThreadCountInvariant) {
  PoolGuard guard;
  const std::size_t m = 37;
  const std::size_t n = 29;
  const std::size_t k = 41;
  Rng rng(3);
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();

  const auto run_all = [&] {
    std::vector<float> nn_out(m * n);
    std::vector<float> nt_out(m * k);   // B as [k x n] -> A[m x n] * B^T
    std::vector<float> tn_out(k * n);   // A as [m x k] -> A^T * B'[m x n]
    gemm_nn(m, n, k, a.data(), b.data(), nn_out.data());
    gemm_nt(m, k, n, nn_out.data(), b.data(), nt_out.data());
    gemm_tn(k, n, m, a.data(), nn_out.data(), tn_out.data());
    nn_out.insert(nn_out.end(), nt_out.begin(), nt_out.end());
    nn_out.insert(nn_out.end(), tn_out.begin(), tn_out.end());
    return nn_out;
  };

  core::ThreadPool::set_global_threads(1);
  const auto serial = run_all();
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    core::ThreadPool::set_global_threads(threads);
    EXPECT_EQ(run_all(), serial) << threads << " threads";
  }
}

TEST(ThreadingDeterminism, ConvForwardBackwardIsThreadCountInvariant) {
  PoolGuard guard;
  const auto run = [] {
    Rng rng(17);
    nn::Conv2D conv(3, 6, 8, 8, 3, 1, 1, rng);
    Tensor x(Shape{9, 3, 8, 8});  // odd batch: uneven chunks at 4 threads
    uniform_init(x, -1.0F, 1.0F, rng);
    const Tensor y = conv.forward(x, true);
    const Tensor gx = conv.backward(y);
    std::vector<float> all(y.flat().begin(), y.flat().end());
    all.insert(all.end(), gx.flat().begin(), gx.flat().end());
    for (auto* p : conv.parameters()) {
      all.insert(all.end(), p->grad.flat().begin(), p->grad.flat().end());
    }
    return all;
  };
  core::ThreadPool::set_global_threads(1);
  const auto serial = run();
  core::ThreadPool::set_global_threads(4);
  EXPECT_EQ(run(), serial);
}

TEST(ThreadingDeterminism, DepthwiseConvIsThreadCountInvariant) {
  PoolGuard guard;
  const auto run = [] {
    Rng rng(19);
    nn::DepthwiseConv2D conv(4, 8, 8, 3, 1, 1, rng);
    Tensor x(Shape{7, 4, 8, 8});
    uniform_init(x, -1.0F, 1.0F, rng);
    const Tensor y = conv.forward(x, true);
    const Tensor gx = conv.backward(y);
    std::vector<float> all(y.flat().begin(), y.flat().end());
    all.insert(all.end(), gx.flat().begin(), gx.flat().end());
    for (auto* p : conv.parameters()) {
      all.insert(all.end(), p->grad.flat().begin(), p->grad.flat().end());
    }
    return all;
  };
  core::ThreadPool::set_global_threads(1);
  const auto serial = run();
  core::ThreadPool::set_global_threads(4);
  EXPECT_EQ(run(), serial);
}

// The flag-level guarantee: a ConvNet trained with --threads 1 and
// --threads 4 ends with identical weights and identical test accuracy.
// Runs with metrics AND tracing enabled — the obs instrumentation writes
// only to side buffers, so it must not perturb a single bit of training.
TEST(ThreadingDeterminism, TrainedConvNetIsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  struct ObsGuard {
    bool metrics = obs::metrics_enabled();
    bool trace = obs::trace_enabled();
    ~ObsGuard() {
      obs::set_metrics_enabled(metrics);
      obs::set_trace_enabled(trace);
      obs::clear_trace_events();
    }
  } obs_guard;
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kGtsrbSim;
  spec.scale = 0.05;
  const auto pair = data::generate(spec);
  models::ModelConfig cfg = models::ModelConfig::for_dataset(spec);
  cfg.width = 4;
  const Tensor targets = nn::one_hot(pair.train.labels, pair.train.num_classes);

  const auto train = [&](std::size_t threads) {
    nn::TrainOptions opts;
    opts.epochs = 2;
    opts.batch_size = 16;
    opts.auto_tune = false;
    opts.threads = threads;  // the --threads flag path through TrainOptions
    Rng build_rng(7);
    auto net = models::build_model(models::Arch::kConvNet, cfg, build_rng);
    nn::CrossEntropyLoss ce;
    nn::Trainer trainer(opts);
    Rng fit_rng(9);
    trainer.fit(*net, pair.train.images,
                [&](const Tensor& logits, std::span<const std::size_t> idx,
                    Tensor& grad) {
                  return ce.compute(logits, nn::Trainer::gather(targets, idx), grad);
                },
                fit_rng);
    const std::vector<int> preds = nn::predict_classes(*net, pair.test.images);
    const double acc = metrics::accuracy(preds, pair.test.labels);
    return std::make_pair(net->save_weights(), acc);
  };

  const auto [weights_1, acc_1] = train(1);
  const auto [weights_4, acc_4] = train(4);
  ASSERT_EQ(weights_1.size(), weights_4.size());
  EXPECT_EQ(weights_1, weights_4);  // exact float equality, no tolerance
  EXPECT_EQ(acc_1, acc_4);
}

// Ensemble members train concurrently; forked RNG streams and per-member
// models must make the committee's votes independent of the thread count.
TEST(ThreadingDeterminism, EnsemblePredictionsAreThreadCountInvariant) {
  PoolGuard guard;
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kPneumoniaSim;
  const auto pair = data::generate(spec);

  const auto fit_predict = [&](std::size_t threads) {
    core::ThreadPool::set_global_threads(threads);
    mitigation::EnsembleTechnique ens(
        {models::Arch::kConvNet, models::Arch::kConvNet, models::Arch::kConvNet});
    mitigation::FitContext ctx;
    ctx.train = &pair.train;
    ctx.model_config = models::ModelConfig::for_dataset(spec, /*width=*/4);
    ctx.train_opts.epochs = 1;
    ctx.train_opts.batch_size = 16;
    ctx.train_opts.auto_tune = false;
    Rng rng(23);
    ctx.rng = &rng;
    const auto clf = ens.fit(ctx);
    return clf->predict(pair.test.images);
  };

  const auto serial = fit_predict(1);
  EXPECT_EQ(fit_predict(4), serial);
}

}  // namespace
}  // namespace tdfm
