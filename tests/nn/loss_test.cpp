#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.hpp"
#include "tensor/tensor_ops.hpp"

namespace tdfm::nn {
namespace {

using test::random_tensor;

Tensor logits_3x4(Rng& rng) { return random_tensor(Shape{3, 4}, rng, -2.0F, 2.0F); }

/// Finite-difference check of a loss's gradient.
void check_loss_gradient(Loss& loss, const Tensor& logits, const Tensor& targets,
                         float eps = 1e-2F, float tol = 2e-3F) {
  Tensor z = logits;
  Tensor grad;
  (void)loss.compute(z, targets, grad);
  for (std::size_t i = 0; i < z.numel(); ++i) {
    const float original = z[i];
    Tensor scratch;
    z[i] = original + eps;
    const double up = loss.compute(z, targets, scratch);
    z[i] = original - eps;
    const double down = loss.compute(z, targets, scratch);
    z[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, tol + 0.05 * std::fabs(numeric))
        << loss.name() << " grad mismatch at " << i;
  }
}

TEST(OneHot, EncodesAndValidates) {
  const std::vector<int> labels{0, 2, 1};
  const Tensor t = one_hot(labels, 3);
  EXPECT_EQ(t.shape(), (Shape{3, 3}));
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(1, 2), 1.0F);
  EXPECT_EQ(t.at(2, 1), 1.0F);
  EXPECT_DOUBLE_EQ(sum(t), 3.0);
  const std::vector<int> bad{3};
  EXPECT_THROW((void)one_hot(bad, 3), InvariantError);
}

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  CrossEntropyLoss ce;
  const Tensor logits(Shape{2, 4});  // all zeros -> uniform softmax
  const std::vector<int> labels{1, 3};
  Tensor grad;
  const double l = ce.compute(logits, one_hot(labels, 4), grad);
  EXPECT_NEAR(l, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  CrossEntropyLoss ce;
  Tensor logits(Shape{1, 3});
  logits[0] = 20.0F;
  Tensor grad;
  const double l = ce.compute(logits, one_hot(std::vector<int>{0}, 3), grad);
  EXPECT_LT(l, 1e-4);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(200);
  CrossEntropyLoss ce;
  check_loss_gradient(ce, logits_3x4(rng), one_hot(std::vector<int>{0, 1, 3}, 4));
}

TEST(CrossEntropy, SoftTargetsGradientIsPMinusT) {
  CrossEntropyLoss ce;
  Tensor logits(Shape{1, 3});
  Tensor targets(Shape{1, 3});
  targets[0] = 0.2F;
  targets[1] = 0.5F;
  targets[2] = 0.3F;
  Tensor grad;
  (void)ce.compute(logits, targets, grad);
  // Uniform softmax = 1/3 each; batch of 1.
  EXPECT_NEAR(grad[0], 1.0F / 3 - 0.2F, 1e-5F);
  EXPECT_NEAR(grad[1], 1.0F / 3 - 0.5F, 1e-5F);
}

TEST(CrossEntropy, ShapeMismatchThrows) {
  CrossEntropyLoss ce;
  Tensor grad;
  EXPECT_THROW(
      (void)ce.compute(Tensor(Shape{2, 3}), Tensor(Shape{2, 4}), grad),
      InvariantError);
}

TEST(SmoothedCE, EquivalentToManualSmoothing) {
  Rng rng(201);
  const Tensor logits = logits_3x4(rng);
  const std::vector<int> labels{0, 2, 3};
  const Tensor hard = one_hot(labels, 4);
  SmoothedCrossEntropyLoss ls(0.2F);
  Tensor g1;
  const double l1 = ls.compute(logits, hard, g1);
  // Manual: q = 0.8 * t + 0.05.
  Tensor q = scale(hard, 0.8F);
  for (auto& v : q.flat()) v += 0.05F;
  CrossEntropyLoss ce;
  Tensor g2;
  const double l2 = ce.compute(logits, q, g2);
  EXPECT_NEAR(l1, l2, 1e-6);
  for (std::size_t i = 0; i < g1.numel(); ++i) EXPECT_NEAR(g1[i], g2[i], 1e-6F);
}

TEST(SmoothedCE, RejectsBadAlpha) {
  EXPECT_THROW(SmoothedCrossEntropyLoss(-0.1F), InvariantError);
  EXPECT_THROW(SmoothedCrossEntropyLoss(1.0F), InvariantError);
}

TEST(LabelRelaxation, ZeroLossInsideCredalSet) {
  LabelRelaxationLoss lr(0.2F);
  Tensor logits(Shape{1, 3});
  logits[0] = 10.0F;  // softmax ~ [1, 0, 0]; p_y > 1 - alpha
  Tensor grad;
  const double l = lr.compute(logits, one_hot(std::vector<int>{0}, 3), grad);
  EXPECT_EQ(l, 0.0);
  for (std::size_t i = 0; i < grad.numel(); ++i) EXPECT_EQ(grad[i], 0.0F);
}

TEST(LabelRelaxation, PositiveLossOutsideCredalSet) {
  LabelRelaxationLoss lr(0.1F);
  Tensor logits(Shape{1, 3});  // uniform: p_y = 1/3 < 0.9
  Tensor grad;
  const double l = lr.compute(logits, one_hot(std::vector<int>{0}, 3), grad);
  EXPECT_GT(l, 0.0);
  EXPECT_LT(grad[0], 0.0F);  // pull the labelled class up
}

TEST(LabelRelaxation, LowerLossThanCEOnConfidentCorrect) {
  // Relaxation should never penalise confident-enough correct predictions,
  // unlike CE which keeps pushing.
  LabelRelaxationLoss lr(0.1F);
  CrossEntropyLoss ce;
  Tensor logits(Shape{1, 3});
  logits[0] = 4.0F;  // p0 ~ 0.96
  const Tensor t = one_hot(std::vector<int>{0}, 3);
  Tensor g;
  EXPECT_LT(lr.compute(logits, t, g), ce.compute(logits, t, g) + 1e-9);
}

TEST(NCE, BoundedAndGradientCorrect) {
  Rng rng(202);
  NCELoss nce;
  const Tensor logits = logits_3x4(rng);
  const Tensor targets = one_hot(std::vector<int>{1, 0, 2}, 4);
  Tensor grad;
  const double l = nce.compute(logits, targets, grad);
  // NCE is normalised into (0, 1) per sample.
  EXPECT_GT(l, 0.0);
  EXPECT_LT(l, 1.0);
  check_loss_gradient(nce, logits, targets, 1e-2F, 3e-3F);
}

TEST(RCE, ClosedFormForOneHotTargets) {
  // For one-hot targets, RCE = -A * (1 - p_y) with A = log-zero clamp (-4).
  RCELoss rce(-4.0F);
  Rng rng(203);
  const Tensor logits = logits_3x4(rng);
  const std::vector<int> labels{2, 0, 1};
  Tensor grad;
  const double l = rce.compute(logits, one_hot(labels, 4), grad);
  const Tensor probs = softmax_rows(logits);
  double expected = 0.0;
  for (std::size_t b = 0; b < 3; ++b) {
    expected += 4.0 * (1.0 - probs.at(b, static_cast<std::size_t>(labels[b])));
  }
  EXPECT_NEAR(l, expected / 3.0, 1e-5);
}

TEST(RCE, GradientMatchesFiniteDifference) {
  Rng rng(204);
  RCELoss rce;
  check_loss_gradient(rce, logits_3x4(rng), one_hot(std::vector<int>{0, 3, 1}, 4),
                      1e-2F, 4e-3F);
}

TEST(APL, IsWeightedSumOfParts) {
  Rng rng(205);
  const Tensor logits = logits_3x4(rng);
  const Tensor targets = one_hot(std::vector<int>{1, 2, 0}, 4);
  NCELoss nce;
  RCELoss rce;
  APLLoss apl(2.0F, 0.5F);
  Tensor gn, gr, ga;
  const double ln = nce.compute(logits, targets, gn);
  const double lr = rce.compute(logits, targets, gr);
  const double la = apl.compute(logits, targets, ga);
  EXPECT_NEAR(la, 2.0 * ln + 0.5 * lr, 1e-6);
  for (std::size_t i = 0; i < ga.numel(); ++i) {
    EXPECT_NEAR(ga[i], 2.0F * gn[i] + 0.5F * gr[i], 1e-6F);
  }
}

TEST(APL, RejectsDegenerateWeights) {
  EXPECT_THROW(APLLoss(-1.0F, 1.0F), InvariantError);
  EXPECT_THROW(APLLoss(0.0F, 0.0F), InvariantError);
}

TEST(Distillation, AlphaZeroEqualsPlainCE) {
  Rng rng(206);
  const Tensor logits = logits_3x4(rng);
  const Tensor hard = one_hot(std::vector<int>{0, 1, 2}, 4);
  const Tensor teacher = softmax_rows(logits_3x4(rng), 4.0F);
  DistillationLoss kd(0.0F, 4.0F);
  CrossEntropyLoss ce;
  Tensor g1, g2;
  EXPECT_NEAR(kd.compute(logits, hard, teacher, g1), ce.compute(logits, hard, g2),
              1e-6);
  for (std::size_t i = 0; i < g1.numel(); ++i) EXPECT_NEAR(g1[i], g2[i], 1e-6F);
}

TEST(Distillation, MatchingTeacherGivesSmallSoftGradient) {
  // When the student already equals the teacher, the soft term's gradient
  // vanishes and only the hard term remains.
  Tensor logits(Shape{1, 3});
  logits[0] = 1.0F;
  logits[1] = 0.5F;
  const Tensor teacher = softmax_rows(logits, 2.0F);
  DistillationLoss kd(1.0F, 2.0F);  // all weight on soft term
  Tensor grad;
  (void)kd.compute(logits, one_hot(std::vector<int>{0}, 3), teacher, grad);
  for (std::size_t i = 0; i < grad.numel(); ++i) EXPECT_NEAR(grad[i], 0.0F, 1e-5F);
}

TEST(Distillation, GradientMatchesFiniteDifference) {
  Rng rng(207);
  const Tensor hard = one_hot(std::vector<int>{2, 0, 1}, 4);
  const Tensor teacher = softmax_rows(logits_3x4(rng), 3.0F);
  DistillationLoss kd(0.7F, 3.0F);
  Tensor z = logits_3x4(rng);
  Tensor grad;
  (void)kd.compute(z, hard, teacher, grad);
  for (std::size_t i = 0; i < z.numel(); ++i) {
    const float original = z[i];
    Tensor scratch;
    z[i] = original + 1e-2F;
    const double up = kd.compute(z, hard, teacher, scratch);
    z[i] = original - 1e-2F;
    const double down = kd.compute(z, hard, teacher, scratch);
    z[i] = original;
    EXPECT_NEAR(grad[i], (up - down) / 2e-2, 4e-3);
  }
}

TEST(Distillation, RejectsBadHyperparameters) {
  EXPECT_THROW(DistillationLoss(1.5F, 2.0F), InvariantError);
  EXPECT_THROW(DistillationLoss(0.5F, 0.5F), InvariantError);
}

class NoiseRobustnessTest : public ::testing::TestWithParam<double> {};

// Property from Ghosh et al. [47] / Ma et al. [18]: symmetric losses change
// less than CE when labels flip.  We check the *loss surface* property that
// motivated APL: total loss over all K possible labels is (nearly) constant
// for RCE, but not for CE.
TEST_P(NoiseRobustnessTest, RCESymmetryProperty) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  Tensor logits(Shape{1, 4});
  uniform_init(logits, -static_cast<float>(GetParam()),
               static_cast<float>(GetParam()), rng);
  RCELoss rce;
  CrossEntropyLoss ce;
  double rce_total = 0.0;
  double ce_min = 1e18, ce_max = -1e18;
  for (int label = 0; label < 4; ++label) {
    Tensor grad;
    const Tensor t = one_hot(std::vector<int>{label}, 4);
    rce_total += rce.compute(logits, t, grad);
    const double c = ce.compute(logits, t, grad);
    ce_min = std::min(ce_min, c);
    ce_max = std::max(ce_max, c);
  }
  // Sum over labels of RCE = -A * (K - 1) exactly: constant 4 * 3 = 12.
  EXPECT_NEAR(rce_total, 12.0, 1e-4);
  // CE has no such symmetry for non-uniform logits.
  if (GetParam() > 0.5) EXPECT_GT(ce_max - ce_min, 0.1);
}

INSTANTIATE_TEST_SUITE_P(LogitScales, NoiseRobustnessTest,
                         ::testing::Values(0.1, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace tdfm::nn
