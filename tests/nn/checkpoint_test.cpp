#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace tdfm::nn {
namespace {

std::unique_ptr<Network> make_net(Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 8, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8, 3, rng);
  return std::make_unique<Network>("toy", std::move(body), 3);
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Checkpoint, RoundTripRestoresWeights) {
  Rng rng(1);
  auto a = make_net(rng);
  auto b = make_net(rng);  // different random init
  const TempFile file("ckpt_roundtrip.bin");
  save_checkpoint(*a, file.path);
  ASSERT_NE(a->save_weights(), b->save_weights());
  load_checkpoint(*b, file.path);
  EXPECT_EQ(a->save_weights(), b->save_weights());
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(2);
  auto net = make_net(rng);
  EXPECT_THROW(load_checkpoint(*net, "/nonexistent/dir/x.bin"), Error);
}

TEST(Checkpoint, BadMagicRejected) {
  Rng rng(3);
  auto net = make_net(rng);
  const TempFile file("ckpt_badmagic.bin");
  std::ofstream(file.path, std::ios::binary) << "definitely not a checkpoint";
  EXPECT_THROW(load_checkpoint(*net, file.path), Error);
}

TEST(Checkpoint, TruncatedFileRejected) {
  Rng rng(4);
  auto net = make_net(rng);
  const TempFile file("ckpt_trunc.bin");
  save_checkpoint(*net, file.path);
  // Chop off the last 16 bytes.
  std::ifstream in(file.path, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(file.path, std::ios::binary | std::ios::trunc)
      << blob.substr(0, blob.size() - 16);
  EXPECT_THROW(load_checkpoint(*net, file.path), Error);
}

TEST(Checkpoint, WrongArchitectureRejected) {
  Rng rng(5);
  auto a = make_net(rng);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 2, rng);  // structurally different
  Network small("small", std::move(body), 2);
  const TempFile file("ckpt_mismatch.bin");
  save_checkpoint(*a, file.path);
  EXPECT_THROW(load_checkpoint(small, file.path), Error);
}

}  // namespace
}  // namespace tdfm::nn
