#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace tdfm::nn {
namespace {

std::unique_ptr<Network> make_net(Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 8, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8, 3, rng);
  return std::make_unique<Network>("toy", std::move(body), 3);
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Checkpoint, RoundTripRestoresWeights) {
  Rng rng(1);
  auto a = make_net(rng);
  auto b = make_net(rng);  // different random init
  const TempFile file("ckpt_roundtrip.bin");
  save_checkpoint(*a, file.path);
  ASSERT_NE(a->save_weights(), b->save_weights());
  load_checkpoint(*b, file.path);
  EXPECT_EQ(a->save_weights(), b->save_weights());
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(2);
  auto net = make_net(rng);
  EXPECT_THROW(load_checkpoint(*net, "/nonexistent/dir/x.bin"), Error);
}

TEST(Checkpoint, BadMagicRejected) {
  Rng rng(3);
  auto net = make_net(rng);
  const TempFile file("ckpt_badmagic.bin");
  std::ofstream(file.path, std::ios::binary) << "definitely not a checkpoint";
  EXPECT_THROW(load_checkpoint(*net, file.path), Error);
}

TEST(Checkpoint, TruncatedFileRejected) {
  Rng rng(4);
  auto net = make_net(rng);
  const TempFile file("ckpt_trunc.bin");
  save_checkpoint(*net, file.path);
  // Chop off the last 16 bytes.
  std::ifstream in(file.path, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(file.path, std::ios::binary | std::ios::trunc)
      << blob.substr(0, blob.size() - 16);
  EXPECT_THROW(load_checkpoint(*net, file.path), Error);
}

CheckpointMeta toy_meta() {
  CheckpointMeta meta;
  meta.arch = "Toy";
  meta.width = 1;
  meta.in_channels = 4;
  meta.image_size = 1;
  meta.num_classes = 3;
  return meta;
}

TEST(Checkpoint, V2RoundTripRestoresWeightsAndMeta) {
  Rng rng(6);
  auto a = make_net(rng);
  auto b = make_net(rng);
  const TempFile file("ckpt_v2_roundtrip.bin");
  save_checkpoint(*a, file.path, toy_meta());
  EXPECT_EQ(checkpoint_format_version(file.path), 2U);
  EXPECT_EQ(read_checkpoint_meta(file.path), toy_meta());
  load_checkpoint(*b, file.path);  // same loader handles both formats
  EXPECT_EQ(a->save_weights(), b->save_weights());
}

TEST(Checkpoint, V1FileCarriesNoMeta) {
  Rng rng(7);
  auto net = make_net(rng);
  const TempFile file("ckpt_v1_nometa.bin");
  save_checkpoint(*net, file.path);
  EXPECT_EQ(checkpoint_format_version(file.path), 1U);
  EXPECT_THROW((void)read_checkpoint_meta(file.path), Error);
}

TEST(Checkpoint, EmptyArchNameRejectedAtSave) {
  Rng rng(8);
  auto net = make_net(rng);
  const TempFile file("ckpt_noarch.bin");
  CheckpointMeta meta = toy_meta();
  meta.arch.clear();
  EXPECT_THROW(save_checkpoint(*net, file.path, meta), Error);
}

TEST(Checkpoint, DegenerateGeometryRejectedAtSave) {
  Rng rng(9);
  auto net = make_net(rng);
  const TempFile file("ckpt_badgeom.bin");
  CheckpointMeta meta = toy_meta();
  meta.num_classes = 1;  // a classifier needs at least two classes
  EXPECT_THROW(save_checkpoint(*net, file.path, meta), Error);
}

TEST(Checkpoint, TruncatedV2HeaderRejected) {
  Rng rng(10);
  auto a = make_net(rng);
  const TempFile file("ckpt_v2_trunc.bin");
  save_checkpoint(*a, file.path, toy_meta());
  std::ifstream in(file.path, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Keep the 8-byte magic plus half the arch-name length field.
  std::ofstream(file.path, std::ios::binary | std::ios::trunc)
      << blob.substr(0, 10);
  EXPECT_THROW((void)read_checkpoint_meta(file.path), Error);
  EXPECT_THROW(load_checkpoint(*a, file.path), Error);
}

TEST(Checkpoint, V2WrongScalarCountRejected) {
  Rng rng(11);
  auto a = make_net(rng);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 2, rng);
  Network small("small", std::move(body), 2);
  const TempFile file("ckpt_v2_mismatch.bin");
  save_checkpoint(*a, file.path, toy_meta());
  EXPECT_THROW(load_checkpoint(small, file.path), Error);
}

TEST(Checkpoint, WrongArchitectureRejected) {
  Rng rng(5);
  auto a = make_net(rng);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 2, rng);  // structurally different
  Network small("small", std::move(body), 2);
  const TempFile file("ckpt_mismatch.bin");
  save_checkpoint(*a, file.path);
  EXPECT_THROW(load_checkpoint(small, file.path), Error);
}

}  // namespace
}  // namespace tdfm::nn
