#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace tdfm::nn {
namespace {

std::unique_ptr<Network> make_net(Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 8, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8, 3, rng);
  return std::make_unique<Network>("toy", std::move(body), 3);
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Checkpoint, RoundTripRestoresWeights) {
  Rng rng(1);
  auto a = make_net(rng);
  auto b = make_net(rng);  // different random init
  const TempFile file("ckpt_roundtrip.bin");
  save_checkpoint(*a, file.path);
  ASSERT_NE(a->save_weights(), b->save_weights());
  load_checkpoint(*b, file.path);
  EXPECT_EQ(a->save_weights(), b->save_weights());
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(2);
  auto net = make_net(rng);
  EXPECT_THROW(load_checkpoint(*net, "/nonexistent/dir/x.bin"), Error);
}

TEST(Checkpoint, BadMagicRejected) {
  Rng rng(3);
  auto net = make_net(rng);
  const TempFile file("ckpt_badmagic.bin");
  std::ofstream(file.path, std::ios::binary) << "definitely not a checkpoint";
  EXPECT_THROW(load_checkpoint(*net, file.path), Error);
}

TEST(Checkpoint, TruncatedFileRejected) {
  Rng rng(4);
  auto net = make_net(rng);
  const TempFile file("ckpt_trunc.bin");
  save_checkpoint(*net, file.path);
  // Chop off the last 16 bytes.
  std::ifstream in(file.path, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(file.path, std::ios::binary | std::ios::trunc)
      << blob.substr(0, blob.size() - 16);
  EXPECT_THROW(load_checkpoint(*net, file.path), Error);
}

CheckpointMeta toy_meta() {
  CheckpointMeta meta;
  meta.arch = "Toy";
  meta.width = 1;
  meta.in_channels = 4;
  meta.image_size = 1;
  meta.num_classes = 3;
  return meta;
}

TEST(Checkpoint, V2RoundTripRestoresWeightsAndMeta) {
  Rng rng(6);
  auto a = make_net(rng);
  auto b = make_net(rng);
  const TempFile file("ckpt_v2_roundtrip.bin");
  save_checkpoint(*a, file.path, toy_meta());
  EXPECT_EQ(checkpoint_format_version(file.path), 2U);
  EXPECT_EQ(read_checkpoint_meta(file.path), toy_meta());
  load_checkpoint(*b, file.path);  // same loader handles both formats
  EXPECT_EQ(a->save_weights(), b->save_weights());
}

TEST(Checkpoint, V1FileCarriesNoMeta) {
  Rng rng(7);
  auto net = make_net(rng);
  const TempFile file("ckpt_v1_nometa.bin");
  save_checkpoint(*net, file.path);
  EXPECT_EQ(checkpoint_format_version(file.path), 1U);
  EXPECT_THROW((void)read_checkpoint_meta(file.path), Error);
}

TEST(Checkpoint, EmptyArchNameRejectedAtSave) {
  Rng rng(8);
  auto net = make_net(rng);
  const TempFile file("ckpt_noarch.bin");
  CheckpointMeta meta = toy_meta();
  meta.arch.clear();
  EXPECT_THROW(save_checkpoint(*net, file.path, meta), Error);
}

TEST(Checkpoint, DegenerateGeometryRejectedAtSave) {
  Rng rng(9);
  auto net = make_net(rng);
  const TempFile file("ckpt_badgeom.bin");
  CheckpointMeta meta = toy_meta();
  meta.num_classes = 1;  // a classifier needs at least two classes
  EXPECT_THROW(save_checkpoint(*net, file.path, meta), Error);
}

TEST(Checkpoint, TruncatedV2HeaderRejected) {
  Rng rng(10);
  auto a = make_net(rng);
  const TempFile file("ckpt_v2_trunc.bin");
  save_checkpoint(*a, file.path, toy_meta());
  std::ifstream in(file.path, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Keep the 8-byte magic plus half the arch-name length field.
  std::ofstream(file.path, std::ios::binary | std::ios::trunc)
      << blob.substr(0, 10);
  EXPECT_THROW((void)read_checkpoint_meta(file.path), Error);
  EXPECT_THROW(load_checkpoint(*a, file.path), Error);
}

TEST(Checkpoint, V2WrongScalarCountRejected) {
  Rng rng(11);
  auto a = make_net(rng);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 2, rng);
  Network small("small", std::move(body), 2);
  const TempFile file("ckpt_v2_mismatch.bin");
  save_checkpoint(*a, file.path, toy_meta());
  EXPECT_THROW(load_checkpoint(small, file.path), Error);
}

TEST(Checkpoint, QuantizeFlagSelectsV3AndRoundTrips) {
  Rng rng(12);
  auto a = make_net(rng);
  auto b = make_net(rng);
  const TempFile file("ckpt_v3_roundtrip.bin");
  CheckpointMeta meta = toy_meta();
  meta.quantize = true;
  save_checkpoint(*a, file.path, meta);
  EXPECT_EQ(checkpoint_format_version(file.path), 3U);
  const CheckpointMeta read = read_checkpoint_meta(file.path);
  EXPECT_TRUE(read.quantize);
  EXPECT_EQ(read.arch, meta.arch);
  // Weights are stored fp32 regardless of the deployment flag: the loader
  // restores them exactly and re-quantizes afterwards if it honours it.
  load_checkpoint(*b, file.path);
  EXPECT_EQ(a->save_weights(), b->save_weights());
}

TEST(Checkpoint, UnquantizedMetaStaysByteIdenticalV2) {
  // The v3 flag word must not leak into checkpoints that do not need it —
  // existing v2 readers and byte-comparison tooling rely on that.
  Rng rng(13);
  auto a = make_net(rng);
  const TempFile v2a("ckpt_v2_stable_a.bin");
  const TempFile v2b("ckpt_v2_stable_b.bin");
  save_checkpoint(*a, v2a.path, toy_meta());
  CheckpointMeta meta = toy_meta();
  meta.quantize = false;  // explicit default
  save_checkpoint(*a, v2b.path, meta);
  EXPECT_EQ(checkpoint_format_version(v2a.path), 2U);
  std::ifstream ina(v2a.path, std::ios::binary);
  std::ifstream inb(v2b.path, std::ios::binary);
  const std::string blob_a((std::istreambuf_iterator<char>(ina)),
                           std::istreambuf_iterator<char>());
  const std::string blob_b((std::istreambuf_iterator<char>(inb)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(blob_a, blob_b);
}

TEST(Checkpoint, UnknownV3FlagRejected) {
  Rng rng(14);
  auto a = make_net(rng);
  const TempFile file("ckpt_v3_badflag.bin");
  CheckpointMeta meta = toy_meta();
  meta.quantize = true;
  save_checkpoint(*a, file.path, meta);
  // Flip an undefined flag bit in place — readers must refuse flags they
  // don't know rather than silently mis-deploy.  v3 layout: magic(8) +
  // arch_len(4) + arch("Toy" = 3) + four u32 geometry fields(16), then the
  // flags word.
  std::ifstream in(file.path, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::size_t flags_pos = 8 + 4 + meta.arch.size() + 16;
  ASSERT_EQ(blob[flags_pos], '\x01');  // kFlagQuantize, little-endian
  blob[flags_pos] = static_cast<char>(0x81);
  std::ofstream(file.path, std::ios::binary | std::ios::trunc) << blob;
  EXPECT_THROW((void)read_checkpoint_meta(file.path), Error);
  EXPECT_THROW(load_checkpoint(*a, file.path), Error);
}

TEST(Checkpoint, WrongArchitectureRejected) {
  Rng rng(5);
  auto a = make_net(rng);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(4, 2, rng);  // structurally different
  Network small("small", std::move(body), 2);
  const TempFile file("ckpt_mismatch.bin");
  save_checkpoint(*a, file.path);
  EXPECT_THROW(load_checkpoint(small, file.path), Error);
}

}  // namespace
}  // namespace tdfm::nn
