// Finite-difference verification of every layer's backward pass.
//
// These are the most load-bearing tests in the repository: every experiment
// result rests on the correctness of these adjoints.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/blocks.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"

namespace tdfm::nn {
namespace {

using test::check_layer_gradients;
using test::random_tensor;

TEST(GradientCheck, Dense) {
  Rng rng(100);
  Dense layer(6, 4, rng);
  const Tensor x = random_tensor(Shape{3, 6}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, Conv2DStride1) {
  Rng rng(101);
  Conv2D layer(2, 3, 6, 6, 3, 1, 1, rng);
  const Tensor x = random_tensor(Shape{2, 2, 6, 6}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, Conv2DStride2) {
  Rng rng(102);
  Conv2D layer(2, 4, 8, 8, 3, 2, 1, rng);
  const Tensor x = random_tensor(Shape{2, 2, 8, 8}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, Conv2DPointwise) {
  Rng rng(103);
  Conv2D layer(4, 2, 4, 4, 1, 1, 0, rng);
  const Tensor x = random_tensor(Shape{2, 4, 4, 4}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, DepthwiseConv2D) {
  Rng rng(104);
  DepthwiseConv2D layer(3, 6, 6, 3, 1, 1, rng);
  const Tensor x = random_tensor(Shape{2, 3, 6, 6}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, DepthwiseConv2DStride2) {
  Rng rng(105);
  DepthwiseConv2D layer(2, 8, 8, 3, 2, 1, rng);
  const Tensor x = random_tensor(Shape{2, 2, 8, 8}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, ReLU) {
  Rng rng(106);
  ReLU layer;
  // Keep activations away from the kink at 0 (finite differences are
  // invalid exactly there).
  Tensor x = random_tensor(Shape{2, 3, 4, 4}, rng);
  for (auto& v : x.flat()) {
    if (std::fabs(v) < 0.05F) v = 0.2F;
  }
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, Tanh) {
  Rng rng(107);
  Tanh layer;
  const Tensor x = random_tensor(Shape{3, 5}, rng);
  check_layer_gradients(layer, x, rng, /*eps=*/1e-2F, /*rel_tol=*/6e-2F,
                        /*abs_tol=*/5e-3F);
}

TEST(GradientCheck, MaxPool) {
  Rng rng(108);
  MaxPool2D layer(2);
  // Separate values so the argmax does not flip under the probe epsilon.
  Tensor x(Shape{2, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>((i * 37) % 64) * 0.1F;
  }
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, AvgPool) {
  Rng rng(109);
  AvgPool2D layer(2);
  const Tensor x = random_tensor(Shape{2, 2, 4, 4}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, GlobalAvgPool) {
  Rng rng(110);
  GlobalAvgPool layer;
  const Tensor x = random_tensor(Shape{2, 3, 4, 4}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, Flatten) {
  Rng rng(111);
  Flatten layer;
  const Tensor x = random_tensor(Shape{2, 2, 3, 3}, rng);
  check_layer_gradients(layer, x, rng);
}

TEST(GradientCheck, BatchNorm) {
  Rng rng(112);
  BatchNorm2D layer(3);
  const Tensor x = random_tensor(Shape{4, 3, 3, 3}, rng);
  // Batch-norm gradients couple all samples; finite differences through the
  // batch statistics are noisier — widen tolerances slightly.
  check_layer_gradients(layer, x, rng, /*eps=*/1e-2F, /*rel_tol=*/8e-2F,
                        /*abs_tol=*/8e-3F);
}

TEST(GradientCheck, ResidualBasicBlockIdentitySkip) {
  Rng rng(113);
  ResidualBasicBlock layer(3, 3, 4, 4, 1, rng);
  const Tensor x = random_tensor(Shape{2, 3, 4, 4}, rng);
  check_layer_gradients(layer, x, rng, 1e-2F, 9e-2F, 1e-2F, 12, /*allowed_outliers=*/3);
}

TEST(GradientCheck, ResidualBasicBlockProjectionSkip) {
  Rng rng(114);
  ResidualBasicBlock layer(2, 4, 4, 4, 2, rng);
  const Tensor x = random_tensor(Shape{2, 2, 4, 4}, rng);
  check_layer_gradients(layer, x, rng, 1e-2F, 9e-2F, 1e-2F, 12, /*allowed_outliers=*/3);
}

TEST(GradientCheck, BottleneckBlock) {
  Rng rng(115);
  BottleneckBlock layer(3, 2, 4, 4, 4, 1, rng);
  const Tensor x = random_tensor(Shape{2, 3, 4, 4}, rng);
  // Deepest composite (3 BN + 2 interior ReLUs): more kink-crossing probes.
  check_layer_gradients(layer, x, rng, 1e-2F, 9e-2F, 1e-2F, 12, /*allowed_outliers=*/6);
}

TEST(GradientCheck, SeparableConvBlock) {
  Rng rng(116);
  SeparableConvBlock layer(3, 4, 4, 4, 1, rng);
  const Tensor x = random_tensor(Shape{2, 3, 4, 4}, rng);
  check_layer_gradients(layer, x, rng, 1e-2F, 9e-2F, 1e-2F, 12, /*allowed_outliers=*/3);
}

}  // namespace
}  // namespace tdfm::nn
