// Finite-difference checks for the robust-loss gradients.
//
// NCE and RCE implement true gradients of the returned loss value, so a
// central difference on `compute` must match `grad_logits` directly.
// LabelRelaxation deliberately uses the "practical" gradient that treats the
// constructed target q_hat as a constant, so its FD check runs against a
// surrogate: cross-entropy toward q_hat frozen at the base point, whose true
// gradient (p - q_hat)/B is exactly what the implementation returns.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/loss.hpp"
#include "tensor/tensor_ops.hpp"

namespace tdfm::nn {
namespace {

constexpr float kEps = 1e-2F;
constexpr double kRelTol = 5e-2;
constexpr double kAbsTol = 1e-3;

Tensor make_logits(std::size_t batch, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  Tensor logits(Shape{batch, k});
  for (auto& x : logits.flat()) x = rng.normal() * 1.5F;
  return logits;
}

// Central difference of `loss_at` with respect to logits.flat()[idx].
template <typename LossAt>
double fd_gradient(const Tensor& logits, std::size_t idx, const LossAt& loss_at) {
  Tensor plus = logits;
  plus.flat()[idx] += kEps;
  Tensor minus = logits;
  minus.flat()[idx] -= kEps;
  return (loss_at(plus) - loss_at(minus)) / (2.0 * kEps);
}

void expect_matches_fd(const Tensor& logits, const Tensor& analytic,
                       const std::function<double(const Tensor&)>& loss_at,
                       const char* what) {
  for (std::size_t idx = 0; idx < logits.numel(); ++idx) {
    const double numeric = fd_gradient(logits, idx, loss_at);
    const double a = analytic.flat()[idx];
    const double scale = std::max({1.0, std::fabs(a), std::fabs(numeric)});
    EXPECT_NEAR(a, numeric, kRelTol * scale + kAbsTol)
        << what << " flat index " << idx;
  }
}

TEST(LossGradientFD, NCEMatchesFiniteDifferences) {
  const Tensor logits = make_logits(3, 5, 11);
  const Tensor targets = one_hot(std::vector<int>{1, 4, 0}, 5);
  NCELoss loss;
  Tensor analytic;
  loss.compute(logits, targets, analytic);
  expect_matches_fd(logits, analytic,
                    [&](const Tensor& z) {
                      NCELoss l;
                      Tensor g;
                      return l.compute(z, targets, g);
                    },
                    "NCE");
}

TEST(LossGradientFD, RCEMatchesFiniteDifferencesOneHot) {
  const Tensor logits = make_logits(3, 4, 12);
  const Tensor targets = one_hot(std::vector<int>{2, 0, 3}, 4);
  RCELoss loss;
  Tensor analytic;
  loss.compute(logits, targets, analytic);
  expect_matches_fd(logits, analytic,
                    [&](const Tensor& z) {
                      RCELoss l;
                      Tensor g;
                      return l.compute(z, targets, g);
                    },
                    "RCE one-hot");
}

TEST(LossGradientFD, RCEMatchesFiniteDifferencesSoftTargets) {
  const Tensor logits = make_logits(2, 4, 13);
  // Soft targets, e.g. corrected labels from label cleaning.
  Tensor targets(Shape{2, 4});
  const float rows[2][4] = {{0.7F, 0.1F, 0.1F, 0.1F}, {0.05F, 0.05F, 0.8F, 0.1F}};
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t j = 0; j < 4; ++j) targets.at(b, j) = rows[b][j];
  }
  RCELoss loss;
  Tensor analytic;
  loss.compute(logits, targets, analytic);
  expect_matches_fd(logits, analytic,
                    [&](const Tensor& z) {
                      RCELoss l;
                      Tensor g;
                      return l.compute(z, targets, g);
                    },
                    "RCE soft");
}

TEST(LossGradientFD, LabelRelaxationMatchesFrozenTargetSurrogate) {
  const float alpha = 0.1F;
  const std::size_t k = 5;
  const Tensor logits = make_logits(3, k, 14);
  // Pick each row's target as the *least* likely class so every row is
  // active (p_y far below 1 - alpha) and stays active under +-eps probes.
  const Tensor base_probs = softmax_rows(logits);
  std::vector<int> labels;
  for (std::size_t b = 0; b < 3; ++b) {
    std::size_t worst = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (base_probs.at(b, j) < base_probs.at(b, worst)) worst = j;
    }
    labels.push_back(static_cast<int>(worst));
  }
  const Tensor targets = one_hot(labels, k);

  LabelRelaxationLoss loss(alpha);
  Tensor analytic;
  loss.compute(logits, targets, analytic);

  // q_hat frozen at the base point: 1 - alpha on the target class, alpha
  // spread over the rest proportionally to the base predictive shape.
  Tensor q_hat(Shape{3, k});
  for (std::size_t b = 0; b < 3; ++b) {
    const auto y = static_cast<std::size_t>(labels[b]);
    const float rest = 1.0F - base_probs.at(b, y);
    for (std::size_t j = 0; j < k; ++j) {
      q_hat.at(b, j) =
          (j == y) ? (1.0F - alpha) : alpha * base_probs.at(b, j) / rest;
    }
  }
  // d/dz of CE(q_hat, softmax(z)) is (p - q_hat)/B — the practical gradient.
  expect_matches_fd(logits, analytic,
                    [&](const Tensor& z) {
                      CrossEntropyLoss ce;
                      Tensor g;
                      return ce.compute(z, q_hat, g);
                    },
                    "LabelRelaxation");
}

TEST(LossGradientFD, LabelRelaxationInactiveRowHasZeroGradient) {
  // A row already predicting the target above 1 - alpha sits inside the
  // credal set: zero loss, zero gradient.
  Tensor logits(Shape{1, 3});
  logits.at(0, 0) = 8.0F;  // softmax ~ (0.999..., eps, eps)
  const Tensor targets = one_hot(std::vector<int>{0}, 3);
  LabelRelaxationLoss loss(0.1F);
  Tensor grad;
  const double value = loss.compute(logits, targets, grad);
  EXPECT_EQ(value, 0.0);
  for (const float g : grad.flat()) EXPECT_EQ(g, 0.0F);
}

}  // namespace
}  // namespace tdfm::nn
