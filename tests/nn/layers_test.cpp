#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace tdfm::nn {
namespace {

using test::random_tensor;

TEST(Dense, OutputShapeAndBias) {
  Rng rng(300);
  Dense layer(4, 2, rng);
  // Zero input isolates the bias (zero-initialised).
  const Tensor y = layer.forward(Tensor(Shape{3, 4}), false);
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 0.0F);
  EXPECT_EQ(layer.parameter_count(), 4U * 2U + 2U);
  EXPECT_EQ(layer.weight_layer_count(), 1U);
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(301);
  Dense layer(4, 2, rng);
  EXPECT_THROW((void)layer.forward(Tensor(Shape{3, 5}), false), InvariantError);
}

TEST(Conv2D, OutputGeometry) {
  Rng rng(302);
  Conv2D same(3, 8, 16, 16, 3, 1, 1, rng);
  EXPECT_EQ(same.forward(Tensor(Shape{2, 3, 16, 16}), false).shape(),
            (Shape{2, 8, 16, 16}));
  Conv2D strided(3, 8, 16, 16, 3, 2, 1, rng);
  EXPECT_EQ(strided.forward(Tensor(Shape{2, 3, 16, 16}), false).shape(),
            (Shape{2, 8, 8, 8}));
  Conv2D pointwise(8, 4, 8, 8, 1, 1, 0, rng);
  EXPECT_EQ(pointwise.forward(Tensor(Shape{1, 8, 8, 8}), false).shape(),
            (Shape{1, 4, 8, 8}));
}

TEST(Conv2D, TranslatesInputShiftToOutputShift) {
  // Convolution is shift-equivariant away from borders: shifting the input
  // one pixel right shifts the output one pixel right.
  Rng rng(303);
  Conv2D conv(1, 1, 8, 8, 3, 1, 1, rng);
  Tensor x(Shape{1, 1, 8, 8});
  x.at(0, 0, 3, 3) = 1.0F;
  Tensor xs(Shape{1, 1, 8, 8});
  xs.at(0, 0, 3, 4) = 1.0F;
  const Tensor y = conv.forward(x, false);
  const Tensor ys = conv.forward(xs, false);
  for (std::size_t r = 1; r < 7; ++r) {
    for (std::size_t c = 1; c < 6; ++c) {
      EXPECT_NEAR(y.at(0, 0, r, c), ys.at(0, 0, r, c + 1), 1e-6F);
    }
  }
}

TEST(ReLU, MasksNegatives) {
  ReLU relu;
  Tensor x(Shape{4});
  x[0] = -1.0F;
  x[1] = 2.0F;
  x[2] = 0.0F;
  x[3] = -0.5F;
  const Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 2.0F);
  EXPECT_EQ(y[2], 0.0F);
  Tensor g = Tensor::full(Shape{4}, 1.0F);
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0F);
  EXPECT_EQ(gx[1], 1.0F);
}

TEST(Dropout, InferenceIsIdentity) {
  Rng rng(304);
  Dropout drop(0.5F, rng);
  const Tensor x = random_tensor(Shape{8, 8}, rng);
  const Tensor y = drop.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingZeroesRoughlyPFraction) {
  Rng rng(305);
  Dropout drop(0.5F, rng);
  const Tensor x = Tensor::full(Shape{10000}, 1.0F);
  const Tensor y = drop.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 2.0F, 1e-6F);  // inverted scaling 1/(1-p)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
}

TEST(Dropout, PreservesExpectation) {
  Rng rng(306);
  Dropout drop(0.3F, rng);
  const Tensor x = Tensor::full(Shape{20000}, 1.0F);
  const Tensor y = drop.forward(x, true);
  EXPECT_NEAR(mean(y), 1.0, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(307);
  Dropout drop(0.5F, rng);
  const Tensor x = Tensor::full(Shape{64}, 1.0F);
  const Tensor y = drop.forward(x, true);
  const Tensor gx = drop.backward(Tensor::full(Shape{64}, 1.0F));
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(gx[i], y[i]);  // same scaled mask applied to ones
  }
}

TEST(Dropout, RejectsBadRate) {
  Rng rng(308);
  EXPECT_THROW(Dropout(1.0F, rng), InvariantError);
  EXPECT_THROW(Dropout(-0.1F, rng), InvariantError);
}

TEST(MaxPool, PicksMaximumAndRoutesGradient) {
  MaxPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1.0F;
  x[1] = 5.0F;
  x[2] = 2.0F;
  x[3] = 3.0F;
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(y[0], 5.0F);
  const Tensor gx = pool.backward(Tensor::full(Shape{1, 1, 1, 1}, 2.0F));
  EXPECT_EQ(gx[1], 2.0F);
  EXPECT_EQ(gx[0], 0.0F);
  EXPECT_EQ(gx[2], 0.0F);
}

TEST(MaxPool, RejectsIndivisibleDims) {
  MaxPool2D pool(2);
  EXPECT_THROW((void)pool.forward(Tensor(Shape{1, 1, 3, 4}), true), InvariantError);
}

TEST(AvgPool, AveragesAndSpreadsGradient) {
  AvgPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1.0F;
  x[1] = 2.0F;
  x[2] = 3.0F;
  x[3] = 6.0F;
  const Tensor y = pool.forward(x, true);
  EXPECT_NEAR(y[0], 3.0F, 1e-6F);
  const Tensor gx = pool.backward(Tensor::full(Shape{1, 1, 1, 1}, 4.0F));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(gx[i], 1.0F, 1e-6F);
}

TEST(GlobalAvgPool, ReducesSpatialDims) {
  GlobalAvgPool gap;
  Tensor x(Shape{2, 3, 2, 2});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = 1.0F;
  const Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_NEAR(y[0], 1.0F, 1e-6F);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  const Tensor x = Tensor::full(Shape{2, 3, 4, 5}, 1.0F);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor gx = flat.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(BatchNorm, NormalisesPerChannelInTraining) {
  BatchNorm2D bn(2);
  Rng rng(309);
  Tensor x = random_tensor(Shape{8, 2, 4, 4}, rng, 3.0F, 9.0F);
  const Tensor y = bn.forward(x, true);
  // Each channel of the output should be ~zero-mean unit-variance.
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      for (std::size_t i = 0; i < 16; ++i) {
        const float v = y.at(b, c, i / 4, i % 4);
        sum += v;
        sq += static_cast<double>(v) * v;
        ++n;
      }
    }
    EXPECT_NEAR(sum / static_cast<double>(n), 0.0, 1e-3);
    EXPECT_NEAR(sq / static_cast<double>(n), 1.0, 1e-2);
  }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm2D bn(1);
  Rng rng(310);
  // Train on shifted data for several batches so the running stats adapt.
  for (int i = 0; i < 50; ++i) {
    Tensor x = random_tensor(Shape{8, 1, 2, 2}, rng, 4.0F, 6.0F);
    (void)bn.forward(x, true);
  }
  Tensor probe = Tensor::full(Shape{1, 1, 2, 2}, 5.0F);
  const Tensor y = bn.forward(probe, false);
  // 5.0 is the approximate running mean -> output near zero.
  EXPECT_NEAR(y[0], 0.0F, 0.3F);
}

TEST(Sequential, ComposesAndExposesParameters) {
  Rng rng(311);
  Sequential seq;
  seq.emplace<Dense>(4, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(seq.size(), 3U);
  EXPECT_EQ(seq.weight_layer_count(), 2U);
  EXPECT_EQ(seq.parameters().size(), 4U);  // two weights + two biases
  const Tensor y = seq.forward(Tensor(Shape{5, 4}), false);
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
}

TEST(Sequential, RejectsNullLayer) {
  Sequential seq;
  EXPECT_THROW(seq.add(nullptr), InvariantError);
}

}  // namespace
}  // namespace tdfm::nn
