#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace tdfm::nn {
namespace {

using test::random_tensor;

Parameter make_param(float value, float grad) {
  Parameter p(Shape{1});
  p.value[0] = value;
  p.grad[0] = grad;
  return p;
}

TEST(SGD, PlainStepDescendsGradient) {
  Parameter p = make_param(1.0F, 0.5F);
  SGD opt(0.1F, /*momentum=*/0.0F);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0F - 0.1F * 0.5F, 1e-6F);
}

TEST(SGD, MomentumAccumulates) {
  Parameter p = make_param(0.0F, 1.0F);
  SGD opt(1.0F, 0.5F);
  opt.step({&p});  // v = 1, w = -1
  EXPECT_NEAR(p.value[0], -1.0F, 1e-6F);
  opt.step({&p});  // v = 0.5 + 1 = 1.5, w = -2.5
  EXPECT_NEAR(p.value[0], -2.5F, 1e-6F);
}

TEST(SGD, WeightDecayShrinksWeights) {
  Parameter p = make_param(2.0F, 0.0F);
  SGD opt(0.1F, 0.0F, /*weight_decay=*/0.5F);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 2.0F - 0.1F * 0.5F * 2.0F, 1e-6F);
}

TEST(SGD, RejectsBadHyperparameters) {
  EXPECT_THROW(SGD(0.0F), InvariantError);
  EXPECT_THROW(SGD(0.1F, 1.0F), InvariantError);
}

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Parameter p = make_param(1.0F, 0.3F);
  Adam opt(0.01F);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0F - 0.01F, 1e-4F);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise f(w) = (w - 3)^2 by feeding grad = 2(w - 3).
  Parameter p = make_param(0.0F, 0.0F);
  Adam opt(0.1F);
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0F * (p.value[0] - 3.0F);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0F, 0.05F);
}

TEST(SGDVsAdam, BothReduceSimpleLoss) {
  for (const bool use_adam : {false, true}) {
    Rng rng(400);
    auto body = std::make_unique<Sequential>();
    body->emplace<Dense>(4, 8, rng);
    body->emplace<ReLU>();
    body->emplace<Dense>(8, 3, rng);
    Network net("toy", std::move(body), 3);

    // Linearly separable toy data: class = argmax of first 3 inputs.
    const std::size_t n = 48;
    Tensor images(Shape{n, 4});
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 4; ++j) images.at(i, j) = rng.uniform(0.0F, 1.0F);
      labels[i] = static_cast<int>(argmax(std::span<const float>(
          images.data() + i * 4, 3)));
    }
    const Tensor targets = one_hot(labels, 3);
    CrossEntropyLoss ce;
    TrainOptions opts;
    opts.epochs = 30;
    opts.batch_size = 16;
    opts.use_adam = use_adam;
    opts.lr = use_adam ? 0.01F : 0.2F;
    opts.lr_decay = 1.0F;  // decay now reaches Adam too; hold lr constant here
    Trainer trainer(opts);
    Rng fit_rng(42);
    const double final_loss = trainer.fit(
        net, images,
        [&](const Tensor& logits, std::span<const std::size_t> idx, Tensor& grad) {
          return ce.compute(logits, Trainer::gather(targets, idx), grad);
        },
        fit_rng);
    EXPECT_LT(final_loss, 0.35) << (use_adam ? "adam" : "sgd");
  }
}

TEST(Trainer, EpochLossWeightsPartialBatchBySampleCount) {
  // 5 samples at batch_size 4 -> one full batch plus a 1-sample remainder.
  // The loss callback returns the batch size, so the sample-weighted epoch
  // mean is (4*4 + 1*1)/5 = 3.4.  A plain mean over batches would report
  // (4 + 1)/2 = 2.5, overweighting the partial batch 4x.
  Rng rng(410);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(2, 2, rng);
  Network net("toy", std::move(body), 2);
  const Tensor images = random_tensor(Shape{5, 2}, rng);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 4;
  opts.shuffle = false;
  Trainer trainer(opts);
  Rng fit_rng(1);
  const double epoch_loss = trainer.fit(
      net, images,
      [&](const Tensor& logits, std::span<const std::size_t> idx, Tensor& grad) {
        grad = Tensor(logits.shape());  // zero gradient: weights stay put
        return static_cast<double>(idx.size());
      },
      fit_rng);
  EXPECT_NEAR(epoch_loss, 3.4, 1e-12);
}

TEST(Trainer, AdamHonoursLrDecay) {
  // With lr_decay = 0 the learning rate hits zero after epoch one, so a
  // 2-epoch Adam run must end exactly where the 1-epoch run ends.  Before
  // the fix the decay was silently dropped on the Adam path and epoch two
  // kept moving the weights.
  const auto train = [](std::size_t epochs, float lr_decay) {
    Rng rng(411);
    auto body = std::make_unique<Sequential>();
    body->emplace<Dense>(3, 4, rng);
    body->emplace<ReLU>();
    body->emplace<Dense>(4, 2, rng);
    Network net("toy", std::move(body), 2);
    Rng data_rng(5);
    const Tensor images = random_tensor(Shape{12, 3}, data_rng);
    const Tensor targets = one_hot(std::vector<int>(12, 1), 2);
    CrossEntropyLoss ce;
    TrainOptions opts;
    opts.epochs = epochs;
    opts.batch_size = 4;
    opts.use_adam = true;
    opts.lr = 0.05F;
    opts.lr_decay = lr_decay;
    opts.shuffle = false;
    Trainer trainer(opts);
    Rng fit_rng(6);
    trainer.fit(
        net, images,
        [&](const Tensor& logits, std::span<const std::size_t> idx, Tensor& grad) {
          return ce.compute(logits, Trainer::gather(targets, idx), grad);
        },
        fit_rng);
    return net.save_weights();
  };
  EXPECT_EQ(train(2, 0.0F), train(1, 0.95F));
  // And a real decay factor must change the two-epoch trajectory.
  EXPECT_NE(train(2, 0.5F), train(2, 1.0F));
}

TEST(Trainer, GatherSelectsRows) {
  Tensor images(Shape{3, 2});
  for (std::size_t i = 0; i < 6; ++i) images[i] = static_cast<float>(i);
  const std::vector<std::size_t> idx{2, 0};
  const Tensor batch = Trainer::gather(images, idx);
  EXPECT_EQ(batch.shape(), (Shape{2, 2}));
  EXPECT_EQ(batch.at(0, 0), 4.0F);
  EXPECT_EQ(batch.at(1, 0), 0.0F);
}

TEST(Trainer, GatherOutOfRangeThrows) {
  const Tensor images(Shape{2, 2});
  const std::vector<std::size_t> idx{5};
  EXPECT_THROW((void)Trainer::gather(images, idx), InvariantError);
}

TEST(Trainer, EpochHookRunsEveryEpoch) {
  Rng rng(401);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(2, 2, rng);
  Network net("toy", std::move(body), 2);
  const Tensor images = random_tensor(Shape{8, 2}, rng);
  const Tensor targets = one_hot(std::vector<int>(8, 0), 2);
  CrossEntropyLoss ce;
  TrainOptions opts;
  opts.epochs = 5;
  Trainer trainer(opts);
  std::size_t calls = 0;
  Rng fit_rng(1);
  trainer.fit(
      net, images,
      [&](const Tensor& logits, std::span<const std::size_t> idx, Tensor& grad) {
        return ce.compute(logits, Trainer::gather(targets, idx), grad);
      },
      fit_rng, [&](std::size_t epoch, Network&) {
        EXPECT_EQ(epoch, calls);
        ++calls;
      });
  EXPECT_EQ(calls, 5U);
}

TEST(Trainer, DeterministicGivenSameSeeds) {
  const auto run = [] {
    Rng rng(402);
    auto body = std::make_unique<Sequential>();
    body->emplace<Dense>(3, 4, rng);
    body->emplace<ReLU>();
    body->emplace<Dense>(4, 2, rng);
    Network net("toy", std::move(body), 2);
    Rng data_rng(7);
    const Tensor images = test::random_tensor(Shape{16, 3}, data_rng);
    const Tensor targets = one_hot(std::vector<int>(16, 1), 2);
    CrossEntropyLoss ce;
    TrainOptions opts;
    opts.epochs = 4;
    Trainer trainer(opts);
    Rng fit_rng(9);
    trainer.fit(
        net, images,
        [&](const Tensor& logits, std::span<const std::size_t> idx, Tensor& grad) {
          return ce.compute(logits, Trainer::gather(targets, idx), grad);
        },
        fit_rng);
    return net.save_weights();
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, SaveLoadRoundTrip) {
  Rng rng(403);
  auto make = [&](Rng& r) {
    auto body = std::make_unique<Sequential>();
    body->emplace<Dense>(3, 4, r);
    body->emplace<Dense>(4, 2, r);
    return std::make_unique<Network>("toy", std::move(body), 2);
  };
  auto a = make(rng);
  auto b = make(rng);  // different init
  const auto weights = a->save_weights();
  b->load_weights(weights);
  EXPECT_EQ(b->save_weights(), weights);
  // Wrong-size blob rejected.
  std::vector<float> tiny(3, 0.0F);
  EXPECT_THROW(b->load_weights(tiny), InvariantError);
}

TEST(Network, CopyWeightsRequiresSameStructure) {
  Rng rng(404);
  auto body1 = std::make_unique<Sequential>();
  body1->emplace<Dense>(3, 2, rng);
  Network a("a", std::move(body1), 2);
  auto body2 = std::make_unique<Sequential>();
  body2->emplace<Dense>(4, 2, rng);
  Network b("b", std::move(body2), 2);
  EXPECT_THROW(a.copy_weights_from(b), InvariantError);
}

TEST(Network, PredictClassesMatchesArgmax) {
  Rng rng(405);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(2, 3, rng);
  Network net("toy", std::move(body), 3);
  const Tensor images = random_tensor(Shape{10, 2}, rng);
  const auto preds = predict_classes(net, images, /*batch_size=*/3);
  const Tensor logits = net.logits(images, false);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(preds[i], static_cast<int>(argmax(logits.row(i))));
  }
}

TEST(Network, PredictProbabilitiesRowsSumToOne) {
  Rng rng(406);
  auto body = std::make_unique<Sequential>();
  body->emplace<Dense>(2, 4, rng);
  Network net("toy", std::move(body), 4);
  const Tensor images = random_tensor(Shape{7, 2}, rng);
  const Tensor probs = predict_probabilities(net, images, 2.0F, 3);
  EXPECT_EQ(probs.shape(), (Shape{7, 4}));
  for (std::size_t i = 0; i < 7; ++i) {
    double s = 0.0;
    for (const float v : probs.row(i)) s += v;
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace tdfm::nn
