#include "models/model_zoo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"

namespace tdfm::models {
namespace {

ModelConfig tiny_config(std::size_t classes = 5, std::size_t channels = 3) {
  ModelConfig c;
  c.in_channels = channels;
  c.image_size = 16;
  c.num_classes = classes;
  c.width = 4;  // keep the tests fast
  return c;
}

class AllArchitectures : public ::testing::TestWithParam<Arch> {};

TEST_P(AllArchitectures, DepthMatchesTableIII) {
  Rng rng(1);
  const auto net = build_model(GetParam(), tiny_config(), rng);
  EXPECT_EQ(net->weight_layer_count(), expected_weight_layers(GetParam()));
}

TEST_P(AllArchitectures, ForwardProducesLogitsPerClass) {
  Rng rng(2);
  const auto cfg = tiny_config(7);
  auto net = build_model(GetParam(), cfg, rng);
  Tensor batch(Shape{3, cfg.in_channels, 16, 16});
  uniform_init(batch, 0.0F, 1.0F, rng);
  const Tensor logits = net->logits(batch, /*training=*/false);
  EXPECT_EQ(logits.shape(), (Shape{3, 7}));
  for (const float v : logits.flat()) ASSERT_TRUE(std::isfinite(v));
}

TEST_P(AllArchitectures, TrainingForwardBackwardRuns) {
  Rng rng(3);
  const auto cfg = tiny_config(4);
  auto net = build_model(GetParam(), cfg, rng);
  Tensor batch(Shape{4, cfg.in_channels, 16, 16});
  uniform_init(batch, 0.0F, 1.0F, rng);
  const Tensor logits = net->logits(batch, /*training=*/true);
  Tensor grad(logits.shape());
  uniform_init(grad, -0.1F, 0.1F, rng);
  net->zero_grad();
  net->backward(grad);
  // Every parameter must have received some gradient signal.
  std::size_t touched = 0;
  for (auto* p : net->parameters()) {
    for (const float g : p->grad.flat()) {
      if (g != 0.0F) {
        ++touched;
        break;
      }
    }
  }
  EXPECT_GT(touched, net->parameters().size() / 2);
}

TEST_P(AllArchitectures, SingleChannelInputSupported) {
  // Pneumonia-sim is single-channel; every model must accept it.
  Rng rng(4);
  const auto cfg = tiny_config(2, /*channels=*/1);
  auto net = build_model(GetParam(), cfg, rng);
  Tensor batch(Shape{2, 1, 16, 16});
  uniform_init(batch, 0.0F, 1.0F, rng);
  EXPECT_EQ(net->logits(batch, false).shape(), (Shape{2, 2}));
}

TEST_P(AllArchitectures, IndependentInitsDiffer) {
  Rng rng(5);
  auto a = build_model(GetParam(), tiny_config(), rng);
  auto b = build_model(GetParam(), tiny_config(), rng);
  EXPECT_NE(a->save_weights(), b->save_weights());
}

TEST_P(AllArchitectures, NameRoundTrip) {
  EXPECT_EQ(arch_from_name(arch_name(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Zoo, AllArchitectures,
                         ::testing::ValuesIn(all_architectures()),
                         [](const auto& info) {
                           return std::string(arch_name(info.param));
                         });

TEST(ModelZoo, SevenArchitectures) { EXPECT_EQ(all_architectures().size(), 7U); }

TEST(ModelZoo, ShallowClassification) {
  EXPECT_TRUE(is_shallow(Arch::kConvNet));
  EXPECT_TRUE(is_shallow(Arch::kDeconvNet));
  EXPECT_FALSE(is_shallow(Arch::kResNet50));
  EXPECT_FALSE(is_shallow(Arch::kVGG16));
}

TEST(ModelZoo, UnknownNameThrows) {
  EXPECT_THROW((void)arch_from_name("AlexNet"), ConfigError);
}

TEST(ModelZoo, RejectsNonSixteenImages) {
  ModelConfig c = tiny_config();
  c.image_size = 32;
  Rng rng(6);
  EXPECT_THROW((void)build_model(Arch::kConvNet, c, rng), InvariantError);
}

TEST(ModelZoo, DepthOrderingMatchesPaper) {
  // Table III: ResNet50 is the deepest, ConvNet/DeconvNet the shallowest.
  EXPECT_GT(expected_weight_layers(Arch::kResNet50),
            expected_weight_layers(Arch::kMobileNet));
  EXPECT_GT(expected_weight_layers(Arch::kMobileNet),
            expected_weight_layers(Arch::kResNet18));
  EXPECT_GT(expected_weight_layers(Arch::kResNet18),
            expected_weight_layers(Arch::kVGG16));
  EXPECT_GT(expected_weight_layers(Arch::kVGG16),
            expected_weight_layers(Arch::kVGG11));
  EXPECT_GT(expected_weight_layers(Arch::kVGG11),
            expected_weight_layers(Arch::kConvNet));
}

TEST(ModelZoo, ConfigFromDatasetSpec) {
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kPneumoniaSim;
  const ModelConfig c = ModelConfig::for_dataset(spec, 6);
  EXPECT_EQ(c.in_channels, 1U);
  EXPECT_EQ(c.num_classes, 2U);
  EXPECT_EQ(c.width, 6U);
}

TEST(ModelZoo, FactoryProducesFreshInstances) {
  const auto factory = make_factory(Arch::kConvNet, tiny_config());
  Rng rng(7);
  auto a = factory(rng);
  auto b = factory(rng);
  EXPECT_NE(a->save_weights(), b->save_weights());
  EXPECT_EQ(a->parameter_count(), b->parameter_count());
}

TEST(ModelZoo, TunedOptionsRespectAutoTuneFlag) {
  nn::TrainOptions base;
  base.lr = 0.123F;
  base.auto_tune = false;
  const auto same = tuned_options(Arch::kVGG16, base);
  EXPECT_EQ(same.lr, 0.123F);
  base.auto_tune = true;
  const auto tuned = tuned_options(Arch::kVGG16, base);
  EXPECT_TRUE(tuned.use_adam);
  const auto resnet = tuned_options(Arch::kResNet50, base);
  EXPECT_FALSE(resnet.use_adam);
  // Epochs and batch size are user-controlled and must pass through.
  base.epochs = 77;
  EXPECT_EQ(tuned_options(Arch::kConvNet, base).epochs, 77U);
}

TEST(ModelZoo, ParameterCountGrowsWithWidth) {
  Rng rng(8);
  ModelConfig narrow = tiny_config();
  narrow.width = 4;
  ModelConfig wide = tiny_config();
  wide.width = 8;
  auto a = build_model(Arch::kResNet18, narrow, rng);
  auto b = build_model(Arch::kResNet18, wide, rng);
  EXPECT_GT(b->parameter_count(), 2 * a->parameter_count());
}

}  // namespace
}  // namespace tdfm::models
