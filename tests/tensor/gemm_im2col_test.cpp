#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace tdfm {
namespace {

// Naive reference GEMMs.
void ref_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
            const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += double(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

std::vector<float> random_matrix(std::size_t n, Rng& rng) {
  std::vector<float> m(n);
  for (auto& x : m) x = rng.normal();
  return m;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapes, NNMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 1000 + n * 10 + k);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(m * n), ref(m * n);
  gemm_nn(m, n, k, a.data(), b.data(), c.data());
  ref_nn(m, n, k, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (std::fabs(ref[i]) + 1.0F));
  }
}

TEST_P(GemmShapes, NTMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(m + n + k);
  const auto a = random_matrix(m * k, rng);
  const auto bt = random_matrix(n * k, rng);  // stored [n, k]
  // Build B = bt^T in row-major [k, n] for the reference.
  std::vector<float> b(k * n);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) b[p * n + j] = bt[j * k + p];
  }
  std::vector<float> c(m * n), ref(m * n);
  gemm_nt(m, n, k, a.data(), bt.data(), c.data());
  ref_nn(m, n, k, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (std::fabs(ref[i]) + 1.0F));
  }
}

TEST_P(GemmShapes, TNMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(7 * m + 3 * n + k);
  const auto at = random_matrix(k * m, rng);  // stored [k, m]
  const auto b = random_matrix(k * n, rng);
  std::vector<float> a(m * k);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) a[i * k + p] = at[p * m + i];
  }
  std::vector<float> c(m * n), ref(m * n);
  gemm_tn(m, n, k, at.data(), b.data(), c.data());
  ref_nn(m, n, k, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (std::fabs(ref[i]) + 1.0F));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmShapes,
    ::testing::Values(std::make_tuple(1U, 1U, 1U), std::make_tuple(3U, 5U, 7U),
                      std::make_tuple(16U, 16U, 16U), std::make_tuple(8U, 256U, 72U),
                      std::make_tuple(65U, 70U, 130U),  // crosses block borders
                      std::make_tuple(1U, 300U, 9U)));

TEST(Gemm, AccumulateAddsToExisting) {
  Rng rng(5);
  const auto a = random_matrix(4, rng);
  const auto b = random_matrix(4, rng);
  std::vector<float> c(4, 1.0F), once(4);
  gemm_nn(2, 2, 2, a.data(), b.data(), once.data());
  gemm_nn(2, 2, 2, a.data(), b.data(), c.data(), /*accumulate=*/true);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(c[i], once[i] + 1.0F, 1e-5F);
}

TEST(Gemm, OverwriteClearsExisting) {
  Rng rng(6);
  const auto a = random_matrix(4, rng);
  const auto b = random_matrix(4, rng);
  std::vector<float> c(4, 42.0F), once(4);
  gemm_nn(2, 2, 2, a.data(), b.data(), once.data());
  gemm_nn(2, 2, 2, a.data(), b.data(), c.data(), /*accumulate=*/false);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(c[i], once[i], 1e-6F);
}

// ------------------------------------------------------------------ im2col

TEST(Im2Col, GeometryMath) {
  const ConvGeometry g{3, 16, 16, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 16U);
  EXPECT_EQ(g.out_w(), 16U);
  EXPECT_EQ(g.patch_rows(), 27U);
  EXPECT_EQ(g.patch_cols(), 256U);
  const ConvGeometry strided{8, 16, 16, 3, 2, 1};
  EXPECT_EQ(strided.out_h(), 8U);
  const ConvGeometry pointwise{8, 4, 4, 1, 1, 0};
  EXPECT_EQ(pointwise.out_h(), 4U);
  EXPECT_EQ(pointwise.patch_rows(), 8U);
}

TEST(Im2Col, IdentityKernelCenterTapReproducesImage) {
  // With a 3x3 kernel, the centre tap row (ky=kx=1) of the patch matrix is
  // exactly the input image.
  const ConvGeometry g{1, 4, 4, 3, 1, 1};
  std::vector<float> img(16);
  for (std::size_t i = 0; i < 16; ++i) img[i] = static_cast<float>(i + 1);
  std::vector<float> cols(g.patch_rows() * g.patch_cols());
  im2col(g, img.data(), cols.data());
  const float* center = cols.data() + 4 * g.patch_cols();  // row ky=1,kx=1
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(center[i], img[i]);
}

TEST(Im2Col, PaddingReadsZero) {
  const ConvGeometry g{1, 2, 2, 3, 1, 1};
  std::vector<float> img{1.0F, 2.0F, 3.0F, 4.0F};
  std::vector<float> cols(g.patch_rows() * g.patch_cols());
  im2col(g, img.data(), cols.data());
  // Top-left output pixel, top-left kernel tap reaches (-1, -1): zero pad.
  EXPECT_EQ(cols[0], 0.0F);
}

TEST(Im2Col, Col2ImIsAdjoint) {
  // The defining adjoint property: <im2col(x), y> == <x, col2im(y)> for all
  // x, y.  This validates every geometry parameter simultaneously.
  Rng rng(9);
  for (const auto& g : {ConvGeometry{2, 6, 6, 3, 1, 1}, ConvGeometry{3, 8, 8, 3, 2, 1},
                        ConvGeometry{1, 5, 5, 1, 1, 0}, ConvGeometry{2, 4, 4, 3, 1, 0}}) {
    const std::size_t img_n = g.in_c * g.in_h * g.in_w;
    const std::size_t col_n = g.patch_rows() * g.patch_cols();
    std::vector<float> x(img_n), y(col_n), ix(col_n), ay(img_n, 0.0F);
    for (auto& v : x) v = rng.normal();
    for (auto& v : y) v = rng.normal();
    im2col(g, x.data(), ix.data());
    col2im(g, y.data(), ay.data());
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < col_n; ++i) lhs += double(ix[i]) * y[i];
    for (std::size_t i = 0; i < img_n; ++i) rhs += double(x[i]) * ay[i];
    EXPECT_NEAR(lhs, rhs, 1e-3 * (std::fabs(lhs) + 1.0));
  }
}

TEST(Im2Col, StridedDestinationMatchesContiguous) {
  const ConvGeometry g{2, 4, 4, 3, 1, 1};
  Rng rng(10);
  std::vector<float> img(g.in_c * g.in_h * g.in_w);
  for (auto& v : img) v = rng.normal();
  const std::size_t pc = g.patch_cols();
  std::vector<float> contiguous(g.patch_rows() * pc);
  im2col(g, img.data(), contiguous.data());
  // Write into a twice-as-wide matrix at column offset pc.
  std::vector<float> wide(g.patch_rows() * 2 * pc, -1.0F);
  im2col(g, img.data(), wide.data(), 2 * pc, pc);
  for (std::size_t r = 0; r < g.patch_rows(); ++r) {
    for (std::size_t c = 0; c < pc; ++c) {
      EXPECT_EQ(wide[r * 2 * pc + pc + c], contiguous[r * pc + c]);
    }
  }
}

}  // namespace
}  // namespace tdfm
