#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.hpp"

namespace tdfm {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3U);
  EXPECT_EQ(s.numel(), 24U);
  EXPECT_EQ(s[0], 2U);
  EXPECT_EQ(s[2], 4U);
  EXPECT_THROW((void)s[3], InvariantError);
}

TEST(Shape, EmptyShapeIsScalarLike) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.numel(), 1U);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
}

TEST(Shape, ToString) { EXPECT_EQ((Shape{1, 2}).to_string(), "[1, 2]"); }

TEST(Tensor, ZeroInitialised) {
  const Tensor t(Shape{4, 4});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, FullFills) {
  const Tensor t = Tensor::full(Shape{3}, 2.5F);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5F);
}

TEST(Tensor, FlatIndexBoundsChecked) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW((void)t[4], InvariantError);
}

TEST(Tensor, TwoDAccess) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0F;
  EXPECT_EQ(t[5], 7.0F);
  EXPECT_EQ(t.at(1, 2), 7.0F);
}

TEST(Tensor, FourDAccessMatchesRowMajorLayout) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0F;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{3, 2});
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
}

TEST(Tensor, ReshapeElementCountMismatchThrows) {
  const Tensor t(Shape{2, 3});
  EXPECT_THROW((void)t.reshaped(Shape{7}), ShapeError);
}

TEST(Tensor, RowSpanViewsUnderlyingData) {
  Tensor t(Shape{2, 3});
  t.at(1, 0) = 5.0F;
  const auto row = t.row(1);
  EXPECT_EQ(row.size(), 3U);
  EXPECT_EQ(row[0], 5.0F);
}

TEST(Tensor, RowOnNonMatrixThrows) {
  Tensor t(Shape{2, 3, 4});
  EXPECT_THROW((void)t.row(0), InvariantError);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::full(Shape{4}, 1.0F);
  const Tensor b = Tensor::full(Shape{4}, 2.0F);
  a += b;
  EXPECT_EQ(a[0], 3.0F);
  a -= b;
  EXPECT_EQ(a[0], 1.0F);
  a *= 4.0F;
  EXPECT_EQ(a[0], 4.0F);
  a.add_scaled(b, 0.5F);
  EXPECT_EQ(a[0], 5.0F);
}

TEST(Tensor, MismatchedArithmeticThrows) {
  Tensor a(Shape{4});
  const Tensor b(Shape{5});
  EXPECT_THROW(a += b, InvariantError);
  EXPECT_THROW(a -= b, InvariantError);
  EXPECT_THROW(a.add_scaled(b, 1.0F), InvariantError);
}

// -------------------------------------------------------------- tensor_ops

TEST(TensorOps, AddSubMulScale) {
  Tensor a = Tensor::full(Shape{3}, 2.0F);
  Tensor b = Tensor::full(Shape{3}, 3.0F);
  EXPECT_EQ(add(a, b)[0], 5.0F);
  EXPECT_EQ(sub(a, b)[0], -1.0F);
  EXPECT_EQ(mul(a, b)[0], 6.0F);
  EXPECT_EQ(scale(a, -2.0F)[0], -4.0F);
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Tensor logits(Shape{2, 5});
  for (std::size_t i = 0; i < 10; ++i) logits[i] = static_cast<float>(i) * 0.3F;
  const Tensor p = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (const float v : p.row(r)) {
      EXPECT_GT(v, 0.0F);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
}

TEST(TensorOps, SoftmaxStableForLargeLogits) {
  Tensor logits(Shape{1, 3});
  logits[0] = 1000.0F;
  logits[1] = 999.0F;
  logits[2] = -1000.0F;
  const Tensor p = softmax_rows(logits);
  EXPECT_TRUE(all_finite(p));
  EXPECT_GT(p[0], p[1]);
}

TEST(TensorOps, TemperatureSoftensDistribution) {
  Tensor logits(Shape{1, 3});
  logits[0] = 3.0F;
  logits[1] = 1.0F;
  logits[2] = 0.0F;
  const Tensor sharp = softmax_rows(logits, 1.0F);
  const Tensor soft = softmax_rows(logits, 4.0F);
  EXPECT_GT(sharp[0], soft[0]);   // max prob decreases with temperature
  EXPECT_LT(sharp[2], soft[2]);   // min prob increases
}

TEST(TensorOps, ArgmaxFirstOnTies) {
  const std::vector<float> xs{1.0F, 3.0F, 3.0F, 0.0F};
  EXPECT_EQ(argmax(xs), 1U);
}

TEST(TensorOps, Reductions) {
  Tensor t(Shape{4});
  t[0] = 1.0F;
  t[1] = -2.0F;
  t[2] = 3.0F;
  t[3] = 0.0F;
  EXPECT_DOUBLE_EQ(sum(t), 2.0);
  EXPECT_DOUBLE_EQ(mean(t), 0.5);
  EXPECT_EQ(max_abs(t), 3.0F);
  EXPECT_DOUBLE_EQ(squared_norm(t), 14.0);
}

TEST(TensorOps, AllFiniteDetectsNan) {
  Tensor t(Shape{3});
  EXPECT_TRUE(all_finite(t));
  t[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(all_finite(t));
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(all_finite(t));
}

TEST(TensorOps, Clamp) {
  Tensor t(Shape{3});
  t[0] = -5.0F;
  t[1] = 0.5F;
  t[2] = 9.0F;
  clamp_(t, 0.0F, 1.0F);
  EXPECT_EQ(t[0], 0.0F);
  EXPECT_EQ(t[1], 0.5F);
  EXPECT_EQ(t[2], 1.0F);
}

}  // namespace
}  // namespace tdfm
