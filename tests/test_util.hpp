// Shared helpers for the tdfm test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/rng.hpp"
#include "nn/layer.hpp"
#include "tensor/init.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace tdfm::test {

/// Scalar objective used by gradient checks: L(y) = sum(y ⊙ g).
inline double probe_loss(const Tensor& y, const Tensor& g) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    acc += static_cast<double>(y[i]) * g[i];
  }
  return acc;
}

/// Central-difference gradient check for a Layer.
///
/// Verifies (a) the input gradient and (b) every parameter gradient against
/// finite differences of the probe loss L(y) = sum(forward(x) ⊙ g).  Works
/// on any deterministic layer (dropout must use p = 0).  Float32 finite
/// differences are noisy, so tolerances are relative with an absolute floor.
/// `allowed_outliers` tolerates isolated probes invalidated by interior
/// ReLU kinks (composite blocks): a probe that crosses a kink produces a
/// one-sided numeric derivative even though the analytic gradient is right.
inline void check_layer_gradients(nn::Layer& layer, const Tensor& input,
                                  Rng& rng, float eps = 1e-2F,
                                  float rel_tol = 6e-2F, float abs_tol = 2e-3F,
                                  std::size_t max_probes = 24,
                                  std::size_t allowed_outliers = 0) {
  Tensor x = input;  // mutable copy; every forward below reads x

  // Fixed upstream gradient matching the output shape.
  Tensor y0 = layer.forward(x, /*training=*/true);
  Tensor g(y0.shape());
  uniform_init(g, -1.0F, 1.0F, rng);

  // Analytic gradients (grads accumulate in the layer's parameters).
  for (auto* p : layer.parameters()) p->zero_grad();
  y0 = layer.forward(x, true);
  const Tensor grad_input = layer.backward(g);

  const auto numeric_gradient = [&](float& slot) {
    const float original = slot;
    slot = original + eps;
    const Tensor yp = layer.forward(x, true);
    slot = original - eps;
    const Tensor ym = layer.forward(x, true);
    slot = original;
    return (probe_loss(yp, g) - probe_loss(ym, g)) / (2.0 * eps);
  };

  std::size_t outliers = 0;
  const auto expect_close = [&](double analytic, double numeric, const char* what,
                                std::size_t idx) {
    const double err = std::fabs(analytic - numeric);
    const double scale =
        std::max(1.0, std::max(std::fabs(analytic), std::fabs(numeric)));
    if (err <= rel_tol * scale + abs_tol) return;
    if (++outliers <= allowed_outliers) return;
    ADD_FAILURE() << what << " gradient mismatch at flat index " << idx
                  << ": analytic " << analytic << " vs numeric " << numeric
                  << " (outlier " << outliers << " of " << allowed_outliers
                  << " allowed)";
  };

  // Input gradient at a sample of positions.
  const std::size_t stride_in = std::max<std::size_t>(1, x.numel() / max_probes);
  for (std::size_t i = 0; i < x.numel(); i += stride_in) {
    expect_close(grad_input[i], numeric_gradient(x[i]), "input", i);
  }

  // Parameter gradients at a sample of positions.
  for (auto* p : layer.parameters()) {
    const std::size_t stride_p = std::max<std::size_t>(1, p->numel() / max_probes);
    for (std::size_t i = 0; i < p->numel(); i += stride_p) {
      expect_close(p->grad[i], numeric_gradient(p->value[i]), "param", i);
    }
  }
}

/// Random tensor helper.
inline Tensor random_tensor(Shape shape, Rng& rng, float lo = -1.0F, float hi = 1.0F) {
  Tensor t(std::move(shape));
  uniform_init(t, lo, hi, rng);
  return t;
}

}  // namespace tdfm::test
