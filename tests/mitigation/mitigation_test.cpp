#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/baseline.hpp"
#include "mitigation/ensemble.hpp"
#include "mitigation/knowledge_distillation.hpp"
#include "mitigation/label_correction.hpp"
#include "mitigation/label_smoothing.hpp"
#include "mitigation/registry.hpp"
#include "mitigation/robust_loss.hpp"
#include "nn/dense.hpp"

namespace tdfm::mitigation {
namespace {

/// Small shared fixture: a tiny Pneumonia-like binary dataset and a fast
/// FitContext (ConvNet, width 4, 2 epochs) every technique can train on in
/// well under a second.
struct TinyStudy {
  data::TrainTestPair dataset;
  models::ModelConfig model_config;
  nn::TrainOptions opts;

  TinyStudy() {
    data::SyntheticSpec spec;
    spec.kind = data::DatasetKind::kPneumoniaSim;
    spec.scale = 0.5;  // 60 train / 32 test
    spec.seed = 77;
    dataset = data::generate(spec);
    model_config = models::ModelConfig::for_dataset(spec, /*width=*/4);
    opts.epochs = 2;
    opts.batch_size = 16;
  }

  [[nodiscard]] FitContext context(Rng& rng) const {
    FitContext ctx;
    ctx.train = &dataset.train;
    ctx.primary_arch = models::Arch::kConvNet;
    ctx.model_config = model_config;
    ctx.train_opts = opts;
    ctx.rng = &rng;
    return ctx;
  }
};

class EveryTechnique : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(EveryTechnique, FitsAndPredictsValidClasses) {
  const TinyStudy study;
  Rng rng(1);
  FitContext ctx = study.context(rng);
  Hyperparameters hp;
  if (GetParam() == TechniqueKind::kEnsemble) {
    // Two cheap members keep the test fast; the default five-member set is
    // exercised by the ensemble-specific tests below.
    hp.ens_members = {models::Arch::kConvNet, models::Arch::kDeconvNet};
  }
  auto technique = make_technique(GetParam(), hp);
  const auto classifier = technique->fit(ctx);
  ASSERT_NE(classifier, nullptr);
  const auto preds = classifier->predict(study.dataset.test.images);
  ASSERT_EQ(preds.size(), study.dataset.test.size());
  for (const int p : preds) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 2);
  }
}

TEST_P(EveryTechnique, DeterministicGivenSameSeed) {
  const TinyStudy study;
  Hyperparameters hp;
  hp.ens_members = {models::Arch::kConvNet};
  const auto run = [&] {
    Rng rng(99);
    FitContext ctx = study.context(rng);
    auto technique = make_technique(GetParam(), hp);
    return technique->fit(ctx)->predict(study.dataset.test.images);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Kinds, EveryTechnique,
                         ::testing::ValuesIn(all_techniques()),
                         [](const auto& info) {
                           return std::string(technique_name(info.param));
                         });

TEST(Registry, NamesRoundTrip) {
  for (const auto kind : all_techniques()) {
    EXPECT_EQ(technique_from_name(technique_name(kind)), kind);
  }
  EXPECT_THROW((void)technique_from_name("Mixup"), ConfigError);
}

TEST(Registry, PaperColumnOrder) {
  const auto all = all_techniques();
  ASSERT_EQ(all.size(), 6U);
  EXPECT_EQ(technique_name(all[0]), std::string("Base"));
  EXPECT_EQ(technique_name(all[5]), std::string("Ens"));
  EXPECT_EQ(tdfm_techniques().size(), 5U);  // the five TDFM approaches
}

TEST(Registry, OnlyLabelCorrectionWantsCleanSubset) {
  for (const auto kind : all_techniques()) {
    const auto t = make_technique(kind);
    EXPECT_EQ(t->wants_clean_subset(),
              kind == TechniqueKind::kLabelCorrection);
  }
}

TEST(FitContextTest, ValidatesInputs) {
  const TinyStudy study;
  Rng rng(2);
  FitContext ctx = study.context(rng);
  ctx.train = nullptr;
  EXPECT_THROW(ctx.validate(), InvariantError);
  ctx = study.context(rng);
  ctx.rng = nullptr;
  EXPECT_THROW(ctx.validate(), InvariantError);
  ctx = study.context(rng);
  ctx.model_config.num_classes = 7;  // dataset has 2
  EXPECT_THROW(ctx.validate(), InvariantError);
}

TEST(FitContextTest, OptionsForAppliesPerArchTuning) {
  const TinyStudy study;
  Rng rng(3);
  const FitContext ctx = study.context(rng);
  EXPECT_TRUE(ctx.options_for(models::Arch::kVGG11).use_adam);
  EXPECT_FALSE(ctx.options_for(models::Arch::kResNet18).use_adam);
  EXPECT_EQ(ctx.options_for(models::Arch::kVGG11).epochs, ctx.train_opts.epochs);
}

// ---------------------------------------------------------------- ensembles

/// Builds a single-Dense-layer network whose logits are constant (weights
/// zero, bias = given logits), so ensemble voting can be tested exactly.
std::unique_ptr<nn::Network> constant_network(std::vector<float> logits) {
  Rng rng(4);
  const std::size_t k = logits.size();
  auto body = std::make_unique<nn::Sequential>();
  auto& dense = body->emplace<nn::Dense>(1, k, rng);
  dense.parameters()[0]->value.zero();  // weight
  for (std::size_t i = 0; i < k; ++i) dense.parameters()[1]->value[i] = logits[i];
  return std::make_unique<nn::Network>("const", std::move(body), k);
}

TEST(EnsembleClassifier, MajorityVoteWins) {
  std::vector<std::unique_ptr<nn::Network>> members;
  members.push_back(constant_network({5.0F, 0.0F, 0.0F}));  // votes 0
  members.push_back(constant_network({4.0F, 1.0F, 0.0F}));  // votes 0
  members.push_back(constant_network({0.0F, 9.0F, 0.0F}));  // votes 1
  EnsembleClassifier ens(std::move(members));
  const Tensor inputs = Tensor::full(Shape{3, 1}, 1.0F);
  const auto preds = ens.predict(inputs);
  for (const int p : preds) EXPECT_EQ(p, 0);
  EXPECT_DOUBLE_EQ(ens.inference_model_count(), 3.0);
}

TEST(EnsembleClassifier, TieBrokenBySummedConfidence) {
  std::vector<std::unique_ptr<nn::Network>> members;
  members.push_back(constant_network({8.0F, 0.0F}));  // confident class 0
  members.push_back(constant_network({0.0F, 0.1F}));  // weakly class 1
  EnsembleClassifier ens(std::move(members));
  const Tensor inputs = Tensor::full(Shape{2, 1}, 1.0F);
  // One vote each; class 0's summed softmax confidence is higher.
  const auto preds = ens.predict(inputs);
  for (const int p : preds) EXPECT_EQ(p, 0);
}

TEST(EnsembleTechnique, DefaultMembersMatchPaper) {
  const EnsembleTechnique ens;
  const auto& m = ens.members();
  ASSERT_EQ(m.size(), 5U);
  // §IV: "ConvNet, MobileNet, ResNet18, VGG11, and VGG16".
  EXPECT_NE(std::find(m.begin(), m.end(), models::Arch::kConvNet), m.end());
  EXPECT_NE(std::find(m.begin(), m.end(), models::Arch::kMobileNet), m.end());
  EXPECT_NE(std::find(m.begin(), m.end(), models::Arch::kResNet18), m.end());
  EXPECT_NE(std::find(m.begin(), m.end(), models::Arch::kVGG11), m.end());
  EXPECT_NE(std::find(m.begin(), m.end(), models::Arch::kVGG16), m.end());
  EXPECT_EQ(std::find(m.begin(), m.end(), models::Arch::kResNet50), m.end());
}

TEST(EnsembleTechnique, InferenceCostScalesWithMembers) {
  const TinyStudy study;
  Rng rng(5);
  FitContext ctx = study.context(rng);
  EnsembleTechnique ens({models::Arch::kConvNet, models::Arch::kDeconvNet,
                         models::Arch::kConvNet});
  const auto classifier = ens.fit(ctx);
  EXPECT_DOUBLE_EQ(classifier->inference_model_count(), 3.0);
}

// ------------------------------------------------------- label correction

TEST(LabelCorrection, UsesProvidedCleanSubset) {
  const TinyStudy study;
  Rng split_rng(6);
  auto [clean, noisy_base] =
      data::random_split(study.dataset.train, 0.2, split_rng);
  Rng inject_rng(7);
  const auto noisy = faults::inject(
      noisy_base, faults::FaultSpec{faults::FaultType::kMislabelling, 30.0},
      inject_rng);
  Rng rng(8);
  FitContext ctx = study.context(rng);
  ctx.train = &noisy;
  ctx.clean_subset = &clean;
  LabelCorrectionTechnique lc(0.2, /*hidden=*/8, /*secondary_steps=*/2);
  const auto classifier = lc.fit(ctx);
  const auto preds = classifier->predict(study.dataset.test.images);
  EXPECT_EQ(preds.size(), study.dataset.test.size());
}

TEST(LabelCorrection, FallsBackWithoutCleanSubset) {
  const TinyStudy study;
  Rng rng(9);
  FitContext ctx = study.context(rng);
  LabelCorrectionTechnique lc(0.2, 8, 2);
  EXPECT_NO_THROW((void)lc.fit(ctx));
}

// -------------------------------------------------------------- smoke: AD

TEST(EndToEnd, TechniqueOnCleanDataTracksGolden) {
  // Training the baseline twice on clean data: AD between the runs should
  // be small (both models learn the same easy task).
  const TinyStudy study;
  Rng rng1(10);
  Rng rng2(11);
  FitContext c1 = study.context(rng1);
  FitContext c2 = study.context(rng2);
  c1.train_opts.epochs = 6;
  c2.train_opts.epochs = 6;
  BaselineTechnique base;
  const auto golden = base.fit(c1);
  const auto second = base.fit(c2);
  const auto gp = golden->predict(study.dataset.test.images);
  const auto sp = second->predict(study.dataset.test.images);
  const double ad = metrics::accuracy_delta(gp, sp, study.dataset.test.labels);
  EXPECT_LT(ad, 0.5);
}

}  // namespace
}  // namespace tdfm::mitigation
