#include "data/painter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tdfm::data {
namespace {

struct Canvas {
  std::vector<float> px;
  Painter painter;

  explicit Canvas(std::size_t c = 3, std::size_t h = 8, std::size_t w = 8)
      : px(c * h * w, 0.0F), painter(px.data(), c, h, w) {}
};

TEST(Painter, FillSetsEveryChannelPlane) {
  Canvas c;
  c.painter.fill({0.1F, 0.5F, 0.9F});
  EXPECT_FLOAT_EQ(c.px[0], 0.1F);              // channel 0 plane
  EXPECT_FLOAT_EQ(c.px[64], 0.5F);             // channel 1 plane
  EXPECT_FLOAT_EQ(c.px[128], 0.9F);            // channel 2 plane
}

TEST(Painter, FillClampsToUnitRange) {
  Canvas c;
  c.painter.fill({-1.0F, 2.0F, 0.5F});
  EXPECT_FLOAT_EQ(c.px[0], 0.0F);
  EXPECT_FLOAT_EQ(c.px[64], 1.0F);
}

TEST(Painter, VerticalGradientMonotone) {
  Canvas c(1, 8, 8);
  c.painter.vertical_gradient({0.0F, 0, 0}, {1.0F, 0, 0});
  for (std::size_t y = 1; y < 8; ++y) {
    EXPECT_GT(c.px[y * 8], c.px[(y - 1) * 8]);
  }
  EXPECT_FLOAT_EQ(c.px[0], 0.0F);
  EXPECT_FLOAT_EQ(c.px[7 * 8], 1.0F);
}

TEST(Painter, RectPaintsOnlyInterior) {
  Canvas c(1, 8, 8);
  c.painter.rect(2.0F, 2.0F, 4.0F, 4.0F, {1.0F, 1.0F, 1.0F});
  EXPECT_FLOAT_EQ(c.px[3 * 8 + 3], 1.0F);  // inside
  EXPECT_FLOAT_EQ(c.px[0], 0.0F);          // outside
  EXPECT_FLOAT_EQ(c.px[5 * 8 + 5], 0.0F);
}

TEST(Painter, RectClipsToCanvas) {
  Canvas c(1, 4, 4);
  EXPECT_NO_THROW(c.painter.rect(-5.0F, -5.0F, 10.0F, 10.0F, {1, 1, 1}));
  for (const float v : c.px) EXPECT_FLOAT_EQ(v, 1.0F);
}

TEST(Painter, DiscIsRadiallyBounded) {
  Canvas c(1, 9, 9);
  c.painter.disc(4.5F, 4.5F, 2.0F, {1, 1, 1});
  EXPECT_FLOAT_EQ(c.px[4 * 9 + 4], 1.0F);  // centre painted
  EXPECT_FLOAT_EQ(c.px[0], 0.0F);          // corner untouched
}

TEST(Painter, RingLeavesHole) {
  Canvas c(1, 9, 9);
  c.painter.ring(4.5F, 4.5F, 2.0F, 4.0F, {1, 1, 1});
  EXPECT_FLOAT_EQ(c.px[4 * 9 + 4], 0.0F);  // hole
  EXPECT_FLOAT_EQ(c.px[4 * 9 + 1], 1.0F);  // annulus (distance 3.0)
}

TEST(Painter, TriangleWiderAtBase) {
  Canvas c(1, 16, 16);
  c.painter.triangle(8.0F, 8.0F, 5.0F, {1, 1, 1});
  const auto row_width = [&](std::size_t y) {
    std::size_t n = 0;
    for (std::size_t x = 0; x < 16; ++x) n += c.px[y * 16 + x] > 0.5F ? 1 : 0;
    return n;
  };
  EXPECT_GT(row_width(12), row_width(6));  // base wider than near-apex
}

TEST(Painter, AlphaBlends) {
  Canvas c(1, 4, 4);
  c.painter.fill({0.0F, 0, 0});
  c.painter.rect(0, 0, 4, 4, {1.0F, 1, 1}, 0.25F);
  EXPECT_NEAR(c.px[0], 0.25F, 1e-6F);
}

TEST(Painter, GaussianBlobPeaksAtCentre) {
  Canvas c(1, 9, 9);
  c.painter.gaussian_blob(4.5F, 4.5F, 1.5F, {1, 1, 1}, 0.5F);
  EXPECT_GT(c.px[4 * 9 + 4], c.px[4 * 9 + 1]);
  EXPECT_GT(c.px[4 * 9 + 4], 0.3F);
}

TEST(Painter, NoiseStaysInUnitRange) {
  Canvas c(1, 8, 8);
  c.painter.fill({0.5F, 0.5F, 0.5F});
  Rng rng(1);
  c.painter.add_noise(0.5F, rng);
  bool changed = false;
  for (const float v : c.px) {
    ASSERT_GE(v, 0.0F);
    ASSERT_LE(v, 1.0F);
    changed |= (v != 0.5F);
  }
  EXPECT_TRUE(changed);
}

TEST(Painter, StripesArePeriodic) {
  Canvas c(1, 16, 16);
  c.painter.stripes(4.0F, 0.0F, {1, 1, 1}, 1.0F);
  // Period 4: the painted-row pattern repeats every 4 rows.
  for (std::size_t y = 0; y + 4 < 16; ++y) {
    EXPECT_NEAR(c.px[y * 16], c.px[(y + 4) * 16], 1e-5F);
  }
}

}  // namespace
}  // namespace tdfm::data
