#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/synthetic.hpp"

namespace tdfm::data {
namespace {

Dataset tiny_dataset(std::size_t n, std::size_t classes) {
  Dataset ds;
  ds.name = "tiny";
  ds.num_classes = classes;
  ds.images = Tensor(Shape{n, 1, 2, 2});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.labels[i] = static_cast<int>(i % classes);
    for (std::size_t j = 0; j < 4; ++j) {
      ds.images[i * 4 + j] = static_cast<float>(i);
    }
  }
  return ds;
}

TEST(Dataset, SubsetCopiesSelectedSamples) {
  const Dataset ds = tiny_dataset(6, 3);
  const std::vector<std::size_t> idx{4, 1};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2U);
  EXPECT_EQ(sub.labels[0], 1);          // sample 4 has label 4 % 3 = 1
  EXPECT_EQ(sub.images[0], 4.0F);       // pixel value tracks origin index
  EXPECT_EQ(sub.labels[1], 1);
  EXPECT_EQ(sub.images[4], 1.0F);
  EXPECT_EQ(sub.num_classes, 3U);
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const Dataset ds = tiny_dataset(3, 3);
  const std::vector<std::size_t> idx{7};
  EXPECT_THROW((void)ds.subset(idx), InvariantError);
}

TEST(Dataset, ClassHistogramCounts) {
  const Dataset ds = tiny_dataset(7, 3);
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist.size(), 3U);
  EXPECT_EQ(hist[0], 3U);  // samples 0, 3, 6
  EXPECT_EQ(hist[1], 2U);
  EXPECT_EQ(hist[2], 2U);
}

TEST(Dataset, ValidateCatchesBadLabel) {
  Dataset ds = tiny_dataset(4, 2);
  ds.labels[2] = 9;
  EXPECT_THROW(ds.validate(), InvariantError);
}

TEST(Dataset, ValidateCatchesCountMismatch) {
  Dataset ds = tiny_dataset(4, 2);
  ds.labels.pop_back();
  EXPECT_THROW(ds.validate(), InvariantError);
}

TEST(Dataset, RandomSplitPartitions) {
  const Dataset ds = tiny_dataset(10, 2);
  Rng rng(1);
  const auto [head, tail] = random_split(ds, 0.3, rng);
  EXPECT_EQ(head.size(), 3U);
  EXPECT_EQ(tail.size(), 7U);
  // Union of pixel "origin ids" must be exactly 0..9.
  std::vector<int> seen;
  for (std::size_t i = 0; i < head.size(); ++i) {
    seen.push_back(static_cast<int>(head.images[i * 4]));
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    seen.push_back(static_cast<int>(tail.images[i * 4]));
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(Dataset, RandomSplitBoundsChecked) {
  const Dataset ds = tiny_dataset(4, 2);
  Rng rng(2);
  EXPECT_THROW((void)random_split(ds, 1.5, rng), InvariantError);
  EXPECT_THROW((void)random_split(ds, -0.1, rng), InvariantError);
}

TEST(Dataset, ConcatenatePreservesOrderAndMetadata) {
  const Dataset a = tiny_dataset(3, 2);
  const Dataset b = tiny_dataset(2, 2);
  const Dataset c = concatenate(a, b);
  EXPECT_EQ(c.size(), 5U);
  EXPECT_EQ(c.images[0], 0.0F);
  EXPECT_EQ(c.images[3 * 4], 0.0F);  // b's first sample
  EXPECT_EQ(c.labels[3], b.labels[0]);
  c.validate();
}

TEST(Dataset, ConcatenateRejectsMismatch) {
  const Dataset a = tiny_dataset(2, 2);
  Dataset b = tiny_dataset(2, 3);
  EXPECT_THROW((void)concatenate(a, b), InvariantError);
}

// ---------------------------------------------------------------- synthetic

TEST(Synthetic, SpecMetadata) {
  SyntheticSpec spec;
  spec.kind = DatasetKind::kGtsrbSim;
  EXPECT_EQ(spec.num_classes(), 43U);
  EXPECT_EQ(spec.channels(), 3U);
  spec.kind = DatasetKind::kPneumoniaSim;
  EXPECT_EQ(spec.num_classes(), 2U);
  EXPECT_EQ(spec.channels(), 1U);
  spec.kind = DatasetKind::kCifar10Sim;
  EXPECT_EQ(spec.num_classes(), 10U);
}

TEST(Synthetic, RelativeSizesMirrorTableII) {
  SyntheticSpec cifar;
  cifar.kind = DatasetKind::kCifar10Sim;
  SyntheticSpec pneumonia;
  pneumonia.kind = DatasetKind::kPneumoniaSim;
  // Pneumonia is roughly a tenth the size of CIFAR (Table II: 5.2k vs 50k).
  const double ratio = static_cast<double>(pneumonia.train_count()) /
                       static_cast<double>(cifar.train_count());
  EXPECT_GT(ratio, 0.05);
  EXPECT_LT(ratio, 0.2);
}

TEST(Synthetic, ScaleMultipliesCounts) {
  SyntheticSpec spec;
  spec.kind = DatasetKind::kCifar10Sim;
  const std::size_t base = spec.train_count();
  spec.scale = 0.5;
  EXPECT_NEAR(static_cast<double>(spec.train_count()),
              static_cast<double>(base) * 0.5, 2.0);
}

TEST(Synthetic, NameRoundTrip) {
  for (const auto kind : {DatasetKind::kCifar10Sim, DatasetKind::kGtsrbSim,
                          DatasetKind::kPneumoniaSim}) {
    EXPECT_EQ(dataset_from_name(dataset_name(kind)), kind);
  }
  EXPECT_THROW((void)dataset_from_name("mnist"), ConfigError);
}

TEST(Synthetic, GenerationIsDeterministic) {
  SyntheticSpec spec;
  spec.kind = DatasetKind::kGtsrbSim;
  spec.scale = 0.1;
  const TrainTestPair a = generate(spec);
  const TrainTestPair b = generate(spec);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsGiveDifferentImages) {
  SyntheticSpec a;
  a.kind = DatasetKind::kCifar10Sim;
  a.scale = 0.05;
  SyntheticSpec b = a;
  b.seed = a.seed + 1;
  const auto da = generate(a);
  const auto db = generate(b);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < da.train.images.numel(); ++i) {
    if (da.train.images[i] != db.train.images[i]) ++differing;
  }
  EXPECT_GT(differing, da.train.images.numel() / 2);
}

TEST(Synthetic, TrainAndTestSplitsDiffer) {
  SyntheticSpec spec;
  spec.kind = DatasetKind::kPneumoniaSim;
  const auto pair = generate(spec);
  // Same generator, different streams: first images must differ.
  bool different = false;
  for (std::size_t i = 0; i < 256 && !different; ++i) {
    different = pair.train.images[i] != pair.test.images[i];
  }
  EXPECT_TRUE(different);
}

class SyntheticPropertyTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(SyntheticPropertyTest, PixelsInUnitRangeAndValid) {
  SyntheticSpec spec;
  spec.kind = GetParam();
  spec.scale = 0.2;
  const auto pair = generate(spec);
  pair.train.validate();
  pair.test.validate();
  for (const float v : pair.train.images.flat()) {
    ASSERT_GE(v, 0.0F);
    ASSERT_LE(v, 1.0F);
  }
}

TEST_P(SyntheticPropertyTest, ClassBalanced) {
  SyntheticSpec spec;
  spec.kind = GetParam();
  const auto pair = generate(spec);
  const auto hist = pair.train.class_histogram();
  const auto [mn, mx] = std::minmax_element(hist.begin(), hist.end());
  EXPECT_LE(*mx - *mn, 1U);  // round-robin assignment
}

TEST_P(SyntheticPropertyTest, ClassesAreVisuallyDistinct) {
  // Mean within-class image distance should be smaller than mean
  // between-class distance — otherwise no model could learn the task.
  SyntheticSpec spec;
  spec.kind = GetParam();
  spec.scale = 0.3;
  Rng rng(3);
  const Dataset ds = generate_split(spec, 120, rng, "probe");
  const std::size_t row = ds.images.numel() / ds.size();
  const auto dist = [&](std::size_t i, std::size_t j) {
    double acc = 0.0;
    for (std::size_t p = 0; p < row; ++p) {
      const double d = ds.images[i * row + p] - ds.images[j * row + p];
      acc += d * d;
    }
    return acc;
  };
  double within = 0.0, between = 0.0;
  std::size_t nw = 0, nb = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    // Window must exceed the 43-class round-robin period so that
    // same-class pairs appear for every dataset kind.
    for (std::size_t j = i + 1; j < std::min(ds.size(), i + 90); ++j) {
      if (ds.labels[i] == ds.labels[j]) {
        within += dist(i, j);
        ++nw;
      } else {
        between += dist(i, j);
        ++nb;
      }
    }
  }
  ASSERT_GT(nw, 0U);
  ASSERT_GT(nb, 0U);
  // GTSRB-sim classes differ in small glyphs while position/background
  // jitter dominates raw pixel distance, so allow near-equality there; the
  // strict inequality holds for the coarser-grained CIFAR/Pneumonia sims.
  const double slack =
      GetParam() == DatasetKind::kGtsrbSim ? 1.10 : 1.0;
  EXPECT_LT(within / static_cast<double>(nw),
            slack * between / static_cast<double>(nb));
}

INSTANTIATE_TEST_SUITE_P(Kinds, SyntheticPropertyTest,
                         ::testing::Values(DatasetKind::kCifar10Sim,
                                           DatasetKind::kGtsrbSim,
                                           DatasetKind::kPneumoniaSim));

}  // namespace
}  // namespace tdfm::data
