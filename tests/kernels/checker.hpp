// Shared tolerance policy for the kernel checker suite (InferLLM-style:
// every optimized kernel is compared element-wise against the scalar
// reference over randomized shapes, never assumed correct).
//
// fp32 kernels legitimately differ from the reference: FMA keeps an extra
// bit per multiply-add and the vectorized reductions reassociate the
// k-length dot product, so the allowed error grows with the reduction
// length and the magnitude of the result:
//
//   |got - ref| <= 1e-5 + 2e-7 * k + 1e-4 * |ref|
//
// The q8 kernels are NOT given this slack — their block dot is exact
// integer arithmetic with a fixed float accumulation order, so the checker
// compares them with memcmp (bit identity) instead.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>

namespace tdfm::kernels_test {

/// Element-wise closeness with the k-scaled tolerance above.  Reports at
/// most five offending elements per call so a broken kernel does not flood
/// the log with thousands of failures.
inline void expect_allclose(const float* got, const float* ref,
                            std::size_t count, std::size_t k,
                            const std::string& what) {
  const double base = 1e-5 + 2e-7 * static_cast<double>(k);
  std::size_t reported = 0;
  for (std::size_t i = 0; i < count && reported < 5; ++i) {
    const auto g = static_cast<double>(got[i]);
    const auto r = static_cast<double>(ref[i]);
    const double tol = base + 1e-4 * std::fabs(r);
    if (std::fabs(g - r) > tol) {
      ADD_FAILURE() << what << ": element " << i << " got " << g << " want "
                    << r << " (|diff| " << std::fabs(g - r) << " > tol " << tol
                    << ")";
      ++reported;
    }
  }
}

}  // namespace tdfm::kernels_test
