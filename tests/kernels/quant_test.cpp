// q8_0 quantization: numeric bounds, the quantized network path, and the
// serving-layer integration (quantized replicas answer like a locally
// quantized network, bit for bit).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "kernels/quant.hpp"
#include "models/model_zoo.hpp"
#include "nn/checkpoint.hpp"
#include "serve/model_registry.hpp"
#include "study/presets.hpp"
#include "study/spec.hpp"
#include "tensor/tensor.hpp"

namespace tdfm {
namespace {

std::vector<float> random_values(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(Quant, RoundTripErrorIsHalfStepPerBlock) {
  const std::size_t rows = 3, cols = 70;  // 3 blocks/row, 6-wide tail
  Rng rng(3);
  const auto src = random_values(rows * cols, rng);
  const kernels::Q8Matrix q = kernels::quantize_rows_q8(src.data(), rows, cols);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  ASSERT_EQ(q.blocks_per_row, 3u);
  std::vector<float> back(rows * cols);
  kernels::dequantize_rows_q8(q, back.data());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t blk = 0; blk * kernels::kQ8Block < cols; ++blk) {
      const std::size_t lo = blk * kernels::kQ8Block;
      const std::size_t hi = std::min(cols, lo + kernels::kQ8Block);
      float amax = 0.0F;
      for (std::size_t t = lo; t < hi; ++t) {
        amax = std::max(amax, std::fabs(src[r * cols + t]));
      }
      // Round-to-nearest against a step of amax/127: at most half a step.
      const float bound = amax / 127.0F * 0.5F + 1e-6F;
      for (std::size_t t = lo; t < hi; ++t) {
        EXPECT_NEAR(src[r * cols + t], back[r * cols + t], bound)
            << "row " << r << " col " << t;
      }
    }
  }
}

TEST(Quant, TailBlocksArePaddedWithZeros) {
  const std::size_t cols = 33;  // one full block + a 1-element tail block
  Rng rng(4);
  const auto src = random_values(cols, rng);
  const kernels::Q8Matrix q = kernels::quantize_rows_q8(src.data(), 1, cols);
  ASSERT_EQ(q.blocks_per_row, 2u);
  for (std::size_t t = 33; t < 64; ++t) {
    EXPECT_EQ(q.data.data()[t], 0) << "pad element " << t;
  }
}

TEST(Quant, ZeroBlockQuantizesToZero) {
  std::vector<float> src(kernels::kQ8Block, 0.0F);
  const kernels::Q8Matrix q =
      kernels::quantize_rows_q8(src.data(), 1, kernels::kQ8Block);
  EXPECT_EQ(q.scales.data()[0], 0.0F);
  for (std::size_t t = 0; t < kernels::kQ8Block; ++t) {
    EXPECT_EQ(q.data.data()[t], 0);
  }
}

/// Builds a random batch of images matching the model config.
Tensor random_batch(const models::ModelConfig& cfg, std::size_t batch,
                    Rng& rng) {
  Tensor t{Shape{batch, cfg.in_channels, cfg.image_size, cfg.image_size}};
  for (std::size_t i = 0; i < t.numel(); ++i) t.data()[i] = rng.normal();
  return t;
}

TEST(Quant, QuantizedNetworkLogitsStayClose) {
  models::ModelConfig cfg;
  cfg.width = 4;
  Rng rng(21);
  auto net = models::build_model(models::Arch::kConvNet, cfg, rng);
  Rng data_rng(22);
  const Tensor batch = random_batch(cfg, 4, data_rng);

  const Tensor fp32 = net->logits(batch, /*training=*/false);
  net->quantize_for_inference();
  EXPECT_TRUE(net->quantized());
  const Tensor q8 = net->logits(batch, /*training=*/false);

  ASSERT_EQ(fp32.numel(), q8.numel());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < fp32.numel(); ++i) {
    const double d = double(q8.data()[i]) - double(fp32.data()[i]);
    num += d * d;
    den += double(fp32.data()[i]) * double(fp32.data()[i]);
  }
  // Relative L2 error of the logits: int8 weights and activations keep a
  // couple of decimal digits; 5% is far above normal, far below breakage.
  EXPECT_LT(std::sqrt(num / (den + 1e-12)), 0.05);
}

TEST(Quant, QuantizedNetworkRefusesBackward) {
  models::ModelConfig cfg;
  cfg.width = 4;
  Rng rng(23);
  auto net = models::build_model(models::Arch::kConvNet, cfg, rng);
  net->quantize_for_inference();
  Rng data_rng(24);
  const Tensor batch = random_batch(cfg, 2, data_rng);
  (void)net->logits(batch, /*training=*/false);
  Tensor grad{Shape{std::size_t{2}, cfg.num_classes}};
  EXPECT_THROW(net->backward(grad), InvariantError);
}

TEST(Quant, ServedQuantizedReplicaMatchesLocalQuantization) {
  models::ModelConfig cfg;
  cfg.width = 4;
  Rng rng(31);
  auto net = models::build_model(models::Arch::kConvNet, cfg, rng);
  const std::string path = ::testing::TempDir() + "quant_test_ckpt.bin";
  nn::save_checkpoint(*net, path,
                      models::checkpoint_meta(models::Arch::kConvNet, cfg));

  serve::ModelRegistry registry(1);
  registry.load("m", path, /*quantize=*/true);
  const std::shared_ptr<serve::ServedModel> served = registry.current("m");
  ASSERT_NE(served, nullptr);
  EXPECT_TRUE(served->quantized());

  Rng data_rng(32);
  const Tensor batch = random_batch(cfg, 6, data_rng);
  const std::vector<int> served_preds = served->predict(batch, 0);

  // Local ground truth: same checkpoint, quantized in-process.  q8 forward
  // is bit-deterministic, so predictions must agree exactly.
  Rng rng2(99);  // weights are overwritten by the checkpoint load
  auto local = models::build_model(models::Arch::kConvNet, cfg, rng2);
  nn::load_checkpoint(*local, path);
  local->quantize_for_inference();
  const Tensor logits = local->logits(batch, /*training=*/false);
  ASSERT_EQ(served_preds.size(), batch.dim(0));
  for (std::size_t b = 0; b < batch.dim(0); ++b) {
    int best = 0;
    for (std::size_t c = 1; c < cfg.num_classes; ++c) {
      if (logits.data()[b * cfg.num_classes + c] >
          logits.data()[b * cfg.num_classes + best]) {
        best = static_cast<int>(c);
      }
    }
    EXPECT_EQ(served_preds[b], best) << "sample " << b;
  }
  std::remove(path.c_str());
}

TEST(Quant, MeasureQuantizedChangesCellIdentity) {
  // Quantized predictions are part of a cell's computed bits, so flipping
  // measure_quantized must move the cell to a new identity — old fp32
  // journals stay valid, quantized runs never collide with them.
  study::StudySpec spec = study::preset_spec("smoke");
  study::Cell cell;  // first cell of the grid
  const std::string fp32_id = study::cell_id(spec, cell);
  spec.measure_quantized = true;
  const std::string q8_id = study::cell_id(spec, cell);
  EXPECT_NE(fp32_id, q8_id);
  EXPECT_NE(study::cell_canonical(spec, cell)
                .find("|quantized=1"),
            std::string::npos);
}

}  // namespace
}  // namespace tdfm
