// Kernel checker: every dispatchable kernel vs the scalar reference.
//
// Covers the three fp32 GEMM variants, the im2col conv inner loop, and the
// q8_0 quantized matmul, over degenerate shapes (m/n/k = 1, reduction
// lengths straddling the 32-element q8 block size) plus randomized shapes.
// Also pins the determinism contract from kernels/kernels.hpp: within one
// kernel choice, results are bit-identical across row partitions and thread
// counts; the q8 kernel is bit-identical across kernel choices too.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "checker.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "kernels/quant.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/qgemm.hpp"

namespace tdfm {
namespace {

using kernels_test::expect_allclose;

struct GemmShape {
  std::size_t m, n, k;
};

/// Degenerate shapes first (every dimension hits 1; k straddles the q8
/// block size and the 8/16-wide vector strips), then randomized ones.
std::vector<GemmShape> checker_shapes() {
  std::vector<GemmShape> shapes = {
      {1, 1, 1},  {1, 5, 3},  {7, 1, 9},   {5, 8, 1},    {8, 8, 31},
      {8, 8, 32}, {8, 8, 33}, {9, 7, 64},  {16, 16, 40}, {1, 1, 257},
  };
  std::mt19937 gen(42);
  std::uniform_int_distribution<std::size_t> dim(1, 70);
  for (int i = 0; i < 10; ++i) shapes.push_back({dim(gen), dim(gen), dim(gen)});
  return shapes;
}

std::vector<float> random_matrix(std::size_t n, Rng& rng) {
  std::vector<float> m(n);
  for (auto& x : m) x = rng.normal();
  return m;
}

kernels::GemmRowsFn variant_fn(const kernels::KernelTable& table, int variant) {
  switch (variant) {
    case 0: return table.nn;
    case 1: return table.nt;
    default: return table.tn;
  }
}

constexpr const char* kVariantNames[] = {"nn", "nt", "tn"};

/// Restores the active kernel (and lets a test switch it) RAII-style, so a
/// failing assertion cannot leak a forced kernel into later tests.
class KernelGuard {
 public:
  KernelGuard() : saved_(kernels::active_kernel()) {}
  ~KernelGuard() { kernels::set_active_kernel(saved_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  kernels::KernelKind saved_;
};

/// Same, for the global thread count.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(core::ThreadPool::global_threads()) {}
  ~ThreadGuard() { core::ThreadPool::set_global_threads(saved_); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  std::size_t saved_;
};

TEST(KernelChecker, Fp32VariantsMatchScalarReference) {
  const auto& ref_table = kernels::kernel_table(kernels::KernelKind::kScalar);
  for (const GemmShape& s : checker_shapes()) {
    Rng rng(s.m * 10007 + s.n * 101 + s.k);
    // One operand pool per shape: big enough for every variant's layout
    // (nn: A[m,k] B[k,n]; nt: B[n,k]; tn: A[k,m]).
    const auto a = random_matrix(s.m * s.k, rng);
    const auto b = random_matrix(s.k * s.n, rng);
    const auto c0 = random_matrix(s.m * s.n, rng);  // accumulate seed
    for (const kernels::KernelKind kind : kernels::supported_kernels()) {
      if (kind == kernels::KernelKind::kScalar) continue;
      const auto& table = kernels::kernel_table(kind);
      for (int v = 0; v < 3; ++v) {
        for (const bool accumulate : {false, true}) {
          std::vector<float> got = c0;
          std::vector<float> ref = c0;
          variant_fn(table, v)(0, s.m, s.m, s.n, s.k, a.data(), b.data(),
                               got.data(), accumulate);
          variant_fn(ref_table, v)(0, s.m, s.m, s.n, s.k, a.data(), b.data(),
                                   ref.data(), accumulate);
          expect_allclose(
              got.data(), ref.data(), s.m * s.n, s.k,
              std::string(kernels::kernel_name(kind)) + " " +
                  kVariantNames[v] + (accumulate ? "+acc" : "") + " m=" +
                  std::to_string(s.m) + " n=" + std::to_string(s.n) +
                  " k=" + std::to_string(s.k));
        }
      }
    }
  }
}

TEST(KernelChecker, RowPartitionIsBitIdentical) {
  // The contract behind thread-safety of results: computing [0, m) in one
  // call must equal computing it as arbitrary row chunks, bit for bit.
  const GemmShape s{23, 37, 65};
  Rng rng(7);
  const auto a = random_matrix(s.m * s.k, rng);
  const auto b = random_matrix(s.k * s.n, rng);
  for (const kernels::KernelKind kind : kernels::supported_kernels()) {
    const auto& table = kernels::kernel_table(kind);
    for (int v = 0; v < 3; ++v) {
      std::vector<float> whole(s.m * s.n);
      std::vector<float> chunked(s.m * s.n);
      const auto fn = variant_fn(table, v);
      fn(0, s.m, s.m, s.n, s.k, a.data(), b.data(), whole.data(), false);
      const std::size_t cuts[] = {0, 5, 6, 17, s.m};
      for (std::size_t i = 0; i + 1 < std::size(cuts); ++i) {
        fn(cuts[i], cuts[i + 1], s.m, s.n, s.k, a.data(), b.data(),
           chunked.data(), false);
      }
      EXPECT_EQ(0, std::memcmp(whole.data(), chunked.data(),
                               whole.size() * sizeof(float)))
          << kernels::kernel_name(kind) << " " << kVariantNames[v];
    }
  }
}

TEST(KernelChecker, ConvIm2colInnerLoopMatchesScalar) {
  // The conv forward path is im2col followed by a [out_c, C*k*k] x
  // [C*k*k, oh*ow] nn GEMM; check that GEMM across kernels on real patch
  // data (zero-padded borders included).
  ConvGeometry g;
  g.in_c = 3;
  g.in_h = g.in_w = 11;  // odd spatial size: border taps out of bounds
  g.kernel = 3;
  g.stride = 2;
  g.pad = 1;
  const std::size_t out_c = 9;
  Rng rng(11);
  const auto image = random_matrix(g.in_c * g.in_h * g.in_w, rng);
  const auto weight = random_matrix(out_c * g.patch_rows(), rng);
  std::vector<float> columns(g.patch_rows() * g.patch_cols());
  im2col(g, image.data(), columns.data());

  const std::size_t m = out_c, n = g.patch_cols(), k = g.patch_rows();
  std::vector<float> ref(m * n);
  kernels::kernel_table(kernels::KernelKind::kScalar)
      .nn(0, m, m, n, k, weight.data(), columns.data(), ref.data(), false);
  for (const kernels::KernelKind kind : kernels::supported_kernels()) {
    std::vector<float> got(m * n);
    kernels::kernel_table(kind).nn(0, m, m, n, k, weight.data(),
                                   columns.data(), got.data(), false);
    expect_allclose(got.data(), ref.data(), m * n, k,
                    std::string("conv im2col gemm, ") +
                        kernels::kernel_name(kind));
  }
}

TEST(KernelChecker, Im2rowIsIm2colTranspose) {
  // im2row feeds the quantized conv path; it must be exactly the transpose
  // of im2col (same taps, (c, ky, kx) order along rows).
  ConvGeometry g;
  g.in_c = 2;
  g.in_h = 7;
  g.in_w = 9;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  Rng rng(13);
  const auto image = random_matrix(g.in_c * g.in_h * g.in_w, rng);
  const std::size_t pr = g.patch_rows(), pc = g.patch_cols();
  std::vector<float> columns(pr * pc), rows(pc * pr);
  im2col(g, image.data(), columns.data());
  im2row(g, image.data(), rows.data());
  for (std::size_t r = 0; r < pr; ++r) {
    for (std::size_t c = 0; c < pc; ++c) {
      ASSERT_EQ(columns[r * pc + c], rows[c * pr + r])
          << "tap " << r << ", pixel " << c;
    }
  }
}

TEST(KernelChecker, DispatchedGemmBitIdenticalAcrossThreadCounts) {
  // The threaded entry points (tensor/gemm.hpp) chunk rows across the pool;
  // within one kernel choice the result must not depend on the chunking.
  KernelGuard kernel_guard;
  ThreadGuard thread_guard;
  const GemmShape s{33, 29, 77};
  Rng rng(17);
  const auto a = random_matrix(s.m * s.k, rng);
  const auto b = random_matrix(s.k * s.n, rng);
  for (const kernels::KernelKind kind : kernels::supported_kernels()) {
    kernels::set_active_kernel(kind);
    std::vector<std::vector<float>> by_threads;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      core::ThreadPool::set_global_threads(threads);
      std::vector<float> nn(s.m * s.n), nt(s.m * s.n), tn(s.m * s.n);
      gemm_nn(s.m, s.n, s.k, a.data(), b.data(), nn.data());
      gemm_nt(s.m, s.n, s.k, a.data(), b.data(), nt.data());
      gemm_tn(s.m, s.n, s.k, a.data(), b.data(), tn.data());
      std::vector<float> all;
      all.insert(all.end(), nn.begin(), nn.end());
      all.insert(all.end(), nt.begin(), nt.end());
      all.insert(all.end(), tn.begin(), tn.end());
      by_threads.push_back(std::move(all));
    }
    EXPECT_EQ(0, std::memcmp(by_threads[0].data(), by_threads[1].data(),
                             by_threads[0].size() * sizeof(float)))
        << kernels::kernel_name(kind) << ": 1 vs 4 threads";
  }
}

TEST(KernelChecker, QuantizedMatmulBitIdenticalAcrossKernelsAndThreads) {
  // The q8 contract is stronger than fp32: exact integer block dots plus a
  // fixed float accumulation order make the result one canonical bit
  // pattern, whatever kernel or thread count produced it.
  KernelGuard kernel_guard;
  ThreadGuard thread_guard;
  for (const GemmShape& s : checker_shapes()) {
    Rng rng(s.m + 31 * s.n + 997 * s.k);
    const auto a = random_matrix(s.m * s.k, rng);
    const auto b = random_matrix(s.n * s.k, rng);  // nt layout: B[n, k]
    const kernels::Q8Matrix qa = kernels::quantize_rows_q8(a.data(), s.m, s.k);
    const kernels::Q8Matrix qb = kernels::quantize_rows_q8(b.data(), s.n, s.k);

    std::vector<float> canonical(s.m * s.n);
    kernels::kernel_table(kernels::KernelKind::kScalar)
        .q8_nt(0, s.m, s.n, qa.blocks_per_row, qa.data.data(),
               qa.scales.data(), qb.data.data(), qb.scales.data(),
               canonical.data());
    for (const kernels::KernelKind kind : kernels::supported_kernels()) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        kernels::set_active_kernel(kind);
        core::ThreadPool::set_global_threads(threads);
        std::vector<float> got(s.m * s.n);
        gemm_q8_nt(qa, qb, got.data());
        EXPECT_EQ(0, std::memcmp(canonical.data(), got.data(),
                                 got.size() * sizeof(float)))
            << kernels::kernel_name(kind) << " threads=" << threads
            << " m=" << s.m << " n=" << s.n << " k=" << s.k;
      }
    }
  }
}

}  // namespace
}  // namespace tdfm
