// Sharded multi-process campaigns: hash partitioning, journal merge,
// crash-recovery resume, and work stealing (src/study/{spec,journal,runner}).
//
// These are the in-process halves of the shard protocol; the process-level
// half (3 real worker processes + merge == 1 process, byte for byte) runs as
// the study_shard_smoke ctest via scripts/study_shard_smoke.sh.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "study/study.hpp"

namespace tdfm::study {
namespace {

/// Seconds-scale grid (same shape as campaign_test's): 6 cells.  `seed`
/// discriminates dataset-cache entries between tests.
StudySpec tiny_campaign(std::uint64_t seed) {
  StudySpec spec;
  spec.name = "shard-test";
  spec.datasets = {data::DatasetKind::kPneumoniaSim};
  spec.models = {models::Arch::kConvNet};
  spec.fault_levels = {{faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};
  spec.techniques = {mitigation::TechniqueKind::kBaseline,
                     mitigation::TechniqueKind::kLabelSmoothing,
                     mitigation::TechniqueKind::kEnsemble};
  spec.trials = 2;
  spec.scale = 0.5;
  spec.model_width = 4;
  spec.seed = seed;
  spec.train_opts.epochs = 2;
  spec.train_opts.batch_size = 16;
  spec.hyperparams.ens_members = {models::Arch::kConvNet};
  spec.tune_small_datasets = false;
  return spec;
}

std::string temp_journal(const std::string& name) {
  const std::string path = testing::TempDir() + "tdfm_shard_" + name + ".jsonl";
  std::remove(path.c_str());
  return path;
}

void expect_equal_modulo_timing(const std::vector<CellRecord>& a,
                                const std::vector<CellRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(equal_modulo_timing(a[i], b[i]))
        << "cell " << a[i].cell << " differs beyond timing";
  }
}

TEST(Shard, PartitionIsCompleteStableAndValidated) {
  EXPECT_THROW((void)shard_of("abc", 0), ConfigError);
  EXPECT_EQ(shard_of("anything", 1), 0u);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "cell" + std::to_string(i);
    const std::size_t s = shard_of(id, 7);
    EXPECT_LT(s, 7u);
    EXPECT_EQ(s, shard_of(id, 7)) << "partition must be deterministic";
  }
  // The partition actually spreads (not everything on one shard).
  std::set<std::size_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(shard_of("cell" + std::to_string(i), 7));
  EXPECT_GT(seen.size(), 1u);
}

TEST(Shard, MergeDeduplicatesAndIsByteStable) {
  CellRecord a;
  a.cell = "aaaaaaaaaaaaaaaa";
  a.ad = 0.25;
  CellRecord b = a;
  b.cell = "bbbbbbbbbbbbbbbb";
  CellRecord c = a;
  c.cell = "cccccccccccccccc";
  CellRecord a_retimed = a;  // a computed twice (work stealing): timing-only
  a_retimed.train_seconds = 99.0;

  const std::string j1 = temp_journal("merge1");
  const std::string j2 = temp_journal("merge2");
  write_journal(j1, {b, a});
  write_journal(j2, {a_retimed, c});

  const MergeResult forward = merge_journals({j1, j2});
  EXPECT_EQ(forward.inputs, 4u);
  EXPECT_EQ(forward.duplicates, 1u);
  ASSERT_EQ(forward.records.size(), 3u);
  // Ordered by cell id, independent of journal order and count.
  EXPECT_EQ(forward.records[0].cell, a.cell);
  EXPECT_EQ(forward.records[1].cell, b.cell);
  EXPECT_EQ(forward.records[2].cell, c.cell);

  const MergeResult reverse = merge_journals({j2, j1});
  EXPECT_EQ(forward.records, reverse.records)
      << "merge must be a pure function of the record set";

  // And the serialised journal is byte-identical either way.
  const std::string out1 = temp_journal("merge_out1");
  const std::string out2 = temp_journal("merge_out2");
  write_journal(out1, forward.records);
  write_journal(out2, reverse.records);
  std::ifstream f1(out1, std::ios::binary), f2(out2, std::ios::binary);
  const std::string bytes1((std::istreambuf_iterator<char>(f1)), {});
  const std::string bytes2((std::istreambuf_iterator<char>(f2)), {});
  EXPECT_EQ(bytes1, bytes2);
  for (const auto& p : {j1, j2, out1, out2}) std::remove(p.c_str());
}

TEST(Shard, MergeMissingJournalReadsAsEmpty) {
  // A shard that owned zero cells never creates its journal file.
  CellRecord a;
  a.cell = "aaaaaaaaaaaaaaaa";
  const std::string j1 = temp_journal("merge_present");
  write_journal(j1, {a});
  const MergeResult merged =
      merge_journals({j1, temp_journal("merge_never_written")});
  EXPECT_EQ(merged.records.size(), 1u);
  std::remove(j1.c_str());
}

TEST(Shard, MergeConflictBeyondTimingThrows) {
  CellRecord a;
  a.cell = "aaaaaaaaaaaaaaaa";
  a.ad = 0.25;
  CellRecord a_conflict = a;
  a_conflict.ad = 0.5;  // same cell id, different computed bits: a real bug
  const std::string j1 = temp_journal("conflict1");
  const std::string j2 = temp_journal("conflict2");
  write_journal(j1, {a});
  write_journal(j2, {a_conflict});
  try {
    (void)merge_journals({j1, j2});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(a.cell), std::string::npos)
        << "the conflict message names the cell";
  }
  std::remove(j1.c_str());
  std::remove(j2.c_str());
}

// Tentpole: N shard runs cover the grid disjointly, and merging their
// journals reproduces the single-process campaign — records equal modulo
// timing, analyzer report byte-identical.
TEST(Shard, ThreeShardsMergeToTheSingleProcessResult) {
  const StudySpec spec = tiny_campaign(601);
  RunOptions single;
  single.jobs = 2;
  const CampaignResult base = run_campaign(spec, single);
  ASSERT_EQ(base.records.size(), spec.cell_count());

  constexpr std::size_t kShards = 3;
  std::vector<std::string> paths;
  std::size_t executed_total = 0;
  std::set<std::string> covered;
  for (std::size_t i = 0; i < kShards; ++i) {
    paths.push_back(temp_journal("grid_shard" + std::to_string(i)));
    RunOptions shard;
    shard.jobs = 2;
    shard.journal_path = paths.back();
    shard.shard_index = i;
    shard.shard_count = kShards;
    const CampaignResult part = run_campaign(spec, shard);
    executed_total += part.executed;
    EXPECT_EQ(part.stolen, 0u);
    for (const CellRecord& r : part.records) {
      EXPECT_EQ(shard_of(r.cell, kShards), i)
          << "a shard must only compute its own cells";
      EXPECT_TRUE(covered.insert(r.cell).second)
          << "shards overlapped on cell " << r.cell;
    }
  }
  EXPECT_EQ(executed_total, spec.cell_count());
  EXPECT_EQ(covered.size(), spec.cell_count());

  const MergeResult merged = merge_journals(paths);
  EXPECT_EQ(merged.duplicates, 0u);
  ASSERT_EQ(merged.records.size(), spec.cell_count());

  // Reassemble in expansion order (what study_runner's reporting does) and
  // compare against the single-process run: same records modulo timing,
  // byte-identical analyzer report.
  std::map<std::string, std::size_t> expansion_rank;
  const auto cells = expand_cells(spec);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expansion_rank.emplace(cell_id(spec, cells[i]), i);
  }
  std::vector<CellRecord> merged_sorted = merged.records;
  std::sort(merged_sorted.begin(), merged_sorted.end(),
            [&](const CellRecord& x, const CellRecord& y) {
              return expansion_rank.at(x.cell) < expansion_rank.at(y.cell);
            });
  expect_equal_modulo_timing(base.records, merged_sorted);
  EXPECT_EQ(render_csv(summarize_campaign(base.records)),
            render_csv(summarize_campaign(merged_sorted)));

  for (const auto& p : paths) std::remove(p.c_str());
}

// Tentpole acceptance: a journal whose tail was torn by a kill -9 resumes
// losing at most the one in-flight cell.
TEST(Shard, TruncatedTailResumeLosesAtMostOneCell) {
  const StudySpec spec = tiny_campaign(602);
  const std::string path = temp_journal("truncated");
  RunOptions run;
  run.jobs = 1;
  run.journal_path = path;
  const CampaignResult full = run_campaign(spec, run);
  ASSERT_EQ(full.executed, spec.cell_count());

  // Tear the final record mid-line, as an interrupted append would.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::size_t last_line_start = bytes.rfind('\n', bytes.size() - 2) + 1;
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bytes.substr(0, last_line_start + 40);  // torn: mid-record, no \n
  }

  RunOptions resume = run;
  resume.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume);
  EXPECT_EQ(resumed.skipped, spec.cell_count() - 1)
      << "every fully-journaled cell survives the torn tail";
  EXPECT_EQ(resumed.executed, 1u) << "only the torn cell is recomputed";
  expect_equal_modulo_timing(full.records, resumed.records);
  std::remove(path.c_str());
}

// Work stealing: an idle shard picks up grid cells no sibling journal has
// recorded.  Sibling cells already journaled are respected; everything else
// is claimed, so one surviving shard can finish the whole grid.
TEST(Shard, WorkStealingClaimsOnlyUnjournaledCells) {
  const StudySpec spec = tiny_campaign(603);
  constexpr std::size_t kShards = 3;

  // Seed 603 was picked so every shard owns at least one cell (the
  // partition is a pure function of cell content, so this is stable).
  std::vector<std::size_t> owned(kShards, 0);
  for (const Cell& c : expand_cells(spec)) {
    ++owned[shard_of(cell_id(spec, c), kShards)];
  }
  for (std::size_t i = 0; i < kShards; ++i) {
    ASSERT_GT(owned[i], 0u) << "pick a different spec seed";
  }

  // Shard 1 runs normally first (its journal exists and is complete).
  const std::string j1 = temp_journal("steal_s1");
  RunOptions shard1;
  shard1.jobs = 1;
  shard1.journal_path = j1;
  shard1.shard_index = 1;
  shard1.shard_count = kShards;
  const CampaignResult r1 = run_campaign(spec, shard1);

  // Shard 0 then runs with stealing: it must compute its own cells plus
  // shard 2's (never started), and must NOT recompute shard 1's.
  const std::string j0 = temp_journal("steal_s0");
  RunOptions shard0 = shard1;
  shard0.journal_path = j0;
  shard0.shard_index = 0;
  shard0.work_steal = true;
  shard0.sibling_journals = {j1, temp_journal("steal_s2_never_started")};
  const CampaignResult r0 = run_campaign(spec, shard0);

  EXPECT_EQ(r1.executed, owned[1]);
  EXPECT_EQ(r0.stolen, owned[2]) << "exactly shard 2's cells get stolen";
  EXPECT_EQ(r0.executed, owned[0] + owned[2]);
  for (const CellRecord& r : r0.records) {
    EXPECT_NE(shard_of(r.cell, kShards), 1u)
        << "stealing recomputed a cell shard 1 already journaled";
  }

  // The two journals merge into the full grid.
  const MergeResult merged = merge_journals({j0, j1});
  EXPECT_EQ(merged.records.size(), spec.cell_count());
  EXPECT_EQ(merged.duplicates, 0u);
  std::remove(j0.c_str());
  std::remove(j1.c_str());
}

TEST(Shard, DiscoverFindsACompleteSiblingSetInIndexOrder) {
  const std::string dir = testing::TempDir() + "tdfm_shard_discover";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/fig4.jsonl";
  // Created out of order; discovery must return index order.
  for (const int i : {2, 0, 1}) {
    std::ofstream(base + ".shard" + std::to_string(i) + "of3.jsonl") << "";
  }
  std::ofstream(base) << "";                        // the base is not a shard
  std::ofstream(dir + "/other.jsonl.shard0of2.jsonl") << "";  // foreign base

  const std::vector<std::string> found = discover_shard_journals(base);
  ASSERT_EQ(found.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(found[i], base + ".shard" + std::to_string(i) + "of3.jsonl");
  }
  EXPECT_TRUE(discover_shard_journals(dir + "/missing.jsonl").empty());
}

TEST(Shard, DiscoverRejectsIncompleteOrInconsistentSets) {
  const std::string dir = testing::TempDir() + "tdfm_shard_discover_bad";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/fig4.jsonl";
  std::ofstream(base + ".shard0of3.jsonl") << "";
  std::ofstream(base + ".shard2of3.jsonl") << "";
  // A hole (shard 1 missing) would silently merge a partial campaign.
  EXPECT_THROW((void)discover_shard_journals(base), ConfigError);
  // Two campaigns' shard sets under one name disagree on N.
  std::ofstream(base + ".shard1of3.jsonl") << "";
  std::ofstream(base + ".shard0of2.jsonl") << "";
  EXPECT_THROW((void)discover_shard_journals(base), ConfigError);
}

TEST(Shard, InvalidShardOptionsThrow) {
  const StudySpec spec = tiny_campaign(604);
  RunOptions bad;
  bad.shard_count = 3;
  bad.shard_index = 3;
  bad.journal_path = temp_journal("invalid");
  EXPECT_THROW((void)run_campaign(spec, bad), InvariantError);
  bad.shard_index = 0;
  bad.journal_path.clear();
  EXPECT_THROW((void)run_campaign(spec, bad), InvariantError)
      << "a sharded run without a journal has no output";
  RunOptions steal_unsharded;
  steal_unsharded.work_steal = true;
  EXPECT_THROW((void)run_campaign(spec, steal_unsharded), InvariantError);
}

}  // namespace
}  // namespace tdfm::study
