// End-to-end campaign scheduling: determinism across job counts and
// execution order, journal resume, compute-once caches, and the analyzer
// fold (src/study/runner.hpp, analyzer.hpp, dataset_cache.hpp).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../obs/json_check.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "study/study.hpp"

namespace tdfm::study {
namespace {

/// A seconds-scale grid: tiny pneumonia dataset, shallow models, one fault
/// level.  `seed` doubles as the dataset-cache key discriminator, so each
/// test that asserts on cache counters uses its own seed.
StudySpec tiny_campaign(std::uint64_t seed,
                        std::vector<models::Arch> model_axis = {
                            models::Arch::kConvNet}) {
  StudySpec spec;
  spec.name = "test";
  spec.datasets = {data::DatasetKind::kPneumoniaSim};
  spec.models = std::move(model_axis);
  spec.fault_levels = {{faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};
  spec.techniques = {mitigation::TechniqueKind::kBaseline,
                     mitigation::TechniqueKind::kLabelSmoothing,
                     mitigation::TechniqueKind::kEnsemble};
  spec.trials = 2;
  spec.scale = 0.5;
  spec.model_width = 4;
  spec.seed = seed;
  spec.train_opts.epochs = 2;
  spec.train_opts.batch_size = 16;
  spec.hyperparams.ens_members = {models::Arch::kConvNet};
  spec.tune_small_datasets = false;
  return spec;
}

std::string temp_journal(const std::string& name) {
  const std::string path =
      testing::TempDir() + "tdfm_campaign_" + name + ".jsonl";
  std::remove(path.c_str());
  return path;
}

void expect_equal_modulo_timing(const std::vector<CellRecord>& a,
                                const std::vector<CellRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(equal_modulo_timing(a[i], b[i]))
        << "cell " << a[i].cell << " differs beyond timing";
  }
}

TEST(OnceMap, ComputesEachKeyOnceAcrossThreads) {
  OnceMap<int> map;
  std::atomic<int> factory_runs{0};
  std::vector<std::thread> threads;
  std::atomic<int> sum{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const int v = map.get(42, [&] {
        factory_runs.fetch_add(1);
        return 7;
      });
      sum.fetch_add(v);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(factory_runs.load(), 1);
  EXPECT_EQ(sum.load(), 8 * 7);
  EXPECT_EQ(map.misses(), 1u);
  EXPECT_EQ(map.hits(), 7u);
}

TEST(OnceMap, FailedFactoryAllowsRetry) {
  OnceMap<int> map;
  EXPECT_THROW((void)map.get(1, []() -> int { throw ConfigError("boom"); }),
               ConfigError);
  bool computed = false;
  EXPECT_EQ(map.get(1, [] { return 5; }, &computed), 5);
  EXPECT_TRUE(computed);
}

// Satellite: the same spec at --jobs 1 and --jobs 4 (and in shuffled cell
// order) produces identical journal records modulo timing fields.
TEST(Campaign, BitIdenticalAcrossJobsAndExecutionOrder) {
  const StudySpec spec = tiny_campaign(101, {models::Arch::kConvNet,
                                             models::Arch::kDeconvNet});
  RunOptions serial;
  serial.jobs = 1;
  const CampaignResult base = run_campaign(spec, serial);
  ASSERT_EQ(base.records.size(), spec.cell_count());

  RunOptions wild;
  wild.jobs = 4;
  wild.shuffle_seed = 99;
  const CampaignResult shuffled = run_campaign(spec, wild);
  expect_equal_modulo_timing(base.records, shuffled.records);

  // And the default report is byte-identical, timings excluded.
  const auto summary_a = summarize_campaign(base.records);
  const auto summary_b = summarize_campaign(shuffled.records);
  EXPECT_EQ(render_csv(summary_a), render_csv(summary_b));
  EXPECT_EQ(render_ascii(summary_a), render_ascii(summary_b));
  EXPECT_EQ(render_json_summary(summary_a), render_json_summary(summary_b));
}

// Satellite: a partial journal resumes without recomputing journaled cells,
// and the merged report equals a from-scratch run bit-for-bit.
TEST(Campaign, ResumeSkipsJournaledCellsAndReportMatches) {
  const StudySpec spec = tiny_campaign(102);
  const std::string full_path = temp_journal("full");
  RunOptions full_run;
  full_run.jobs = 2;
  full_run.journal_path = full_path;
  const CampaignResult full = run_campaign(spec, full_run);
  EXPECT_EQ(full.executed, spec.cell_count());
  EXPECT_EQ(full.skipped, 0u);

  // Simulate a kill after 3 cells: a journal holding only a prefix.
  const auto journaled = Journal::load(full_path);
  ASSERT_EQ(journaled.size(), spec.cell_count());
  const std::string partial_path = temp_journal("partial");
  {
    Journal partial(partial_path);
    for (std::size_t i = 0; i < 3; ++i) partial.append(journaled[i]);
  }

  RunOptions resume_run;
  resume_run.jobs = 2;
  resume_run.journal_path = partial_path;
  resume_run.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume_run);
  EXPECT_EQ(resumed.skipped, 3u);
  EXPECT_EQ(resumed.executed, spec.cell_count() - 3);
  expect_equal_modulo_timing(full.records, resumed.records);
  EXPECT_EQ(render_csv(summarize_campaign(full.records)),
            render_csv(summarize_campaign(resumed.records)));

  // The resumed journal now covers the whole grid (adopted + appended).
  EXPECT_EQ(Journal::load(partial_path).size(), spec.cell_count());
  std::remove(full_path.c_str());
  std::remove(partial_path.c_str());
}

TEST(Campaign, ResumeWithFullJournalRecomputesNothing) {
  const StudySpec spec = tiny_campaign(103);
  const std::string path = temp_journal("noop");
  RunOptions run;
  run.jobs = 1;
  run.journal_path = path;
  const CampaignResult first = run_campaign(spec, run);
  run.resume = true;
  const CampaignResult second = run_campaign(spec, run);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.skipped, spec.cell_count());
  EXPECT_EQ(second.records, first.records)
      << "adopted records carry their original timings";
  std::remove(path.c_str());
}

TEST(Campaign, CachesShareWorkWithoutChangingResults) {
  obs::set_metrics_enabled(true);
  const StudySpec spec = tiny_campaign(104, {models::Arch::kConvNet,
                                             models::Arch::kDeconvNet});
  RunOptions run;
  run.jobs = 4;
  const CampaignResult result = run_campaign(spec, run);
  obs::set_metrics_enabled(false);

  // Dataset: one generate() for the whole grid, every other cell hits.
  EXPECT_EQ(result.dataset_cache.misses, 1u);
  EXPECT_EQ(result.dataset_cache.hits + result.dataset_cache.misses,
            spec.cell_count());
  // Golden: one fit per (model, trial) = 4 misses, shared by 12 cells.
  EXPECT_EQ(result.golden_cache.misses, 2u * 2u);
  EXPECT_EQ(result.golden_cache.hits + result.golden_cache.misses,
            spec.cell_count());
  // Ensemble fit: shared across the two model panels -> per trial one miss,
  // one hit; only ensemble cells consult this cache.
  EXPECT_EQ(result.shared_fit_cache.misses, 2u);
  EXPECT_EQ(result.shared_fit_cache.hits, 2u);

  // Cache hits are observable through the obs metrics registry (acceptance
  // criterion: "dataset-cache hits observable via obs metrics registry").
  EXPECT_GE(obs::Registry::global().counter("study.dataset_cache.hits").value(),
            result.dataset_cache.hits);
  EXPECT_GE(
      obs::Registry::global().counter("study.golden_cache.misses").value(),
      result.golden_cache.misses);

  // Sharing must not perturb bits: every ensemble record of a trial agrees
  // on faulty accuracy across panels (identical predictions, same data).
  for (const CellRecord& a : result.records) {
    if (a.technique != "Ens") continue;
    EXPECT_TRUE(a.shared_fit);
    for (const CellRecord& b : result.records) {
      if (b.technique == "Ens" && b.trial == a.trial) {
        EXPECT_DOUBLE_EQ(a.faulty_accuracy, b.faulty_accuracy);
      }
    }
  }
}

TEST(Campaign, AnalyzerFoldsRecordsIntoPaperAggregates) {
  const StudySpec spec = tiny_campaign(105);
  const CampaignResult result = run_campaign(spec, {});
  const CampaignSummary summary = summarize_campaign(result.records);
  EXPECT_EQ(summary.total_records, spec.cell_count());
  EXPECT_EQ(summary.datasets, std::vector<std::string>{"pneumonia-sim"});
  EXPECT_EQ(summary.techniques,
            (std::vector<std::string>{"Base", "LS", "Ens"}));
  ASSERT_EQ(summary.groups.size(), 3u);  // 1 dataset x 1 model x 1 level x 3
  for (const GroupStats& g : summary.groups) {
    EXPECT_EQ(g.trials, 2u);
    EXPECT_GE(g.ad.ci95_half_width, 0.0);
  }
  // Mean ranks cover all techniques, averaging to (k+1)/2.
  ASSERT_EQ(summary.technique_summaries.size(), 3u);
  double rank_sum = 0.0;
  for (const TechniqueSummary& t : summary.technique_summaries) {
    EXPECT_EQ(t.contexts, 1u);
    rank_sum += t.mean_rank;
  }
  EXPECT_DOUBLE_EQ(rank_sum, 6.0);
  EXPECT_LE(summary.technique_summaries.front().mean_rank,
            summary.technique_summaries.back().mean_rank);

  // Renderings: valid JSON, CSV row count, markdown table markers, and the
  // timings opt-in actually changes the output.
  EXPECT_TRUE(
      test::JsonChecker(render_json_summary(summary)).valid());
  const std::string csv = render_csv(summary);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3 groups
  const std::string markdown = render_markdown(summary);
  EXPECT_NE(markdown.find("| fault level"), std::string::npos);
  EXPECT_NE(markdown.find("|---"), std::string::npos);
  ReportOptions with_timings;
  with_timings.include_timings = true;
  EXPECT_NE(render_ascii(summary, with_timings),
            render_ascii(summary, ReportOptions{}));
}

TEST(Campaign, ResumeRequiresAJournalPath) {
  const StudySpec spec = tiny_campaign(106);
  RunOptions run;
  run.resume = true;
  EXPECT_THROW((void)run_campaign(spec, run), InvariantError);
}

TEST(Campaign, FailingCellSurfacesTheError) {
  StudySpec spec = tiny_campaign(107);
  spec.hyperparams.ens_members = {};  // default five members
  spec.trials = 1;
  // Sabotage: an out-of-range fault percentage throws inside the injector,
  // on a worker thread; the scheduler must surface it to the caller.
  spec.fault_levels = {{faults::FaultSpec{faults::FaultType::kMislabelling, 170.0}}};
  RunOptions run;
  run.jobs = 2;
  EXPECT_THROW((void)run_campaign(spec, run), InvariantError);
}

}  // namespace
}  // namespace tdfm::study
