// Campaign ↔ observability-plane integration, in-process: a sharded
// campaign exports snapshots whose aggregated counters equal the full grid,
// and study::summarize_progress folds them into the --progress view.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "study/progress.hpp"
#include "study/study.hpp"

namespace tdfm::study {
namespace {

/// Seconds-scale grid (same shape as shard_test's): 6 cells.
StudySpec tiny_campaign(std::uint64_t seed) {
  StudySpec spec;
  spec.name = "obs-plane-test";
  spec.datasets = {data::DatasetKind::kPneumoniaSim};
  spec.models = {models::Arch::kConvNet};
  spec.fault_levels = {{faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};
  spec.techniques = {mitigation::TechniqueKind::kBaseline,
                     mitigation::TechniqueKind::kLabelSmoothing,
                     mitigation::TechniqueKind::kEnsemble};
  spec.trials = 2;
  spec.scale = 0.5;
  spec.model_width = 4;
  spec.seed = seed;
  spec.train_opts.epochs = 2;
  spec.train_opts.batch_size = 16;
  spec.hyperparams.ens_members = {models::Arch::kConvNet};
  spec.tune_small_datasets = false;
  return spec;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "tdfm_obs_campaign_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Runs the tiny grid as 3 sequential in-process "shards", snapshotting each
// shard's registry delta the way 3 worker processes would export theirs,
// then checks the aggregate sees the whole campaign.  (The process-level
// version of this — 3 real workers, one obs dir — runs in the shard smoke
// script.)
TEST(ObsCampaign, AggregatedShardCountersCoverTheGrid) {
  const StudySpec spec = tiny_campaign(701);
  const std::string dir = temp_dir("agg");
  obs::set_metrics_enabled(true);

  std::size_t executed_total = 0;
  std::vector<obs::MetricsSnapshot> exported;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    obs::Registry::global().reset_values();  // isolate this "process"
    RunOptions run;
    run.jobs = 1;
    run.shard_index = shard;
    run.shard_count = 3;
    run.journal_path = dir + "/shard" + std::to_string(shard) + ".jsonl";
    const CampaignResult result = run_campaign(spec, run);
    executed_total += result.executed;

    obs::SnapshotMeta meta;
    meta.pid = 9000 + static_cast<std::int64_t>(shard);  // stand-in worker pid
    meta.shard_index = shard;
    meta.shard_count = 3;
    meta.seq = 1;
    meta.label = "shard " + std::to_string(shard) + "/3";
    meta.grid_cells = spec.cell_count();
    meta.cells_done = result.executed + result.skipped;
    meta.cells_executed = result.executed;
    meta.elapsed_seconds = std::max(result.elapsed_seconds, 1e-9);
    const obs::MetricsSnapshot snap = obs::collect_snapshot(meta);
    obs::write_snapshot_atomic(obs::snapshot_path(dir, meta.pid), snap);
    exported.push_back(snap);
  }
  obs::set_metrics_enabled(false);
  EXPECT_EQ(executed_total, spec.cell_count());  // shards partition the grid

  const obs::SnapshotScan scan = obs::read_snapshot_dir(dir);
  EXPECT_EQ(scan.skipped, 0u);
  ASSERT_EQ(scan.snapshots.size(), 3u);
  obs::Aggregator agg;
  for (const obs::MetricsSnapshot& s : scan.snapshots) agg.add(s);

  // The aggregated counter equals the sum of the per-shard counters equals
  // the grid size — the plane's core accounting invariant.
  std::uint64_t per_shard_sum = 0;
  for (const obs::MetricsSnapshot& s : exported) {
    const auto it = std::find_if(s.samples.begin(), s.samples.end(),
                                 [](const obs::MetricSample& m) {
                                   return m.name == "study.cells.executed";
                                 });
    ASSERT_NE(it, s.samples.end());
    per_shard_sum += it->count;
  }
  const std::vector<obs::MetricSample> samples = agg.samples();
  const auto merged = std::find_if(samples.begin(), samples.end(),
                                   [](const obs::MetricSample& m) {
                                     return m.name == "study.cells.executed";
                                   });
  ASSERT_NE(merged, samples.end());
  EXPECT_EQ(merged->count, per_shard_sum);
  EXPECT_EQ(merged->count, spec.cell_count());

  // The --progress view over the same aggregate.
  const ProgressSummary p = summarize_progress(agg);
  EXPECT_EQ(p.shards, 3u);
  EXPECT_EQ(p.grid_cells, spec.cell_count());
  EXPECT_EQ(p.done, spec.cell_count());
  EXPECT_EQ(p.executed, spec.cell_count());
  EXPECT_GT(p.cells_per_second, 0.0);
  EXPECT_GE(p.eta_seconds, 0.0);  // known (rate > 0) and complete -> 0
  ASSERT_EQ(p.per_shard.size(), 3u);
  const std::string line = render_progress_line(p);
  EXPECT_NE(line.find("cells 6/6"), std::string::npos) << line;
  EXPECT_NE(line.find("100.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("3 shards"), std::string::npos) << line;
  EXPECT_NE(line.find("s0:"), std::string::npos) << line;
}

// The runner's own exporter end: run one shard with RunOptions::obs_dir set
// and check it leaves a final snapshot carrying campaign progress.
TEST(ObsCampaign, RunnerExportsSnapshotsWhenObsDirSet) {
  const StudySpec spec = tiny_campaign(702);
  const std::string dir = temp_dir("runner");
  RunOptions run;
  run.jobs = 1;
  run.shard_index = 1;
  run.shard_count = 3;
  run.journal_path = dir + "/shard1.jsonl";
  run.obs_dir = dir;
  run.obs_interval_ms = 10;
  const CampaignResult result = run_campaign(spec, run);
  obs::set_metrics_enabled(false);

  const obs::SnapshotScan scan = obs::read_snapshot_dir(dir);
  EXPECT_EQ(scan.skipped, 0u);
  ASSERT_EQ(scan.snapshots.size(), 1u);
  const obs::MetricsSnapshot& snap = scan.snapshots[0];
  EXPECT_EQ(snap.meta.shard_index, 1u);
  EXPECT_EQ(snap.meta.shard_count, 3u);
  EXPECT_EQ(snap.meta.label, "shard 1/3");
  EXPECT_EQ(snap.meta.grid_cells, spec.cell_count());
  EXPECT_EQ(snap.meta.cells_executed, result.executed);
  EXPECT_EQ(snap.meta.cells_done, result.executed + result.skipped);
  EXPECT_GT(snap.meta.seq, 0u);
  EXPECT_GT(snap.meta.elapsed_seconds, 0.0);
  const auto it = std::find_if(snap.samples.begin(), snap.samples.end(),
                               [](const obs::MetricSample& m) {
                                 return m.name == "study.cells.executed";
                               });
  ASSERT_NE(it, snap.samples.end());
  EXPECT_GE(it->count, result.executed);  // registry survives reruns in-proc
}

TEST(ObsCampaign, ProgressSummaryHandlesEmptyAndPartialPlanes) {
  const obs::Aggregator empty;
  const ProgressSummary p = summarize_progress(empty);
  EXPECT_EQ(p.shards, 0u);
  EXPECT_EQ(p.grid_cells, 0u);
  EXPECT_LT(p.eta_seconds, 0.0);  // unknown
  EXPECT_LT(p.dataset_hit_rate, 0.0);
  const std::string line = render_progress_line(p);
  EXPECT_NE(line.find("cells 0/0"), std::string::npos) << line;

  // One shard reporting, two still booting: totals reflect what is known.
  obs::MetricsSnapshot one;
  one.meta.shard_index = 2;
  one.meta.shard_count = 3;
  one.meta.wall_us = 50;
  one.meta.grid_cells = 12;
  one.meta.cells_done = 3;
  one.meta.cells_executed = 2;
  one.meta.cells_stolen = 1;
  one.meta.elapsed_seconds = 4.0;
  obs::MetricSample hits;
  hits.kind = obs::MetricSample::Kind::kCounter;
  hits.name = "study.dataset_cache.hits";
  hits.count = 3;
  obs::MetricSample misses = hits;
  misses.name = "study.dataset_cache.misses";
  misses.count = 1;
  one.samples = {hits, misses};
  obs::Aggregator agg;
  agg.add(one);
  const ProgressSummary partial = summarize_progress(agg);
  EXPECT_EQ(partial.shards, 1u);
  EXPECT_EQ(partial.grid_cells, 12u);
  EXPECT_EQ(partial.done, 3u);
  EXPECT_EQ(partial.stolen, 1u);
  EXPECT_DOUBLE_EQ(partial.cells_per_second, 0.5);
  EXPECT_NEAR(partial.eta_seconds, 18.0, 1e-9);
  EXPECT_DOUBLE_EQ(partial.dataset_hit_rate, 0.75);
  const std::string rendered = render_progress_line(partial);
  EXPECT_NE(rendered.find("cells 3/12"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("ETA 18s"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("cache ds 75%"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("stolen 1"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace tdfm::study
