// Journal serialisation, parsing, and crash-safe persistence
// (src/study/journal.hpp).
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "../obs/json_check.hpp"
#include "core/error.hpp"
#include "study/journal.hpp"

namespace tdfm::study {
namespace {

CellRecord sample_record() {
  CellRecord r;
  r.cell = "00deadbeef00cafe";
  r.dataset = "pneumonia-sim";
  r.model = "ConvNet";
  r.fault_level = "mislabelling@30%";
  r.technique = "LS";
  r.trial = 2;
  r.golden_accuracy = 0.75;
  r.faulty_accuracy = 0.5;
  r.ad = 0.25;
  r.reverse_ad = 0.05;
  r.naive_drop = 0.2;
  r.train_seconds = 1.5;
  r.infer_seconds = 0.01;
  r.inference_models = 5.0;
  r.shared_fit = true;
  return r;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "tdfm_journal_" + name + ".jsonl";
}

TEST(Journal, JsonlRoundTripsEveryField) {
  const CellRecord r = sample_record();
  const std::string line = to_jsonl(r);
  EXPECT_TRUE(test::JsonChecker(line).valid()) << line;
  EXPECT_EQ(parse_record(line), r);
}

TEST(Journal, JsonlEscapesStringContent) {
  CellRecord r = sample_record();
  r.technique = "LS \"quoted\"\nnewline\ttab";
  const std::string line = to_jsonl(r);
  EXPECT_TRUE(test::JsonChecker(line).valid()) << line;
  EXPECT_EQ(parse_record(line).technique, r.technique);
}

TEST(Journal, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_record("not json"), ConfigError);
  EXPECT_THROW((void)parse_record("{\"cell\": \"abc\""), ConfigError);
  EXPECT_THROW((void)parse_record("{\"cell\": \"abc\"} trailing"), ConfigError);
  // A record without its cell id is useless for resume: reject it.
  EXPECT_THROW((void)parse_record("{\"trial\": 1}"), ConfigError);
  // Unknown keys are forward-compatible noise.
  EXPECT_EQ(parse_record("{\"cell\": \"abc\", \"future_field\": 1}").cell, "abc");
}

TEST(Journal, EqualModuloTimingIgnoresOnlyWallClock) {
  const CellRecord a = sample_record();
  CellRecord b = a;
  b.train_seconds = 99.0;
  b.infer_seconds = 7.0;
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(equal_modulo_timing(a, b));
  b.ad = 0.3;
  EXPECT_FALSE(equal_modulo_timing(a, b));
}

TEST(Journal, AppendPersistsAtomicallyAndLoadRoundTrips) {
  const std::string path = temp_path("persist");
  std::remove(path.c_str());
  {
    Journal journal(path);
    CellRecord r = sample_record();
    journal.append(r);
    r.cell = "1111111111111111";
    r.trial = 3;
    journal.append(r);
  }
  // No stale tmp file is left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  const auto loaded = Journal::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], sample_record());
  EXPECT_EQ(loaded[1].cell, "1111111111111111");
  std::remove(path.c_str());
}

TEST(Journal, LoadOfMissingFileIsEmpty) {
  EXPECT_TRUE(Journal::load(temp_path("missing")).empty());
}

TEST(Journal, AdoptedRecordsSurviveTheNextAppend) {
  const std::string path = temp_path("adopt");
  std::remove(path.c_str());
  Journal journal(path);
  journal.adopt({sample_record()});
  CellRecord fresh = sample_record();
  fresh.cell = "2222222222222222";
  journal.append(fresh);
  const auto loaded = Journal::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], sample_record());
  EXPECT_EQ(loaded[1], fresh);
  std::remove(path.c_str());
}

TEST(Journal, LoadReportsLineNumbersOnCorruption) {
  const std::string path = temp_path("corrupt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << to_jsonl(sample_record()) << "\n" << "garbage\n";
  }
  try {
    (void)Journal::load(path);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdfm::study
