// Journal serialisation, parsing, and crash-safe append-only persistence
// (src/study/journal.hpp).
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "../obs/json_check.hpp"
#include "core/error.hpp"
#include "study/journal.hpp"

namespace tdfm::study {
namespace {

CellRecord sample_record() {
  CellRecord r;
  r.cell = "00deadbeef00cafe";
  r.dataset = "pneumonia-sim";
  r.model = "ConvNet";
  r.fault_level = "mislabelling@30%";
  r.technique = "LS";
  r.trial = 2;
  r.golden_accuracy = 0.75;
  r.faulty_accuracy = 0.5;
  r.ad = 0.25;
  r.reverse_ad = 0.05;
  r.naive_drop = 0.2;
  r.train_seconds = 1.5;
  r.infer_seconds = 0.01;
  r.inference_models = 5.0;
  r.shared_fit = true;
  return r;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "tdfm_journal_" + name + ".jsonl";
}

TEST(Journal, JsonlRoundTripsEveryField) {
  const CellRecord r = sample_record();
  const std::string line = to_jsonl(r);
  EXPECT_TRUE(test::JsonChecker(line).valid()) << line;
  EXPECT_EQ(parse_record(line), r);
}

TEST(Journal, JsonlEscapesStringContent) {
  CellRecord r = sample_record();
  r.technique = "LS \"quoted\"\nnewline\ttab";
  const std::string line = to_jsonl(r);
  EXPECT_TRUE(test::JsonChecker(line).valid()) << line;
  EXPECT_EQ(parse_record(line).technique, r.technique);
}

// Satellite: \u escapes decode to real UTF-8 (one byte per code point was a
// silent mojibake bug), including astral-plane surrogate pairs.
TEST(Journal, UnicodeEscapesDecodeToUtf8) {
  const auto technique_of = [](const std::string& escaped) {
    return parse_record("{\"cell\": \"abc\", \"technique\": \"" + escaped +
                        "\"}")
        .technique;
  };
  EXPECT_EQ(technique_of("caf\\u00e9"), "caf\xC3\xA9");          // U+00E9, 2 bytes
  EXPECT_EQ(technique_of("\\u2713"), "\xE2\x9C\x93");            // U+2713, 3 bytes
  EXPECT_EQ(technique_of("\\ud83d\\ude00"), "\xF0\x9F\x98\x80"); // U+1F600, pair
  EXPECT_EQ(technique_of("\\u0041"), "A");
  // Lone surrogates are not scalar values.
  EXPECT_THROW((void)technique_of("\\ud83d"), ConfigError);
  EXPECT_THROW((void)technique_of("\\ud83dx"), ConfigError);
  EXPECT_THROW((void)technique_of("\\ude00"), ConfigError);
}

// Satellite: raw UTF-8 in a record survives serialise -> parse untouched
// (json_escape passes non-control bytes through).
TEST(Journal, Utf8ContentRoundTrips) {
  CellRecord r = sample_record();
  r.technique = "ens\xC3\xA9mble \xE2\x9C\x93 \xF0\x9F\x98\x80";
  const std::string line = to_jsonl(r);
  EXPECT_TRUE(test::JsonChecker(line).valid()) << line;
  EXPECT_EQ(parse_record(line), r);
}

TEST(Journal, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_record("not json"), ConfigError);
  EXPECT_THROW((void)parse_record("{\"cell\": \"abc\""), ConfigError);
  EXPECT_THROW((void)parse_record("{\"cell\": \"abc\"} trailing"), ConfigError);
  // A record without its cell id is useless for resume: reject it.
  EXPECT_THROW((void)parse_record("{\"trial\": 1}"), ConfigError);
  // Unknown keys are forward-compatible noise.
  EXPECT_EQ(parse_record("{\"cell\": \"abc\", \"future_field\": 1}").cell, "abc");
}

// Satellite: the number scanner implements exactly the RFC 8259 grammar —
// foreign files with lax numbers fail loudly instead of parsing as junk.
TEST(Journal, ParseEnforcesJsonNumberGrammar) {
  const auto ad_of = [](const std::string& number) {
    return parse_record("{\"cell\": \"abc\", \"ad\": " + number + "}").ad;
  };
  EXPECT_DOUBLE_EQ(ad_of("0"), 0.0);
  EXPECT_DOUBLE_EQ(ad_of("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(ad_of("1e-05"), 1e-05);
  EXPECT_DOUBLE_EQ(ad_of("123.25e+2"), 12325.0);
  EXPECT_DOUBLE_EQ(ad_of("0.001"), 0.001);
  EXPECT_THROW((void)ad_of("+1"), ConfigError);    // leading '+'
  EXPECT_THROW((void)ad_of("1-2"), ConfigError);   // interior sign
  EXPECT_THROW((void)ad_of("1e5e5"), ConfigError); // double exponent
  EXPECT_THROW((void)ad_of(".5"), ConfigError);    // missing integer part
  EXPECT_THROW((void)ad_of("1."), ConfigError);    // missing fraction
  EXPECT_THROW((void)ad_of("01"), ConfigError);    // leading zero
  EXPECT_THROW((void)ad_of("-"), ConfigError);     // lone sign
  EXPECT_THROW((void)ad_of("1e"), ConfigError);    // empty exponent
  EXPECT_THROW((void)ad_of("--1"), ConfigError);
}

TEST(Journal, EqualModuloTimingIgnoresOnlyWallClock) {
  const CellRecord a = sample_record();
  CellRecord b = a;
  b.train_seconds = 99.0;
  b.infer_seconds = 7.0;
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(equal_modulo_timing(a, b));
  b.ad = 0.3;
  EXPECT_FALSE(equal_modulo_timing(a, b));
}

TEST(Journal, AppendPersistsAndLoadRoundTrips) {
  const std::string path = temp_path("persist");
  std::remove(path.c_str());
  {
    Journal journal(path);
    CellRecord r = sample_record();
    journal.append(r);
    r.cell = "1111111111111111";
    r.trial = 3;
    journal.append(r);
  }
  // Append-only persistence never creates a tmp file.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  const auto loaded = Journal::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], sample_record());
  EXPECT_EQ(loaded[1].cell, "1111111111111111");
  std::remove(path.c_str());
}

// Tentpole: append is O(1) — one new line per record, earlier bytes frozen.
// (The old implementation rewrote the whole file per append, which under two
// writer processes meant last-writer-wins data loss.)
TEST(Journal, AppendLeavesEarlierBytesUntouched) {
  const std::string path = temp_path("append_only");
  std::remove(path.c_str());
  Journal journal(path);
  journal.append(sample_record());
  std::string before;
  {
    std::ifstream in(path, std::ios::binary);
    before.assign(std::istreambuf_iterator<char>(in), {});
  }
  CellRecord next = sample_record();
  next.cell = "3333333333333333";
  journal.append(next);
  std::string after;
  {
    std::ifstream in(path, std::ios::binary);
    after.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(after.size(), before.size());
  EXPECT_EQ(after.substr(0, before.size()), before);
  EXPECT_EQ(after.substr(before.size()), to_jsonl(next) + "\n");
  std::remove(path.c_str());
}

TEST(Journal, LoadOfMissingFileIsEmpty) {
  EXPECT_TRUE(Journal::load(temp_path("missing")).empty());
}

// Satellite: only a *missing* journal is a fresh campaign.  A journal that
// exists but cannot be read (here: a directory; for a process without
// permissions: EACCES) must throw — silently treating it as empty would
// recompute and re-journal a finished campaign.
TEST(Journal, LoadThrowsWhenExistingJournalIsUnreadable) {
  const std::string dir = testing::TempDir() + "tdfm_journal_unreadable_dir";
  ::mkdir(dir.c_str(), 0755);
  EXPECT_THROW((void)Journal::load(dir), ConfigError);
  ::rmdir(dir.c_str());
}

// Tentpole: a kill -9 mid-append tears at most the unterminated final line;
// load drops exactly that line and reports the recovery.
TEST(Journal, LoadRecoversTornFinalLine) {
  const std::string path = temp_path("torn");
  CellRecord second = sample_record();
  second.cell = "4444444444444444";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << to_jsonl(sample_record()) << "\n" << to_jsonl(second) << "\n";
    // The kill -9 signature: a prefix of a record, no terminating newline.
    out << to_jsonl(sample_record()).substr(0, 57);
  }
  bool recovered = false;
  const auto loaded = Journal::load(path, &recovered);
  EXPECT_TRUE(recovered);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], sample_record());
  EXPECT_EQ(loaded[1], second);
  std::remove(path.c_str());
}

// A final line that parses but is missing its newline is a *complete*
// record (the crash hit between write and nothing): keep it.
TEST(Journal, UnterminatedButCompleteFinalLineIsKept) {
  const std::string path = temp_path("unterminated");
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << to_jsonl(sample_record());  // no trailing '\n'
  }
  bool recovered = true;
  const auto loaded = Journal::load(path, &recovered);
  EXPECT_FALSE(recovered);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], sample_record());
  std::remove(path.c_str());
}

TEST(Journal, AdoptedRecordsJoinTheSnapshotWithoutRewriting) {
  const std::string path = temp_path("adopt");
  std::remove(path.c_str());
  {
    Journal first(path);
    first.append(sample_record());
  }
  // Resume: records loaded from the file are adopted, not re-persisted.
  Journal journal(path);
  journal.adopt(Journal::load(path));
  CellRecord fresh = sample_record();
  fresh.cell = "2222222222222222";
  journal.append(fresh);
  ASSERT_EQ(journal.records().size(), 2u);
  const auto loaded = Journal::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], sample_record());
  EXPECT_EQ(loaded[1], fresh);
  std::remove(path.c_str());
}

// Tentpole: two journals (stand-ins for two shard *processes*) appending to
// one file interleave whole records, never bytes — flock around each
// write(2).  Run under TSan via -DTDFM_SANITIZE=thread.
TEST(Journal, ConcurrentWritersInterleaveWholeRecords) {
  const std::string path = temp_path("two_writers");
  std::remove(path.c_str());
  constexpr int kPerWriter = 50;
  Journal a(path);
  Journal b(path);
  const auto writer = [&](Journal& j, const std::string& prefix) {
    for (int i = 0; i < kPerWriter; ++i) {
      CellRecord r = sample_record();
      r.cell = prefix + std::to_string(1000 + i);
      r.trial = static_cast<std::size_t>(i);
      j.append(r);
    }
  };
  std::thread ta(writer, std::ref(a), "aaaaaaaaaaaa");
  std::thread tb(writer, std::ref(b), "bbbbbbbbbbbb");
  ta.join();
  tb.join();
  // Every record parses (load throws on any torn or interleaved line), and
  // both writers' full sequences are present.
  const auto loaded = Journal::load(path);
  ASSERT_EQ(loaded.size(), 2u * kPerWriter);
  std::set<std::string> cells;
  for (const CellRecord& r : loaded) cells.insert(r.cell);
  EXPECT_EQ(cells.size(), 2u * kPerWriter);
  std::remove(path.c_str());
}

TEST(Journal, LoadReportsLineNumbersOnCorruption) {
  const std::string path = temp_path("corrupt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << to_jsonl(sample_record()) << "\n" << "garbage\n";
  }
  try {
    (void)Journal::load(path);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdfm::study
