// Cell identity and role-scoped seed derivation (src/study/spec.hpp).
#include <set>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "study/study.hpp"

namespace tdfm::study {
namespace {

StudySpec tiny_spec() {
  StudySpec spec;
  spec.name = "tiny";
  spec.datasets = {data::DatasetKind::kPneumoniaSim};
  spec.models = {models::Arch::kConvNet, models::Arch::kMobileNet};
  spec.fault_levels = {{},
                       {faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};
  spec.techniques = {mitigation::TechniqueKind::kBaseline,
                     mitigation::TechniqueKind::kLabelSmoothing,
                     mitigation::TechniqueKind::kEnsemble};
  spec.trials = 2;
  spec.scale = 0.5;
  spec.model_width = 4;
  spec.seed = 7;
  spec.tune_small_datasets = false;
  return spec;
}

TEST(StudySpec, ExpansionIsDatasetMajorAndComplete) {
  const StudySpec spec = tiny_spec();
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), spec.cell_count());
  EXPECT_EQ(cells.size(), 1u * 2u * 2u * 3u * 2u);
  // Trial is the fastest axis, technique next.
  EXPECT_EQ(cells[0], (Cell{0, 0, 0, 0, 0}));
  EXPECT_EQ(cells[1], (Cell{0, 0, 0, 0, 1}));
  EXPECT_EQ(cells[2], (Cell{0, 0, 0, 1, 0}));
  EXPECT_EQ(cells.back(), (Cell{0, 1, 1, 2, 1}));
}

TEST(StudySpec, ValidateRejectsDegenerateGrids) {
  StudySpec spec = tiny_spec();
  spec.models.clear();
  EXPECT_THROW(spec.validate(), InvariantError);
  spec = tiny_spec();
  spec.trials = 0;
  EXPECT_THROW(spec.validate(), InvariantError);
}

TEST(StudySpec, CellIdsAreStableUniqueAndContentSensitive) {
  const StudySpec spec = tiny_spec();
  const auto cells = expand_cells(spec);
  std::set<std::string> ids;
  for (const Cell& cell : cells) {
    const std::string id = cell_id(spec, cell);
    ASSERT_EQ(id.size(), 16u);
    EXPECT_EQ(id, cell_id(spec, cell)) << "id must be deterministic";
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), cells.size()) << "ids must be unique across the grid";

  // Changing a content field changes every id; reordering an *unused* axis
  // entry does not change the ids of cells that don't reference it.
  StudySpec reseeded = spec;
  reseeded.seed = 8;
  EXPECT_NE(cell_id(spec, cells[0]), cell_id(reseeded, cells[0]));
}

TEST(StudySpec, IdsSurviveAxisReordering) {
  const StudySpec spec = tiny_spec();
  StudySpec swapped = spec;
  std::swap(swapped.models[0], swapped.models[1]);
  // The same (dataset, model, level, technique, trial) content gets the same
  // id regardless of where it sits in the axes.
  const Cell convnet_in_spec{0, 0, 1, 1, 0};
  const Cell convnet_in_swapped{0, 1, 1, 1, 0};
  EXPECT_EQ(cell_id(spec, convnet_in_spec),
            cell_id(swapped, convnet_in_swapped));
}

TEST(StudySpec, GoldenIsSharedAcrossLevelsAndTechniques) {
  const StudySpec spec = tiny_spec();
  const Cell a{0, 0, 0, 0, 0};
  const Cell b{0, 0, 1, 2, 0};  // other level, other technique, same trial
  EXPECT_EQ(golden_key(spec, a), golden_key(spec, b));
  EXPECT_EQ(golden_seed(spec, a), golden_seed(spec, b));
  const Cell other_model{0, 1, 0, 0, 0};
  EXPECT_NE(golden_key(spec, a), golden_key(spec, other_model));
  const Cell other_trial{0, 0, 0, 0, 1};
  EXPECT_NE(golden_key(spec, a), golden_key(spec, other_trial));
}

TEST(StudySpec, InjectionIsTechniqueInvariantButLevelScoped) {
  const StudySpec spec = tiny_spec();
  const Cell base{0, 0, 1, 0, 0};
  const Cell ls{0, 0, 1, 1, 0};
  EXPECT_EQ(inject_seed(spec, base), inject_seed(spec, ls));
  const Cell clean{0, 0, 0, 0, 0};
  EXPECT_NE(inject_seed(spec, base), inject_seed(spec, clean));
  // The model axis must not perturb injection either.
  const Cell other_model{0, 1, 1, 0, 0};
  EXPECT_EQ(inject_seed(spec, base), inject_seed(spec, other_model));
}

TEST(StudySpec, EnsembleFitIsShareableAcrossModels) {
  const StudySpec spec = tiny_spec();
  const Cell ens_convnet{0, 0, 1, 2, 0};
  const Cell ens_mobilenet{0, 1, 1, 2, 0};
  ASSERT_NE(shared_fit_key(spec, ens_convnet), 0u);
  EXPECT_EQ(shared_fit_key(spec, ens_convnet),
            shared_fit_key(spec, ens_mobilenet));
  EXPECT_EQ(fit_seed(spec, ens_convnet), fit_seed(spec, ens_mobilenet));
  // Non-shareable techniques return 0 and keep per-model fit seeds.
  const Cell base_convnet{0, 0, 1, 0, 0};
  const Cell base_mobilenet{0, 1, 1, 0, 0};
  EXPECT_EQ(shared_fit_key(spec, base_convnet), 0u);
  EXPECT_NE(fit_seed(spec, base_convnet), fit_seed(spec, base_mobilenet));
}

TEST(StudySpec, PneumoniaTuningMatchesTheBenchRules) {
  StudySpec spec = tiny_spec();
  spec.tune_small_datasets = true;
  spec.train_opts.epochs = 10;
  const auto ds = dataset_spec_for(spec, data::DatasetKind::kPneumoniaSim);
  EXPECT_DOUBLE_EQ(ds.scale, 1.0) << "pneumonia scale is floored at 1.0";
  const auto opts = train_options_for(spec, data::DatasetKind::kPneumoniaSim);
  EXPECT_EQ(opts.batch_size, 8u);
  EXPECT_EQ(opts.epochs, 25u);
  spec.tune_small_datasets = false;
  EXPECT_DOUBLE_EQ(dataset_spec_for(spec, data::DatasetKind::kPneumoniaSim).scale,
                   0.5);
}

TEST(StudySpec, FaultLevelNames) {
  const StudySpec spec = tiny_spec();
  EXPECT_EQ(spec.fault_level_name(0), "none");
  EXPECT_EQ(spec.fault_level_name(1), "mislabelling@30%");
}

TEST(StudyPresets, CatalogueIsPinned) {
  // The CI smoke test and the bench wrappers key off these names; a rename
  // or removal must be deliberate (update the benches, docs, and this list).
  const std::vector<std::string> expected = {
      "smoke",          "fig3-mislabelling", "fig3-removal",
      "fig4-mislabelling", "fig4-repetition", "fig4",
      "table4",         "quant-ad",          "paper-full"};
  EXPECT_EQ(preset_names(), expected);
  EXPECT_THROW((void)preset("no-such-preset"), ConfigError);
  // Every preset expands without validation errors.
  for (const Preset& p : all_presets()) {
    EXPECT_NO_THROW(p.spec.validate()) << p.name;
    EXPECT_GT(p.spec.cell_count(), 0u) << p.name;
  }
}

}  // namespace
}  // namespace tdfm::study
