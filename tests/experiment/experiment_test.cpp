#include "experiment/experiment.hpp"

#include <gtest/gtest.h>

#include "experiment/report.hpp"

namespace tdfm::experiment {
namespace {

/// Smallest meaningful study: Pneumonia-sim at half scale, ConvNet width 4,
/// 2 epochs, Base + LS + Ens(1 member), one mislabelling level.
StudyConfig tiny_study() {
  StudyConfig cfg;
  cfg.dataset.kind = data::DatasetKind::kPneumoniaSim;
  cfg.dataset.scale = 0.5;
  cfg.model = models::Arch::kConvNet;
  cfg.model_width = 4;
  cfg.trials = 2;
  cfg.train_opts.epochs = 2;
  cfg.train_opts.batch_size = 16;
  cfg.techniques = {mitigation::TechniqueKind::kBaseline,
                    mitigation::TechniqueKind::kLabelSmoothing,
                    mitigation::TechniqueKind::kEnsemble};
  cfg.hyperparams.ens_members = {models::Arch::kConvNet};
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 30.0}}};
  cfg.seed = 5;
  return cfg;
}

TEST(Experiment, StudyProducesFullGrid) {
  const StudyResult r = run_study(tiny_study());
  ASSERT_EQ(r.cells.size(), 1U);
  ASSERT_EQ(r.cells[0].size(), 3U);
  for (const auto& cell : r.cells[0]) {
    EXPECT_EQ(cell.trials.size(), 2U);
    EXPECT_GE(cell.ad.mean, 0.0);
    EXPECT_LE(cell.ad.mean, 1.0);
    EXPECT_GE(cell.faulty_accuracy.mean, 0.0);
    EXPECT_LE(cell.faulty_accuracy.mean, 1.0);
    EXPECT_GT(cell.train_seconds.mean, 0.0);
  }
  EXPECT_EQ(r.golden_accuracy.n, 2U);
  EXPECT_GT(r.golden_accuracy.mean, 0.0);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const StudyResult a = run_study(tiny_study());
  const StudyResult b = run_study(tiny_study());
  EXPECT_EQ(a.golden_accuracy.mean, b.golden_accuracy.mean);
  for (std::size_t t = 0; t < a.cells[0].size(); ++t) {
    EXPECT_EQ(a.cells[0][t].ad.mean, b.cells[0][t].ad.mean);
    EXPECT_EQ(a.cells[0][t].faulty_accuracy.mean,
              b.cells[0][t].faulty_accuracy.mean);
  }
}

TEST(Experiment, SeedChangesResults) {
  StudyConfig cfg = tiny_study();
  const StudyResult a = run_study(cfg);
  cfg.seed = cfg.seed + 1;
  const StudyResult b = run_study(cfg);
  EXPECT_NE(a.golden_accuracy.mean, b.golden_accuracy.mean);
}

TEST(Experiment, EnsembleReportsItsInferenceCost) {
  const StudyResult r = run_study(tiny_study());
  EXPECT_DOUBLE_EQ(r.cell(0, mitigation::TechniqueKind::kEnsemble).inference_models,
                   1.0);  // single-member ensemble in this tiny config
  EXPECT_DOUBLE_EQ(r.cell(0, mitigation::TechniqueKind::kBaseline).inference_models,
                   1.0);
}

TEST(Experiment, CellLookupByKind) {
  const StudyResult r = run_study(tiny_study());
  EXPECT_NO_THROW((void)r.cell(0, mitigation::TechniqueKind::kLabelSmoothing));
  EXPECT_THROW((void)r.cell(0, mitigation::TechniqueKind::kRobustLoss),
               ConfigError);
  EXPECT_THROW((void)r.cell(5, mitigation::TechniqueKind::kBaseline),
               InvariantError);
}

TEST(Experiment, FaultLevelNames) {
  StudyConfig cfg = tiny_study();
  cfg.fault_levels = {
      {},
      {faults::FaultSpec{faults::FaultType::kMislabelling, 10.0}},
      {faults::FaultSpec{faults::FaultType::kMislabelling, 30.0},
       faults::FaultSpec{faults::FaultType::kRemoval, 10.0}},
  };
  EXPECT_EQ(cfg.fault_level_name(0), "none");
  EXPECT_EQ(cfg.fault_level_name(1), "mislabelling@10%");
  EXPECT_EQ(cfg.fault_level_name(2), "mislabelling@30%+removal@10%");
  EXPECT_THROW((void)cfg.fault_level_name(3), InvariantError);
}

TEST(Experiment, StandardSweepIsTenThirtyFifty) {
  const auto sweep = standard_sweep(faults::FaultType::kRemoval);
  ASSERT_EQ(sweep.size(), 3U);
  EXPECT_EQ(sweep[0][0].percent, 10.0);
  EXPECT_EQ(sweep[1][0].percent, 30.0);
  EXPECT_EQ(sweep[2][0].percent, 50.0);
  for (const auto& level : sweep) {
    EXPECT_EQ(level[0].type, faults::FaultType::kRemoval);
  }
}

TEST(Experiment, MultiModelStudySharesEnsembleResults) {
  StudyConfig cfg = tiny_study();
  const models::Arch archs[] = {models::Arch::kConvNet, models::Arch::kDeconvNet};
  const auto results = run_multi_model_study(cfg, archs);
  ASSERT_EQ(results.size(), 2U);
  // The shared ensemble is trained once per (trial, level): its training
  // time entries must be identical across the two panels.
  const auto& e0 = results[0].cell(0, mitigation::TechniqueKind::kEnsemble);
  const auto& e1 = results[1].cell(0, mitigation::TechniqueKind::kEnsemble);
  ASSERT_EQ(e0.trials.size(), e1.trials.size());
  for (std::size_t t = 0; t < e0.trials.size(); ++t) {
    EXPECT_EQ(e0.trials[t].train_seconds, e1.trials[t].train_seconds);
    EXPECT_EQ(e0.trials[t].faulty_accuracy, e1.trials[t].faulty_accuracy);
  }
  // Panel models differ, so their golden accuracies generally differ.
  EXPECT_EQ(results[0].config.model, models::Arch::kConvNet);
  EXPECT_EQ(results[1].config.model, models::Arch::kDeconvNet);
}

TEST(Experiment, RejectsDegenerateConfigs) {
  StudyConfig cfg = tiny_study();
  cfg.trials = 0;
  EXPECT_THROW((void)run_study(cfg), InvariantError);
  cfg = tiny_study();
  cfg.techniques.clear();
  EXPECT_THROW((void)run_study(cfg), InvariantError);
  cfg = tiny_study();
  cfg.fault_levels.clear();
  EXPECT_THROW((void)run_study(cfg), InvariantError);
}

// ------------------------------------------------------------------ report

TEST(Report, AdTableMentionsEveryTechniqueAndLevel) {
  const StudyResult r = run_study(tiny_study());
  const std::string table = render_ad_table(r, "test table");
  for (const char* needle : {"test table", "Base", "LS", "Ens", "mislabelling@30%"}) {
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, CsvHasHeaderPlusOneRowPerCell) {
  const StudyResult r = run_study(tiny_study());
  const std::string csv = render_csv(r);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1 + 3);  // header + 1 level x 3 techniques
  EXPECT_NE(csv.find("pneumonia-sim,ConvNet,mislabelling@30%,Base"),
            std::string::npos);
}

TEST(Report, WinnersSkipsBaseline) {
  const StudyResult r = run_study(tiny_study());
  const std::string winners = render_winners(r);
  EXPECT_EQ(winners.find("Base "), std::string::npos);
  EXPECT_NE(winners.find("most resilient"), std::string::npos);
}

TEST(Report, OverheadTableNormalisesToBaseline) {
  const StudyResult r = run_study(tiny_study());
  const std::string table = render_overhead_table(r, "overheads");
  EXPECT_NE(table.find("1.00x"), std::string::npos);  // baseline row
}

}  // namespace
}  // namespace tdfm::experiment
