#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace tdfm::metrics {
namespace {

TEST(Accuracy, BasicFractions) {
  const std::vector<int> truth{0, 1, 2, 1};
  EXPECT_DOUBLE_EQ(accuracy(truth, truth), 1.0);
  const std::vector<int> none{1, 2, 0, 0};
  EXPECT_DOUBLE_EQ(accuracy(none, truth), 0.0);
  const std::vector<int> half{0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(accuracy(half, truth), 0.5);
}

TEST(Accuracy, MismatchedSpansThrow) {
  const std::vector<int> a{1, 2};
  const std::vector<int> b{1};
  EXPECT_THROW((void)accuracy(a, b), InvariantError);
  const std::vector<int> empty;
  EXPECT_THROW((void)accuracy(empty, empty), InvariantError);
}

TEST(PerClassAccuracy, SplitsByTrueClass) {
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> preds{0, 1, 1, 1};
  const auto pca = per_class_accuracy(preds, truth, 3);
  EXPECT_DOUBLE_EQ(pca[0], 0.5);
  EXPECT_DOUBLE_EQ(pca[1], 1.0);
  EXPECT_DOUBLE_EQ(pca[2], 0.0);  // class absent
}

TEST(ConfusionMatrix, CountsPairs) {
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> preds{0, 1, 1, 0};
  const auto cm = confusion_matrix(preds, truth, 2);
  EXPECT_EQ(cm[0 * 2 + 0], 1U);
  EXPECT_EQ(cm[0 * 2 + 1], 1U);
  EXPECT_EQ(cm[1 * 2 + 0], 1U);
  EXPECT_EQ(cm[1 * 2 + 1], 1U);
}

// The AD definition from §III-C, exercised case by case:
//   golden correct + faulty correct  -> not counted
//   golden correct + faulty wrong    -> numerator
//   golden wrong   + faulty wrong    -> excluded (no double counting)
//   golden wrong   + faulty correct  -> excluded from AD; counted by rAD
TEST(AccuracyDelta, DefinitionCases) {
  const std::vector<int> truth{0, 0, 0, 0};
  const std::vector<int> golden{0, 0, 1, 1};  // correct on 0, 1
  const std::vector<int> faulty{0, 1, 1, 0};  // wrong on 1, 2; right on 0, 3
  // Golden-correct set = {0, 1}; faulty wrong within it = {1} -> AD = 1/2.
  EXPECT_DOUBLE_EQ(accuracy_delta(golden, faulty, truth), 0.5);
  // Golden-wrong set = {2, 3}; faulty recovered {3} -> rAD = 1/2.
  EXPECT_DOUBLE_EQ(reverse_accuracy_delta(golden, faulty, truth), 0.5);
}

TEST(AccuracyDelta, ZeroWhenFaultyMatchesGolden) {
  const std::vector<int> truth{0, 1, 2};
  const std::vector<int> preds{0, 1, 0};
  EXPECT_DOUBLE_EQ(accuracy_delta(preds, preds, truth), 0.0);
}

TEST(AccuracyDelta, OneWhenFaultyLosesEverything) {
  const std::vector<int> truth{0, 1};
  const std::vector<int> golden{0, 1};
  const std::vector<int> faulty{1, 0};
  EXPECT_DOUBLE_EQ(accuracy_delta(golden, faulty, truth), 1.0);
}

TEST(AccuracyDelta, GoldenAllWrongGivesZero) {
  const std::vector<int> truth{0, 0};
  const std::vector<int> golden{1, 1};
  const std::vector<int> faulty{0, 0};
  EXPECT_DOUBLE_EQ(accuracy_delta(golden, faulty, truth), 0.0);
}

TEST(AccuracyDelta, DoesNotDoubleCountSharedMistakes) {
  // Both models wrong on the same samples: AD must be 0, while the naive
  // accuracy drop is also 0 here — the distinction appears when the faulty
  // model trades mistakes (same accuracy, different samples).
  const std::vector<int> truth{0, 0, 0, 0};
  const std::vector<int> golden{0, 0, 1, 1};
  const std::vector<int> traded{1, 1, 0, 0};  // same accuracy as golden
  EXPECT_DOUBLE_EQ(naive_accuracy_drop(golden, traded, truth), 0.0);
  EXPECT_DOUBLE_EQ(accuracy_delta(golden, traded, truth), 1.0);  // AD sees it
}

TEST(NaiveDrop, ClampedAtZero) {
  const std::vector<int> truth{0, 1};
  const std::vector<int> golden{1, 0};  // 0%
  const std::vector<int> faulty{0, 1};  // 100%
  EXPECT_DOUBLE_EQ(naive_accuracy_drop(golden, faulty, truth), 0.0);
}

class AdRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(AdRangeTest, AlwaysWithinUnitInterval) {
  // Property: AD and rAD are proportions for arbitrary prediction vectors.
  const int seed = GetParam();
  std::vector<int> truth(50), golden(50), faulty(50);
  unsigned state = static_cast<unsigned>(seed);
  auto next = [&state] {
    state = state * 1664525U + 1013904223U;
    return static_cast<int>((state >> 16) % 4);
  };
  for (std::size_t i = 0; i < 50; ++i) {
    truth[i] = next();
    golden[i] = next();
    faulty[i] = next();
  }
  const double ad = accuracy_delta(golden, faulty, truth);
  const double rad = reverse_accuracy_delta(golden, faulty, truth);
  EXPECT_GE(ad, 0.0);
  EXPECT_LE(ad, 1.0);
  EXPECT_GE(rad, 0.0);
  EXPECT_LE(rad, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdRangeTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace tdfm::metrics
