// Minimal recursive-descent JSON syntax checker, used by the obs tests to
// validate the exported trace/JSONL/bench schemas without a JSON dependency.
// Accepts exactly the grammar of RFC 8259 minus surrogate-pair validation.
#pragma once

#include <cctype>
#include <string_view>

namespace tdfm::test {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = s_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              return false;
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool digits() {
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    return true;
  }

  bool number() {
    consume('-');
    if (!digits()) return false;
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// True when `text` is one syntactically valid JSON value.
[[nodiscard]] inline bool json_valid(std::string_view text) {
  return JsonChecker(text).valid();
}

}  // namespace tdfm::test
