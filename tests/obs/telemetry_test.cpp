// Training telemetry: the Trainer emits one EpochRecord per epoch with
// monotone cumulative wall-time, and the JSONL sink writes one valid JSON
// object per line (epoch/cell records plus the exit-time registry scrape).
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "json_check.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace tdfm::obs {
namespace {

using test::random_tensor;

TEST(Telemetry, TrainerEmitsOneRecordPerEpochWithMonotoneTime) {
  std::vector<EpochRecord> records;
  set_epoch_observer([&records](const EpochRecord& r) { records.push_back(r); });
  ASSERT_TRUE(telemetry_enabled());

  Rng rng(400);
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Dense>(4, 8, rng);
  body->emplace<nn::ReLU>();
  body->emplace<nn::Dense>(8, 3, rng);
  nn::Network net("toy", std::move(body), 3);

  const std::size_t n = 48;
  const Tensor images = random_tensor(Shape{n, 4}, rng);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 3);
  const Tensor targets = nn::one_hot(labels, 3);
  nn::CrossEntropyLoss ce;

  nn::TrainOptions opts;
  opts.epochs = 4;
  opts.batch_size = 16;
  opts.auto_tune = false;
  nn::Trainer trainer(opts);
  Rng fit_rng(401);
  trainer.fit(net, images,
              [&](const Tensor& logits, std::span<const std::size_t> idx,
                  Tensor& grad) {
                return ce.compute(logits, nn::Trainer::gather(targets, idx), grad);
              },
              fit_rng);
  set_epoch_observer({});
  EXPECT_FALSE(telemetry_enabled());

  ASSERT_EQ(records.size(), 4U);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EpochRecord& r = records[i];
    EXPECT_EQ(r.net, "toy");
    EXPECT_EQ(r.epoch, i + 1);
    EXPECT_EQ(r.epochs, 4U);
    EXPECT_GT(r.lr, 0.0);
    EXPECT_GE(r.wall_seconds, 0.0);
    EXPECT_GT(r.samples_per_second, 0.0);
    // Cumulative wall-time is strictly monotone across epochs.
    if (i > 0) EXPECT_GT(r.total_seconds, records[i - 1].total_seconds);
    EXPECT_GE(r.total_seconds, r.wall_seconds);
  }
  // Learning rate decays per epoch (default lr_decay < 1).
  EXPECT_LT(records.back().lr, records.front().lr);
}

TEST(Telemetry, JsonlSinkWritesOneValidObjectPerLine) {
  const std::string path = ::testing::TempDir() + "tdfm_telemetry_test.jsonl";
  set_metrics_output(path);
  ASSERT_TRUE(telemetry_enabled());
  ASSERT_TRUE(metrics_enabled());  // --metrics implies the registry is live

  EpochRecord er;
  er.net = "toy \"net\"";
  er.epoch = 1;
  er.epochs = 2;
  er.loss = 0.5;
  er.lr = 0.05;
  er.wall_seconds = 0.25;
  er.total_seconds = 0.25;
  er.samples_per_second = 192.0;
  emit_epoch(er);

  CellRecord cr;
  cr.model = "ConvNet";
  cr.fault_level = "mislabelling(30%)";
  cr.technique = "LS";
  cr.trial = 1;
  cr.train_seconds = 1.5;
  cr.infer_seconds = 0.1;
  cr.accuracy = 0.82;
  cr.ad = 0.04;
  emit_cell(cr);

  Counter c = Registry::global().counter("test.telemetry_counter");
  c.add(3);
  Histogram h = Registry::global().histogram("test.telemetry_hist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(42.0);
  flush_metrics();
  set_metrics_output("");  // close so the file is complete on disk

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 4U);  // epoch + cell + at least the two test metrics

  bool saw_epoch = false;
  bool saw_cell = false;
  bool saw_counter = false;
  bool saw_hist = false;
  for (const std::string& line : lines) {
    EXPECT_TRUE(test::json_valid(line)) << line;
    if (line.find("\"type\":\"epoch\"") != std::string::npos &&
        line.find("toy \\\"net\\\"") != std::string::npos) {
      saw_epoch = true;
      EXPECT_NE(line.find("\"total_s\":0.25"), std::string::npos) << line;
    }
    if (line.find("\"type\":\"cell\"") != std::string::npos) {
      saw_cell = true;
      EXPECT_NE(line.find("\"technique\":\"LS\""), std::string::npos) << line;
      EXPECT_NE(line.find("\"trial\":1"), std::string::npos) << line;
    }
    if (line.find("\"name\":\"test.telemetry_counter\"") != std::string::npos) {
      saw_counter = true;
      EXPECT_NE(line.find("\"type\":\"counter\""), std::string::npos) << line;
    }
    if (line.find("\"name\":\"test.telemetry_hist\"") != std::string::npos) {
      saw_hist = true;
      EXPECT_NE(line.find("\"bucket_counts\":[1,0,1]"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_cell);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

}  // namespace
}  // namespace tdfm::obs
