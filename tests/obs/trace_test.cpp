// Trace spans: per-thread recording, nesting, ThreadPool chunk attribution,
// and the Chrome trace_event JSON round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>

#include "core/thread_pool.hpp"
#include "json_check.hpp"
#include "obs/trace.hpp"

namespace tdfm::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(true);
    clear_trace_events();
  }
  void TearDown() override {
    set_trace_enabled(false);
    clear_trace_events();
  }
};

int count_events(const std::string& name) {
  int n = 0;
  for (const TraceEvent& e : trace_events_snapshot()) {
    if (e.name == name) ++n;
  }
  return n;
}

TEST_F(TraceTest, SpanRecordsOneCompleteEvent) {
  { Span span("unit_span"); }
  const auto events = trace_events_snapshot();
  int found = 0;
  for (const TraceEvent& e : events) {
    if (e.name != "unit_span") continue;
    ++found;
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
  }
  EXPECT_EQ(found, 1);
}

TEST_F(TraceTest, SpansNestPerThread) {
  EXPECT_EQ(current_span_name(), "");
  Span outer("outer");
  EXPECT_EQ(current_span_name(), "outer");
  {
    Span inner("inner");
    EXPECT_EQ(current_span_name(), "inner");
  }
  EXPECT_EQ(current_span_name(), "outer");
  outer.stop();
  EXPECT_EQ(current_span_name(), "");
}

TEST_F(TraceTest, StopIsIdempotent) {
  Span span("idem");
  const double first = span.stop();
  const double second = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_DOUBLE_EQ(span.elapsed_seconds(), first);
  EXPECT_EQ(count_events("idem"), 1);
}

TEST_F(TraceTest, DisabledSpanTimesWithoutRecording) {
  set_trace_enabled(false);
  clear_trace_events();
  Span span("quiet");
  EXPECT_GE(span.stop(), 0.0);
  EXPECT_TRUE(trace_events_snapshot().empty());
  set_trace_enabled(true);
}

TEST_F(TraceTest, ForRangeChunksAttributeToIssuingSpan) {
  core::ThreadPool::set_global_threads(4);
  {
    Span parent("region");
    std::atomic<std::size_t> total{0};
    core::parallel_for(0, 256, 16, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 256U);
  }
  EXPECT_GT(count_events("region/chunk"), 0);
  core::ThreadPool::set_global_threads(1);
}

TEST_F(TraceTest, ChromeTraceJsonRoundTrip) {
  {
    Span outer("outer_span");
    Span inner("inner \"quoted\" span");
  }
  const std::string path = ::testing::TempDir() + "tdfm_trace_test.json";
  write_chrome_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  EXPECT_TRUE(test::json_valid(content)) << content;
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"outer_span\""), std::string::npos);
  // The quoted name must round-trip escaped, not break the document.
  EXPECT_NE(content.find("inner \\\"quoted\\\" span"), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace tdfm::obs
