// The cross-process observability plane's in-process halves: snapshot
// serialisation, order-independent aggregation, histogram quantiles, trace
// parse/merge, and the crash flight recorder (src/obs/{snapshot, exporter,
// trace, flight_recorder}).  The process-level half — 3 real shard workers
// exporting snapshots, a merged trace spanning all shards, crash dumps from
// a signalled worker — runs as the study_shard_smoke ctest.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "obs/obs.hpp"

namespace tdfm::obs {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "tdfm_obs_plane_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

MetricSample counter(const std::string& name, std::uint64_t v) {
  MetricSample s;
  s.kind = MetricSample::Kind::kCounter;
  s.name = name;
  s.count = v;
  return s;
}

MetricSample gauge(const std::string& name, double v) {
  MetricSample s;
  s.kind = MetricSample::Kind::kGauge;
  s.name = name;
  s.value = v;
  return s;
}

MetricSample hist(const std::string& name, std::vector<double> bounds,
                  std::vector<std::uint64_t> counts, double sum) {
  MetricSample s;
  s.kind = MetricSample::Kind::kHistogram;
  s.name = name;
  s.upper_bounds = std::move(bounds);
  s.bucket_counts = std::move(counts);
  s.value = sum;
  for (const std::uint64_t c : s.bucket_counts) s.count += c;
  return s;
}

/// A synthetic shard snapshot with one of each metric kind.
MetricsSnapshot shard_snapshot(std::size_t shard, std::uint64_t seq,
                               std::int64_t wall_us) {
  MetricsSnapshot snap;
  snap.meta.pid = 1000 + static_cast<std::int64_t>(shard);
  snap.meta.shard_index = shard;
  snap.meta.shard_count = 3;
  snap.meta.seq = seq;
  snap.meta.wall_us = wall_us;
  snap.meta.label = "shard " + std::to_string(shard) + "/3";
  snap.meta.grid_cells = 6;
  snap.meta.cells_done = shard + 1;
  snap.meta.cells_executed = shard + 1;
  snap.meta.elapsed_seconds = 0.5 * static_cast<double>(shard + 1);
  snap.samples.push_back(counter("study.cells.executed", shard + 1));
  snap.samples.push_back(gauge("mem.rss_mb", 100.0 + static_cast<double>(shard)));
  snap.samples.push_back(
      hist("fit.seconds", {1.0, 2.0}, {shard, 1, shard * 2}, 1.5));
  return snap;
}

std::string samples_fingerprint(const Aggregator& agg) {
  MetricsSnapshot s;
  s.samples = agg.samples();
  return serialize_snapshot(s);
}

TEST(SnapshotFormat, SerializeParseRoundTrip) {
  MetricsSnapshot snap = shard_snapshot(1, 7, 123456789);
  snap.meta.label = "needs \"escaping\"\n";
  snap.meta.cells_stolen = 2;
  const std::string text = serialize_snapshot(snap);
  const MetricsSnapshot back = parse_snapshot(text);
  EXPECT_EQ(back.meta.pid, snap.meta.pid);
  EXPECT_EQ(back.meta.shard_index, 1u);
  EXPECT_EQ(back.meta.shard_count, 3u);
  EXPECT_EQ(back.meta.seq, 7u);
  EXPECT_EQ(back.meta.wall_us, 123456789);
  EXPECT_EQ(back.meta.label, snap.meta.label);
  EXPECT_EQ(back.meta.grid_cells, 6u);
  EXPECT_EQ(back.meta.cells_stolen, 2u);
  EXPECT_DOUBLE_EQ(back.meta.elapsed_seconds, 1.0);
  ASSERT_EQ(back.samples.size(), 3u);
  EXPECT_EQ(back.samples[0].name, "study.cells.executed");
  EXPECT_EQ(back.samples[0].count, 2u);
  EXPECT_EQ(back.samples[1].kind, MetricSample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(back.samples[1].value, 101.0);
  EXPECT_EQ(back.samples[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(back.samples[2].upper_bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(back.samples[2].bucket_counts,
            (std::vector<std::uint64_t>{1, 1, 2}));
  // Serialisation is stable: re-serialising the parse reproduces the bytes.
  EXPECT_EQ(serialize_snapshot(back), text);
}

TEST(SnapshotFormat, RejectsBadInput) {
  EXPECT_THROW((void)parse_snapshot(""), ConfigError);
  EXPECT_THROW((void)parse_snapshot("{\"type\":\"counter\",\"name\":\"x\","
                                    "\"value\":1}\n"),
               ConfigError);  // no header
  EXPECT_THROW(
      (void)parse_snapshot("{\"type\":\"snapshot\",\"schema_version\":99}\n"),
      ConfigError);  // future schema
  const std::string header =
      "{\"type\":\"snapshot\",\"schema_version\":1,\"pid\":1}\n";
  EXPECT_THROW((void)parse_snapshot(header + "{\"type\":\"counter\","
                                             "\"value\":1}\n"),
               ConfigError);  // nameless metric
  EXPECT_THROW((void)parse_snapshot(header + "{\"type\":\"widget\","
                                             "\"name\":\"x\"}\n"),
               ConfigError);  // unknown kind
  EXPECT_THROW(
      (void)parse_snapshot(header +
                           "{\"type\":\"histogram\",\"name\":\"h\",\"count\":1,"
                           "\"sum\":1,\"upper_bounds\":[1.0],"
                           "\"bucket_counts\":[1]}\n"),
      ConfigError);  // bucket/bounds arity
  EXPECT_THROW((void)parse_snapshot("{\"type\":\"snapshot\""), ConfigError);
}

TEST(Aggregator, CountersSumAndOrderDoesNotMatter) {
  const MetricsSnapshot a = shard_snapshot(0, 1, 10);
  const MetricsSnapshot b = shard_snapshot(1, 1, 20);
  const MetricsSnapshot c = shard_snapshot(2, 1, 30);

  Aggregator fwd;
  fwd.add(a);
  fwd.add(b);
  fwd.add(c);
  Aggregator rev;
  rev.add(c);
  rev.add(b);
  rev.add(a);
  EXPECT_EQ(samples_fingerprint(fwd), samples_fingerprint(rev));

  // merge() is associative: (A+B)+C == A+(B+C).
  Aggregator ab;
  ab.add(a);
  ab.add(b);
  Aggregator c_only;
  c_only.add(c);
  ab.merge(c_only);
  Aggregator bc;
  bc.add(b);
  bc.add(c);
  Aggregator a_then_bc;
  a_then_bc.add(a);
  a_then_bc.merge(bc);
  EXPECT_EQ(samples_fingerprint(ab), samples_fingerprint(a_then_bc));
  EXPECT_EQ(samples_fingerprint(ab), samples_fingerprint(fwd));

  const std::vector<MetricSample> samples = fwd.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "fit.seconds");
  EXPECT_EQ(samples[0].bucket_counts, (std::vector<std::uint64_t>{3, 3, 6}));
  EXPECT_DOUBLE_EQ(samples[0].value, 4.5);
  EXPECT_EQ(samples[1].name, "mem.rss_mb");
  EXPECT_EQ(samples[2].name, "study.cells.executed");
  EXPECT_EQ(samples[2].count, 6u);  // 1 + 2 + 3
}

TEST(Aggregator, GaugeNewestSnapshotWins) {
  MetricsSnapshot old_snap = shard_snapshot(0, 5, 100);
  old_snap.samples = {gauge("g", 1.0)};
  MetricsSnapshot new_snap = shard_snapshot(1, 1, 200);
  new_snap.samples = {gauge("g", 2.0)};
  for (const bool new_first : {false, true}) {
    Aggregator agg;
    agg.add(new_first ? new_snap : old_snap);
    agg.add(new_first ? old_snap : new_snap);
    const std::vector<MetricSample> samples = agg.samples();
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_DOUBLE_EQ(samples[0].value, 2.0) << "new_first=" << new_first;
  }
}

TEST(Aggregator, MismatchedHistogramBoundsAreASchemaConflict) {
  MetricsSnapshot a = shard_snapshot(0, 1, 10);
  a.samples = {hist("h", {1.0, 2.0}, {1, 1, 1}, 3.0)};
  MetricsSnapshot b = shard_snapshot(1, 1, 20);
  b.samples = {hist("h", {1.0, 4.0}, {1, 1, 1}, 3.0)};
  Aggregator agg;
  agg.add(a);
  EXPECT_THROW(agg.add(b), ConfigError);
}

TEST(Aggregator, LatestPerShardPicksNewestHeader) {
  Aggregator agg;
  agg.add(shard_snapshot(0, 1, 10));
  agg.add(shard_snapshot(1, 3, 40));
  MetricsSnapshot newer0 = shard_snapshot(0, 2, 30);
  newer0.meta.cells_done = 5;
  newer0.samples.clear();
  agg.add(newer0);
  const std::vector<SnapshotMeta> latest = agg.latest_per_shard();
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest[0].shard_index, 0u);
  EXPECT_EQ(latest[0].cells_done, 5u);  // wall_us 30 beats 10
  EXPECT_EQ(latest[1].shard_index, 1u);
  EXPECT_EQ(latest[1].seq, 3u);
}

TEST(SnapshotDir, AtomicWriteThenScan) {
  const std::string dir = temp_dir("scan");
  const MetricsSnapshot a = shard_snapshot(0, 1, 10);
  const MetricsSnapshot b = shard_snapshot(1, 1, 20);
  write_snapshot_atomic(snapshot_path(dir, a.meta.pid), a);
  write_snapshot_atomic(snapshot_path(dir, b.meta.pid), b);
  const SnapshotScan scan = read_snapshot_dir(dir);
  EXPECT_EQ(scan.skipped, 0u);
  ASSERT_EQ(scan.snapshots.size(), 2u);
  EXPECT_EQ(scan.snapshots[0].meta.pid, 1000);
  EXPECT_EQ(scan.snapshots[1].meta.pid, 1001);
}

TEST(SnapshotDir, TornAndForeignFilesAreSkippedNotFatal) {
  const std::string dir = temp_dir("torn");
  write_snapshot_atomic(snapshot_path(dir, 42), shard_snapshot(0, 1, 10));
  // A SIGKILL mid-write leaves a torn half-line; a crashed rename leaves the
  // .tmp; both must cost one file, never the scan.
  write_file(dir + "/metrics-43.jsonl", "{\"type\":\"snapsh");
  write_file(snapshot_path(dir, 44) + ".tmp", "ignored: wrong suffix");
  write_file(dir + "/crash-45.json", "{\"type\":\"crash\"}");  // not metrics-*
  const SnapshotScan scan = read_snapshot_dir(dir);
  EXPECT_EQ(scan.skipped, 1u);  // only the torn metrics-43.jsonl
  ASSERT_EQ(scan.snapshots.size(), 1u);
  EXPECT_EQ(scan.snapshots[0].meta.pid, 1000);
  // A directory that does not exist yet reads as empty.
  const SnapshotScan none = read_snapshot_dir(dir + "/nope");
  EXPECT_TRUE(none.snapshots.empty());
  EXPECT_EQ(none.skipped, 0u);
}

TEST(HistogramQuantile, InterpolatesAndSaturates) {
  const std::vector<double> bounds{10.0, 20.0, 40.0};
  // 10 obs <= 10, 10 in (10,20], none in (20,40], none above.  The counts
  // are built from a volatile source on purpose: gcc 12 with AVX-512
  // (-march=native on this class of host) materializes the *constant*
  // vector {10,10,0,0} as broadcast(10) == {10,10,10,10} — a compiler bug
  // in equal-prefix/zero-tail constant stores, observed here and verified
  // against the (correct) disassembly of histogram_quantile itself.  A
  // volatile read keeps the initializer out of the constant pool.
  volatile std::uint64_t ten = 10;
  const std::vector<std::uint64_t> counts{ten, ten, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.0), 0.0);
  // Mass in the +inf bucket saturates to the last finite bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, {0, 0, 0, 5}, 0.99), 40.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(histogram_quantile({}, {}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
  MetricSample s = hist("h", bounds, counts, 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(s, 0.75), 15.0);
  s.kind = MetricSample::Kind::kCounter;
  EXPECT_THROW((void)histogram_quantile(s, 0.5), InvariantError);
}

TEST(Exporter, WritesSnapshotsAndFinalizesOnStop) {
  const std::string dir = temp_dir("exporter");
  Counter ticks = Registry::global().counter("test.exporter.ticks");
  SnapshotExporter exporter;
  ExporterOptions opts;
  opts.dir = dir;
  opts.shard_index = 2;
  opts.shard_count = 3;
  opts.label = "shard 2/3";
  opts.interval_ms = 5;
  opts.fill_meta = [](SnapshotMeta& meta) {
    meta.grid_cells = 9;
    meta.cells_done = 4;
  };
  exporter.start(std::move(opts));
  EXPECT_TRUE(exporter.running());
  EXPECT_TRUE(metrics_enabled());  // start() arms the registry
  ticks.add(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exporter.stop();
  EXPECT_FALSE(exporter.running());

  const SnapshotScan scan = read_snapshot_dir(dir);
  ASSERT_EQ(scan.snapshots.size(), 1u);  // one file per process, replaced
  const MetricsSnapshot& snap = scan.snapshots[0];
  EXPECT_EQ(snap.meta.shard_index, 2u);
  EXPECT_EQ(snap.meta.label, "shard 2/3");
  EXPECT_EQ(snap.meta.grid_cells, 9u);
  EXPECT_EQ(snap.meta.cells_done, 4u);
  EXPECT_GE(snap.meta.seq, 2u);  // ticked at least once + final export
  const auto it = std::find_if(
      snap.samples.begin(), snap.samples.end(),
      [](const MetricSample& s) { return s.name == "test.exporter.ticks"; });
  ASSERT_NE(it, snap.samples.end());
  EXPECT_EQ(it->count, 3u);
}

TEST(FlightRecorder, DumpIsValidJsonAndNamesInFlightCell) {
  const std::string dir = temp_dir("flight");
  flight::set_enabled(true);
  flight::record(flight::EventKind::kCellBegin, "cell-finished");
  flight::record(flight::EventKind::kCellEnd, "cell-finished");
  flight::record(flight::EventKind::kStealClaim, "cell-stuck");
  flight::record(flight::EventKind::kCellBegin, "cell-stuck");
  flight::record(flight::EventKind::kJournalAppend, "weird \"detail\"\\chars");
  // Another thread's ring must appear as its own entry; join before dumping
  // (dump_now requires quiesced writers).
  std::thread other([] {
    flight::record(flight::EventKind::kSpanBegin, "other-thread-span");
  });
  other.join();
  const std::string path = dir + "/crash-test.json";
  ASSERT_TRUE(flight::dump_now(path, 0));
  flight::set_enabled(false);

  const std::string dump = read_file(path);
  EXPECT_TRUE(json_valid(dump)) << dump;
  EXPECT_NE(dump.find("\"type\":\"crash\""), std::string::npos);
  EXPECT_NE(dump.find("\"signal_name\":\"none\""), std::string::npos);
  // The last cell_begin without a matching cell_end is the in-flight work.
  EXPECT_NE(dump.find("\"in_flight_cell\":\"cell-stuck\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"steal_claim\""), std::string::npos);
  EXPECT_NE(dump.find("other-thread-span"), std::string::npos);
  // Details were sanitised at record() time: no quote/backslash survives.
  EXPECT_NE(dump.find("weird .detail..chars"), std::string::npos);
}

TEST(FlightRecorder, DisabledRecordIsANoOp) {
  flight::set_enabled(false);
  flight::record(flight::EventKind::kCellBegin, "ignored");
  const std::string dir = temp_dir("flight_off");
  const std::string path = dir + "/dump.json";
  ASSERT_TRUE(flight::dump_now(path, 0));
  const std::string dump = read_file(path);
  EXPECT_TRUE(json_valid(dump)) << dump;
  EXPECT_EQ(dump.find("\"detail\":\"ignored\""), std::string::npos);
}

TEST(TraceMerge, ThreeShardsFuseIntoOneOrderedTimeline) {
  const std::string dir = temp_dir("trace");
  // Three per-shard trace files in the writer's one-event-per-line format;
  // shard 1's file ends in a torn line (killed mid-write).
  write_file(dir + "/s0.trace.json",
             "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":101,\"tid\":0,"
             "\"args\":{\"name\":\"shard 0/3\"}},\n"
             "{\"name\":\"cell:a\",\"cat\":\"tdfm\",\"ph\":\"X\",\"pid\":101,"
             "\"tid\":0,\"ts\":50,\"dur\":10},\n"
             "{\"name\":\"cell:b\",\"cat\":\"tdfm\",\"ph\":\"X\",\"pid\":101,"
             "\"tid\":1,\"ts\":20,\"dur\":5}\n"
             "]}\n");
  write_file(dir + "/s1.trace.json",
             "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":102,\"tid\":0,"
             "\"args\":{\"name\":\"shard 1/3\"}},\n"
             "{\"name\":\"cell:c\",\"cat\":\"tdfm\",\"ph\":\"X\",\"pid\":102,"
             "\"tid\":0,\"ts\":10,\"dur\":3},\n"
             "{\"name\":\"cell:d\",\"cat\":\"tdfm\",\"ph\":\"X\",\"pi");
  write_file(dir + "/s2.trace.json",
             "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":103,\"tid\":0,"
             "\"args\":{\"name\":\"shard 2/3\"}},\n"
             "{\"name\":\"cell:e\",\"cat\":\"tdfm\",\"ph\":\"X\",\"pid\":103,"
             "\"tid\":0,\"ts\":30,\"dur\":1}\n"
             "]}\n");

  const std::string out = dir + "/merged.trace.json";
  const TraceMergeResult res = merge_chrome_traces(
      {dir + "/s0.trace.json", dir + "/s1.trace.json", dir + "/s2.trace.json",
       dir + "/missing.trace.json"},
      out);
  EXPECT_EQ(res.inputs, 3u);
  EXPECT_EQ(res.missing, 1u);
  EXPECT_EQ(res.skipped_lines, 1u);  // shard 1's torn tail
  EXPECT_EQ(res.events, 7u);         // 3 metadata + 4 complete spans

  const std::string merged = read_file(out);
  EXPECT_TRUE(json_valid(merged)) << merged;
  const TraceParse parse = parse_chrome_trace(merged);
  EXPECT_EQ(parse.skipped_lines, 0u);
  ASSERT_EQ(parse.events.size(), 7u);
  // Metadata first (by pid), then spans by (ts, pid, tid, name).
  EXPECT_EQ(parse.events[0].ph, "M");
  EXPECT_EQ(parse.events[0].pid, 101);
  EXPECT_EQ(parse.events[0].arg_name, "shard 0/3");
  EXPECT_EQ(parse.events[2].arg_name, "shard 2/3");
  EXPECT_EQ(parse.events[3].name, "cell:c");
  EXPECT_EQ(parse.events[4].name, "cell:b");
  EXPECT_EQ(parse.events[5].name, "cell:e");
  EXPECT_EQ(parse.events[6].name, "cell:a");
  // The merged timeline spans all three shard pids.
  std::vector<std::int64_t> pids;
  for (const ChromeTraceEvent& e : parse.events) {
    if (e.ph == "X") pids.push_back(e.pid);
  }
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  EXPECT_EQ(pids, (std::vector<std::int64_t>{101, 102, 103}));
  // Merging is idempotent: merging the merged file with nothing new keeps
  // the same event set.
  const TraceMergeResult again = merge_chrome_traces({out}, dir + "/again.json");
  EXPECT_EQ(again.events, res.events);
  EXPECT_EQ(read_file(dir + "/again.json"), merged);
}

TEST(TraceMerge, RealWriterOutputRoundTrips) {
  const std::string dir = temp_dir("trace_writer");
  clear_trace_events();
  set_trace_enabled(true);
  set_trace_process(7777, "shard 0/1");
  {
    Span outer("outer");
    Span inner("inner");
  }
  set_trace_enabled(false);
  const std::string path = dir + "/own.trace.json";
  write_chrome_trace(path);
  clear_trace_events();
  set_trace_process(0, "");  // restore default identity for later tests

  const std::string text = read_file(path);
  EXPECT_TRUE(json_valid(text)) << text;
  const TraceParse parse = parse_chrome_trace(text);
  EXPECT_EQ(parse.skipped_lines, 0u);
  ASSERT_GE(parse.events.size(), 3u);
  EXPECT_EQ(parse.events[0].ph, "M");
  EXPECT_EQ(parse.events[0].pid, 7777);
  EXPECT_EQ(parse.events[0].arg_name, "shard 0/1");
  bool saw_outer = false;
  bool saw_inner = false;
  for (const ChromeTraceEvent& e : parse.events) {
    if (e.ph != "X") continue;
    EXPECT_EQ(e.pid, 7777);
    saw_outer |= e.name == "outer";
    saw_inner |= e.name == "inner";
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

}  // namespace
}  // namespace tdfm::obs
