// Metrics registry: shard merging across threads, histogram bucketing,
// concurrent scrapes, and the disabled fast path.  The registry is the
// process-global one (as production code uses it), so every test reads
// deltas or uses names of its own.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace tdfm::obs {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = metrics_enabled();
    set_metrics_enabled(true);
  }
  void TearDown() override { set_metrics_enabled(was_enabled_); }

  bool was_enabled_ = false;
};

TEST_F(MetricsRegistryTest, CounterMergesThreadLocalShards) {
  Counter total = Registry::global().counter("test.shard_merge");
  const std::uint64_t before = total.value();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      Counter mine = Registry::global().counter("test.shard_merge");
      for (std::uint64_t i = 0; i < kAdds; ++i) mine.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(total.value() - before, kThreads * kAdds);
}

TEST_F(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  Counter a = Registry::global().counter("test.idempotent");
  Counter b = Registry::global().counter("test.idempotent");
  const std::uint64_t before = a.value();
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value() - before, 5U);
  EXPECT_EQ(b.value() - before, 5U);
}

TEST_F(MetricsRegistryTest, CrossKindNameReuseThrows) {
  (void)Registry::global().counter("test.kind_clash");
  EXPECT_THROW((void)Registry::global().gauge("test.kind_clash"), InvariantError);
  EXPECT_THROW((void)Registry::global().histogram("test.kind_clash", {1.0}),
               InvariantError);
}

TEST_F(MetricsRegistryTest, DisabledCounterIsNoOp) {
  Counter c = Registry::global().counter("test.disabled");
  const std::uint64_t before = c.value();
  set_metrics_enabled(false);
  c.add(100);
  set_metrics_enabled(true);
  EXPECT_EQ(c.value(), before);
}

TEST_F(MetricsRegistryTest, GaugeKeepsLastWrite) {
  Gauge g = Registry::global().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsRegistryTest, HistogramBucketsObservations) {
  Histogram h = Registry::global().histogram("test.hist", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.upper_bounds.size(), 3U);
  ASSERT_EQ(snap.counts.size(), 4U);  // three finite buckets + the +inf bucket
  EXPECT_EQ(snap.counts[0], 2U);      // 0.5 and the boundary value 1.0
  EXPECT_EQ(snap.counts[1], 1U);      // 1.5
  EXPECT_EQ(snap.counts[2], 1U);      // 3.0
  EXPECT_EQ(snap.counts[3], 1U);      // 100 -> +inf
  EXPECT_EQ(snap.total, 5U);
  EXPECT_NEAR(snap.sum, 106.0, 1e-9);
}

TEST_F(MetricsRegistryTest, LinearBucketsProduceAscendingBounds) {
  const std::vector<double> bounds = linear_buckets(1.0, 1.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(linear_buckets(0.0, 250.0, 3), (std::vector<double>{0.0, 250.0, 500.0}));
}

TEST_F(MetricsRegistryTest, ExponentialBucketsCoverMicrosecondScales) {
  // The serving layer's latency histograms: 10us doubling up to ~327ms.
  const std::vector<double> bounds = exponential_buckets(10.0, 2.0, 16);
  ASSERT_EQ(bounds.size(), 16U);
  EXPECT_DOUBLE_EQ(bounds.front(), 10.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0 * 32768.0);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST_F(MetricsRegistryTest, BucketHelpersValidateArguments) {
  EXPECT_THROW((void)linear_buckets(0.0, 1.0, 0), InvariantError);
  EXPECT_THROW((void)linear_buckets(0.0, 0.0, 4), InvariantError);
  EXPECT_THROW((void)exponential_buckets(0.0, 2.0, 4), InvariantError);
  EXPECT_THROW((void)exponential_buckets(10.0, 1.0, 4), InvariantError);
  EXPECT_THROW((void)exponential_buckets(10.0, 2.0, 0), InvariantError);
}

TEST_F(MetricsRegistryTest, GeneratedBoundsDriveBucketEdges) {
  // Boundary semantics with generated bounds: v <= upper_bound lands in the
  // bucket, the first value past the last bound lands in +inf.
  Histogram h = Registry::global().histogram("test.hist_edges",
                                             exponential_buckets(10.0, 2.0, 3));
  for (const double v : {10.0, 10.5, 20.0, 40.0, 40.0001}) h.observe(v);
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.upper_bounds.size(), 3U);
  EXPECT_EQ(snap.counts[0], 1U);  // 10.0 sits exactly on the first edge
  EXPECT_EQ(snap.counts[1], 2U);  // 10.5 and the 20.0 edge
  EXPECT_EQ(snap.counts[2], 1U);  // 40.0 edge
  EXPECT_EQ(snap.counts[3], 1U);  // 40.0001 overflows to +inf
  EXPECT_EQ(snap.total, 5U);
}

TEST_F(MetricsRegistryTest, ScrapeWhileIncrementingStaysConsistent) {
  Counter c = Registry::global().counter("test.scrape_race");
  const std::uint64_t before = c.value();
  constexpr std::uint64_t kAdds = 200000;
  std::thread writer([] {
    Counter mine = Registry::global().counter("test.scrape_race");
    for (std::uint64_t i = 0; i < kAdds; ++i) mine.add(1);
  });
  // Concurrent scrapes must observe monotonically non-decreasing values and
  // never tear (TSan build asserts the absence of data races).
  std::uint64_t last = before;
  for (int i = 0; i < 50; ++i) {
    for (const MetricSample& m : Registry::global().scrape()) {
      if (m.name != "test.scrape_race") continue;
      EXPECT_GE(m.count, last);
      last = m.count;
    }
  }
  writer.join();
  EXPECT_EQ(c.value() - before, kAdds);
}

TEST_F(MetricsRegistryTest, ScrapeIsNameSortedAndTyped) {
  (void)Registry::global().counter("test.zz_counter");
  Gauge g = Registry::global().gauge("test.aa_gauge");
  g.set(7.0);
  const std::vector<MetricSample> samples = Registry::global().scrape();
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; }));
  bool saw_gauge = false;
  for (const MetricSample& m : samples) {
    if (m.name == "test.aa_gauge") {
      saw_gauge = true;
      EXPECT_EQ(m.kind, MetricSample::Kind::kGauge);
      EXPECT_DOUBLE_EQ(m.value, 7.0);
    }
  }
  EXPECT_TRUE(saw_gauge);
}

TEST_F(MetricsRegistryTest, ResetValuesZeroesButKeepsRegistration) {
  Counter c = Registry::global().counter("test.reset");
  c.add(9);
  EXPECT_GE(c.value(), 9U);
  Registry::global().reset_values();
  EXPECT_EQ(c.value(), 0U);
  c.add(1);  // handle still works against the same slot
  EXPECT_EQ(c.value(), 1U);
}

}  // namespace
}  // namespace tdfm::obs
