#include "core/statistics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/error.hpp"

namespace tdfm {
namespace {

TEST(Statistics, EmptySampleIsAllZero) {
  const SampleStats s = summarize({});
  EXPECT_EQ(s.n, 0U);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.ci95_half_width, 0.0);
}

TEST(Statistics, SingleSampleHasZeroWidth) {
  const std::array<double, 1> xs{3.5};
  const SampleStats s = summarize(xs);
  EXPECT_EQ(s.n, 1U);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Statistics, KnownSample) {
  const std::array<double, 5> xs{2.0, 4.0, 4.0, 4.0, 6.0};
  const SampleStats s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  // Sample variance: (4+0+0+0+4)/4 = 2.
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(s.stderr_, std::sqrt(2.0 / 5.0), 1e-12);
  // t*(0.975, 4) = 2.776.
  EXPECT_NEAR(s.ci95_half_width, 2.776 * std::sqrt(2.0 / 5.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_LT(s.ci_lo(), s.mean);
  EXPECT_GT(s.ci_hi(), s.mean);
}

TEST(Statistics, TCriticalMonotoneDecreasing) {
  for (std::size_t dof = 1; dof < 30; ++dof) {
    EXPECT_GE(t_critical_975(dof), t_critical_975(dof + 1));
  }
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-9);
  EXPECT_NEAR(t_critical_975(10000), 1.96, 1e-9);
}

TEST(Statistics, MeanOfEmptyIsZero) { EXPECT_EQ(mean_of({}), 0.0); }

TEST(Statistics, WelchIdenticalSamplesNotSignificant) {
  const std::array<double, 4> a{1.0, 2.0, 3.0, 4.0};
  const WelchResult w = welch_t_test(a, a);
  EXPECT_NEAR(w.t, 0.0, 1e-12);
  EXPECT_FALSE(w.significant_at_05);
}

TEST(Statistics, WelchClearlyDifferentSamplesSignificant) {
  const std::array<double, 5> a{1.0, 1.1, 0.9, 1.05, 0.95};
  const std::array<double, 5> b{5.0, 5.1, 4.9, 5.05, 4.95};
  const WelchResult w = welch_t_test(a, b);
  EXPECT_TRUE(w.significant_at_05);
  EXPECT_LT(w.t, 0.0);  // a's mean is below b's
}

TEST(Statistics, WelchOverlappingSamplesNotSignificant) {
  const std::array<double, 4> a{1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> b{1.5, 2.5, 2.0, 3.5};
  const WelchResult w = welch_t_test(a, b);
  EXPECT_FALSE(w.significant_at_05);
}

TEST(Statistics, WelchTooFewSamplesIsNeutral) {
  const std::array<double, 1> a{1.0};
  const std::array<double, 4> b{5.0, 5.0, 5.0, 5.1};
  const WelchResult w = welch_t_test(a, b);
  EXPECT_FALSE(w.significant_at_05);
}

TEST(Statistics, WelchConstantSamplesDifferentMeans) {
  const std::array<double, 3> a{1.0, 1.0, 1.0};
  const std::array<double, 3> b{2.0, 2.0, 2.0};
  const WelchResult w = welch_t_test(a, b);
  EXPECT_TRUE(w.significant_at_05);
}

class CiCoverageTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CiCoverageTest, WidthShrinksWithSampleSize) {
  // Property: for a fixed spread, the CI half-width decreases as n grows.
  const std::size_t n = GetParam();
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = (i % 2 == 0) ? 0.0 : 1.0;
  std::vector<double> xl(n * 4);
  for (std::size_t i = 0; i < n * 4; ++i) xl[i] = (i % 2 == 0) ? 0.0 : 1.0;
  EXPECT_GT(summarize(xs).ci95_half_width, summarize(xl).ci95_half_width);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CiCoverageTest, ::testing::Values(4U, 8U, 20U, 64U));

TEST(Statistics, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(median_of(std::array<double, 0>{}), 0.0);
  EXPECT_DOUBLE_EQ(median_of(std::array<double, 1>{3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of(std::array<double, 3>{9.0, 1.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median_of(std::array<double, 4>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Statistics, MedianDoesNotModifyInput) {
  const std::array<double, 3> xs{3.0, 1.0, 2.0};
  (void)median_of(xs);
  EXPECT_DOUBLE_EQ(xs[0], 3.0);
}

TEST(Statistics, RankTechniquesOrdersColumnsByValue) {
  // Column 2 always smallest -> rank 1; column 0 always largest -> rank 3.
  const std::vector<std::vector<double>> rows = {
      {0.9, 0.5, 0.1}, {0.8, 0.4, 0.2}, {0.7, 0.6, 0.3}};
  const std::vector<double> ranks = rank_techniques(rows);
  ASSERT_EQ(ranks.size(), 3U);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
}

TEST(Statistics, RankTechniquesAveragesTies) {
  // All values tie within each row: everyone shares rank (1+2+3)/3 = 2.
  const std::vector<std::vector<double>> rows = {{0.5, 0.5, 0.5}};
  const std::vector<double> ranks = rank_techniques(rows);
  ASSERT_EQ(ranks.size(), 3U);
  for (const double r : ranks) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(Statistics, RankTechniquesMixedRows) {
  // Row 1 ranks: a=1, b=2, c=3; row 2 ranks: a=3, b=1.5, c=1.5 (tie).
  const std::vector<std::vector<double>> rows = {{0.1, 0.2, 0.3},
                                                 {0.9, 0.4, 0.4}};
  const std::vector<double> ranks = rank_techniques(rows);
  ASSERT_EQ(ranks.size(), 3U);
  EXPECT_DOUBLE_EQ(ranks[0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.75);
  EXPECT_DOUBLE_EQ(ranks[2], 2.25);
}

TEST(Statistics, RankTechniquesRejectsRaggedRows) {
  const std::vector<std::vector<double>> rows = {{0.1, 0.2}, {0.3}};
  EXPECT_THROW((void)rank_techniques(rows), InvariantError);
  EXPECT_TRUE(rank_techniques({}).empty());
}

}  // namespace
}  // namespace tdfm
