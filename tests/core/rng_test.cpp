#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace tdfm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next() == f2.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
  Rng p1(99);
  Rng p2(99);
  Rng f1 = p1.fork(5);
  Rng f2 = p2.fork(5);
  EXPECT_EQ(f1.next(), f2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-3.0F, 5.0F);
    ASSERT_GE(v, -3.0F);
    ASSERT_LT(v, 5.0F);
  }
}

TEST(Rng, IndexStaysInBounds) {
  Rng rng(13);
  for (std::size_t n : {1UL, 2UL, 7UL, 43UL, 1000UL}) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_LT(rng.index(n), n);
    }
  }
}

TEST(Rng, IndexZeroThrows) {
  Rng rng(14);
  EXPECT_THROW((void)rng.index(0), InvariantError);
}

TEST(Rng, IndexIsRoughlyUniform) {
  Rng rng(15);
  constexpr std::size_t kBuckets = 10;
  constexpr int kDraws = 50000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.index(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, kDraws * 0.012);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(16);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(18);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(3.0F, 0.5F);
  EXPECT_NEAR(sum / kN, 3.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(20);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, SampleWithoutReplacementUnique) {
  Rng rng(21);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20U);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20U);
  for (const auto s : sample) EXPECT_LT(s, 50U);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(22);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10U);
}

TEST(Rng, SampleTooLargeThrows) {
  Rng rng(23);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), InvariantError);
}

TEST(Rng, SampleCoversPopulationOverManyDraws) {
  // Property: repeated small samples eventually hit every index.
  Rng rng(24);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    for (const auto s : rng.sample_without_replacement(20, 3)) seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 20U);
}

TEST(Splitmix, KnownSequenceIsStable) {
  // Regression pin: splitmix64 must not change across refactors (it seeds
  // every experiment in the repository).
  std::uint64_t s = 42;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  std::uint64_t s2 = 42;
  EXPECT_EQ(first, splitmix64(s2));
}

class RngReseedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngReseedTest, ReseedReproducesStream) {
  Rng rng(GetParam());
  std::vector<std::uint64_t> first;
  first.reserve(16);
  for (int i = 0; i < 16; ++i) first.push_back(rng.next());
  rng.reseed(GetParam());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngReseedTest,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
}  // namespace tdfm
