#include <gtest/gtest.h>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/table.hpp"

namespace tdfm {
namespace {

// ---------------------------------------------------------------- CliParser

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args.begin(), args.end()};
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli;
  cli.add_flag("epochs", "10", "epochs");
  const auto args = argv_of({"prog"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(cli.get_int("epochs"), 10);
}

TEST(Cli, ParsesSpaceSeparatedValue) {
  CliParser cli;
  cli.add_flag("epochs", "10", "epochs");
  const auto args = argv_of({"prog", "--epochs", "25"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(cli.get_int("epochs"), 25);
}

TEST(Cli, ParsesEqualsForm) {
  CliParser cli;
  cli.add_flag("scale", "1.0", "scale");
  const auto args = argv_of({"prog", "--scale=0.5"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.5);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli;
  cli.add_flag("epochs", "10", "epochs");
  const auto args = argv_of({"prog", "--nope", "1"});
  EXPECT_THROW((void)cli.parse(static_cast<int>(args.size()), args.data()),
               ConfigError);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli;
  cli.add_flag("epochs", "10", "epochs");
  const auto args = argv_of({"prog", "--epochs"});
  EXPECT_THROW((void)cli.parse(static_cast<int>(args.size()), args.data()),
               ConfigError);
}

TEST(Cli, PositionalArgumentThrows) {
  CliParser cli;
  const auto args = argv_of({"prog", "stray"});
  EXPECT_THROW((void)cli.parse(static_cast<int>(args.size()), args.data()),
               ConfigError);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli;
  cli.add_flag("epochs", "10", "epochs");
  const auto args = argv_of({"prog", "--help"});
  EXPECT_FALSE(cli.parse(static_cast<int>(args.size()), args.data()));
}

TEST(Cli, BadIntegerThrows) {
  CliParser cli;
  cli.add_flag("epochs", "ten", "epochs");
  EXPECT_THROW((void)cli.get_int("epochs"), ConfigError);
}

TEST(Cli, BadDoubleThrows) {
  CliParser cli;
  cli.add_flag("scale", "0.5x", "scale");
  EXPECT_THROW((void)cli.get_double("scale"), ConfigError);
}

TEST(Cli, BoolForms) {
  CliParser cli;
  cli.add_flag("a", "true", "");
  cli.add_flag("b", "0", "");
  cli.add_flag("c", "maybe", "");
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_FALSE(cli.get_bool("b"));
  EXPECT_THROW((void)cli.get_bool("c"), ConfigError);
}

TEST(Cli, U64RoundTrip) {
  CliParser cli;
  cli.add_flag("seed", "18446744073709551615", "seed");
  EXPECT_EQ(cli.get_u64("seed"), ~0ULL);
}

TEST(Cli, UsageListsFlags) {
  CliParser cli;
  cli.add_flag("epochs", "10", "number of epochs");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("number of epochs"), std::string::npos);
}

// ------------------------------------------------------------ loadgen flags

TEST(Cli, LoadgenDefaultsApply) {
  CliParser cli;
  add_loadgen_flags(cli, /*default_duration=*/3.0, /*default_rate=*/0.0,
                    /*default_warmup=*/0.5);
  const auto args = argv_of({"prog"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  const LoadgenOptions opts = parse_loadgen_flags(cli);
  EXPECT_DOUBLE_EQ(opts.duration_s, 3.0);
  EXPECT_DOUBLE_EQ(opts.rate_rps, 0.0);  // 0 = open throttle (saturate)
  EXPECT_DOUBLE_EQ(opts.warmup_s, 0.5);
}

TEST(Cli, LoadgenFlagsParse) {
  CliParser cli;
  add_loadgen_flags(cli, 3.0, 0.0, 0.5);
  const auto args =
      argv_of({"prog", "--duration", "10", "--rate=250.5", "--warmup", "0"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  const LoadgenOptions opts = parse_loadgen_flags(cli);
  EXPECT_DOUBLE_EQ(opts.duration_s, 10.0);
  EXPECT_DOUBLE_EQ(opts.rate_rps, 250.5);
  EXPECT_DOUBLE_EQ(opts.warmup_s, 0.0);
}

TEST(Cli, LoadgenNonNumericValueThrows) {
  CliParser cli;
  add_loadgen_flags(cli, 3.0, 0.0, 0.5);
  const auto args = argv_of({"prog", "--duration", "fast"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_THROW((void)parse_loadgen_flags(cli), ConfigError);
}

TEST(Cli, LoadgenValidationRejectsBadRanges) {
  const auto parse_with = [](std::initializer_list<const char*> extra) {
    CliParser cli;
    add_loadgen_flags(cli, 3.0, 0.0, 0.5);
    std::vector<const char*> args{"prog"};
    args.insert(args.end(), extra.begin(), extra.end());
    EXPECT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
    return parse_loadgen_flags(cli);
  };
  EXPECT_THROW((void)parse_with({"--duration", "0"}), ConfigError);
  EXPECT_THROW((void)parse_with({"--duration", "-1"}), ConfigError);
  EXPECT_THROW((void)parse_with({"--rate", "-0.1"}), ConfigError);
  EXPECT_THROW((void)parse_with({"--warmup", "-2"}), ConfigError);
  EXPECT_NO_THROW((void)parse_with({"--warmup", "0", "--rate", "0"}));
}

// ---------------------------------------------------------------- AsciiTable

TEST(Table, RendersAllCells) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  for (const char* needle : {"name", "value", "alpha", "beta", "22"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

TEST(Table, WrongArityThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(Table, MarkdownHasSeparatorRow) {
  AsciiTable t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("|---"), std::string::npos);
}

TEST(Table, ColumnsAlignAcrossRows) {
  AsciiTable t({"x", "y"});
  t.add_row({"short", "1"});
  t.add_row({"much-longer-cell", "2"});
  const std::string out = t.render();
  // Every rendered line must have equal length (fixed-width table).
  std::size_t expected = out.find('\n');
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

TEST(Formatting, Percent) {
  EXPECT_EQ(percent(0.905, 1), "90.5%");
  EXPECT_EQ(percent(0.0, 0), "0%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(fixed(1.2345, 2), "1.23");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Formatting, PercentWithCi) {
  EXPECT_EQ(percent_with_ci(0.5, 0.012, 1), "50.0% ± 1.2%");
}

}  // namespace
}  // namespace tdfm
