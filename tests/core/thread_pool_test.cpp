// ThreadPool contract tests: coverage, chunking, nesting, exception
// propagation, and the global-pool management used by the --threads flag.
#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tdfm::core {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.for_range(0, n, 7, [&](std::size_t lo, std::size_t hi) {
      ASSERT_LT(lo, hi);
      ASSERT_LE(hi, n);
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ChunkBoundsRespectGrain) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.for_range(10, 55, 10, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ((lo - 10) % 10, 0U);  // chunks start on grain boundaries
    EXPECT_LE(hi - lo, 10U);
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 45U);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.for_range(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  pool.for_range(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, OversizedGrainRunsOneChunkInline) {
  ThreadPool pool(4);
  std::size_t calls = 0;  // safe without atomics: single chunk runs inline
  pool.for_range(0, 10, 100, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0U);
    EXPECT_EQ(hi, 10U);
  });
  EXPECT_EQ(calls, 1U);
}

TEST(ThreadPool, ZeroGrainIsClampedToOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.for_range(0, 8, 0, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 8U);
}

TEST(ThreadPool, NestedForRangeRunsInlineAndCoversRange) {
  ThreadPool pool(4);
  const std::size_t outer = 8;
  const std::size_t inner = 16;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.for_range(0, outer, 1, [&](std::size_t o0, std::size_t o1) {
    for (std::size_t o = o0; o < o1; ++o) {
      // Nested call must run inline on this thread (no deadlock, no
      // re-entrant scheduling) — the contract ensemble + conv rely on.
      pool.for_range(0, inner, 3, [&](std::size_t i0, std::size_t i1) {
        EXPECT_TRUE(ThreadPool::in_worker());
        for (std::size_t i = i0; i < i1; ++i) hits[o * inner + i].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesChunkExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_range(0, 100, 1,
                     [&](std::size_t lo, std::size_t) {
                       if (lo == 42) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
  // Pool must stay usable after an exception.
  std::atomic<std::size_t> total{0};
  pool.for_range(0, 10, 1, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 10U);
}

TEST(ThreadPool, ResultsAreIdenticalForEveryThreadCount) {
  // Partition-invariant body: every index computes independently, so the
  // output vector must be bitwise identical regardless of pool size.
  const std::size_t n = 512;
  std::vector<float> serial(n);
  {
    ThreadPool pool(1);
    pool.for_range(0, n, 13, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        serial[i] = static_cast<float>(i) * 0.37F + 1.0F / static_cast<float>(i + 1);
      }
    });
  }
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<float> out(n, -1.0F);
    pool.for_range(0, n, 13, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        out[i] = static_cast<float>(i) * 0.37F + 1.0F / static_cast<float>(i + 1);
      }
    });
    EXPECT_EQ(out, serial) << threads << " threads";
  }
}

TEST(ThreadPool, GlobalPoolResizeRoundTrips) {
  const std::size_t before = ThreadPool::global_threads();
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global_threads(), 3U);
  EXPECT_EQ(ThreadPool::global().size(), 3U);
  ThreadPool::set_global_threads(0);  // 0 = hardware concurrency
  EXPECT_EQ(ThreadPool::global_threads(), ThreadPool::default_threads());
  ThreadPool::set_global_threads(before);
}

TEST(ThreadPool, ParallelForUsesGlobalPool) {
  ThreadPool::set_global_threads(2);
  std::atomic<long> sum{0};
  parallel_for(1, 101, 9, [&](std::size_t lo, std::size_t hi) {
    long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 5050);
  ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace tdfm::core
