// Integration tests: the full pipeline of Fig. 2 exercised end to end at
// miniature scale, checking the cross-module contracts the unit suites
// cannot see (dataset -> injector -> technique -> metric -> report).
#include <gtest/gtest.h>

#include "core/logging.hpp"
#include "experiment/experiment.hpp"
#include "experiment/report.hpp"
#include "metrics/metrics.hpp"

namespace tdfm {
namespace {

experiment::StudyConfig pneumonia_study(std::size_t epochs = 8) {
  experiment::StudyConfig cfg;
  cfg.dataset.kind = data::DatasetKind::kPneumoniaSim;
  cfg.dataset.scale = 1.0;
  cfg.model = models::Arch::kConvNet;
  cfg.model_width = 6;
  cfg.trials = 1;
  cfg.train_opts.epochs = epochs;
  cfg.train_opts.batch_size = 8;
  cfg.seed = 1234;
  return cfg;
}

TEST(Pipeline, GoldenModelLearnsTheCleanTask) {
  // The binary Pneumonia-sim task must be learnable by the small ConvNet —
  // otherwise every downstream AD number is meaningless.
  auto cfg = pneumonia_study(20);
  cfg.techniques = {mitigation::TechniqueKind::kBaseline};
  cfg.fault_levels = {{}};
  const auto r = experiment::run_study(cfg);
  // Well above the 50% class prior; the deep models reach ~95% on this task
  // (bench_motivating_example) but the width-6 ConvNet plateaus lower.
  EXPECT_GT(r.golden_accuracy.mean, 0.65);
}

TEST(Pipeline, HeavyMislabellingDegradesTheBaseline) {
  // 50% mislabelling on a binary task destroys the label signal; the
  // baseline must measurably degrade relative to the golden model.
  auto cfg = pneumonia_study(10);
  cfg.techniques = {mitigation::TechniqueKind::kBaseline};
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 50.0}}};
  const auto r = experiment::run_study(cfg);
  const auto& cell = r.cells[0][0];
  EXPECT_GT(cell.ad.mean, 0.1);
  EXPECT_LT(cell.faulty_accuracy.mean, r.golden_accuracy.mean);
}

TEST(Pipeline, RemovalIsGentlerThanMislabelling) {
  // Observation 2 precondition: at equal percentages, removal hurts less
  // than mislabelling (fewer clean samples vs corrupted supervision).
  auto cfg = pneumonia_study(10);
  cfg.techniques = {mitigation::TechniqueKind::kBaseline};
  cfg.trials = 2;
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 50.0}},
      {faults::FaultSpec{faults::FaultType::kRemoval, 50.0}},
  };
  const auto r = experiment::run_study(cfg);
  EXPECT_GT(r.cells[0][0].ad.mean + 0.05, r.cells[1][0].ad.mean);
}

TEST(Pipeline, RepetitionBarelyMoves) {
  // Duplicated clean pairs carry no wrong supervision; AD stays small.
  auto cfg = pneumonia_study(10);
  cfg.techniques = {mitigation::TechniqueKind::kBaseline};
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kRepetition, 30.0}}};
  const auto r = experiment::run_study(cfg);
  EXPECT_LT(r.cells[0][0].ad.mean, 0.5);
}

TEST(Pipeline, OverheadStructureMatchesTechniqueDesign) {
  // Structural overhead claims that hold at any scale: the ensemble
  // consults n models at inference; distillation trains two models (but the
  // student for fewer epochs); LS adds nothing at inference.
  auto cfg = pneumonia_study(4);
  cfg.techniques = {mitigation::TechniqueKind::kBaseline,
                    mitigation::TechniqueKind::kLabelSmoothing,
                    mitigation::TechniqueKind::kKnowledgeDistillation,
                    mitigation::TechniqueKind::kEnsemble};
  cfg.hyperparams.ens_members = {models::Arch::kConvNet, models::Arch::kConvNet,
                                 models::Arch::kConvNet};
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 10.0}}};
  const auto r = experiment::run_study(cfg);
  const auto& base = r.cell(0, mitigation::TechniqueKind::kBaseline);
  const auto& ls = r.cell(0, mitigation::TechniqueKind::kLabelSmoothing);
  const auto& kd = r.cell(0, mitigation::TechniqueKind::kKnowledgeDistillation);
  const auto& ens = r.cell(0, mitigation::TechniqueKind::kEnsemble);
  EXPECT_DOUBLE_EQ(base.inference_models, 1.0);
  EXPECT_DOUBLE_EQ(ls.inference_models, 1.0);
  EXPECT_DOUBLE_EQ(kd.inference_models, 1.0);
  EXPECT_DOUBLE_EQ(ens.inference_models, 3.0);
  // KD trains teacher (full) + student (half): between 1.2x and 2.2x base.
  EXPECT_GT(kd.train_seconds.mean, 1.1 * base.train_seconds.mean);
  EXPECT_LT(kd.train_seconds.mean, 2.6 * base.train_seconds.mean);
  // The 3-member same-arch ensemble costs ~3x base training.
  EXPECT_GT(ens.train_seconds.mean, 2.0 * base.train_seconds.mean);
}

TEST(Pipeline, CleanSubsetReallyEscapesInjection) {
  // For LC, the harness reserves gamma of the data before injection.  With
  // 100% mislabelling on a 2-class problem, noisy labels are all flipped —
  // so any training-set sample whose label equals its generated class must
  // come from the clean reserve.  We verify via the technique's interface.
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kPneumoniaSim;
  const auto dataset = data::generate(spec);
  Rng split_rng(5);
  auto [clean, rest] = data::random_split(dataset.train, 0.2, split_rng);
  Rng inject_rng(6);
  const auto noisy = faults::inject(
      rest, faults::FaultSpec{faults::FaultType::kMislabelling, 100.0},
      inject_rng);
  // All clean labels valid; all noisy labels flipped relative to `rest`.
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_NE(noisy.labels[i], rest.labels[i]);
  }
  EXPECT_EQ(clean.size() + rest.size(), dataset.train.size());
}

TEST(Pipeline, CsvRowsRoundTripThroughTheReport) {
  auto cfg = pneumonia_study(2);
  cfg.techniques = {mitigation::TechniqueKind::kBaseline};
  cfg.fault_levels = {
      {faults::FaultSpec{faults::FaultType::kMislabelling, 10.0}}};
  const auto r = experiment::run_study(cfg);
  const std::string csv = experiment::render_csv(r);
  EXPECT_NE(csv.find("pneumonia-sim,ConvNet,mislabelling@10%,Base,"),
            std::string::npos);
}

}  // namespace
}  // namespace tdfm
