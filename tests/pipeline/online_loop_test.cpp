// OnlinePipeline end to end: the bootstrap -> promote -> corrupt -> rollback
// story, bit-identical decisions across reruns and worker/thread counts, and
// the v3 checkpoint promotion transport.
//
// The hot-swap-under-canary path (engine serving while the registry swaps
// versions) runs in every test here, so `ctest -L pipeline` under TSan covers
// it by construction.
#include "pipeline/online_pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/thread_pool.hpp"
#include "nn/checkpoint.hpp"

namespace tdfm::pipeline {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const char* name)
      : path(std::string(::testing::TempDir()) + name) {
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

// The calibrated scenario: models strong enough that AD between consecutive
// candidates clears the 0.5 guardrail, a drill at round 3 heavy enough that
// the next health check must roll back, and a hysteresis band that stays
// inside AD's [0, 1] range (0.5 * 1.4 = 0.7).
PipelineConfig story_config() {
  PipelineConfig cfg;
  cfg.dataset.scale = 0.6;
  cfg.stream.mislabel_percent = 20.0;
  cfg.stream.chunk_size = 96;
  cfg.ingest.window = 192;
  cfg.ingest.hop = 0;
  cfg.ingest.capacity = 768;
  cfg.retrain.train_opts.epochs = 6;
  cfg.bootstrap_epochs = 4;
  cfg.canary.ad_threshold = 0.5;
  cfg.canary.accuracy_margin = 0.05;
  cfg.canary.rollback_factor = 1.4;
  cfg.rounds = 8;
  cfg.retrain_every = 2;
  cfg.serve_per_round = 8;
  cfg.corrupt_round = 3;
  cfg.corruption.mode = CorruptionMode::kSignFlip;
  cfg.corruption.fraction = 0.2;
  cfg.seed = 7;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(OnlinePipeline, StoryPromotesThenDrillsThenRollsBack) {
  const PipelineResult r = OnlinePipeline(story_config()).run();
  EXPECT_EQ(r.rounds_run, 8U);
  EXPECT_GE(r.promotions, 1U) << "no candidate cleared the AD guardrail";
  EXPECT_EQ(r.corruptions, 1U);
  EXPECT_GE(r.rollbacks, 1U) << "health check missed the drilled fault";
  EXPECT_GT(r.traffic_served, 0U);
  // Bootstrap fills one window (2 chunks) before the 8-round loop.
  EXPECT_EQ(r.samples_streamed, (8U + 2U) * 96U);

  // Decision 0 is always the bootstrap; the drill and its rollback are
  // ordered drill-first in the log.
  ASSERT_FALSE(r.decisions.empty());
  EXPECT_EQ(r.decisions.front().action, Action::kBootstrap);
  std::size_t drill_at = 0;
  std::size_t rollback_at = 0;
  for (std::size_t i = 0; i < r.decisions.size(); ++i) {
    if (r.decisions[i].action == Action::kCorrupt) drill_at = i;
    if (r.decisions[i].action == Action::kRollback && rollback_at == 0) {
      rollback_at = i;
    }
  }
  EXPECT_GT(drill_at, 0U);
  EXPECT_GT(rollback_at, drill_at);
  EXPECT_TRUE(r.decisions[drill_at].corrupted);
  // The rollback judges exactly the version the drill installed; the
  // restored good weights land as a fresh (higher) registry version,
  // recorded as the rollback decision's candidate.
  EXPECT_EQ(r.decisions[rollback_at].live_version,
            r.decisions[drill_at].candidate_version);
  EXPECT_GT(r.decisions[rollback_at].candidate_version,
            r.decisions[rollback_at].live_version);
}

TEST(OnlinePipeline, DecisionsAreBitIdenticalAcrossRerunsAndWorkers) {
  PipelineConfig cfg = story_config();
  cfg.engine.workers = 1;
  const PipelineResult base = OnlinePipeline(cfg).run();

  // Same config, fresh pipeline.
  const PipelineResult rerun = OnlinePipeline(cfg).run();
  EXPECT_EQ(rerun.decisions, base.decisions);

  // More engine workers and a wider thread pool: the batching queue slices
  // traffic differently, but per-sample forwards are batch-composition
  // independent, so not one field of one decision may move.
  const std::size_t prev = core::ThreadPool::global_threads();
  core::ThreadPool::set_global_threads(4);
  PipelineConfig wide = cfg;
  wide.engine.workers = 3;
  const PipelineResult parallel = OnlinePipeline(wide).run();
  core::ThreadPool::set_global_threads(prev);
  EXPECT_EQ(parallel.decisions, base.decisions);
  EXPECT_EQ(parallel.traffic_correct, base.traffic_correct);
}

TEST(OnlinePipeline, DecisionLogFileIsByteIdenticalAcrossRuns) {
  const TempDir dir("pipeline_log_determinism/");
  PipelineConfig cfg = story_config();
  // Shrink the scenario: byte-identity is about serialization, not the
  // full story arc.
  cfg.rounds = 4;
  cfg.corrupt_round = 0;
  cfg.decision_log_path = dir.path + "a.jsonl";
  (void)OnlinePipeline(cfg).run();
  cfg.decision_log_path = dir.path + "b.jsonl";
  (void)OnlinePipeline(cfg).run();

  const std::string a = slurp(dir.path + "a.jsonl");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(dir.path + "b.jsonl"));

  // And the file round-trips through the loader.
  bool torn = true;
  const std::vector<Decision> loaded =
      DecisionLog::load(dir.path + "a.jsonl", &torn);
  EXPECT_FALSE(torn);
  EXPECT_FALSE(loaded.empty());
  EXPECT_EQ(loaded.front().action, Action::kBootstrap);
}

TEST(OnlinePipeline, CheckpointTransportWritesV3WhenQuantized) {
  const TempDir dir("pipeline_ckpt_transport/");
  PipelineConfig cfg = story_config();
  cfg.rounds = 4;
  cfg.corrupt_round = 0;
  cfg.quantize = true;
  cfg.checkpoint_dir = dir.path;
  cfg.model_name = "loop";
  const PipelineResult r = OnlinePipeline(cfg).run();
  ASSERT_GE(r.promotions + 1U, 1U);  // bootstrap always publishes

  // Every published version left a self-describing checkpoint whose header
  // carries the quantize deployment flag (format v3).
  std::size_t checkpoints = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    ++checkpoints;
    const std::string path = entry.path().string();
    EXPECT_EQ(nn::checkpoint_format_version(path), 3U) << path;
    EXPECT_TRUE(nn::read_checkpoint_meta(path).quantize) << path;
  }
  EXPECT_GE(checkpoints, 1U);
  for (const Decision& d : r.decisions) {
    if (d.action == Action::kPromote || d.action == Action::kBootstrap) {
      EXPECT_TRUE(d.quantized);
    }
  }
}

TEST(OnlinePipeline, RejectsDegenerateConfig) {
  PipelineConfig cfg = story_config();
  cfg.rounds = 0;  // and duration 0: nothing to run
  EXPECT_THROW((void)OnlinePipeline(cfg).run(), Error);

  cfg = story_config();
  cfg.canary_fraction = 1.5;
  EXPECT_THROW((void)OnlinePipeline(cfg).run(), Error);

  cfg = story_config();
  cfg.retrain_every = 0;
  EXPECT_THROW((void)OnlinePipeline(cfg).run(), Error);
}

}  // namespace
}  // namespace tdfm::pipeline
