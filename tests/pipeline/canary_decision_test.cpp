// Canary judges (promote / hold / rollback with hysteresis) and the
// crash-safe decision log (JSONL round-trip, torn-tail recovery).
#include "pipeline/canary.hpp"
#include "pipeline/decision_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/error.hpp"

namespace tdfm::pipeline {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

// 10 samples, truth all 0.  Live gets the first 8 right; vectors below
// flip chosen subsets of those to build exact AD values.
const std::vector<int> kTruth{0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
const std::vector<int> kLive{0, 0, 0, 0, 0, 0, 0, 0, 1, 1};  // acc 0.8

CanaryConfig config() {
  CanaryConfig c;
  c.ad_threshold = 0.25;
  c.accuracy_margin = 0.1;
  c.rollback_factor = 2.0;  // rollback at health AD >= 0.5
  return c;
}

TEST(CanaryJudge, PromotesWithinGuardrail) {
  // Candidate flips 1 of live's 8 correct answers: AD = 1/8 = 0.125 <= 0.25,
  // and fixes one of live's errors, so accuracy does not trail.
  const std::vector<int> cand{1, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  const CanaryVerdict v = judge_candidate(kLive, cand, kTruth, config());
  EXPECT_EQ(v.action, Action::kPromote);
  EXPECT_DOUBLE_EQ(v.ad, 0.125);
  EXPECT_DOUBLE_EQ(v.candidate_accuracy, 0.8);
  EXPECT_DOUBLE_EQ(v.live_accuracy, 0.8);
}

TEST(CanaryJudge, HoldsOnAdBreach) {
  // Candidate flips 3 of 8: AD = 0.375 > 0.25 — held even though its raw
  // accuracy matches live (churn on correct traffic is the guarded risk).
  const std::vector<int> cand{1, 1, 1, 0, 0, 0, 0, 0, 0, 0};
  const CanaryVerdict v = judge_candidate(kLive, cand, kTruth, config());
  EXPECT_EQ(v.action, Action::kHold);
  EXPECT_DOUBLE_EQ(v.ad, 0.375);
  EXPECT_NE(v.reason.find("threshold"), std::string::npos);
}

TEST(CanaryJudge, HoldsWhenAccuracyTrailsBeyondMargin) {
  // AD = 2/8 = 0.25 (inside the guardrail) but accuracy 0.6 trails live's
  // 0.8 beyond the 0.1 margin.
  const std::vector<int> cand{1, 1, 0, 0, 0, 0, 0, 0, 1, 1};
  const CanaryVerdict v = judge_candidate(kLive, cand, kTruth, config());
  EXPECT_EQ(v.action, Action::kHold);
  EXPECT_DOUBLE_EQ(v.ad, 0.25);
  EXPECT_DOUBLE_EQ(v.candidate_accuracy, 0.6);
}

TEST(CanaryJudge, NeverReturnsRollback) {
  // Even a catastrophic candidate is held, not rolled back: rollback is
  // reserved for the live model failing its own history.
  const std::vector<int> cand{1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_EQ(judge_candidate(kLive, cand, kTruth, config()).action,
            Action::kHold);
}

TEST(HealthJudge, HealthyModelMatchingReferenceHolds) {
  const CanaryVerdict v = judge_live_health(kLive, kLive, kTruth, config());
  EXPECT_EQ(v.action, Action::kHold);
  EXPECT_DOUBLE_EQ(v.ad, 0.0);
}

TEST(HealthJudge, HysteresisBandHoldsBetweenThresholds) {
  // Health AD = 3/8 = 0.375: above the promotion threshold (0.25) but below
  // the rollback threshold (0.5).  The hysteresis band prevents a model that
  // barely failed promotion from flapping straight into rollback territory.
  const std::vector<int> live_now{1, 1, 1, 0, 0, 0, 0, 0, 1, 1};
  const CanaryVerdict v = judge_live_health(kLive, live_now, kTruth, config());
  EXPECT_EQ(v.action, Action::kHold);
  EXPECT_DOUBLE_EQ(v.ad, 0.375);
}

TEST(HealthJudge, RollsBackAboveRollbackThreshold) {
  // Health AD = 5/8 = 0.625 >= 0.5.
  const std::vector<int> live_now{1, 1, 1, 1, 1, 0, 0, 0, 1, 1};
  const CanaryVerdict v = judge_live_health(kLive, live_now, kTruth, config());
  EXPECT_EQ(v.action, Action::kRollback);
  EXPECT_DOUBLE_EQ(v.ad, 0.625);
}

TEST(HealthJudge, ZeroThresholdNeverRollsBackPerfectHealth) {
  CanaryConfig zero = config();
  zero.ad_threshold = 0.0;  // rollback threshold also 0
  EXPECT_EQ(judge_live_health(kLive, kLive, kTruth, zero).action,
            Action::kHold);
  // ...but any deviation at all trips it.
  std::vector<int> drift = kLive;
  drift[0] = 1;
  EXPECT_EQ(judge_live_health(kLive, drift, kTruth, zero).action,
            Action::kRollback);
}

TEST(CanaryJudge, RejectsInvalidConfig) {
  CanaryConfig bad = config();
  bad.rollback_factor = 0.5;  // would put rollback below promotion
  EXPECT_THROW((void)judge_candidate(kLive, kLive, kTruth, bad), Error);
  bad = config();
  bad.ad_threshold = 1.5;
  EXPECT_THROW((void)judge_candidate(kLive, kLive, kTruth, bad), Error);
}

Decision sample_decision() {
  Decision d;
  d.round = 7;
  d.action = Action::kPromote;
  d.live_version = 3;
  d.candidate_version = 4;
  d.technique = "LS+meta";
  d.window_first_seq = 640;
  d.window_last_seq = 831;
  d.window_samples = 192;
  d.candidate_accuracy = 1.0 / 3.0;  // awkward doubles on purpose
  d.live_accuracy = 0.1 + 0.2;
  d.candidate_ad = 0.017;
  d.reverse_ad = 1e-9;
  d.ad_threshold = 0.1;
  d.rollback_threshold = 0.15000000000000002;
  d.quantized = true;
  d.corrupted = false;
  d.reason = "ad 0.017 <= threshold 0.1, \"quoted\" and \\ escaped";
  return d;
}

TEST(DecisionLog, JsonRoundTripIsExact) {
  const Decision d = sample_decision();
  const Decision parsed = parse_decision(to_jsonl(d));
  EXPECT_EQ(parsed, d);  // %.17g doubles: bit-exact, not approximately equal
}

TEST(DecisionLog, ParseRejectsGarbageAndMissingAction) {
  EXPECT_THROW((void)parse_decision("not json at all"), Error);
  EXPECT_THROW((void)parse_decision("{\"round\": 1}"), Error);  // no action
  EXPECT_THROW((void)parse_decision("{\"action\": \"warp\"}"), Error);
}

TEST(DecisionLog, AppendThenLoadRestoresDecisions) {
  const TempFile file("decision_log_roundtrip.jsonl");
  Decision a = sample_decision();
  Decision b = sample_decision();
  b.round = 8;
  b.action = Action::kRollback;
  {
    DecisionLog log(file.path);
    log.append(a);
    log.append(b);
    EXPECT_EQ(log.decisions().size(), 2U);
  }
  bool torn = true;
  const std::vector<Decision> loaded = DecisionLog::load(file.path, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(loaded.size(), 2U);
  EXPECT_EQ(loaded[0], a);
  EXPECT_EQ(loaded[1], b);
}

TEST(DecisionLog, MissingFileLoadsEmpty) {
  bool torn = true;
  EXPECT_TRUE(DecisionLog::load("/nonexistent/dir/decisions.jsonl", &torn)
                  .empty());
  EXPECT_FALSE(torn);
}

TEST(DecisionLog, TornTailIsDroppedWithRecoveryFlag) {
  const TempFile file("decision_log_torn.jsonl");
  {
    DecisionLog log(file.path);
    log.append(sample_decision());
  }
  // Simulate kill -9 mid-append: a record fragment with no terminator.
  {
    std::ofstream out(file.path, std::ios::app);
    out << "{\"round\": 9, \"action\": \"prom";
  }
  bool torn = false;
  const std::vector<Decision> loaded = DecisionLog::load(file.path, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(loaded.size(), 1U);
  EXPECT_EQ(loaded[0], sample_decision());
}

TEST(DecisionLog, TerminatedGarbageThrows) {
  const TempFile file("decision_log_garbage.jsonl");
  {
    DecisionLog log(file.path);
    log.append(sample_decision());
  }
  {
    std::ofstream out(file.path, std::ios::app);
    out << "corrupted but newline-terminated\n";  // not a torn tail
  }
  EXPECT_THROW((void)DecisionLog::load(file.path), Error);
}

TEST(DecisionLog, ActionNamesRoundTrip) {
  for (const Action a : {Action::kBootstrap, Action::kPromote, Action::kHold,
                         Action::kRollback, Action::kCorrupt}) {
    EXPECT_EQ(action_from_name(action_name(a)), a);
  }
  EXPECT_THROW((void)action_from_name("sideways"), Error);
}

}  // namespace
}  // namespace tdfm::pipeline
