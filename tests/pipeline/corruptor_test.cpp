// WeightCorruptor (fp32 + q8_0 paths) and the Retrainer's metamorphic /
// fault-aware training modes.
#include "pipeline/retrainer.hpp"
#include "pipeline/weight_corruptor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "data/synthetic.hpp"
#include "kernels/quant.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

namespace tdfm::pipeline {
namespace {

models::ModelConfig tiny_config() {
  models::ModelConfig c;
  c.in_channels = 3;
  c.image_size = 16;
  c.num_classes = 5;
  c.width = 2;
  return c;
}

std::unique_ptr<nn::Network> tiny_net(std::uint64_t seed = 11) {
  Rng rng(seed);
  return models::build_model(models::Arch::kConvNet, tiny_config(), rng);
}

data::Dataset tiny_window() {
  data::SyntheticSpec spec;
  spec.scale = 0.2;
  return data::generate(spec).train;
}

TEST(WeightCorruptor, DeterministicInSeed) {
  auto a = tiny_net();
  auto b = tiny_net();
  ASSERT_EQ(a->save_weights(), b->save_weights());
  CorruptionSpec spec;
  spec.mode = CorruptionMode::kBitFlip;
  spec.fraction = 0.05;
  spec.seed = 77;
  const CorruptionReport ra = corrupt_network(*a, spec);
  const CorruptionReport rb = corrupt_network(*b, spec);
  EXPECT_EQ(ra.scalars_hit, rb.scalars_hit);
  EXPECT_GT(ra.scalars_hit, 0U);
  EXPECT_EQ(a->save_weights(), b->save_weights());  // same damage, bit for bit

  auto c = tiny_net();
  spec.seed = 78;
  (void)corrupt_network(*c, spec);
  EXPECT_NE(a->save_weights(), c->save_weights());  // different seed, different damage
}

TEST(WeightCorruptor, ModesActOnScalarsAsAdvertised) {
  const auto weights_of = [](CorruptionMode mode) {
    auto net = tiny_net();
    CorruptionSpec spec;
    spec.mode = mode;
    spec.fraction = 0.2;
    spec.seed = 5;
    const CorruptionReport r = corrupt_network(*net, spec);
    EXPECT_GT(r.scalars_hit, 0U);
    return net->save_weights();
  };
  const std::vector<float> original = tiny_net()->save_weights();
  const std::vector<float> zeroed = weights_of(CorruptionMode::kZero);
  const std::vector<float> flipped = weights_of(CorruptionMode::kSignFlip);
  const std::vector<float> perturbed = weights_of(CorruptionMode::kPerturb);

  std::size_t zeros = 0;
  std::size_t sign_changes = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (original[i] != 0.0F && zeroed[i] == 0.0F) ++zeros;
    if (original[i] != 0.0F && flipped[i] == -original[i]) ++sign_changes;
    // Every mode keeps weights finite (NaN/Inf results are masked).
    EXPECT_TRUE(std::isfinite(zeroed[i]));
    EXPECT_TRUE(std::isfinite(flipped[i]));
    EXPECT_TRUE(std::isfinite(perturbed[i]));
  }
  EXPECT_GT(zeros, 0U);
  EXPECT_GT(sign_changes, 0U);
}

TEST(WeightCorruptor, Q8PathHitsQuantizedBlocks) {
  auto net = tiny_net();
  net->quantize_for_inference();
  ASSERT_FALSE(net->quantized_weights().empty());

  // Sum of |scales| before, to detect scale corruption.
  const auto scale_mass = [](nn::Network& n) {
    double total = 0.0;
    for (const kernels::Q8Matrix* q : n.quantized_weights()) {
      const std::size_t blocks = q->rows * q->blocks_per_row;
      for (std::size_t b = 0; b < blocks; ++b) {
        total += std::abs(static_cast<double>(q->scales[b]));
      }
    }
    return total;
  };
  const double before = scale_mass(*net);

  CorruptionSpec spec;
  spec.mode = CorruptionMode::kZero;  // zeroes block scales on the q8 path
  spec.fraction = 0.3;
  spec.seed = 9;
  const CorruptionReport r = corrupt_network(*net, spec);
  EXPECT_GT(r.blocks_hit, 0U);
  EXPECT_EQ(r.scalars_hit, 0U);  // q8 path counts blocks, not scalars
  EXPECT_LT(scale_mass(*net), before);

  // Bit flips on codes keep the network usable: a forward pass still runs.
  CorruptionSpec bits;
  bits.mode = CorruptionMode::kBitFlip;
  bits.fraction = 0.1;
  bits.seed = 10;
  (void)corrupt_network(*net, bits);
  Tensor batch({2, 3, 16, 16});
  for (float& v : batch.flat()) v = 0.5F;
  const std::vector<int> preds = nn::predict_batch(*net, batch);
  EXPECT_EQ(preds.size(), 2U);
}

TEST(WeightCorruptor, CorruptionDegradesAgreement) {
  // The drill the pipeline relies on: heavy sign-flip corruption must change
  // predictions, or the health check could never observe the fault.
  auto golden = tiny_net();
  auto faulty = tiny_net();
  CorruptionSpec spec;
  spec.mode = CorruptionMode::kSignFlip;
  spec.fraction = 0.3;
  spec.seed = 13;
  (void)corrupt_network(*faulty, spec);

  data::Dataset probe = tiny_window();
  const std::vector<int> a = nn::predict_classes(*golden, probe.images);
  const std::vector<int> b = nn::predict_classes(*faulty, probe.images);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += (a[i] != b[i]) ? 1 : 0;
  EXPECT_GT(diff, 0U);
}

TEST(Retrainer, MetamorphicAugmentPreservesOriginalsAndLabels) {
  const data::Dataset window = tiny_window();
  Rng rng(3);
  const data::Dataset aug = Retrainer::metamorphic_augment(window, 2, rng);
  ASSERT_EQ(aug.size(), window.size() * 3);
  // Originals ride first, byte-identical.
  const std::size_t row = window.channels() * window.height() * window.width();
  EXPECT_EQ(std::memcmp(aug.images.data(), window.images.data(),
                        window.size() * row * sizeof(float)),
            0);
  // Transformed copies keep their source labels and stay in [0, 1].
  for (std::size_t copy = 0; copy < 2; ++copy) {
    for (std::size_t i = 0; i < window.size(); ++i) {
      EXPECT_EQ(aug.labels[(copy + 1) * window.size() + i], window.labels[i]);
    }
  }
  for (const float v : aug.images.flat()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
  aug.validate();
}

TEST(Retrainer, CandidatesAreDeterministicPerRound) {
  RetrainerConfig cfg;
  cfg.arch = models::Arch::kConvNet;
  cfg.model_config = tiny_config();
  cfg.model_config.num_classes = 10;  // matches the synthetic window
  cfg.train_opts.epochs = 1;
  cfg.seed = 21;
  Retrainer r(cfg);
  const data::Dataset window = tiny_window();
  auto a = r.fit_candidate(window, 3);
  auto b = r.fit_candidate(window, 3);
  EXPECT_EQ(a->save_weights(), b->save_weights());
  auto c = r.fit_candidate(window, 4);  // a different round diverges
  EXPECT_NE(a->save_weights(), c->save_weights());
}

TEST(Retrainer, FaultAwareTrainingRunsAndStaysFinite) {
  RetrainerConfig cfg;
  cfg.arch = models::Arch::kConvNet;
  cfg.model_config = tiny_config();
  cfg.model_config.num_classes = 10;
  cfg.train_opts.epochs = 2;
  cfg.fault_aware = true;
  cfg.fault_corruption.mode = CorruptionMode::kPerturb;
  cfg.fault_corruption.fraction = 0.02;
  cfg.seed = 22;
  Retrainer r(cfg);
  EXPECT_EQ(r.technique_label(), "Base+fat");
  auto net = r.fit_candidate(tiny_window(), 1);
  for (const float w : net->save_weights()) EXPECT_TRUE(std::isfinite(w));
}

TEST(Retrainer, RejectsEnsembleAndFaultAwareNonBaseline) {
  RetrainerConfig cfg;
  cfg.technique = mitigation::TechniqueKind::kEnsemble;
  EXPECT_THROW(Retrainer{cfg}, Error);
  cfg.technique = mitigation::TechniqueKind::kLabelSmoothing;
  cfg.fault_aware = true;
  EXPECT_THROW(Retrainer{cfg}, Error);
}

TEST(WeightCorruptor, ModeNamesRoundTrip) {
  for (const CorruptionMode m :
       {CorruptionMode::kBitFlip, CorruptionMode::kSignFlip,
        CorruptionMode::kZero, CorruptionMode::kPerturb}) {
    EXPECT_EQ(corruption_mode_from_name(corruption_mode_name(m)), m);
  }
  EXPECT_THROW((void)corruption_mode_from_name("rust"), Error);
}

}  // namespace
}  // namespace tdfm::pipeline
