// StreamSource + IngestBuffer: bit-identical replay, injection accounting,
// window discipline (tumbling vs sliding), and the capacity/drop/watermark
// contract.
#include "pipeline/ingest_buffer.hpp"
#include "pipeline/stream_source.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"

namespace tdfm::pipeline {
namespace {

data::Dataset base_dataset(std::size_t scale_hint = 1) {
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kCifar10Sim;
  spec.scale = 0.3 * static_cast<double>(scale_hint);
  return data::generate(spec).train;
}

bool chunks_equal(const StreamChunk& a, const StreamChunk& b) {
  return a.index == b.index && a.first_seq == b.first_seq &&
         a.samples.labels == b.samples.labels &&
         a.samples.images.numel() == b.samples.images.numel() &&
         std::memcmp(a.samples.images.data(), b.samples.images.data(),
                     a.samples.images.numel() * sizeof(float)) == 0;
}

TEST(StreamSource, BitIdenticalAcrossInstancesAndThreadCounts) {
  const data::Dataset base = base_dataset();
  StreamConfig cfg;
  cfg.mislabel_percent = 25.0;
  cfg.repeat_percent = 10.0;
  cfg.remove_percent = 5.0;
  cfg.chunk_size = 32;
  cfg.seed = 99;

  const std::size_t prev = core::ThreadPool::global_threads();
  core::ThreadPool::set_global_threads(1);
  StreamSource a(base, cfg);
  std::vector<StreamChunk> first;
  for (int i = 0; i < 5; ++i) first.push_back(a.next());

  // A different pool width and unrelated interleaved work must not move a
  // single byte: chunk i's randomness is a pure function of (seed, i).
  core::ThreadPool::set_global_threads(4);
  StreamSource b(base, cfg);
  for (int i = 0; i < 5; ++i) {
    Rng noise(123 + static_cast<std::uint64_t>(i));
    (void)noise.next();  // unrelated RNG draws between chunks
    EXPECT_TRUE(chunks_equal(first[static_cast<std::size_t>(i)], b.next()))
        << "chunk " << i << " diverged";
  }
  core::ThreadPool::set_global_threads(prev);
}

TEST(StreamSource, SequenceNumbersAreContiguous) {
  StreamConfig cfg;
  cfg.mislabel_percent = 0.0;
  cfg.repeat_percent = 20.0;  // emits extra samples
  cfg.remove_percent = 10.0;  // consumes base samples without emitting
  cfg.chunk_size = 40;
  StreamSource s(base_dataset(), cfg);
  std::uint64_t expect_seq = 0;
  for (int i = 0; i < 6; ++i) {
    const StreamChunk c = s.next();
    EXPECT_EQ(c.first_seq, expect_seq);
    expect_seq += c.samples.size();
  }
  EXPECT_EQ(s.emitted(), expect_seq);
}

TEST(StreamSource, InjectionReportsMatchConfiguredFaults) {
  StreamConfig cfg;
  cfg.mislabel_percent = 50.0;
  cfg.chunk_size = 64;
  StreamSource s(base_dataset(), cfg);
  const StreamChunk c = s.next();
  EXPECT_EQ(c.samples.size(), 64U);  // mislabelling keeps the count
  EXPECT_GT(c.report.mislabelled, 0U);
  c.samples.validate();

  StreamConfig clean;
  clean.mislabel_percent = 0.0;
  clean.chunk_size = 64;
  StreamSource t(base_dataset(), clean);
  const StreamChunk d = t.next();
  EXPECT_EQ(d.report.mislabelled, 0U);
  EXPECT_EQ(d.report.repeated, 0U);
  EXPECT_EQ(d.report.removed, 0U);
}

StreamChunk make_chunk(StreamSource& s) { return s.next(); }

TEST(IngestBuffer, TumblingWindowsAreDisjoint) {
  StreamConfig scfg;
  scfg.mislabel_percent = 0.0;
  scfg.chunk_size = 32;
  StreamSource s(base_dataset(), scfg);
  IngestConfig cfg;
  cfg.window = 64;
  cfg.hop = 0;  // tumbling
  cfg.capacity = 256;
  IngestBuffer buf(cfg);
  while (!buf.window_ready()) buf.push(make_chunk(s));

  std::uint64_t f1 = 0;
  std::uint64_t l1 = 0;
  const data::Dataset w1 = buf.take_window(&f1, &l1);
  EXPECT_EQ(w1.size(), 64U);
  EXPECT_EQ(f1, 0U);
  EXPECT_EQ(l1, 63U);

  while (!buf.window_ready()) buf.push(make_chunk(s));
  std::uint64_t f2 = 0;
  std::uint64_t l2 = 0;
  const data::Dataset w2 = buf.take_window(&f2, &l2);
  EXPECT_EQ(f2, 64U);  // no overlap with window 1
  EXPECT_EQ(l2, 127U);
  EXPECT_EQ(buf.stats().windows, 2U);
}

TEST(IngestBuffer, SlidingWindowsOverlapByWindowMinusHop) {
  StreamConfig scfg;
  scfg.mislabel_percent = 0.0;
  scfg.chunk_size = 32;
  StreamSource s(base_dataset(), scfg);
  IngestConfig cfg;
  cfg.window = 64;
  cfg.hop = 16;  // sliding: 48 samples shared between consecutive windows
  cfg.capacity = 256;
  IngestBuffer buf(cfg);
  while (!buf.window_ready()) buf.push(make_chunk(s));

  std::uint64_t f1 = 0;
  std::uint64_t l1 = 0;
  (void)buf.take_window(&f1, &l1);
  EXPECT_EQ(buf.pending(), 64U - 16U);  // only hop samples consumed
  while (!buf.window_ready()) buf.push(make_chunk(s));
  std::uint64_t f2 = 0;
  std::uint64_t l2 = 0;
  (void)buf.take_window(&f2, &l2);
  EXPECT_EQ(f2, f1 + 16);  // slid by exactly hop
}

TEST(IngestBuffer, OverflowDropsOldestAndAdvancesWatermark) {
  StreamConfig scfg;
  scfg.mislabel_percent = 0.0;
  scfg.chunk_size = 50;
  StreamSource s(base_dataset(), scfg);
  IngestConfig cfg;
  cfg.window = 40;
  cfg.hop = 0;
  cfg.capacity = 100;
  IngestBuffer buf(cfg);
  for (int i = 0; i < 4; ++i) buf.push(make_chunk(s));  // 200 pushed into 100

  const IngestStats& st = buf.stats();
  EXPECT_EQ(st.pushed, 200U);
  EXPECT_EQ(st.dropped, 100U);
  EXPECT_EQ(buf.pending(), 100U);
  // Watermark tracks the stream head even though half the samples are gone.
  EXPECT_EQ(st.watermark, 200U);

  // The oldest *surviving* sample is #100: the next window must start there.
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  const data::Dataset w = buf.take_window(&first, &last);
  EXPECT_EQ(w.size(), 40U);
  EXPECT_EQ(first, 100U);
  EXPECT_EQ(last, 139U);
}

TEST(IngestBuffer, RejectsDegenerateConfigs) {
  EXPECT_THROW(IngestBuffer(IngestConfig{0, 0, 16}), Error);
  EXPECT_THROW(IngestBuffer(IngestConfig{16, 32, 64}), Error);  // hop > window
  EXPECT_THROW(IngestBuffer(IngestConfig{64, 0, 32}), Error);  // capacity < window
}

}  // namespace
}  // namespace tdfm::pipeline
