// Query-side behaviour of the results store: predicate pushdown over zone
// maps (skipped segments are never read), dictionary grep, aggregation
// parity with the Analyzer, and the telemetry archive (src/store/reader.*).
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "store/store.hpp"
#include "study/analyzer.hpp"

namespace tdfm::store {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "tdfm_store_query_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Campaign-shaped records: techniques cycle fastest, so small segments end
/// up technique-homogeneous and a technique predicate can prune.
study::CellRecord grid_record(std::size_t i) {
  static const char* kTechniques[] = {"Base", "LS", "Ens"};
  study::CellRecord r;
  char cell[20];
  std::snprintf(cell, sizeof(cell), "%016zx", i + 1);
  r.cell = cell;
  r.dataset = i < 30 ? "pneumonia-sim" : "gtsrb-sim";
  r.model = "ConvNet";
  r.fault_level = "mislabelling@30%";
  r.technique = kTechniques[(i / 10) % 3];  // runs of 10: homogeneous segments
  r.trial = 1 + i % 5;
  r.golden_accuracy = 0.8;
  r.faulty_accuracy = 0.6;
  r.ad = static_cast<double>(i) / 100.0;  // monotone: ad zone maps prune
  r.train_seconds = 1.0;
  return r;
}

/// A store of 60 grid records in segments of 5 (12 segments, each holding
/// one technique and one dataset).
std::string build_grid_store(const std::string& name) {
  const std::string dir = temp_dir(name);
  StoreWriter writer(dir, {.segment_rows = 5});
  for (std::size_t i = 0; i < 60; ++i) writer.append(grid_record(i));
  writer.commit();
  return dir;
}

TEST(StoreQuery, TechniquePredicateSkipsSegmentsByZoneMap) {
  const StoreReader reader(build_grid_store("technique"));
  Query q;
  q.technique = "LS";
  std::size_t matched = 0;
  const ScanStats stats =
      reader.query(q, [&](const study::CellRecord& r, const std::string&) {
        EXPECT_EQ(r.technique, "LS");
        ++matched;
      });
  EXPECT_EQ(matched, 20U);
  EXPECT_EQ(stats.segments_total, 12U);
  EXPECT_EQ(stats.segments_skipped, 8U);  // Base + Ens segments: never read
  EXPECT_EQ(stats.segments_scanned, 4U);
  EXPECT_EQ(stats.rows_scanned, 20U);
  EXPECT_EQ(stats.rows_matched, 20U);
}

TEST(StoreQuery, UnknownStringSkipsEverySegmentWithoutReading) {
  const StoreReader reader(build_grid_store("unknown"));
  Query q;
  q.technique = "NoSuchTechnique";
  const ScanStats stats =
      reader.query(q, [](const study::CellRecord&, const std::string&) {
        FAIL() << "matched a row for an unknown technique";
      });
  EXPECT_EQ(stats.segments_skipped, stats.segments_total);
  EXPECT_EQ(stats.rows_scanned, 0U);
}

TEST(StoreQuery, GrepResolvesThroughDictionariesAndPrunes) {
  const StoreReader reader(build_grid_store("grep"));
  Query q;
  q.grep = "gtsrb";  // matches the dataset of rows 30..59 only
  std::size_t matched = 0;
  const ScanStats stats =
      reader.query(q, [&](const study::CellRecord& r, const std::string&) {
        EXPECT_EQ(r.dataset, "gtsrb-sim");
        ++matched;
      });
  EXPECT_EQ(matched, 30U);
  EXPECT_EQ(stats.segments_skipped, 6U);  // the pneumonia half of the store
}

TEST(StoreQuery, GrepWithNoDictionaryMatchSkipsEverything) {
  const StoreReader reader(build_grid_store("grep_none"));
  Query q;
  q.grep = "zebra";
  const ScanStats stats =
      reader.query(q, [](const study::CellRecord&, const std::string&) {
        FAIL() << "matched a row for a grep no dictionary contains";
      });
  EXPECT_EQ(stats.segments_skipped, stats.segments_total);
}

TEST(StoreQuery, AdRangePredicatePrunesByZoneMap) {
  const StoreReader reader(build_grid_store("ad_range"));
  Query q;
  q.min_ad = 0.50;  // rows 50..59: the last two segments
  std::size_t matched = 0;
  const ScanStats stats = reader.query(
      q, [&](const study::CellRecord& r, const std::string&) {
        EXPECT_GE(r.ad, 0.50);
        ++matched;
      });
  EXPECT_EQ(matched, 10U);
  EXPECT_EQ(stats.segments_scanned, 2U);
  EXPECT_EQ(stats.segments_skipped, 10U);
}

TEST(StoreQuery, TrialPredicatePrunesWhenOutOfRange) {
  const StoreReader reader(build_grid_store("trial"));
  Query q;
  q.trial = 99;
  const ScanStats stats =
      reader.query(q, [](const study::CellRecord&, const std::string&) {
        FAIL() << "matched a trial the store does not contain";
      });
  EXPECT_EQ(stats.segments_skipped, stats.segments_total);
}

TEST(StoreQuery, ConjunctivePredicatesComposeAcrossColumns) {
  const StoreReader reader(build_grid_store("conjunction"));
  Query q;
  q.technique = "Ens";
  q.dataset = "pneumonia-sim";  // Ens ∩ pneumonia: rows 20..29
  q.trial = 3;
  std::size_t matched = 0;
  reader.query(q, [&](const study::CellRecord& r, const std::string&) {
    EXPECT_EQ(r.technique, "Ens");
    EXPECT_EQ(r.dataset, "pneumonia-sim");
    EXPECT_EQ(r.trial, 3U);
    ++matched;
  });
  EXPECT_EQ(matched, 2U);  // rows 22 and 27
}

TEST(StoreQuery, AggregationMatchesAnalyzerOverTheSameRecords) {
  const std::string dir = build_grid_store("agg");
  std::vector<study::CellRecord> direct;
  for (std::size_t i = 0; i < 60; ++i) direct.push_back(grid_record(i));

  const auto from_store = StoreReader(dir).read_all();
  ASSERT_EQ(from_store, direct);
  // Identical records in identical order fold into identical reports.
  EXPECT_EQ(study::render_json_summary(study::summarize_campaign(from_store)),
            study::render_json_summary(study::summarize_campaign(direct)));
}

TEST(StoreQuery, FilteredJsonlMatchesAGrepOfTheExport) {
  const std::string dir = build_grid_store("jsonl");
  // The reference: export everything, keep lines containing the technique.
  std::ostringstream all;
  StoreReader(dir).export_jsonl(all);
  std::string expected;
  std::istringstream in(all.str());
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"technique\": \"Ens\"") != std::string::npos) {
      expected += line + '\n';
    }
  }
  Query q;
  q.technique = "Ens";
  std::string got;
  StoreReader(dir).query(
      q, [&](const study::CellRecord& r, const std::string& raw) {
        got += (raw.empty() ? study::to_jsonl(r) : raw) + '\n';
      });
  EXPECT_EQ(got, expected);
}

TEST(StoreTelemetry, ArchivesAndRestoresSnapshotFilesByteForByte) {
  const std::string dir = temp_dir("telemetry");
  const std::string obs_dir = dir + ".obs";
  fs::create_directories(obs_dir);
  const std::string a = "{\"type\":\"snapshot\",\"pid\":1}\nline2\n";
  const std::string b = std::string(4096, 'x') + "\ncompressible\n";
  std::ofstream(obs_dir + "/metrics-1.jsonl", std::ios::binary) << a;
  std::ofstream(obs_dir + "/metrics-2.jsonl", std::ios::binary) << b;
  std::ofstream(obs_dir + "/crash-3.json", std::ios::binary) << "ignored";

  {
    StoreWriter writer(dir);
    writer.append(grid_record(0));
    EXPECT_EQ(writer.archive_telemetry(obs_dir), 2U);  // crash dump excluded
    writer.commit();
  }
  const std::string out_dir = dir + ".restored";
  EXPECT_EQ(StoreReader(dir).restore_telemetry(out_dir), 2U);
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(out_dir + "/metrics-1.jsonl"), a);
  EXPECT_EQ(slurp(out_dir + "/metrics-2.jsonl"), b);
}

TEST(StoreTelemetry, RestoreWithoutArchiveThrows) {
  const std::string dir = temp_dir("no_telemetry");
  StoreWriter writer(dir);
  writer.append(grid_record(0));
  writer.commit();
  EXPECT_THROW(StoreReader(dir).restore_telemetry(dir + ".out"), ConfigError);
}

}  // namespace
}  // namespace tdfm::store
