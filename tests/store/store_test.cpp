// Results-store encoding primitives, codec, manifest, and the writer/reader
// crash contract (src/store/).
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/varint.hpp"
#include "store/store.hpp"

namespace tdfm::store {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "tdfm_store_" + name;
  fs::remove_all(dir);
  return dir;
}

study::CellRecord sample_record(std::size_t i) {
  study::CellRecord r;
  char cell[20];
  std::snprintf(cell, sizeof(cell), "%016llx",
                static_cast<unsigned long long>(i * 2654435761ULL + 17));
  r.cell = cell;
  r.dataset = i % 2 ? "gtsrb-sim" : "pneumonia-sim";
  r.model = "ConvNet";
  r.fault_level = "mislabelling@30%";
  r.technique = i % 3 == 0 ? "Base" : (i % 3 == 1 ? "LS" : "Ens");
  r.trial = 1 + i % 5;
  r.golden_accuracy = 0.75 + 0.001 * static_cast<double>(i % 7);
  r.faulty_accuracy = 0.5 - 0.002 * static_cast<double>(i % 11);
  r.ad = r.golden_accuracy - r.faulty_accuracy;
  r.reverse_ad = 0.05;
  r.naive_drop = 0.2;
  r.train_seconds = 1.5 + 0.1 * static_cast<double>(i);
  r.infer_seconds = 0.01;
  r.inference_models = 5.0;
  r.shared_fit = i % 2 == 0;
  r.quantized = i % 4 == 0;
  r.quantized_accuracy = r.quantized ? 0.49 : 0.0;
  return r;
}

std::string write_journal_file(const std::string& path,
                               const std::vector<study::CellRecord>& records) {
  std::ostringstream text;
  for (const auto& r : records) text << study::to_jsonl(r) << '\n';
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text.str();
  return text.str();
}

// --- encoding primitives ----------------------------------------------------

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,          1,          127,       128,
                                  16383,      16384,      1ULL << 32,
                                  ~0ULL >> 1, ~0ULL};
  std::string buf;
  for (const std::uint64_t v : values) core::put_varint(buf, v);
  std::size_t pos = 0;
  for (const std::uint64_t v : values) EXPECT_EQ(core::get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedInputThrows) {
  std::string buf;
  core::put_varint(buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  std::size_t pos = 0;
  EXPECT_THROW(core::get_varint(buf, pos), ConfigError);
}

TEST(Varint, ZigZagRoundTripsSignedValues) {
  for (const std::int64_t v : {0LL, 1LL, -1LL, 63LL, -64LL,
                               (long long)INT64_MAX, (long long)INT64_MIN}) {
    EXPECT_EQ(core::zigzag_decode(core::zigzag_encode(v)), v);
  }
}

TEST(Varint, PackBitsRoundTrips) {
  const std::vector<bool> bits = {true, false, false, true, true,
                                  true, false, true,  false};
  std::string buf;
  core::pack_bits(bits, buf);
  EXPECT_EQ(buf.size(), 2U);  // 9 bits -> 2 bytes
  std::size_t pos = 0;
  EXPECT_EQ(core::unpack_bits(buf, bits.size(), pos), bits);
}

// --- built-in LZ codec ------------------------------------------------------

TEST(Codec, TlzRoundTripsCompressibleData) {
  std::string raw;
  for (int i = 0; i < 200; ++i) raw += "abcabcabcXYZ";
  const std::string comp = tlz_compress(raw);
  EXPECT_LT(comp.size(), raw.size() / 4);
  EXPECT_EQ(tlz_decompress(comp, raw.size()), raw);
}

TEST(Codec, TlzRoundTripsIncompressibleData) {
  std::mt19937_64 gen(7);
  std::string raw;
  for (int i = 0; i < 10000; ++i) raw += static_cast<char>(gen());
  EXPECT_EQ(tlz_decompress(tlz_compress(raw), raw.size()), raw);
}

TEST(Codec, TlzRoundTripsShortAndEmptyInputs) {
  for (const std::string& raw : {std::string(), std::string("a"),
                                 std::string("abc"), std::string("aaaa")}) {
    EXPECT_EQ(tlz_decompress(tlz_compress(raw), raw.size()), raw);
  }
}

TEST(Codec, TlzRejectsTruncatedInput) {
  std::string raw;
  for (int i = 0; i < 100; ++i) raw += "abcabcabc";
  std::string comp = tlz_compress(raw);
  comp.resize(comp.size() / 2);
  EXPECT_THROW(tlz_decompress(comp, raw.size()), ConfigError);
}

TEST(Codec, CompressBlockFallsBackToRawWhenNotSmaller) {
  const auto [codec, bytes] = compress_block("x");
  EXPECT_EQ(codec, Codec::kRaw);
  EXPECT_EQ(bytes, "x");
  EXPECT_EQ(decompress_block(codec, bytes, 1), "x");
}

TEST(Codec, CompressBlockRoundTripsThroughPreferredCodec) {
  std::string raw;
  for (int i = 0; i < 500; ++i) raw += "the quick brown fox ";
  const auto [codec, bytes] = compress_block(raw);
  EXPECT_NE(codec, Codec::kRaw);
  EXPECT_LT(bytes.size(), raw.size());
  EXPECT_EQ(decompress_block(codec, bytes, raw.size()), raw);
}

// --- dictionary -------------------------------------------------------------

TEST(Dictionary, AssignsDenseFirstSeenIds) {
  Dictionary d;
  EXPECT_EQ(d.id_for("a"), 0U);
  EXPECT_EQ(d.id_for("b"), 1U);
  EXPECT_EQ(d.id_for("a"), 0U);
  EXPECT_EQ(d.size(), 2U);
  EXPECT_EQ(d.value(1), "b");
  EXPECT_EQ(d.find("b"), std::optional<std::uint64_t>(1));
  EXPECT_FALSE(d.find("missing").has_value());
}

TEST(Dictionary, AppendRejectsNonDenseIds) {
  Dictionary d;
  d.append(0, "a");
  EXPECT_THROW(d.append(2, "c"), ConfigError);
  EXPECT_THROW(d.append(0, "dup"), ConfigError);
}

// --- manifest ---------------------------------------------------------------

Manifest sample_manifest() {
  Manifest m;
  m.rows = 6;
  m.data_bytes = 123;
  m.segment_rows = 4;
  m.source = "j.jsonl";
  m.dicts[0].id_for("pneumonia-sim");
  m.dicts[3].id_for("Base");
  m.dicts[3].id_for("LS \"quoted\"");
  SegmentMeta s;
  s.offset = 0;
  s.bytes = 123;
  s.rows = 6;
  s.checksum = 0xdeadbeefcafe1234ULL;
  s.dict_ids[0] = {0};
  s.dict_ids[3] = {0, 1};
  s.trial_min = 1;
  s.trial_max = 5;
  s.ad_min = -0.25;
  s.ad_max = 0.5;
  m.segments.push_back(s);
  return m;
}

TEST(ManifestFormat, RendersAndParsesLosslessly) {
  const Manifest m = sample_manifest();
  const Manifest back = parse_manifest(render_manifest(m));
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.data_bytes, m.data_bytes);
  EXPECT_EQ(back.segment_rows, m.segment_rows);
  EXPECT_EQ(back.source, m.source);
  EXPECT_EQ(back.dicts[3].value(1), "LS \"quoted\"");
  ASSERT_EQ(back.segments.size(), 1U);
  EXPECT_EQ(back.segments[0].checksum, m.segments[0].checksum);
  EXPECT_EQ(back.segments[0].dict_ids[3], m.segments[0].dict_ids[3]);
  EXPECT_EQ(back.segments[0].trial_max, 5U);
  EXPECT_DOUBLE_EQ(back.segments[0].ad_min, -0.25);
}

TEST(ManifestFormat, DropsTornFinalLineAndReportsIt) {
  std::string text = render_manifest(sample_manifest());
  text += "{\"type\":\"segment\",\"offset\":999";  // unterminated tail
  bool recovered = false;
  const Manifest m = parse_manifest(text, &recovered);
  EXPECT_TRUE(recovered);
  EXPECT_EQ(m.segments.size(), 1U);
}

TEST(ManifestFormat, TerminatedGarbageThrows) {
  std::string text = render_manifest(sample_manifest());
  text += "{\"type\":\"nonsense\"}\n";
  EXPECT_THROW(parse_manifest(text), ConfigError);
}

TEST(ManifestFormat, NewerVersionThrows) {
  std::string text = render_manifest(sample_manifest());
  const std::size_t pos = text.find("\"version\":");
  text.replace(pos, std::string("\"version\":1").size(), "\"version\":99");
  EXPECT_THROW(parse_manifest(text), ConfigError);
}

// --- writer/reader round trip ----------------------------------------------

TEST(StoreRoundTrip, PreservesEveryFieldAcrossSegments) {
  const std::string dir = temp_dir("roundtrip");
  std::vector<study::CellRecord> records;
  for (std::size_t i = 0; i < 23; ++i) records.push_back(sample_record(i));
  {
    StoreWriter writer(dir, {.segment_rows = 4});
    for (const auto& r : records) writer.append(r);
    writer.commit();
    EXPECT_EQ(writer.manifest().segments.size(), 6U);  // 5 full + 1 partial
  }
  const StoreReader reader(dir);
  EXPECT_EQ(reader.rows(), records.size());
  EXPECT_FALSE(reader.recovered_truncated_tail());
  EXPECT_EQ(reader.read_all(), records);
}

TEST(StoreRoundTrip, PreservesNonHexCellIdsVerbatim) {
  const std::string dir = temp_dir("oddcell");
  study::CellRecord r = sample_record(0);
  r.cell = "not-hex at all";
  StoreWriter writer(dir);
  writer.append(r);
  writer.commit();
  EXPECT_EQ(StoreReader(dir).read_all().at(0).cell, r.cell);
}

TEST(StoreRoundTrip, ExportReproducesCanonicalJournalBytes) {
  const std::string dir = temp_dir("export");
  const std::string journal = dir + ".jsonl";
  std::vector<study::CellRecord> records;
  for (std::size_t i = 0; i < 10; ++i) records.push_back(sample_record(i));
  const std::string bytes = write_journal_file(journal, records);

  const ImportStats stats = import_journal(journal, dir, {.segment_rows = 3});
  EXPECT_EQ(stats.records, records.size());
  EXPECT_EQ(stats.raw_exceptions, 0U);
  EXPECT_FALSE(stats.recovered_torn_tail);

  std::ostringstream exported;
  StoreReader(dir).export_jsonl(exported);
  EXPECT_EQ(exported.str(), bytes);
}

TEST(StoreRoundTrip, KeepsNonCanonicalLinesVerbatim) {
  const std::string dir = temp_dir("raw");
  const std::string journal = dir + ".jsonl";
  // Same record, non-canonical spacing: parses fine, does not re-render
  // byte-identically — must ride the exception column.
  const std::string odd =
      "{\"cell\":\"00000000000000aa\",\"dataset\":\"d\",\"model\":\"m\","
      "\"fault_level\":\"f\",\"technique\":\"t\",\"trial\":1}";
  {
    std::ofstream out(journal, std::ios::trunc | std::ios::binary);
    out << study::to_jsonl(sample_record(0)) << '\n' << odd << '\n';
  }
  const ImportStats stats = import_journal(journal, dir);
  EXPECT_EQ(stats.raw_exceptions, 1U);

  std::ostringstream exported;
  StoreReader(dir).export_jsonl(exported);
  EXPECT_EQ(exported.str(),
            study::to_jsonl(sample_record(0)) + '\n' + odd + '\n');
}

TEST(StoreRoundTrip, ImportRecoversTornJournalTail) {
  const std::string dir = temp_dir("torn_journal");
  const std::string journal = dir + ".jsonl";
  std::vector<study::CellRecord> records;
  for (std::size_t i = 0; i < 4; ++i) records.push_back(sample_record(i));
  const std::string bytes = write_journal_file(journal, records);
  {
    std::ofstream out(journal, std::ios::app | std::ios::binary);
    out << "{\"cell\": \"torn";  // no newline: interrupted append
  }
  const ImportStats stats = import_journal(journal, dir);
  EXPECT_TRUE(stats.recovered_torn_tail);
  EXPECT_EQ(stats.records, records.size());

  std::ostringstream exported;
  StoreReader(dir).export_jsonl(exported);
  EXPECT_EQ(exported.str(), bytes);  // the intact prefix, byte for byte
}

TEST(StoreRoundTrip, ImportThrowsOnTerminatedGarbage) {
  const std::string dir = temp_dir("garbage");
  const std::string journal = dir + ".jsonl";
  std::ofstream(journal, std::ios::binary) << "not json at all\n";
  EXPECT_THROW(import_journal(journal, dir), ConfigError);
}

TEST(StoreWriter, ExtendsAnExistingStoreKeepingDictionaryIds) {
  const std::string dir = temp_dir("extend");
  {
    StoreWriter writer(dir, {.segment_rows = 2});
    writer.append(sample_record(0));
    writer.append(sample_record(1));
    writer.commit();
  }
  {
    StoreWriter writer(dir, {.segment_rows = 999});  // existing geometry wins
    writer.append(sample_record(2));
    writer.append(sample_record(3));
    writer.commit();
    EXPECT_EQ(writer.manifest().segment_rows, 2U);
  }
  const StoreReader reader(dir);
  EXPECT_EQ(reader.rows(), 4U);
  const auto all = reader.read_all();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(all[i], sample_record(i));
}

// --- crash contract (mirrors journal_test's torn-tail cases) ---------------

TEST(StoreCrash, ReaderDropsTruncatedFinalSegment) {
  const std::string dir = temp_dir("trunc_tail");
  std::vector<study::CellRecord> records;
  for (std::size_t i = 0; i < 8; ++i) records.push_back(sample_record(i));
  {
    StoreWriter writer(dir, {.segment_rows = 4});
    for (const auto& r : records) writer.append(r);
    writer.commit();
  }
  const std::string data = dir + "/" + kDataFile;
  fs::resize_file(data, fs::file_size(data) - 5);  // tear the tail

  const StoreReader reader(dir);
  EXPECT_TRUE(reader.recovered_truncated_tail());
  EXPECT_EQ(reader.rows(), 4U);  // the intact first segment
  const auto all = reader.read_all();
  ASSERT_EQ(all.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(all[i], records[i]);
}

TEST(StoreCrash, ReaderDropsFinalSegmentWithFlippedByte) {
  const std::string dir = temp_dir("flip_tail");
  {
    StoreWriter writer(dir, {.segment_rows = 2});
    for (std::size_t i = 0; i < 4; ++i) writer.append(sample_record(i));
    writer.commit();
  }
  const std::string data = dir + "/" + kDataFile;
  std::fstream f(data, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-3, std::ios::end);
  f.put('\xff');
  f.close();

  const StoreReader reader(dir);
  EXPECT_TRUE(reader.recovered_truncated_tail());
  EXPECT_EQ(reader.rows(), 2U);
}

TEST(StoreCrash, QueryThrowsOnNonFinalSegmentCorruption) {
  const std::string dir = temp_dir("mid_corrupt");
  {
    StoreWriter writer(dir, {.segment_rows = 2});
    for (std::size_t i = 0; i < 6; ++i) writer.append(sample_record(i));
    writer.commit();
  }
  // Flip a byte inside the FIRST segment: interior damage is corruption,
  // not a crash signature, and must not be silently recovered.
  std::fstream f(dir + "/" + kDataFile,
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(10);
  f.put('\xff');
  f.close();

  const StoreReader reader(dir);  // open only validates the tail
  EXPECT_THROW(reader.read_all(), ConfigError);
}

TEST(StoreCrash, WriterTruncatesOrphanBytesFromInterruptedFlush) {
  const std::string dir = temp_dir("orphan");
  {
    StoreWriter writer(dir, {.segment_rows = 2});
    for (std::size_t i = 0; i < 4; ++i) writer.append(sample_record(i));
    writer.commit();
  }
  // Crash between segment append and manifest commit: durable bytes the
  // manifest never references.
  std::ofstream(dir + "/" + kDataFile, std::ios::app | std::ios::binary)
      << "orphan segment bytes from an interrupted flush";
  {
    StoreWriter writer(dir);
    writer.append(sample_record(4));
    writer.append(sample_record(5));
    writer.commit();
  }
  const StoreReader reader(dir);
  EXPECT_FALSE(reader.recovered_truncated_tail());
  EXPECT_EQ(reader.rows(), 6U);
  EXPECT_EQ(reader.read_all().back(), sample_record(5));
}

TEST(StoreCrash, WriterRefusesAStoreShorterThanItsManifest) {
  const std::string dir = temp_dir("short");
  {
    StoreWriter writer(dir, {.segment_rows = 2});
    for (std::size_t i = 0; i < 4; ++i) writer.append(sample_record(i));
    writer.commit();
  }
  const std::string data = dir + "/" + kDataFile;
  fs::resize_file(data, fs::file_size(data) / 2);
  EXPECT_THROW(StoreWriter{dir}, ConfigError);  // write would corrupt more
  EXPECT_TRUE(StoreReader(dir).recovered_truncated_tail());  // read recovers
}

}  // namespace
}  // namespace tdfm::store
