#!/usr/bin/env bash
# study-shard smoke: the `smoke` preset run as 3 shard worker processes must
# be indistinguishable from a single-process run.
#
#   usage: study_shard_smoke.sh <path-to-study_runner> [workdir]
#
# Checks, in order:
#   1. `--spawn 3` (3 real processes over disjoint hash shards, merged on
#      completion) renders the byte-identical CSV report of a plain run.
#   2. Merging the per-shard journals again, in *reverse* order, reproduces
#      the merged journal byte for byte (merge is a pure function of the
#      record set — shard order must not matter).
#   3. A torn journal tail (simulated kill -9 during an append) resumes:
#      the rerun recomputes only the torn cell and the report is unchanged.
set -euo pipefail

RUNNER=${1:?usage: study_shard_smoke.sh <study_runner> [workdir]}
WORK=${2:-$(mktemp -d)}
rm -rf "$WORK"
mkdir -p "$WORK"

run() { "$RUNNER" --preset smoke --log warn "$@"; }

# --- 1. single process vs 3 spawned shard processes -------------------------
run --jobs 1 --journal "$WORK/single.jsonl" \
    --report csv --out "$WORK/single.csv"
run --spawn 3 --jobs 1 --journal "$WORK/merged.jsonl" \
    --report csv --out "$WORK/merged.csv"
diff "$WORK/single.csv" "$WORK/merged.csv" \
  || { echo "FAIL: 3-shard report differs from single-process report"; exit 1; }

# --- 2. merge is byte-stable under input reordering -------------------------
run --merge "$WORK/merged.jsonl.shard2of3.jsonl,$WORK/merged.jsonl.shard1of3.jsonl,$WORK/merged.jsonl.shard0of3.jsonl" \
    --journal "$WORK/remerged.jsonl" --report none
cmp "$WORK/merged.jsonl" "$WORK/remerged.jsonl" \
  || { echo "FAIL: reverse-order merge is not byte-identical"; exit 1; }

# --- 3. torn-tail crash recovery --------------------------------------------
# Drop the last 20 bytes: the final record loses its newline and its tail,
# exactly what a kill -9 mid-append leaves behind.
cp "$WORK/single.jsonl" "$WORK/torn.jsonl"
size=$(wc -c < "$WORK/torn.jsonl")
truncate -s $((size - 20)) "$WORK/torn.jsonl"
run --jobs 1 --journal "$WORK/torn.jsonl" --resume true \
    --report csv --out "$WORK/recovered.csv" 2> "$WORK/recovered.log"
grep -q "executed 1 cells" "$WORK/recovered.log" \
  || { echo "FAIL: torn-tail resume should recompute exactly 1 cell"; \
       cat "$WORK/recovered.log"; exit 1; }
diff "$WORK/single.csv" "$WORK/recovered.csv" \
  || { echo "FAIL: torn-tail recovery changed the report"; exit 1; }

echo "study-shard smoke OK"
