#!/usr/bin/env bash
# study-shard smoke: the `smoke` preset run as 3 shard worker processes must
# be indistinguishable from a single-process run.
#
#   usage: study_shard_smoke.sh <path-to-study_runner> [workdir]
#
# Checks, in order:
#   1. `--spawn 3` (3 real processes over disjoint hash shards, merged on
#      completion) renders the byte-identical CSV report of a plain run.
#   2. Merging the per-shard journals again, in *reverse* order, reproduces
#      the merged journal byte for byte (merge is a pure function of the
#      record set — shard order must not matter).
#   3. A torn journal tail (simulated kill -9 during an append) resumes:
#      the rerun recomputes only the torn cell and the report is unchanged.
#   4. The observability plane (--progress/--flight/--trace/snapshots) is
#      read-only: with every feature on, the report is byte-identical and
#      the merged Chrome trace is one valid JSON document naming all shards.
#   5. `--obs-report` aggregation: the merged executed-cells counter equals
#      the sum of the per-shard snapshot counters.
#   6. A torn half-snapshot (kill -9 mid-export) is skipped with a warning,
#      never corrupts the aggregate, and the journal stays resumable.
#   7. A worker SIGABRTing mid-cell leaves a parseable crash-<pid>.json
#      naming the in-flight cell, and its journal resumes cleanly.
set -euo pipefail

RUNNER=${1:?usage: study_shard_smoke.sh <study_runner> [workdir]}
WORK=${2:-$(mktemp -d)}
rm -rf "$WORK"
mkdir -p "$WORK"

run() { "$RUNNER" --preset smoke --log warn "$@"; }

# --- 1. single process vs 3 spawned shard processes -------------------------
run --jobs 1 --journal "$WORK/single.jsonl" \
    --report csv --out "$WORK/single.csv"
run --spawn 3 --jobs 1 --journal "$WORK/merged.jsonl" \
    --report csv --out "$WORK/merged.csv"
diff "$WORK/single.csv" "$WORK/merged.csv" \
  || { echo "FAIL: 3-shard report differs from single-process report"; exit 1; }

# --- 2. merge is byte-stable under input reordering -------------------------
run --merge "$WORK/merged.jsonl.shard2of3.jsonl,$WORK/merged.jsonl.shard1of3.jsonl,$WORK/merged.jsonl.shard0of3.jsonl" \
    --journal "$WORK/remerged.jsonl" --report none
cmp "$WORK/merged.jsonl" "$WORK/remerged.jsonl" \
  || { echo "FAIL: reverse-order merge is not byte-identical"; exit 1; }

# --- 3. torn-tail crash recovery --------------------------------------------
# Drop the last 20 bytes: the final record loses its newline and its tail,
# exactly what a kill -9 mid-append leaves behind.
cp "$WORK/single.jsonl" "$WORK/torn.jsonl"
size=$(wc -c < "$WORK/torn.jsonl")
truncate -s $((size - 20)) "$WORK/torn.jsonl"
run --jobs 1 --journal "$WORK/torn.jsonl" --resume true \
    --report csv --out "$WORK/recovered.csv" 2> "$WORK/recovered.log"
grep -q "executed 1 cells" "$WORK/recovered.log" \
  || { echo "FAIL: torn-tail resume should recompute exactly 1 cell"; \
       cat "$WORK/recovered.log"; exit 1; }
diff "$WORK/single.csv" "$WORK/recovered.csv" \
  || { echo "FAIL: torn-tail recovery changed the report"; exit 1; }

# --- 4. the observability plane is read-only --------------------------------
# The same spawn run with every plane feature on — live progress, per-shard
# traces merged at the end, periodic snapshots, flight recorder — must
# render the byte-identical report.
run --spawn 3 --jobs 1 --journal "$WORK/obs.jsonl" \
    --progress true --flight true --trace "$WORK/obs.trace.json" \
    --report csv --out "$WORK/obs.csv" 2> "$WORK/obs.log"
diff "$WORK/single.csv" "$WORK/obs.csv" \
  || { echo "FAIL: observability plane changed the report"; exit 1; }
"$RUNNER" --validate-json "$WORK/obs.trace.json" > /dev/null \
  || { echo "FAIL: merged trace is not valid JSON"; exit 1; }
for s in 0 1 2; do
  grep -q "shard $s/3" "$WORK/obs.trace.json" \
    || { echo "FAIL: merged trace is missing shard $s/3"; exit 1; }
done

# --- 5. aggregated counters are the sums of the per-shard counters ----------
count() {
  sed -n 's/.*"name":"study.cells.executed","value":\([0-9]*\).*/\1/p' "$1"
}
shard_sum=0
for f in "$WORK"/obs.jsonl.obs/metrics-*.jsonl; do
  c=$(count "$f")
  shard_sum=$((shard_sum + ${c:-0}))
done
run --obs-report true --journal "$WORK/obs.jsonl" \
    --out "$WORK/obs-agg.jsonl" 2> "$WORK/obs-agg.log"
agg=$(count "$WORK/obs-agg.jsonl")
[ "${agg:-x}" = "$shard_sum" ] \
  || { echo "FAIL: aggregate executed=$agg != per-shard sum $shard_sum"; exit 1; }

# --- 6. a torn snapshot (kill -9 mid-export) never corrupts the plane -------
printf '{"type":"snapsh' > "$WORK/obs.jsonl.obs/metrics-99999.jsonl"
run --obs-report true --journal "$WORK/obs.jsonl" \
    --out "$WORK/obs-agg2.jsonl" 2> "$WORK/obs-agg2.log"
[ "$(count "$WORK/obs-agg2.jsonl")" = "$agg" ] \
  || { echo "FAIL: torn snapshot changed the aggregate"; exit 1; }
grep -q "1 torn" "$WORK/obs-agg2.log" \
  || { echo "FAIL: torn snapshot not reported"; cat "$WORK/obs-agg2.log"; exit 1; }
run --jobs 1 --journal "$WORK/obs.jsonl" --resume true \
    --report csv --out "$WORK/obs-resumed.csv" 2> /dev/null
diff "$WORK/single.csv" "$WORK/obs-resumed.csv" \
  || { echo "FAIL: journal did not survive the torn snapshot"; exit 1; }

# --- 7. crash flight recorder ------------------------------------------------
set +e
run --jobs 1 --journal "$WORK/crash.jsonl" --flight true \
    --abort-after-cells 2 --report none 2> "$WORK/crash.log"
status=$?
set -e
[ "$status" -ne 0 ] || { echo "FAIL: crash drill did not crash"; exit 1; }
crash=$(ls "$WORK"/crash.jsonl.obs/crash-*.json 2> /dev/null | head -n 1)
[ -n "$crash" ] || { echo "FAIL: no crash dump written"; exit 1; }
"$RUNNER" --validate-json "$crash" > /dev/null \
  || { echo "FAIL: crash dump is not valid JSON"; exit 1; }
grep -q '"in_flight_cell":"' "$crash" \
  || { echo "FAIL: crash dump names no in-flight cell"; cat "$crash"; exit 1; }
run --jobs 1 --journal "$WORK/crash.jsonl" --resume true \
    --report csv --out "$WORK/crash.csv" 2> /dev/null
diff "$WORK/single.csv" "$WORK/crash.csv" \
  || { echo "FAIL: journal did not resume after the SIGABRT"; exit 1; }

echo "study-shard smoke OK"
