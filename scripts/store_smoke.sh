#!/usr/bin/env bash
# store smoke: a real smoke-preset campaign journal must survive the full
# store lifecycle — import, query, aggregate, archive — losslessly.
#
#   usage: store_smoke.sh <path-to-study_runner> <path-to-study_query> [workdir]
#
# Checks, in order:
#   1. import + export reproduces the campaign journal byte for byte, and
#      the store is >= 5x smaller than the JSONL.
#   2. a technique-filtered store query prints exactly the lines a grep of
#      the journal prints, while skipping at least one segment unread
#      (zone-map pushdown on real campaign data).
#   3. `study_runner --report-only --store` renders the byte-identical
#      report to the JSONL-backed `--journal` path.
#   4. `study_query agg` renders that same report from the store directly.
#   5. `--merge auto` discovers the per-shard journals a --spawn run leaves
#      behind and reproduces the merged journal byte for byte.
#   6. the campaign's metric snapshots archive into the store and restore
#      byte-identically (the store as a one-artefact paper run).
set -euo pipefail

RUNNER=${1:?usage: store_smoke.sh <study_runner> <study_query> [workdir]}
QUERY=${2:?usage: store_smoke.sh <study_runner> <study_query> [workdir]}
WORK=${3:-$(mktemp -d)}
rm -rf "$WORK"
mkdir -p "$WORK"

# Six trials: enough cells (18) that fixed store overhead (manifest header,
# dictionaries) amortises and the 5x gate is meaningful, still seconds-fast.
run() { "$RUNNER" --preset smoke --trials 6 --log warn "$@"; }

# --- 1. lossless import, >= 5x smaller ---------------------------------------
run --jobs 2 --journal "$WORK/smoke.jsonl" --report csv --out "$WORK/ref.csv"
"$QUERY" import --journal "$WORK/smoke.jsonl" --store "$WORK/smoke.store" \
    --log warn 2> "$WORK/import.log"
grep -q "verified: export reproduces the journal byte-for-byte" \
    "$WORK/import.log" \
  || { echo "FAIL: import did not verify byte-identity"; cat "$WORK/import.log"; exit 1; }
"$QUERY" export --store "$WORK/smoke.store" --out "$WORK/roundtrip.jsonl"
cmp "$WORK/smoke.jsonl" "$WORK/roundtrip.jsonl" \
  || { echo "FAIL: export is not byte-identical to the journal"; exit 1; }
journal_bytes=$(wc -c < "$WORK/smoke.jsonl")
store_bytes=$(du -bc "$WORK/smoke.store"/* | tail -1 | cut -f1)
[ $((store_bytes * 5)) -le "$journal_bytes" ] \
  || { echo "FAIL: store ($store_bytes B) is not >= 5x smaller than the" \
            "journal ($journal_bytes B)"; exit 1; }

# --- 2. filtered query == grep, with segments skipped unread -----------------
# Re-import at 4-row segments so the 18-cell journal spans 5 segments and
# zone maps have something to prune.
"$QUERY" import --journal "$WORK/smoke.jsonl" --store "$WORK/seg.store" \
    --segment-rows 4 --log warn 2> /dev/null
technique=$(sed -n 's/.*"technique": "\([^"]*\)".*/\1/p' "$WORK/smoke.jsonl" \
    | sort -u | head -1)
"$QUERY" filter --store "$WORK/seg.store" --technique "$technique" \
    --out "$WORK/filtered.jsonl" --log warn 2> "$WORK/filter.log"
grep "\"technique\": \"$technique\"" "$WORK/smoke.jsonl" > "$WORK/grepped.jsonl"
cmp "$WORK/filtered.jsonl" "$WORK/grepped.jsonl" \
  || { echo "FAIL: filtered query differs from grep of the journal"; exit 1; }
skipped=$(sed -n 's/.*(\([0-9]*\) skipped by zone maps).*/\1/p' "$WORK/filter.log")
[ "${skipped:-0}" -gt 0 ] \
  || { echo "FAIL: technique filter skipped no segments"; cat "$WORK/filter.log"; exit 1; }

# --- 3. store-backed report == JSONL-backed report ---------------------------
run --report-only true --journal "$WORK/smoke.jsonl" \
    --report csv --out "$WORK/from_journal.csv"
run --report-only true --store "$WORK/smoke.store" \
    --report csv --out "$WORK/from_store.csv"
cmp "$WORK/from_journal.csv" "$WORK/from_store.csv" \
  || { echo "FAIL: store-backed report differs from JSONL-backed report"; exit 1; }
cmp "$WORK/ref.csv" "$WORK/from_store.csv" \
  || { echo "FAIL: store-backed report differs from the live run's report"; exit 1; }

# --- 4. study_query agg renders the same report ------------------------------
"$QUERY" agg --store "$WORK/smoke.store" --report csv \
    --out "$WORK/agg.csv" --log warn 2> /dev/null
cmp "$WORK/ref.csv" "$WORK/agg.csv" \
  || { echo "FAIL: study_query agg differs from study_runner --report"; exit 1; }

# --- 5. --merge auto discovers the shard siblings ----------------------------
run --spawn 2 --jobs 1 --journal "$WORK/fleet.jsonl" --report none
mv "$WORK/fleet.jsonl" "$WORK/fleet.expected.jsonl"
run --merge auto --journal "$WORK/fleet.jsonl" --report none 2> "$WORK/merge.log"
grep -q "discovered 2 shard journals" "$WORK/merge.log" \
  || { echo "FAIL: --merge auto did not discover the shards"; cat "$WORK/merge.log"; exit 1; }
cmp "$WORK/fleet.expected.jsonl" "$WORK/fleet.jsonl" \
  || { echo "FAIL: --merge auto journal differs from the --spawn merge"; exit 1; }

# --- 6. telemetry archives into the store and restores byte-identically ------
run --spawn 2 --jobs 1 --journal "$WORK/obs.jsonl" --progress true \
    --report none 2> /dev/null
"$QUERY" import --journal "$WORK/obs.jsonl" --store "$WORK/obs.store" \
    --obs-dir "$WORK/obs.jsonl.obs" --log warn 2> "$WORK/obs-import.log"
grep -q "snapshots archived" "$WORK/obs-import.log" \
  || { echo "FAIL: import archived no snapshots"; cat "$WORK/obs-import.log"; exit 1; }
"$QUERY" restore-obs --store "$WORK/obs.store" --out "$WORK/obs.restored" \
    --log warn 2> /dev/null
for f in "$WORK/obs.jsonl.obs"/metrics-*.jsonl; do
  cmp "$f" "$WORK/obs.restored/$(basename "$f")" \
    || { echo "FAIL: restored snapshot $(basename "$f") differs"; exit 1; }
done

echo "store smoke OK"
