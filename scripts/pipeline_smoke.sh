#!/usr/bin/env bash
# pipeline smoke: the full online-loop drill — faulty stream in, candidates
# retrained and canaried, a weight-corruption drill, AD-guarded rollback —
# with a replay-stable decision log.
#
#   usage: pipeline_smoke.sh <path-to-pipeline_runner> [workdir]
#
# Checks, in order:
#   1. One seed-pinned run demonstrates the whole story: at least one
#      promotion past the AD guardrail, the corruption drill, and at least
#      one rollback when the health check catches the drilled fault.
#   2. A rerun with the same seed produces the byte-identical decision log
#      (no wall-clock, no iteration-order leaks).
#   3. A rerun with a different worker count (--jobs) and wider thread pool
#      is still byte-identical: batching must not leak into decisions.
#   4. The checkpoint transport: with --quantize and --ckpt-dir, every
#      published version leaves a v3 checkpoint (magic 0x7df30003), the
#      quantized loop still promotes, and a seed-pinned rerun of the
#      quantized run is byte-identical too.
set -euo pipefail

RUNNER=${1:?usage: pipeline_smoke.sh <pipeline_runner> [workdir]}
WORK=${2:-$(mktemp -d)}
rm -rf "$WORK"
mkdir -p "$WORK"

# The calibrated story parameters (see examples/online_pipeline.cpp): models
# strong enough to clear a 0.5 AD guardrail, a sign-flip drill at round 3,
# rollback threshold 0.5 * 1.4 = 0.7 — inside AD's [0, 1] range.
run() {
  "$RUNNER" --rounds 8 --epochs 6 --bootstrap-epochs 4 \
            --window 192 --chunk 96 --scale 0.6 \
            --ad-threshold 0.5 --rollback-factor 1.4 \
            --corrupt-round 3 --corrupt-fraction 0.2 \
            --serve-per-round 8 --seed 7 "$@"
}

# --- 1. the full story in one run -------------------------------------------
run --jobs 1 --decision-log "$WORK/a.jsonl" > "$WORK/a.out"
grep -q '"action": "promote"' "$WORK/a.jsonl" \
  || { echo "FAIL: no promotion in the decision log"; cat "$WORK/a.jsonl"; exit 1; }
grep -q '"action": "corrupt"' "$WORK/a.jsonl" \
  || { echo "FAIL: the corruption drill left no record"; exit 1; }
grep -q '"action": "rollback"' "$WORK/a.jsonl" \
  || { echo "FAIL: no rollback after the drill"; cat "$WORK/a.jsonl"; exit 1; }
# The drill precedes the rollback that repairs it.
drill_line=$(grep -n '"action": "corrupt"' "$WORK/a.jsonl" | head -1 | cut -d: -f1)
rb_line=$(grep -n '"action": "rollback"' "$WORK/a.jsonl" | head -1 | cut -d: -f1)
[ "$rb_line" -gt "$drill_line" ] \
  || { echo "FAIL: rollback recorded before the drill"; exit 1; }

# --- 2. seed-pinned reruns are byte-identical -------------------------------
run --jobs 1 --decision-log "$WORK/b.jsonl" > /dev/null
cmp "$WORK/a.jsonl" "$WORK/b.jsonl" \
  || { echo "FAIL: rerun decision log is not byte-identical"; exit 1; }

# --- 3. worker/thread counts must not leak into decisions -------------------
run --jobs 4 --threads 4 --decision-log "$WORK/c.jsonl" > /dev/null
cmp "$WORK/a.jsonl" "$WORK/c.jsonl" \
  || { echo "FAIL: decision log depends on worker/thread count"; exit 1; }

# --- 4. quantized checkpoint transport --------------------------------------
mkdir -p "$WORK/ckpts"
run --jobs 1 --quantize 1 --ckpt-dir "$WORK/ckpts" \
    --decision-log "$WORK/q.jsonl" > /dev/null
ckpt=$(ls "$WORK"/ckpts/*.ckpt 2> /dev/null | head -n 1)
[ -n "$ckpt" ] || { echo "FAIL: checkpoint transport wrote no checkpoints"; exit 1; }
magic=$(head -c 8 "$ckpt" | od -A n -t x1 | tr -d ' \n')
[ "$magic" = "0300f37d00000000" ] \
  || { echo "FAIL: promoted checkpoint is not v3 (magic $magic)"; exit 1; }
grep -q '"action": "promote"' "$WORK/q.jsonl" \
  || { echo "FAIL: quantized loop never promoted"; cat "$WORK/q.jsonl"; exit 1; }
# q8 per-sample forwards are also batch-composition independent: the
# quantized decision log is replay-stable as well.
mkdir -p "$WORK/ckpts2"
run --jobs 2 --quantize 1 --ckpt-dir "$WORK/ckpts2" \
    --decision-log "$WORK/q2.jsonl" > /dev/null
cmp "$WORK/q.jsonl" "$WORK/q2.jsonl" \
  || { echo "FAIL: quantized rerun decision log is not byte-identical"; exit 1; }

echo "pipeline smoke OK"
