// Dense row-major float32 tensor.
//
// This is the numeric workhorse underneath the whole study: activations,
// weights, gradients, images and soft labels are all Tensors.  The design
// favours the access patterns backprop actually uses — contiguous storage,
// cheap reshape (metadata-only), explicit 2-d/4-d indexing helpers — over
// generality (no strided views, no broadcasting engine; the few broadcast
// patterns needed by layers are explicit functions in tensor_ops.hpp).
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace tdfm {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_.numel(), 0.0F) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    TDFM_CHECK(data_.size() == shape_.numel(), "data size must match shape");
  }

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float value);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t rank() const { return shape_.rank(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const { return shape_[axis]; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> flat() { return data_; }
  [[nodiscard]] std::span<const float> flat() const { return data_; }

  // Flat element access.
  [[nodiscard]] float& operator[](std::size_t i) {
    TDFM_CHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }
  [[nodiscard]] float operator[](std::size_t i) const {
    TDFM_CHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }

  // 2-d access for [rows, cols] matrices (dense activations, logits).
  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    return data_[r * shape_[1] + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return data_[r * shape_[1] + c];
  }

  // 4-d access for [N, C, H, W] activations.
  [[nodiscard]] float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  [[nodiscard]] float at(std::size_t n, std::size_t c, std::size_t h,
                         std::size_t w) const {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Metadata-only reshape; element count must be preserved.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Returns the [row] slice of a rank-2 tensor as a span (no copy).
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    TDFM_CHECK(rank() == 2, "row() needs a rank-2 tensor");
    return {data_.data() + r * shape_[1], shape_[1]};
  }
  [[nodiscard]] std::span<float> row(std::size_t r) {
    TDFM_CHECK(rank() == 2, "row() needs a rank-2 tensor");
    return {data_.data() + r * shape_[1], shape_[1]};
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }
  void zero() { fill(0.0F); }

  // In-place arithmetic (used by optimisers and gradient accumulation).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  /// Accumulates `scale * other` into this tensor (axpy).
  void add_scaled(const Tensor& other, float scale);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace tdfm
