// Elementwise / reduction operations on tensors.
//
// Only the operations the layers and losses actually need — each is a plain
// free function over contiguous storage so the compiler can vectorise.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.hpp"

namespace tdfm {

/// out = a + b (same element count).
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);

/// out = a - b.
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);

/// out = a ⊙ b (Hadamard).
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);

/// out = s * a.
[[nodiscard]] Tensor scale(const Tensor& a, float s);

/// Row-wise softmax of a [rows, cols] matrix with max-subtraction for
/// numerical stability.  `temperature` implements the distilled softmax of
/// the knowledge-distillation technique (T = 1 is regular softmax).
[[nodiscard]] Tensor softmax_rows(const Tensor& logits, float temperature = 1.0F);

/// In-place row-wise softmax over a single row span.
void softmax_row(std::span<float> row, float temperature = 1.0F);

/// Index of the maximum element of a span (first on ties).
[[nodiscard]] std::size_t argmax(std::span<const float> xs);

/// Sum of all elements.
[[nodiscard]] double sum(const Tensor& t);

/// Mean of all elements.
[[nodiscard]] double mean(const Tensor& t);

/// Maximum absolute element (useful for gradient-explosion checks).
[[nodiscard]] float max_abs(const Tensor& t);

/// Squared L2 norm.
[[nodiscard]] double squared_norm(const Tensor& t);

/// True when every element is finite (no NaN/Inf).
[[nodiscard]] bool all_finite(const Tensor& t);

/// Clamps every element into [lo, hi] in place.
void clamp_(Tensor& t, float lo, float hi);

}  // namespace tdfm
