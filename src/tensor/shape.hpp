// Tensor shapes.
//
// All tdfm tensors are dense row-major float32.  Shapes are small (rank <= 4
// in practice: [N, C, H, W] activations and [out, in, kh, kw] conv kernels),
// so a small inline vector would be overkill; std::vector keeps the code
// simple and shape manipulation is never on the hot path.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace tdfm {

/// Dimensions of a dense row-major tensor.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }

  [[nodiscard]] std::size_t operator[](std::size_t axis) const {
    TDFM_CHECK(axis < dims_.size(), "shape axis out of range");
    return dims_[axis];
  }

  /// Total number of elements; 1 for a rank-0 (scalar) shape.
  [[nodiscard]] std::size_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::size_t{1},
                           std::multiplies<>());
  }

  [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }

  [[nodiscard]] bool operator==(const Shape& other) const = default;

  /// Human-readable form, e.g. "[32, 3, 12, 12]".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::size_t> dims_;
};

}  // namespace tdfm
