#include "tensor/init.hpp"

#include <cmath>

namespace tdfm {

void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  TDFM_CHECK(fan_in + fan_out > 0, "xavier needs positive fan");
  const float a =
      std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  uniform_init(w, -a, a, rng);
}

void he_normal(Tensor& w, std::size_t fan_in, Rng& rng) {
  TDFM_CHECK(fan_in > 0, "he init needs positive fan-in");
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  normal_init(w, 0.0F, stddev, rng);
}

void normal_init(Tensor& w, float mean, float stddev, Rng& rng) {
  for (auto& x : w.flat()) x = rng.normal(mean, stddev);
}

void uniform_init(Tensor& w, float lo, float hi, Rng& rng) {
  for (auto& x : w.flat()) x = rng.uniform(lo, hi);
}

}  // namespace tdfm
