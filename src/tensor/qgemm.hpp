// Quantized (q8_0) matrix multiplication for inference.
//
// C[m x n] = A * B^T where both operands are row-wise q8_0 quantized
// (kernels/quant.hpp).  Only the nt shape exists: inference matmuls put the
// reduction along rows of both operands (dense: activations x weights;
// conv: weights x im2row patches), and backprop never runs quantized.
//
// Numerics: each 32-element block contributes scaleA * scaleB * (exact int32
// dot), accumulated in fixed ascending block order — so the result is
// bit-identical across kernel choices AND thread counts, unlike fp32 GEMM
// which is only bit-stable within a kernel choice.
#pragma once

#include "kernels/quant.hpp"

namespace tdfm {

/// C[a.rows x b.rows] = A * B^T over the quantized blocks.  Requires
/// a.blocks_per_row == b.blocks_per_row (same logical reduction width,
/// tail-padded identically).  C is always overwritten.
void gemm_q8_nt(const kernels::Q8Matrix& a, const kernels::Q8Matrix& b,
                float* c);

}  // namespace tdfm
