#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

namespace tdfm {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw ShapeError("reshape from " + shape_.to_string() + " to " +
                     new_shape.to_string() + " changes element count");
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  TDFM_CHECK(other.numel() == numel(), "element count mismatch in +=");
  const float* __restrict__ o = other.data();
  float* __restrict__ d = data();
  for (std::size_t i = 0; i < data_.size(); ++i) d[i] += o[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  TDFM_CHECK(other.numel() == numel(), "element count mismatch in -=");
  const float* __restrict__ o = other.data();
  float* __restrict__ d = data();
  for (std::size_t i = 0; i < data_.size(); ++i) d[i] -= o[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  TDFM_CHECK(other.numel() == numel(), "element count mismatch in add_scaled");
  const float* __restrict__ o = other.data();
  float* __restrict__ d = data();
  for (std::size_t i = 0; i < data_.size(); ++i) d[i] += scale * o[i];
}

}  // namespace tdfm
