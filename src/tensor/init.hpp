// Weight initialisation schemes.
#pragma once

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace tdfm {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Used for the final classifier layers where activations are linear/softmax.
void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)).  Used before ReLU activations.
void he_normal(Tensor& w, std::size_t fan_in, Rng& rng);

/// Fills with N(mean, stddev).
void normal_init(Tensor& w, float mean, float stddev, Rng& rng);

/// Fills with U(lo, hi).
void uniform_init(Tensor& w, float lo, float hi, Rng& rng);

}  // namespace tdfm
