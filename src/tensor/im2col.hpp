// im2col / col2im transforms.
//
// Convolution is implemented as GEMM over an unrolled patch matrix: each
// output pixel's receptive field becomes one column of a
// [C*kh*kw, out_h*out_w] matrix, so conv forward is a single
// [out_c, C*kh*kw] x [C*kh*kw, out_h*out_w] GEMM per image.  col2im is the
// adjoint, used to push gradients back to the input image.
#pragma once

#include <cstddef>

namespace tdfm {

/// Geometry of a 2-d convolution (square stride/padding per axis).
struct ConvGeometry {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;

  [[nodiscard]] std::size_t out_h() const {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the patch matrix: one per (channel, ky, kx).
  [[nodiscard]] std::size_t patch_rows() const { return in_c * kernel * kernel; }
  /// Columns of the patch matrix: one per output pixel.
  [[nodiscard]] std::size_t patch_cols() const { return out_h() * out_w(); }
};

/// Unrolls one image [C, H, W] into the patch matrix
/// [C*k*k, out_h*out_w] (row-major).  Out-of-bounds taps read as zero.
///
/// For batched convolution the patch matrices of a whole batch live side by
/// side in one wide matrix [C*k*k, B*out_h*out_w]: `row_stride` is that
/// matrix's row length and `col_offset` the image's first column.  The
/// defaults (0, 0) mean a stand-alone [C*k*k, out_h*out_w] matrix.
void im2col(const ConvGeometry& g, const float* image, float* columns,
            std::size_t row_stride = 0, std::size_t col_offset = 0);

/// Transposed unrolling: one *row* per output pixel, laid out
/// [out_h*out_w, C*k*k] with taps ordered (c, ky, kx) — the same order as a
/// Conv2D weight row — so quantized convolution can q8-quantize each patch
/// row and dot it against quantized weight rows directly (tensor/qgemm.hpp),
/// no transpose needed.  Out-of-bounds taps read as zero.
void im2row(const ConvGeometry& g, const float* image, float* rows_out);

/// Adjoint of im2col: scatters the patch-matrix gradient back into the
/// image gradient [C, H, W].  The output buffer is accumulated into, so the
/// caller zeroes it first when appropriate.  `row_stride`/`col_offset`
/// address one image's slice of a batched patch matrix, as in im2col.
void col2im(const ConvGeometry& g, const float* columns, float* image_grad,
            std::size_t row_stride = 0, std::size_t col_offset = 0);

}  // namespace tdfm
