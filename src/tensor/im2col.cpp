#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace tdfm {

void im2col(const ConvGeometry& g, const float* image, float* columns,
            std::size_t row_stride, std::size_t col_offset) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  if (row_stride == 0) row_stride = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = columns + row * row_stride + col_offset;
        for (std::size_t y = 0; y < oh; ++y) {
          // Signed source row: may fall in the zero padding.
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(y * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            for (std::size_t x = 0; x < ow; ++x) out_row[y * ow + x] = 0.0F;
            continue;
          }
          const float* src = plane + static_cast<std::size_t>(sy) * g.in_w;
          if (g.stride == 1) {
            // Stride-1 rows are a contiguous slide: source index is x + kx -
            // pad, so the valid span is one memcpy with zeroed flanks.
            const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kx) -
                                         static_cast<std::ptrdiff_t>(g.pad);
            const std::size_t x0 = static_cast<std::size_t>(
                std::max<std::ptrdiff_t>(0, -shift));
            const std::size_t x1 = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
                static_cast<std::ptrdiff_t>(g.in_w) - shift, 0,
                static_cast<std::ptrdiff_t>(ow)));
            float* dst = out_row + y * ow;
            for (std::size_t x = 0; x < x0; ++x) dst[x] = 0.0F;
            if (x1 > x0) {
              std::memcpy(dst + x0, src + static_cast<std::size_t>(
                                              static_cast<std::ptrdiff_t>(x0) + shift),
                          (x1 - x0) * sizeof(float));
            }
            for (std::size_t x = x1; x < ow; ++x) dst[x] = 0.0F;
            continue;
          }
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            out_row[y * ow + x] =
                (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w))
                    ? 0.0F
                    : src[static_cast<std::size_t>(sx)];
          }
        }
      }
    }
  }
}

void im2row(const ConvGeometry& g, const float* image, float* rows_out) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t pr = g.patch_rows();
  for (std::size_t y = 0; y < oh; ++y) {
    for (std::size_t x = 0; x < ow; ++x) {
      float* dst = rows_out + (y * ow + x) * pr;
      std::size_t t = 0;
      for (std::size_t c = 0; c < g.in_c; ++c) {
        const float* plane = image + c * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(y * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            for (std::size_t kx = 0; kx < g.kernel; ++kx) dst[t++] = 0.0F;
            continue;
          }
          const float* src = plane + static_cast<std::size_t>(sy) * g.in_w;
          for (std::size_t kx = 0; kx < g.kernel; ++kx) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            dst[t++] = (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w))
                           ? 0.0F
                           : src[static_cast<std::size_t>(sx)];
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& g, const float* columns, float* image_grad,
            std::size_t row_stride, std::size_t col_offset) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  if (row_stride == 0) row_stride = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    float* plane = image_grad + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row = columns + row * row_stride + col_offset;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(y * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* dst = plane + static_cast<std::size_t>(sy) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            dst[static_cast<std::size_t>(sx)] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace tdfm
