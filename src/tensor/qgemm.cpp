#include "tensor/qgemm.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"

namespace tdfm {

namespace {

void count_qgemm(std::size_t m, std::size_t n, std::size_t k) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter calls = obs::Registry::global().counter("qgemm.calls");
  static obs::Counter flops = obs::Registry::global().counter("qgemm.flops");
  calls.add(1);
  flops.add(2 * m * n * k);
}

// Same grain policy as fp32 GEMM (tensor/gemm.cpp): keep each chunk above a
// minimum FLOP count so scheduling overhead stays amortised.
constexpr std::size_t kMinFlopsPerChunk = 1U << 19;

std::size_t row_grain(std::size_t m, std::size_t n, std::size_t k) {
  const std::size_t flops_per_row = 2 * n * k;
  if (flops_per_row == 0) return m;
  return std::clamp<std::size_t>(kMinFlopsPerChunk / flops_per_row, 1,
                                 std::max<std::size_t>(m, 1));
}

}  // namespace

void gemm_q8_nt(const kernels::Q8Matrix& a, const kernels::Q8Matrix& b,
                float* c) {
  TDFM_CHECK(a.blocks_per_row == b.blocks_per_row,
             "q8 operands must share the reduction width");
  const std::size_t m = a.rows;
  const std::size_t n = b.rows;
  const std::size_t blocks = a.blocks_per_row;
  count_qgemm(m, n, a.cols);
  const auto fn = kernels::active_table().q8_nt;
  const std::int8_t* aq = a.data.data();
  const float* as = a.scales.data();
  const std::int8_t* bq = b.data.data();
  const float* bs = b.scales.data();
  core::parallel_for(0, m, row_grain(m, n, a.cols),
                     [=](std::size_t r0, std::size_t r1) {
                       fn(r0, r1, n, blocks, aq, as, bq, bs, c);
                     });
}

}  // namespace tdfm
