#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace tdfm {

namespace {

// FLOP accounting for the §IV-E overhead analysis.  One branch on the
// disabled path; enabled increments go to the calling thread's shard, so
// kernels running inside pool workers stay uncontended.
void count_gemm(std::size_t m, std::size_t n, std::size_t k) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter calls = obs::Registry::global().counter("gemm.calls");
  static obs::Counter flops = obs::Registry::global().counter("gemm.flops");
  calls.add(1);
  flops.add(2 * m * n * k);
}
// Block sizes chosen so one A-block plus one B-block fit comfortably in L1/L2
// for the matrix sizes this library produces (k up to a few thousand from
// im2col, n up to a few hundred output channels).
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 256;
constexpr std::size_t kBlockK = 256;

// Minimum FLOPs a parallel chunk should carry; below this the scheduling
// overhead outweighs the work, so small GEMMs stay on one thread.
constexpr std::size_t kMinFlopsPerChunk = 1U << 19;

// Rows of C per parallel chunk.  Every row's arithmetic is independent of
// the partition (the k/n traversal order within a row never changes), so
// any grain yields bit-identical results — the choice is purely about
// amortising scheduling overhead.
std::size_t row_grain(std::size_t m, std::size_t n, std::size_t k) {
  const std::size_t flops_per_row = 2 * n * k;
  if (flops_per_row == 0) return m;
  return std::clamp<std::size_t>(kMinFlopsPerChunk / flops_per_row, 1, std::max<std::size_t>(m, 1));
}
}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  count_gemm(m, n, k);
  core::parallel_for(0, m, row_grain(m, n, k), [=](std::size_t r0, std::size_t r1) {
    if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
    for (std::size_t i0 = r0; i0 < r1; i0 += kBlockM) {
      const std::size_t i1 = std::min(i0 + kBlockM, r1);
      for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
        const std::size_t p1 = std::min(p0 + kBlockK, k);
        for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
          const std::size_t j1 = std::min(j0 + kBlockN, n);
          for (std::size_t i = i0; i < i1; ++i) {
            float* __restrict__ crow = c + i * n;
            for (std::size_t p = p0; p < p1; ++p) {
              const float av = a[i * k + p];
              const float* __restrict__ brow = b + p * n;
              for (std::size_t j = j0; j < j1; ++j) {
                crow[j] += av * brow[j];
              }
            }
          }
        }
      }
    }
  });
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  // C[i,j] = dot(A[i,:], B[j,:]) — both operands are traversed row-wise, so
  // a straightforward dot-product loop is already cache-friendly.
  count_gemm(m, n, k);
  core::parallel_for(0, m, row_grain(m, n, k), [=](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* __restrict__ arow = a + i * k;
      float* __restrict__ crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* __restrict__ brow = b + j * k;
        float acc = 0.0F;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = accumulate ? crow[j] + acc : acc;
      }
    }
  });
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  // C[i,j] = sum_p A[p,i] * B[p,j].  Iterate p outermost so both A and B are
  // read row-wise; C rows are revisited but usually fit in cache (m*n small
  // for weight gradients).  Parallel chunks split the i range: each chunk
  // still visits p in ascending order for its rows, so per-element addition
  // order — and therefore every bit of C — is partition-independent.
  count_gemm(m, n, k);
  core::parallel_for(0, m, row_grain(m, n, k), [=](std::size_t r0, std::size_t r1) {
    if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
      const float* __restrict__ arow = a + p * m;
      const float* __restrict__ brow = b + p * n;
      for (std::size_t i = r0; i < r1; ++i) {
        const float av = arow[i];
        if (av == 0.0F) continue;  // ReLU-sparse activations skip whole rows
        float* __restrict__ crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
}

}  // namespace tdfm
