#include "tensor/gemm.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"

namespace tdfm {

namespace {

// FLOP accounting for the §IV-E overhead analysis.  One branch on the
// disabled path; enabled increments go to the calling thread's shard, so
// kernels running inside pool workers stay uncontended.
void count_gemm(std::size_t m, std::size_t n, std::size_t k) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter calls = obs::Registry::global().counter("gemm.calls");
  static obs::Counter flops = obs::Registry::global().counter("gemm.flops");
  calls.add(1);
  flops.add(2 * m * n * k);
}

// Minimum FLOPs a parallel chunk should carry; below this the scheduling
// overhead outweighs the work, so small GEMMs stay on one thread.
constexpr std::size_t kMinFlopsPerChunk = 1U << 19;

// Rows of C per parallel chunk.  Every kernel keeps each row's arithmetic
// independent of the partition (see kernels/kernels.hpp), so any grain
// yields bit-identical results — the choice is purely about amortising
// scheduling overhead.
std::size_t row_grain(std::size_t m, std::size_t n, std::size_t k) {
  const std::size_t flops_per_row = 2 * n * k;
  if (flops_per_row == 0) return m;
  return std::clamp<std::size_t>(kMinFlopsPerChunk / flops_per_row, 1, std::max<std::size_t>(m, 1));
}
}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  count_gemm(m, n, k);
  const auto fn = kernels::active_table().nn;
  core::parallel_for(0, m, row_grain(m, n, k), [=](std::size_t r0, std::size_t r1) {
    fn(r0, r1, m, n, k, a, b, c, accumulate);
  });
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  count_gemm(m, n, k);
  const auto fn = kernels::active_table().nt;
  core::parallel_for(0, m, row_grain(m, n, k), [=](std::size_t r0, std::size_t r1) {
    fn(r0, r1, m, n, k, a, b, c, accumulate);
  });
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  count_gemm(m, n, k);
  const auto fn = kernels::active_table().tn;
  core::parallel_for(0, m, row_grain(m, n, k), [=](std::size_t r0, std::size_t r1) {
    fn(r0, r1, m, n, k, a, b, c, accumulate);
  });
}

}  // namespace tdfm
