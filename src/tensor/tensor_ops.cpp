#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>

namespace tdfm {

namespace {
Tensor binary_op(const Tensor& a, const Tensor& b, auto op) {
  TDFM_CHECK(a.numel() == b.numel(), "element count mismatch in binary op");
  Tensor out(a.shape());
  const float* __restrict__ pa = a.data();
  const float* __restrict__ pb = b.data();
  float* __restrict__ po = out.data();
  for (std::size_t i = 0; i < a.numel(); ++i) po[i] = op(pa[i], pb[i]);
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* __restrict__ pa = a.data();
  float* __restrict__ po = out.data();
  for (std::size_t i = 0; i < a.numel(); ++i) po[i] = s * pa[i];
  return out;
}

void softmax_row(std::span<float> row, float temperature) {
  TDFM_CHECK(!row.empty(), "softmax of empty row");
  TDFM_CHECK(temperature > 0.0F, "softmax temperature must be positive");
  float mx = row[0];
  for (float x : row) mx = std::max(mx, x);
  float denom = 0.0F;
  for (auto& x : row) {
    x = std::exp((x - mx) / temperature);
    denom += x;
  }
  for (auto& x : row) x /= denom;
}

Tensor softmax_rows(const Tensor& logits, float temperature) {
  TDFM_CHECK(logits.rank() == 2, "softmax_rows needs [rows, cols]");
  Tensor out = logits;
  for (std::size_t r = 0; r < out.dim(0); ++r) {
    softmax_row(out.row(r), temperature);
  }
  return out;
}

std::size_t argmax(std::span<const float> xs) {
  TDFM_CHECK(!xs.empty(), "argmax of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[best]) best = i;
  }
  return best;
}

double sum(const Tensor& t) {
  double s = 0.0;
  for (float x : t.flat()) s += x;
  return s;
}

double mean(const Tensor& t) {
  return t.numel() == 0 ? 0.0 : sum(t) / static_cast<double>(t.numel());
}

float max_abs(const Tensor& t) {
  float m = 0.0F;
  for (float x : t.flat()) m = std::max(m, std::fabs(x));
  return m;
}

double squared_norm(const Tensor& t) {
  double s = 0.0;
  for (float x : t.flat()) s += static_cast<double>(x) * x;
  return s;
}

bool all_finite(const Tensor& t) {
  return std::all_of(t.flat().begin(), t.flat().end(),
                     [](float x) { return std::isfinite(x); });
}

void clamp_(Tensor& t, float lo, float hi) {
  for (auto& x : t.flat()) x = std::clamp(x, lo, hi);
}

}  // namespace tdfm
