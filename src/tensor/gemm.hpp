// Single-precision matrix multiplication entry points.
//
// Convolution (via im2col) and dense layers reduce to GEMM, so these three
// calls carry >90% of training time.  This layer owns threading (row-range
// chunks over core::parallel_for) and FLOP accounting; the inner loops live
// in tdfm::kernels, selected once at startup by cpuid or the TDFM_KERNEL
// env var (scalar|sse2|avx2).  The avx2 table uses register-blocked 8xN
// FMA micro-tiles; scalar is the compile-time-devectorized reference every
// other kernel is checked against (tests/kernels).  Within one kernel
// choice results are bit-identical at any thread count.
//
// Layout convention: row-major, C[m x n] = A (op) * B (op) with the
// transpose baked into the kernel name rather than runtime flags, because
// each backprop call site statically knows which operand is transposed:
//   gemm_nn:  C += A[m x k]   * B[k x n]    (forward pass)
//   gemm_nt:  C += A[m x k]   * B[n x k]^T  (input gradients)
//   gemm_tn:  C += A[k x m]^T * B[k x n]    (weight gradients)
#pragma once

#include <cstddef>

namespace tdfm {

/// C[m x n] += A[m x k] * B[k x n].  `accumulate=false` overwrites C.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

/// C[m x n] += A[m x k] * B[n x k]^T.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

/// C[m x n] += A[k x m]^T * B[k x n].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

}  // namespace tdfm
