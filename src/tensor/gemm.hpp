// Single-precision matrix multiplication kernels.
//
// Convolution (via im2col) and dense layers reduce to GEMM, so these three
// kernels carry >90% of training time.  They are written as cache-blocked
// scalar loops with __restrict__ pointers; on the evaluation machine GCC
// auto-vectorises the inner loops (-O3 -march=native), reaching a few
// GFLOP/s — enough for the scaled-down study.
//
// Layout convention: row-major, C[m x n] = A (op) * B (op) with the
// transpose baked into the kernel name rather than runtime flags, because
// each backprop call site statically knows which operand is transposed:
//   gemm_nn:  C += A[m x k]   * B[k x n]    (forward pass)
//   gemm_nt:  C += A[m x k]   * B[n x k]^T  (input gradients)
//   gemm_tn:  C += A[k x m]^T * B[k x n]    (weight gradients)
#pragma once

#include <cstddef>

namespace tdfm {

/// C[m x n] += A[m x k] * B[k x n].  `accumulate=false` overwrites C.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

/// C[m x n] += A[m x k] * B[n x k]^T.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

/// C[m x n] += A[k x m]^T * B[k x n].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

}  // namespace tdfm
