// Classification losses.
//
// Every loss maps logits [B, K] plus a per-sample target distribution
// [B, K] to (mean loss, d loss / d logits).  Softmax is fused into the
// losses — networks emit raw logits.  Targets are distributions rather than
// class ids so that soft labels (label smoothing, distillation, corrected
// labels) flow through the same interface as one-hot hard labels.
//
// The robust-loss technique of the paper (§III-B3) is the Active-Passive
// Loss of Ma et al. [18]: APL = alpha * NCE + beta * RCE, combining an
// "active" loss (Normalized Cross Entropy) that fits the target class with
// a "passive" loss (Reverse Cross Entropy) that suppresses non-target
// classes; both are provably robust to symmetric label noise, unlike CE.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.hpp"

namespace tdfm::nn {

class Loss {
 public:
  virtual ~Loss() = default;

  /// Computes the mean loss over the batch and writes d(mean loss)/d(logits)
  /// into grad_logits (resized by the callee).
  virtual double compute(const Tensor& logits, const Tensor& targets,
                         Tensor& grad_logits) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Standard softmax cross entropy with (possibly soft) target distributions.
/// grad = (softmax(z) - t) / B.  Not robust to label noise [47]; this is the
/// paper's baseline loss.
class CrossEntropyLoss final : public Loss {
 public:
  double compute(const Tensor& logits, const Tensor& targets,
                 Tensor& grad_logits) override;
  [[nodiscard]] std::string name() const override { return "CrossEntropy"; }
};

/// Cross entropy against smoothed targets q = (1 - alpha) * t + alpha / K
/// (classical label smoothing, §III-B1).
class SmoothedCrossEntropyLoss final : public Loss {
 public:
  explicit SmoothedCrossEntropyLoss(float alpha);
  double compute(const Tensor& logits, const Tensor& targets,
                 Tensor& grad_logits) override;
  [[nodiscard]] std::string name() const override { return "SmoothedCE"; }
  [[nodiscard]] float alpha() const { return alpha_; }

 private:
  float alpha_;
};

/// Label relaxation (Lienen & Hüllermeier, AAAI'21 [16]) — the paper's
/// representative label-smoothing-family technique.  Instead of a fixed
/// uniform redistribution, the target is projected onto the credal set of
/// distributions with q_y >= 1 - alpha: when the model is already confident
/// enough in the labelled class the loss is zero; otherwise the loss is
/// KL(q_hat || p) where q_hat keeps the predicted shape on the non-target
/// classes (q_hat_k ∝ p_k for k != y) and assigns 1 - alpha to the target.
class LabelRelaxationLoss final : public Loss {
 public:
  explicit LabelRelaxationLoss(float alpha);
  double compute(const Tensor& logits, const Tensor& targets,
                 Tensor& grad_logits) override;
  [[nodiscard]] std::string name() const override { return "LabelRelaxation"; }
  [[nodiscard]] float alpha() const { return alpha_; }

 private:
  float alpha_;
};

/// Normalized Cross Entropy (active part of APL):
///   NCE = -log p_y / (sum_k -log p_k).
class NCELoss final : public Loss {
 public:
  double compute(const Tensor& logits, const Tensor& targets,
                 Tensor& grad_logits) override;
  [[nodiscard]] std::string name() const override { return "NCE"; }
};

/// Reverse Cross Entropy (passive part of APL):
///   RCE = -sum_k p_k log t_k with log 0 clamped to A (= -4, as in [18]).
class RCELoss final : public Loss {
 public:
  explicit RCELoss(float log_zero = -4.0F) : log_zero_(log_zero) {}
  double compute(const Tensor& logits, const Tensor& targets,
                 Tensor& grad_logits) override;
  [[nodiscard]] std::string name() const override { return "RCE"; }

 private:
  float log_zero_;
};

/// Active-Passive Loss: alpha * NCE + beta * RCE (the paper's robust-loss
/// representative; recommended alpha = beta = 1).
class APLLoss final : public Loss {
 public:
  APLLoss(float alpha, float beta);
  double compute(const Tensor& logits, const Tensor& targets,
                 Tensor& grad_logits) override;
  [[nodiscard]] std::string name() const override { return "APL(NCE+RCE)"; }

 private:
  float alpha_;
  float beta_;
  NCELoss nce_;
  RCELoss rce_;
};

/// Knowledge-distillation loss (Hinton et al. [48], self-distillation [19]):
///   L = (1 - alpha) * CE(z, hard) + alpha * T^2 * CE(z / T, teacher_probs)
/// where teacher_probs is the teacher's temperature-T softmax.  The T^2
/// factor keeps gradient magnitudes comparable across temperatures.
class DistillationLoss final {
 public:
  DistillationLoss(float alpha, float temperature);

  double compute(const Tensor& logits, const Tensor& hard_targets,
                 const Tensor& teacher_probs, Tensor& grad_logits) const;

  [[nodiscard]] float alpha() const { return alpha_; }
  [[nodiscard]] float temperature() const { return temperature_; }

 private:
  float alpha_;
  float temperature_;
};

/// Builds a one-hot row-per-sample target matrix from class ids.
[[nodiscard]] Tensor one_hot(std::span<const int> labels, std::size_t num_classes);

}  // namespace tdfm::nn
