// Fully-connected layer.
#pragma once

#include "core/rng.hpp"
#include "kernels/quant.hpp"
#include "nn/layer.hpp"

namespace tdfm::nn {

/// y = x W^T + b with x: [B, in], W: [out, in], b: [out].
///
/// After quantize_for_inference() the weight lives as q8_0 rows and forward
/// quantizes each input batch row-wise, so the matmul runs int8 x int8
/// (tensor/qgemm.hpp).  Bias stays fp32 (it is tiny and added post-matmul).
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  void quantize_for_inference() override;
  [[nodiscard]] std::vector<kernels::Q8Matrix*> quantized_weights() override {
    return quantized_ ? std::vector<kernels::Q8Matrix*>{&qweight_}
                      : std::vector<kernels::Q8Matrix*>{};
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t weight_layer_count() const override { return 1; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  ///< [B, in] saved by forward for the weight gradient
  bool quantized_ = false;
  kernels::Q8Matrix qweight_;  ///< [out, in] q8_0 rows after quantization
  kernels::Q8Matrix qinput_;   ///< per-batch activation scratch (one
                               ///< in-flight batch per layer, see Layer doc)
};

}  // namespace tdfm::nn
