// Fully-connected layer.
#pragma once

#include "core/rng.hpp"
#include "nn/layer.hpp"

namespace tdfm::nn {

/// y = x W^T + b with x: [B, in], W: [out, in], b: [out].
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t weight_layer_count() const override { return 1; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  ///< [B, in] saved by forward for the weight gradient
};

}  // namespace tdfm::nn
