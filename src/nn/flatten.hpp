// Flatten [B, C, H, W] activations into [B, C*H*W] for the FC head.
#pragma once

#include "nn/layer.hpp"

namespace tdfm::nn {

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool /*training*/) override {
    input_shape_ = input.shape();
    const std::size_t batch = input.dim(0);
    return input.reshaped(Shape{batch, input.numel() / batch});
  }

  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshaped(input_shape_);
  }

  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace tdfm::nn
