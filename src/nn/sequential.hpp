// Sequential layer container.
#pragma once

#include <memory>
#include <utility>

#include "nn/layer.hpp"
#include "obs/trace.hpp"

namespace tdfm::nn {

/// Runs a list of layers in order; itself a Layer, so composite blocks
/// (residual, separable) can nest Sequentials.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void add(LayerPtr layer) {
    TDFM_CHECK(layer != nullptr, "cannot add a null layer");
    layers_.push_back(std::move(layer));
  }

  /// Constructs a layer in place and appends it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  // The traced variants run identical arithmetic in identical order — a
  // span is pure timing — so results stay bit-identical with tracing on.
  Tensor forward(const Tensor& input, bool training) override {
    if (obs::trace_enabled()) {
      Tensor x = input;
      for (auto& layer : layers_) {
        obs::Span span(layer->name() + ":fwd");
        x = layer->forward(x, training);
      }
      return x;
    }
    Tensor x = input;
    for (auto& layer : layers_) x = layer->forward(x, training);
    return x;
  }

  Tensor backward(const Tensor& grad_output) override {
    if (obs::trace_enabled()) {
      Tensor g = grad_output;
      for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        obs::Span span((*it)->name() + ":bwd");
        g = (*it)->backward(g);
      }
      return g;
    }
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  std::vector<Parameter*> parameters() override {
    std::vector<Parameter*> ps;
    for (auto& layer : layers_) {
      for (auto* p : layer->parameters()) ps.push_back(p);
    }
    return ps;
  }

  void quantize_for_inference() override {
    for (auto& layer : layers_) layer->quantize_for_inference();
  }

  std::vector<kernels::Q8Matrix*> quantized_weights() override {
    std::vector<kernels::Q8Matrix*> qs;
    for (auto& layer : layers_) {
      for (auto* q : layer->quantized_weights()) qs.push_back(q);
    }
    return qs;
  }

  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t weight_layer_count() const override {
    std::size_t n = 0;
    for (const auto& layer : layers_) n += layer->weight_layer_count();
    return n;
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace tdfm::nn
