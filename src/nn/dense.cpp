#include "nn/dense.hpp"

#include "tensor/gemm.hpp"
#include "tensor/init.hpp"
#include "tensor/qgemm.hpp"

namespace tdfm::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  TDFM_CHECK(in_features > 0 && out_features > 0, "Dense needs positive dims");
  he_normal(weight_.value, in_features, rng);
  // Bias stays zero-initialised.
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  TDFM_CHECK(input.rank() == 2 && input.dim(1) == in_,
             "Dense input must be [B, in_features]");
  const std::size_t batch = input.dim(0);
  Tensor out(Shape{batch, out_});
  if (quantized_) {
    // int8 path: quantize the activations row-wise into the layer-local
    // scratch (safe: one in-flight batch per layer), then block-dot against
    // the quantized weight rows.  No activation cache — backward is gone.
    kernels::quantize_rows_q8(input.data(), batch, in_, qinput_);
    gemm_q8_nt(qinput_, qweight_, out.data());
  } else {
    cached_input_ = input;
    // out[B, out] = input[B, in] * W[out, in]^T
    gemm_nt(batch, out_, in_, input.data(), weight_.value.data(), out.data());
  }
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = out.data() + b * out_;
    const float* bias = bias_.value.data();
    for (std::size_t j = 0; j < out_; ++j) row[j] += bias[j];
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  TDFM_CHECK(!quantized_, "Dense: backward on a quantized (forward-only) layer");
  const std::size_t batch = cached_input_.dim(0);
  TDFM_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                 grad_output.dim(1) == out_,
             "Dense grad_output must be [B, out_features]");
  // dW[out, in] += dY[B, out]^T * X[B, in]
  gemm_tn(out_, in_, batch, grad_output.data(), cached_input_.data(),
          weight_.grad.data(), /*accumulate=*/true);
  // db[out] += column sums of dY
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = grad_output.data() + b * out_;
    float* db = bias_.grad.data();
    for (std::size_t j = 0; j < out_; ++j) db[j] += row[j];
  }
  // dX[B, in] = dY[B, out] * W[out, in]
  Tensor grad_input(Shape{batch, in_});
  gemm_nn(batch, in_, out_, grad_output.data(), weight_.value.data(),
          grad_input.data());
  return grad_input;
}

void Dense::quantize_for_inference() {
  if (quantized_) return;
  kernels::quantize_rows_q8(weight_.value.data(), out_, in_, qweight_);
  weight_.value = Tensor();
  weight_.grad = Tensor();
  cached_input_ = Tensor();
  quantized_ = true;
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

}  // namespace tdfm::nn
