// Activation layers.
#pragma once

#include "nn/layer.hpp"

namespace tdfm::nn {

/// Rectified linear unit, applied elementwise to any tensor shape.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  ///< 1 where input > 0
};

/// Hyperbolic tangent (used by the label-correction secondary model).
class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;  ///< cached tanh(x); derivative is 1 - y^2
};

}  // namespace tdfm::nn
