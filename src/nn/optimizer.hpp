// First-order optimisers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace tdfm::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step using the gradients currently accumulated in
  /// the parameters, then leaves the gradients untouched (the trainer zeroes
  /// them before the next batch).
  virtual void step(const std::vector<Parameter*>& params) = 0;

  /// Replaces the base learning rate (per-epoch decay schedules).  Adam's
  /// adaptive scaling composes with this — decay shrinks the step ceiling.
  virtual void set_lr(float lr) = 0;
  [[nodiscard]] virtual float lr() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class SGD final : public Optimizer {
 public:
  explicit SGD(float lr, float momentum = 0.9F, float weight_decay = 0.0F);

  void step(const std::vector<Parameter*>& params) override;
  [[nodiscard]] std::string name() const override { return "SGD"; }

  void set_lr(float lr) override { lr_ = lr; }
  [[nodiscard]] float lr() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;  ///< one per parameter, lazily sized
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9F, float beta2 = 0.999F,
                float eps = 1e-8F, float weight_decay = 0.0F);

  void step(const std::vector<Parameter*>& params) override;
  [[nodiscard]] std::string name() const override { return "Adam"; }

  void set_lr(float lr) override { lr_ = lr; }
  [[nodiscard]] float lr() const override { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace tdfm::nn
