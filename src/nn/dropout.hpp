// Inverted dropout.
#pragma once

#include "core/rng.hpp"
#include "nn/layer.hpp"

namespace tdfm::nn {

/// Inverted dropout: at train time each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p); inference is identity.
/// DeconvNet (Table III) uses p = 0.5 after its FC layers.
class Dropout final : public Layer {
 public:
  Dropout(float p, Rng& rng) : p_(p), rng_(rng.fork(0xd20d0u)) {
    TDFM_CHECK(p >= 0.0F && p < 1.0F, "dropout rate must be in [0, 1)");
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override {
    return "Dropout(p=" + std::to_string(p_) + ")";
  }

 private:
  float p_;
  Rng rng_;
  Tensor mask_;          ///< scaled keep mask from the last training forward
  bool last_training_ = false;
};

}  // namespace tdfm::nn
