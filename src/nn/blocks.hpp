// Composite blocks: residual (basic and bottleneck) and depthwise-separable.
//
// These give the model zoo its architectural diversity — the paper argues
// (§IV-B) that ensembles work *because* member architectures differ
// (residual layers in ResNets, stacked convs in VGGs, separable convs in
// MobileNet); these blocks are those differing motifs.
#pragma once

#include "core/rng.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/sequential.hpp"

namespace tdfm::nn {

/// ResNet-18-style basic block:
///   y = ReLU(BN(conv3x3(BN(conv3x3(x)) after ReLU)) + skip(x))
/// skip is identity when shapes match, else a 1x1 projection conv.
/// Contributes 2 weight layers (3 with projection).
class ResidualBasicBlock final : public Layer {
 public:
  ResidualBasicBlock(std::size_t in_c, std::size_t out_c, std::size_t in_h,
                     std::size_t in_w, std::size_t stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void quantize_for_inference() override;
  std::vector<kernels::Q8Matrix*> quantized_weights() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t weight_layer_count() const override;

 private:
  Sequential main_;
  LayerPtr projection_;  ///< null when the skip is identity
  ReLU out_relu_;
};

/// ResNet-50-style bottleneck block: 1x1 reduce -> 3x3 -> 1x1 expand, plus
/// skip.  Contributes 3 weight layers (4 with projection).
class BottleneckBlock final : public Layer {
 public:
  BottleneckBlock(std::size_t in_c, std::size_t mid_c, std::size_t out_c,
                  std::size_t in_h, std::size_t in_w, std::size_t stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void quantize_for_inference() override;
  std::vector<kernels::Q8Matrix*> quantized_weights() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t weight_layer_count() const override;

 private:
  Sequential main_;
  LayerPtr projection_;
  ReLU out_relu_;
};

/// MobileNet depthwise-separable unit: depthwise 3x3 (+BN+ReLU) followed by
/// pointwise 1x1 (+BN+ReLU).  Contributes 2 weight layers.
class SeparableConvBlock final : public Layer {
 public:
  SeparableConvBlock(std::size_t in_c, std::size_t out_c, std::size_t in_h,
                     std::size_t in_w, std::size_t stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override {
    return body_.forward(input, training);
  }
  Tensor backward(const Tensor& grad_output) override {
    return body_.backward(grad_output);
  }
  std::vector<Parameter*> parameters() override { return body_.parameters(); }
  void quantize_for_inference() override { body_.quantize_for_inference(); }
  std::vector<kernels::Q8Matrix*> quantized_weights() override {
    return body_.quantized_weights();
  }
  [[nodiscard]] std::string name() const override { return "SeparableConvBlock"; }
  [[nodiscard]] std::size_t weight_layer_count() const override {
    return body_.weight_layer_count();
  }

 private:
  Sequential body_;
};

}  // namespace tdfm::nn
