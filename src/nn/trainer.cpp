#include "nn/trainer.hpp"

#include <cstring>
#include <numeric>

#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor_ops.hpp"

namespace tdfm::nn {

Tensor Trainer::gather(const Tensor& images, std::span<const std::size_t> idx) {
  TDFM_CHECK(images.rank() >= 2, "gather expects a batched tensor");
  const std::size_t row = images.numel() / images.dim(0);
  std::vector<std::size_t> dims = images.shape().dims();
  dims[0] = idx.size();
  Tensor out{Shape(dims)};
  for (std::size_t i = 0; i < idx.size(); ++i) {
    TDFM_CHECK(idx[i] < images.dim(0), "gather index out of range");
    std::memcpy(out.data() + i * row, images.data() + idx[i] * row,
                row * sizeof(float));
  }
  return out;
}

double Trainer::fit(Network& net, const Tensor& images, BatchLossFn loss_fn,
                    Rng& rng, const EpochHook& on_epoch_end) {
  TDFM_CHECK(images.dim(0) > 0, "cannot train on an empty dataset");
  TDFM_CHECK(opts_.epochs > 0 && opts_.batch_size > 0, "bad train options");
  const std::size_t n = images.dim(0);

  // A per-fit thread request resizes the shared pool (no-op when already
  // that size, or when this fit itself runs on a pool worker — e.g. an
  // ensemble member — where layer parallelism runs inline anyway).
  if (opts_.threads > 0) core::ThreadPool::set_global_threads(opts_.threads);

  std::unique_ptr<Optimizer> opt;
  if (opts_.use_adam) {
    opt = std::make_unique<Adam>(opts_.lr, 0.9F, 0.999F, 1e-8F, opts_.weight_decay);
  } else {
    opt = std::make_unique<SGD>(opts_.lr, opts_.momentum, opts_.weight_decay);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const auto params = net.parameters();
  double epoch_loss = 0.0;
  float lr = opts_.lr;
  obs::Stopwatch fit_watch;
  const std::string epoch_span_name = net.name() + ":epoch";
  for (std::size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    obs::Span epoch_span(epoch_span_name);
    const float epoch_lr = lr;
    if (opts_.shuffle) rng.shuffle(order);
    // Epoch loss is the sample-weighted mean of the batch means: the final
    // partial batch contributes in proportion to its size, not 1/batches.
    double loss_sum = 0.0;
    for (std::size_t start = 0; start < n; start += opts_.batch_size) {
      const std::size_t count = std::min(opts_.batch_size, n - start);
      const std::span<const std::size_t> idx(order.data() + start, count);
      const Tensor batch = gather(images, idx);
      net.zero_grad();
      const Tensor logits = net.logits(batch, /*training=*/true);
      Tensor grad_logits;
      loss_sum += loss_fn(logits, idx, grad_logits) * static_cast<double>(count);
      TDFM_CHECK(grad_logits.shape() == logits.shape(),
                 "loss callback must produce a gradient per logit");
      net.backward(grad_logits);
      opt->step(params);
    }
    epoch_loss = loss_sum / static_cast<double>(n);
    // Per-epoch decay applies to both optimisers; Adam previously ignored
    // it silently, skewing technique comparisons across optimiser choices.
    lr *= opts_.lr_decay;
    opt->set_lr(lr);
    const double epoch_seconds = epoch_span.stop();
    if (obs::metrics_enabled()) {
      static obs::Counter epochs_done = obs::Registry::global().counter("train.epochs");
      static obs::Counter samples_seen = obs::Registry::global().counter("train.samples");
      static obs::Histogram epoch_time = obs::Registry::global().histogram(
          "train.epoch_seconds", {0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0});
      epochs_done.add(1);
      samples_seen.add(n);
      epoch_time.observe(epoch_seconds);
    }
    if (obs::telemetry_enabled()) {
      obs::EpochRecord rec;
      rec.net = net.name();
      rec.epoch = epoch + 1;
      rec.epochs = opts_.epochs;
      rec.loss = epoch_loss;
      rec.lr = epoch_lr;
      rec.wall_seconds = epoch_seconds;
      rec.total_seconds = fit_watch.elapsed_seconds();
      rec.samples_per_second =
          epoch_seconds > 0.0 ? static_cast<double>(n) / epoch_seconds : 0.0;
      obs::emit_epoch(rec);
    }
    TDFM_LOG(kDebug) << net.name() << " epoch " << epoch + 1 << '/' << opts_.epochs
                     << " loss " << epoch_loss;
    if (on_epoch_end) on_epoch_end(epoch, net);
  }
  return epoch_loss;
}

std::vector<int> predict_classes(Network& net, const Tensor& images,
                                 std::size_t batch_size) {
  const std::size_t n = images.dim(0);
  std::vector<int> out(n);
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    idx.resize(count);
    std::iota(idx.begin(), idx.end(), start);
    const Tensor batch = Trainer::gather(images, idx);
    const Tensor logits = net.logits(batch, /*training=*/false);
    for (std::size_t i = 0; i < count; ++i) {
      out[start + i] = static_cast<int>(argmax(logits.row(i)));
    }
  }
  return out;
}

std::vector<int> predict_batch(Network& net, const Tensor& batch) {
  TDFM_CHECK(batch.rank() >= 2 && batch.dim(0) > 0, "predict_batch needs a batch");
  const Tensor logits = net.logits(batch, /*training=*/false);
  std::vector<int> out(batch.dim(0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<int>(argmax(logits.row(i)));
  }
  return out;
}

Tensor predict_probabilities(Network& net, const Tensor& images, float temperature,
                             std::size_t batch_size) {
  const std::size_t n = images.dim(0);
  Tensor out(Shape{n, net.num_classes()});
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    idx.resize(count);
    std::iota(idx.begin(), idx.end(), start);
    const Tensor batch = Trainer::gather(images, idx);
    const Tensor probs = softmax_rows(net.logits(batch, false), temperature);
    std::memcpy(out.data() + start * net.num_classes(), probs.data(),
                probs.numel() * sizeof(float));
  }
  return out;
}

}  // namespace tdfm::nn
