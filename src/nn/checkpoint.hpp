// Network weight checkpointing.
//
// Training the heavier zoo members takes minutes on CPU; checkpoints let
// applications train once and reuse (e.g. the golden model across repeated
// AD evaluations, shipping a fitted ensemble, or feeding the serving
// layer's ModelRegistry).  Two on-disk formats share a magic prefix:
//
//   v1: magic | count:u64 | float32 * count
//       Count-only; the loader must already hold a structurally identical
//       network, so v1 files need out-of-band architecture knowledge.
//   v2: magic | meta (arch name, width, in_channels, image_size,
//       num_classes) | count:u64 | float32 * count
//       Self-describing: ModelRegistry::load() instantiates the right zoo
//       architecture from the header alone.
//   v3: v2 layout + flags:u32 after num_classes.  Flag bit 0 = quantize:
//       the checkpoint describes a model *deployed* in q8_0 inference form;
//       the weights themselves stay fp32 (quantization is irreversible, so
//       checkpoints are always written pre-quantization) and loaders are
//       expected to re-quantize after restoring.  This is how a
//       pipeline-promoted quantized candidate round-trips through
//       save/load without silently dequantizing.
//
// load_checkpoint reads all versions; save_checkpoint writes v1 unless a
// CheckpointMeta is supplied, and then v2 unless meta sets a v3-only field
// (so existing v2 files stay byte-identical).  The architecture is stored
// as its zoo *name* (not the enum value) so the format survives enum
// reordering and nn stays independent of the models library.
#pragma once

#include <cstdint>
#include <string>

#include "nn/network.hpp"

namespace tdfm::nn {

/// Architecture metadata carried by a v2 checkpoint header — everything a
/// registry needs to rebuild the network before loading its weights.
struct CheckpointMeta {
  std::uint32_t format_version = 2;  ///< set by the reader; 1 = count-only
  std::string arch;                  ///< model zoo name ("ConvNet", ...)
  std::uint32_t width = 0;           ///< base channel multiplier
  std::uint32_t in_channels = 0;
  std::uint32_t image_size = 0;
  std::uint32_t num_classes = 0;
  /// Deployment form: true = serve this model q8_0-quantized (v3 flag bit
  /// 0).  The stored weights are fp32 either way; loaders honouring the
  /// flag call quantize_for_inference() after restoring.
  bool quantize = false;

  [[nodiscard]] bool operator==(const CheckpointMeta&) const = default;
};

/// Writes the network's weights to `path` as a v1 (count-only) checkpoint.
/// Throws tdfm::Error on I/O failure.
void save_checkpoint(Network& net, const std::string& path);

/// Writes a self-describing checkpoint: `meta` followed by the weights.
/// Emits the v2 layout when no v3-only field is set (meta.quantize false),
/// v3 otherwise.  Throws tdfm::Error on I/O failure or when meta.arch is
/// empty.
void save_checkpoint(Network& net, const std::string& path,
                     const CheckpointMeta& meta);

/// Reads the header of a v2/v3 checkpoint.  Throws tdfm::Error on I/O
/// failure, on a non-checkpoint file, or on a v1 file (which carries no
/// metadata — callers must supply the architecture out of band).
[[nodiscard]] CheckpointMeta read_checkpoint_meta(const std::string& path);

/// Format version (1, 2 or 3) of the checkpoint at `path`.  Throws
/// tdfm::Error when the file is missing or not a tdfm checkpoint.
[[nodiscard]] std::uint32_t checkpoint_format_version(const std::string& path);

/// Loads weights saved by either save_checkpoint overload into a
/// structurally identical network (v2 metadata is validated for internal
/// consistency, then skipped).  Throws tdfm::Error on I/O failure, format
/// mismatch, or when the stored scalar count does not match the network.
void load_checkpoint(Network& net, const std::string& path);

}  // namespace tdfm::nn
