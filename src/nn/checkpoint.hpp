// Network weight checkpointing.
//
// Training the heavier zoo members takes minutes on CPU; checkpoints let
// applications train once and reuse (e.g. the golden model across repeated
// AD evaluations, or shipping a fitted ensemble).  The format is
// deliberately minimal: a magic header, the parameter scalar count, then
// raw little-endian float32 — matching Network::save_weights()/
// load_weights(), which validate the count against the target network's
// structure on load.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace tdfm::nn {

/// Writes the network's weights to `path`.  Throws tdfm::Error on I/O
/// failure.
void save_checkpoint(Network& net, const std::string& path);

/// Loads weights saved by save_checkpoint into a structurally identical
/// network.  Throws tdfm::Error on I/O failure, format mismatch, or when
/// the stored scalar count does not match the network.
void load_checkpoint(Network& net, const std::string& path);

}  // namespace tdfm::nn
