// Layer abstraction for the neural-network framework.
//
// tdfm uses layer-local backpropagation rather than a general autograd tape:
// each Layer caches whatever it needs during forward() and implements the
// exact adjoint in backward().  Residual and depthwise-separable topologies
// are composite Layers (src/nn/blocks.hpp), so every network in the model
// zoo is ultimately a Sequential — no graph engine required.  This keeps the
// hot path allocation-light and easy to verify with finite differences
// (tests/nn/gradient_check_test.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace tdfm::kernels {
struct Q8Matrix;
}

namespace tdfm::nn {

/// A trainable tensor together with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Shape shape) : value(shape), grad(std::move(shape)) {}

  [[nodiscard]] std::size_t numel() const { return value.numel(); }
  void zero_grad() { grad.zero(); }
};

/// Base class of all layers.  Layers are stateful: forward() caches
/// activations for the subsequent backward() on the same batch.  A layer is
/// therefore used by at most one in-flight batch at a time (the trainer
/// guarantees this).
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output.  `training` toggles train-time behaviour
  /// (dropout masks, batch-norm batch statistics).
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Computes d(loss)/d(input) from d(loss)/d(output) and accumulates
  /// parameter gradients.  Must be called after forward() on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).  Non-owning.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Converts this layer's weights to the q8_0 inference format
  /// (kernels/quant.hpp), releasing the fp32 masters and gradients.  The
  /// layer becomes forward-only: backward() throws, parameter_count()
  /// reflects the freed storage.  Irreversible; default is a no-op for
  /// layers with nothing to quantize.
  virtual void quantize_for_inference() {}

  /// The q8_0 weight matrices held after quantize_for_inference() (empty
  /// before quantization and for layers that keep fp32 masters, e.g. the
  /// fake-quantized depthwise conv).  Non-owning; composite blocks report
  /// their contents.  This is the mutation surface of the inference-time
  /// fault model (pipeline::WeightCorruptor) — corrupting through it hits
  /// the bytes the int8 matmuls actually read.
  [[nodiscard]] virtual std::vector<kernels::Q8Matrix*> quantized_weights() {
    return {};
  }

  /// Human-readable layer name for summaries, e.g. "Conv2D(8->16, k3 s1 p1)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of *convolution or fully-connected* weight layers inside this
  /// layer (composite blocks report their contents).  Used by the model zoo
  /// to assert Table III depth claims.
  [[nodiscard]] virtual std::size_t weight_layer_count() const { return 0; }

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t parameter_count() {
    std::size_t n = 0;
    for (const auto* p : parameters()) n += p->numel();
    return n;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace tdfm::nn
