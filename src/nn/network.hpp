// Network: the trainable classifier wrapper around a Sequential body.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/rng.hpp"
#include "nn/sequential.hpp"

namespace tdfm::nn {

/// A classification network: a Sequential body whose output is a
/// [B, num_classes] logit matrix (softmax lives in the loss functions).
class Network {
 public:
  Network(std::string name, std::unique_ptr<Sequential> body, std::size_t num_classes)
      : name_(std::move(name)), body_(std::move(body)), num_classes_(num_classes) {
    TDFM_CHECK(body_ != nullptr, "network body must not be null");
  }

  /// Forward pass to logits; `training` toggles dropout/batch-norm mode.
  [[nodiscard]] Tensor logits(const Tensor& batch, bool training) {
    Tensor out = body_->forward(batch, training);
    TDFM_CHECK(out.rank() == 2 && out.dim(1) == num_classes_,
               "network must emit [B, num_classes] logits");
    return out;
  }

  /// Backpropagates d(loss)/d(logits), accumulating parameter gradients.
  void backward(const Tensor& grad_logits) { (void)body_->backward(grad_logits); }

  [[nodiscard]] std::vector<Parameter*> parameters() { return body_->parameters(); }

  void zero_grad() {
    for (auto* p : body_->parameters()) p->zero_grad();
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

  [[nodiscard]] std::size_t parameter_count() { return body_->parameter_count(); }

  /// Conv + FC layer count, for asserting Table III depth claims.
  [[nodiscard]] std::size_t weight_layer_count() const {
    return body_->weight_layer_count();
  }

  /// Converts every layer to the q8_0 inference format (see
  /// Layer::quantize_for_inference).  Irreversible: the network becomes
  /// forward-only and save_weights()/copy_weights_from() no longer apply.
  void quantize_for_inference() {
    body_->quantize_for_inference();
    quantized_ = true;
  }
  [[nodiscard]] bool quantized() const { return quantized_; }

  /// The q8_0 weight matrices of a quantized network (empty before
  /// quantization); see Layer::quantized_weights.
  [[nodiscard]] std::vector<kernels::Q8Matrix*> quantized_weights() {
    return body_->quantized_weights();
  }

  /// Copies all parameter values from another structurally identical
  /// network (same factory, same seed discipline).  Used by knowledge
  /// distillation to snapshot the teacher.
  void copy_weights_from(Network& other);

  /// Flattens all parameter values into one vector (checkpointing).
  [[nodiscard]] std::vector<float> save_weights();

  /// Restores parameter values saved by save_weights().
  void load_weights(const std::vector<float>& weights);

 private:
  std::string name_;
  std::unique_ptr<Sequential> body_;
  std::size_t num_classes_;
  bool quantized_ = false;
};

/// Builds a fresh, randomly initialised network.  The factory pattern lets
/// techniques that need multiple instances (ensembles, distillation,
/// golden/faulty pairs) create structurally identical models with
/// independent weights.
using NetworkFactory = std::function<std::unique_ptr<Network>(Rng& rng)>;

}  // namespace tdfm::nn
