#include "nn/network.hpp"

namespace tdfm::nn {

void Network::copy_weights_from(Network& other) {
  auto dst = parameters();
  auto src = other.parameters();
  TDFM_CHECK(dst.size() == src.size(),
             "copy_weights_from requires structurally identical networks");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    TDFM_CHECK(dst[i]->value.shape() == src[i]->value.shape(),
               "parameter shape mismatch between networks");
    dst[i]->value = src[i]->value;
  }
}

std::vector<float> Network::save_weights() {
  std::vector<float> out;
  for (auto* p : parameters()) {
    const auto span = p->value.flat();
    out.insert(out.end(), span.begin(), span.end());
  }
  return out;
}

void Network::load_weights(const std::vector<float>& weights) {
  std::size_t offset = 0;
  for (auto* p : parameters()) {
    TDFM_CHECK(offset + p->numel() <= weights.size(),
               "weight blob too small for this network");
    std::copy_n(weights.begin() + static_cast<std::ptrdiff_t>(offset), p->numel(),
                p->value.flat().begin());
    offset += p->numel();
  }
  TDFM_CHECK(offset == weights.size(), "weight blob larger than this network");
}

}  // namespace tdfm::nn
