// Batch normalisation over channels of [B, C, H, W] activations.
//
// The residual networks in the model zoo (ResNet18/50 analogues) need
// normalisation to train at depth; without it the 17–49-conv stacks do not
// converge in the small-epoch regime this study runs in.
#pragma once

#include "nn/layer.hpp"

namespace tdfm::nn {

class BatchNorm2D final : public Layer {
 public:
  explicit BatchNorm2D(std::size_t channels, float momentum = 0.1F,
                       float eps = 1e-5F);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::string name() const override {
    return "BatchNorm2D(" + std::to_string(channels_) + ")";
  }

 private:
  std::size_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;  ///< per-channel scale, initialised to 1
  Parameter beta_;   ///< per-channel shift, initialised to 0
  Tensor running_mean_;
  Tensor running_var_;
  // Caches for backward (training mode only).
  Tensor normalized_;   ///< x_hat
  Tensor batch_inv_std_;  ///< [C]
  Shape input_shape_;
};

}  // namespace tdfm::nn
