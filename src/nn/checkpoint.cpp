#include "nn/checkpoint.hpp"

#include <cstdint>
#include <fstream>

namespace tdfm::nn {

namespace {
constexpr std::uint64_t kMagic = 0x7dF30001ULL;  // 'tdfm' + format version 1
}

void save_checkpoint(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open checkpoint file for writing: " + path);
  const std::vector<float> weights = net.save_weights();
  const std::uint64_t count = weights.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(weights.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  if (!out) throw Error("failed writing checkpoint: " + path);
}

void load_checkpoint(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint file: " + path);
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    throw Error("not a tdfm checkpoint (bad header): " + path);
  }
  std::vector<float> weights(count);
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw Error("checkpoint truncated: " + path);
  // load_weights validates the count against the network's structure.
  net.load_weights(weights);
}

}  // namespace tdfm::nn
