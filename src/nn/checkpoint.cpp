#include "nn/checkpoint.hpp"

#include <cstdint>
#include <fstream>

namespace tdfm::nn {

namespace {

constexpr std::uint64_t kMagicV1 = 0x7dF30001ULL;  // 'tdfm' + format version 1
constexpr std::uint64_t kMagicV2 = 0x7dF30002ULL;  // + arch metadata header
constexpr std::uint64_t kMagicV3 = 0x7dF30003ULL;  // + flags word (quantize)
constexpr std::uint32_t kMaxArchNameLen = 256;     // sanity bound on the header

constexpr std::uint32_t kFlagQuantize = 1U << 0;   // v3 flags bit 0
constexpr std::uint32_t kKnownFlags = kFlagQuantize;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
}

std::uint32_t read_version(std::ifstream& in, const std::string& path) {
  std::uint64_t magic = 0;
  read_pod(in, magic);
  if (!in ||
      (magic != kMagicV1 && magic != kMagicV2 && magic != kMagicV3)) {
    throw Error("not a tdfm checkpoint (bad header): " + path);
  }
  return static_cast<std::uint32_t>(magic - kMagicV1) + 1;
}

/// Reads the v2/v3 metadata block (caller has consumed the magic).
CheckpointMeta read_meta_block(std::ifstream& in, const std::string& path,
                               std::uint32_t version) {
  CheckpointMeta meta;
  meta.format_version = version;
  std::uint32_t arch_len = 0;
  read_pod(in, arch_len);
  if (!in || arch_len == 0 || arch_len > kMaxArchNameLen) {
    throw Error("checkpoint metadata corrupt (arch name length): " + path);
  }
  meta.arch.resize(arch_len);
  in.read(meta.arch.data(), arch_len);
  read_pod(in, meta.width);
  read_pod(in, meta.in_channels);
  read_pod(in, meta.image_size);
  read_pod(in, meta.num_classes);
  if (version >= 3) {
    std::uint32_t flags = 0;
    read_pod(in, flags);
    if (in && (flags & ~kKnownFlags) != 0) {
      throw Error("checkpoint metadata corrupt (unknown flags): " + path);
    }
    meta.quantize = (flags & kFlagQuantize) != 0;
  }
  if (!in) throw Error("checkpoint metadata truncated: " + path);
  if (meta.width == 0 || meta.in_channels == 0 || meta.image_size == 0 ||
      meta.num_classes < 2) {
    throw Error("checkpoint metadata corrupt (bad geometry): " + path);
  }
  return meta;
}

void write_weights(std::ofstream& out, Network& net, const std::string& path) {
  const std::vector<float> weights = net.save_weights();
  const std::uint64_t count = weights.size();
  write_pod(out, count);
  out.write(reinterpret_cast<const char*>(weights.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  if (!out) throw Error("failed writing checkpoint: " + path);
}

std::vector<float> read_weights(std::ifstream& in, const std::string& path) {
  std::uint64_t count = 0;
  read_pod(in, count);
  if (!in) throw Error("checkpoint truncated: " + path);
  std::vector<float> weights(count);
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw Error("checkpoint truncated: " + path);
  return weights;
}

}  // namespace

void save_checkpoint(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open checkpoint file for writing: " + path);
  write_pod(out, kMagicV1);
  write_weights(out, net, path);
}

void save_checkpoint(Network& net, const std::string& path,
                     const CheckpointMeta& meta) {
  TDFM_CHECK(!meta.arch.empty() && meta.arch.size() <= kMaxArchNameLen,
             "checkpoint metadata needs an architecture name");
  TDFM_CHECK(meta.width > 0 && meta.in_channels > 0 && meta.image_size > 0 &&
                 meta.num_classes >= 2,
             "checkpoint metadata geometry incomplete");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open checkpoint file for writing: " + path);
  // v2 stays the output format while no v3-only field is used, so
  // checkpoints written by older configurations remain byte-identical.
  const bool v3 = meta.quantize;
  write_pod(out, v3 ? kMagicV3 : kMagicV2);
  const auto arch_len = static_cast<std::uint32_t>(meta.arch.size());
  write_pod(out, arch_len);
  out.write(meta.arch.data(), arch_len);
  write_pod(out, meta.width);
  write_pod(out, meta.in_channels);
  write_pod(out, meta.image_size);
  write_pod(out, meta.num_classes);
  if (v3) {
    const std::uint32_t flags = meta.quantize ? kFlagQuantize : 0U;
    write_pod(out, flags);
  }
  write_weights(out, net, path);
}

std::uint32_t checkpoint_format_version(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint file: " + path);
  return read_version(in, path);
}

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint file: " + path);
  const std::uint32_t version = read_version(in, path);
  if (version == 1) {
    throw Error(
        "checkpoint has no architecture metadata (v1 count-only format; "
        "supply the architecture explicitly): " +
        path);
  }
  return read_meta_block(in, path, version);
}

void load_checkpoint(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint file: " + path);
  const std::uint32_t version = read_version(in, path);
  if (version >= 2) {
    (void)read_meta_block(in, path, version);  // validated, then skipped
  }
  // load_weights validates the count against the network's structure.
  net.load_weights(read_weights(in, path));
}

}  // namespace tdfm::nn
