#include "nn/conv2d.hpp"

#include <cstring>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/init.hpp"
#include "tensor/qgemm.hpp"

namespace tdfm::nn {

// Per-image im2col convolution.  Each image's patch matrix is small enough
// to stay resident in L1/L2 across the three GEMMs that touch it, which on
// this library's layer sizes (tens of channels, <=16x16 maps) beats batching
// all images into one wide, cache-evicting GEMM — measured ~25% faster end
// to end on a single core.
//
// Parallelism (core/thread_pool.hpp) splits the batch across threads.  The
// forward pass and the input gradient write disjoint per-image slices, so
// they parallelise directly.  Weight/bias gradients are a sum over images;
// to keep them bit-identical for every thread count, each image's
// contribution is written to its own scratch slice in parallel, then the
// slices are reduced into the parameter gradients serially in image order —
// the exact addition sequence of the single-threaded loop.

namespace {
// Images per parallel chunk: aim for a handful of chunks per thread so the
// scheduler can balance uneven progress without drowning in tiny tasks.
std::size_t batch_grain(std::size_t batch) {
  const std::size_t threads = core::ThreadPool::global_threads();
  return std::max<std::size_t>(1, batch / (threads * 4));
}

// Convolution-level FLOP accounting (the im2col GEMMs also count under
// gemm.flops; conv.flops isolates the convolution layers' share).
void count_conv(std::size_t images, std::size_t flops_per_image) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter conv_images = obs::Registry::global().counter("conv.images");
  static obs::Counter conv_flops = obs::Registry::global().counter("conv.flops");
  conv_images.add(images);
  conv_flops.add(images * flops_per_image);
}
}  // namespace

Conv2D::Conv2D(std::size_t in_c, std::size_t out_c, std::size_t in_h,
               std::size_t in_w, std::size_t kernel, std::size_t stride,
               std::size_t pad, Rng& rng)
    : geom_{in_c, in_h, in_w, kernel, stride, pad},
      out_c_(out_c),
      weight_(Shape{out_c, in_c * kernel * kernel}),
      bias_(Shape{out_c}) {
  TDFM_CHECK(in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
             "kernel larger than padded input");
  he_normal(weight_.value, geom_.patch_rows(), rng);
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  TDFM_CHECK(input.rank() == 4 && input.dim(1) == geom_.in_c &&
                 input.dim(2) == geom_.in_h && input.dim(3) == geom_.in_w,
             "Conv2D input shape mismatch");
  const std::size_t batch = input.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t pr = geom_.patch_rows();
  const std::size_t pc = geom_.patch_cols();
  Tensor out(Shape{batch, out_c_, oh, ow});
  const std::size_t in_stride = geom_.in_c * geom_.in_h * geom_.in_w;
  const std::size_t out_stride = out_c_ * oh * ow;
  count_conv(batch, 2 * out_c_ * pr * pc);
  if (quantized_) {
    // int8 path: unroll each image to one row per output pixel (tap order
    // matching the weight rows), quantize those rows, and block-dot weight
    // rows against patch rows — C[out_c, pc] lands directly in the output
    // plane, no transpose.  Scratch is chunk-local; the nested parallel_for
    // inside gemm_q8_nt runs inline on pool workers.
    core::parallel_for(0, batch, batch_grain(batch), [&](std::size_t b0, std::size_t b1) {
      std::vector<float> rows(pc * pr);
      kernels::Q8Matrix qrows;
      for (std::size_t b = b0; b < b1; ++b) {
        im2row(geom_, input.data() + b * in_stride, rows.data());
        kernels::quantize_rows_q8(rows.data(), pc, pr, qrows);
        gemm_q8_nt(qweight_, qrows, out.data() + b * out_stride);
        for (std::size_t oc = 0; oc < out_c_; ++oc) {
          float* plane = out.data() + b * out_stride + oc * oh * ow;
          const float bv = bias_.value[oc];
          for (std::size_t i = 0; i < oh * ow; ++i) plane[i] += bv;
        }
      }
    });
    return out;
  }
  cached_input_ = input;
  core::parallel_for(0, batch, batch_grain(batch), [&](std::size_t b0, std::size_t b1) {
    std::vector<float> columns(pr * pc);  // chunk-local patch matrix
    for (std::size_t b = b0; b < b1; ++b) {
      im2col(geom_, input.data() + b * in_stride, columns.data());
      // out[out_c, oh*ow] = W[out_c, pr] * columns[pr, pc]
      gemm_nn(out_c_, pc, pr, weight_.value.data(), columns.data(),
              out.data() + b * out_stride);
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        float* plane = out.data() + b * out_stride + oc * oh * ow;
        const float bv = bias_.value[oc];
        for (std::size_t i = 0; i < oh * ow; ++i) plane[i] += bv;
      }
    }
  });
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  TDFM_CHECK(!quantized_, "Conv2D: backward on a quantized (forward-only) layer");
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t pr = geom_.patch_rows();
  const std::size_t pc = geom_.patch_cols();
  TDFM_CHECK(grad_output.rank() == 4 && grad_output.dim(0) == batch &&
                 grad_output.dim(1) == out_c_ && grad_output.dim(2) == oh &&
                 grad_output.dim(3) == ow,
             "Conv2D grad_output shape mismatch");
  Tensor grad_input(cached_input_.shape());
  const std::size_t in_stride = geom_.in_c * geom_.in_h * geom_.in_w;
  const std::size_t out_stride = out_c_ * oh * ow;
  // Per-image dW/db contributions land in disjoint scratch slices; reduced
  // serially below in image order so every thread count adds in the same
  // sequence as the single-threaded loop.
  const std::size_t wsize = out_c_ * pr;
  const std::size_t slice = wsize + out_c_;
  grad_scratch_.resize(batch * slice);
  core::parallel_for(0, batch, batch_grain(batch), [&](std::size_t b0, std::size_t b1) {
    std::vector<float> columns(pr * pc);
    std::vector<float> grad_columns(pr * pc);
    for (std::size_t b = b0; b < b1; ++b) {
      const float* gout = grad_output.data() + b * out_stride;
      float* dw = grad_scratch_.data() + b * slice;
      float* db = dw + wsize;
      // Recompute the patch matrix (cheaper than caching one per batch image).
      im2col(geom_, cached_input_.data() + b * in_stride, columns.data());
      // dW_b[out_c, pr] = dY[out_c, pc] * columns[pr, pc]^T
      gemm_nt(out_c_, pr, pc, gout, columns.data(), dw, /*accumulate=*/false);
      // db_b[oc] = sum of dY plane
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* plane = gout + oc * oh * ow;
        float acc = 0.0F;
        for (std::size_t i = 0; i < oh * ow; ++i) acc += plane[i];
        db[oc] = acc;
      }
      // dColumns[pr, pc] = W[out_c, pr]^T * dY[out_c, pc]
      gemm_tn(pr, pc, out_c_, weight_.value.data(), gout, grad_columns.data());
      col2im(geom_, grad_columns.data(), grad_input.data() + b * in_stride);
    }
  });
  // Fixed-order reduction: identical bits regardless of thread count.
  for (std::size_t b = 0; b < batch; ++b) {
    const float* dw = grad_scratch_.data() + b * slice;
    for (std::size_t i = 0; i < wsize; ++i) weight_.grad[i] += dw[i];
    const float* db = dw + wsize;
    for (std::size_t oc = 0; oc < out_c_; ++oc) bias_.grad[oc] += db[oc];
  }
  return grad_input;
}

void Conv2D::quantize_for_inference() {
  if (quantized_) return;
  kernels::quantize_rows_q8(weight_.value.data(), out_c_, geom_.patch_rows(),
                            qweight_);
  weight_.value = Tensor();
  weight_.grad = Tensor();
  cached_input_ = Tensor();
  grad_scratch_.clear();
  grad_scratch_.shrink_to_fit();
  quantized_ = true;
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(geom_.in_c) + "->" + std::to_string(out_c_) +
         ", k" + std::to_string(geom_.kernel) + " s" + std::to_string(geom_.stride) +
         " p" + std::to_string(geom_.pad) + ")";
}

DepthwiseConv2D::DepthwiseConv2D(std::size_t channels, std::size_t in_h,
                                 std::size_t in_w, std::size_t kernel,
                                 std::size_t stride, std::size_t pad, Rng& rng)
    : geom_{1, in_h, in_w, kernel, stride, pad},
      channels_(channels),
      weight_(Shape{channels, kernel * kernel}),
      bias_(Shape{channels}) {
  he_normal(weight_.value, kernel * kernel, rng);
}

Tensor DepthwiseConv2D::forward(const Tensor& input, bool /*training*/) {
  TDFM_CHECK(input.rank() == 4 && input.dim(1) == channels_ &&
                 input.dim(2) == geom_.in_h && input.dim(3) == geom_.in_w,
             "DepthwiseConv2D input shape mismatch");
  // Quantized mode is fake-quant (weights already rounded through q8_0 at
  // quantize time), so the same fp32 loop serves both paths; only the
  // activation cache for backward is skipped.
  if (!quantized_) cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t pr = geom_.patch_rows();  // k*k (single channel)
  const std::size_t pc = geom_.patch_cols();
  Tensor out(Shape{batch, channels_, oh, ow});
  const std::size_t plane_in = geom_.in_h * geom_.in_w;
  count_conv(batch, 2 * channels_ * pr * pc);
  core::parallel_for(0, batch, batch_grain(batch), [&](std::size_t b0, std::size_t b1) {
    std::vector<float> columns(pr * pc);
    for (std::size_t b = b0; b < b1; ++b) {
      for (std::size_t c = 0; c < channels_; ++c) {
        const float* src = input.data() + (b * channels_ + c) * plane_in;
        im2col(geom_, src, columns.data());
        float* dst = out.data() + (b * channels_ + c) * pc;
        // 1 x pc row = filter[1, k*k] * columns[k*k, pc]
        gemm_nn(1, pc, pr, weight_.value.data() + c * pr, columns.data(), dst);
        const float bv = bias_.value[c];
        for (std::size_t i = 0; i < pc; ++i) dst[i] += bv;
      }
    }
  });
  return out;
}

Tensor DepthwiseConv2D::backward(const Tensor& grad_output) {
  TDFM_CHECK(!quantized_,
             "DepthwiseConv2D: backward on a quantized (forward-only) layer");
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t pr = geom_.patch_rows();
  const std::size_t pc = geom_.patch_cols();
  TDFM_CHECK(grad_output.rank() == 4 && grad_output.dim(0) == batch &&
                 grad_output.dim(1) == channels_ && grad_output.dim(2) == oh &&
                 grad_output.dim(3) == ow,
             "DepthwiseConv2D grad_output shape mismatch");
  Tensor grad_input(cached_input_.shape());
  const std::size_t plane_in = geom_.in_h * geom_.in_w;
  const std::size_t wsize = channels_ * pr;
  const std::size_t slice = wsize + channels_;
  grad_scratch_.resize(batch * slice);
  core::parallel_for(0, batch, batch_grain(batch), [&](std::size_t b0, std::size_t b1) {
    std::vector<float> columns(pr * pc);
    std::vector<float> grad_columns(pr * pc);
    for (std::size_t b = b0; b < b1; ++b) {
      float* dw = grad_scratch_.data() + b * slice;
      float* db = dw + wsize;
      for (std::size_t c = 0; c < channels_; ++c) {
        const float* src = cached_input_.data() + (b * channels_ + c) * plane_in;
        const float* gout = grad_output.data() + (b * channels_ + c) * pc;
        im2col(geom_, src, columns.data());
        // dW_b[c, k*k] = dY[1, pc] * columns[k*k, pc]^T
        gemm_nt(1, pr, pc, gout, columns.data(), dw + c * pr,
                /*accumulate=*/false);
        float acc = 0.0F;
        for (std::size_t i = 0; i < pc; ++i) acc += gout[i];
        db[c] = acc;
        // dColumns = W[c]^T * dY
        gemm_tn(pr, pc, 1, weight_.value.data() + c * pr, gout, grad_columns.data());
        col2im(geom_, grad_columns.data(),
               grad_input.data() + (b * channels_ + c) * plane_in);
      }
    }
  });
  // Image-order reduction, matching the serial loop's addition sequence
  // (b outer, c inner) per weight element.
  for (std::size_t b = 0; b < batch; ++b) {
    const float* dw = grad_scratch_.data() + b * slice;
    for (std::size_t i = 0; i < wsize; ++i) weight_.grad[i] += dw[i];
    const float* db = dw + wsize;
    for (std::size_t c = 0; c < channels_; ++c) bias_.grad[c] += db[c];
  }
  return grad_input;
}

void DepthwiseConv2D::quantize_for_inference() {
  if (quantized_) return;
  // Round-trip the filters through q8_0 so accuracy reflects int8 weights;
  // keep them fp32 (each k x k filter is smaller than one q8 block, so real
  // int8 storage would not shrink anything).
  const std::size_t pr = geom_.patch_rows();
  const auto q = kernels::quantize_rows_q8(weight_.value.data(), channels_, pr);
  kernels::dequantize_rows_q8(q, weight_.value.data());
  weight_.grad = Tensor();
  cached_input_ = Tensor();
  grad_scratch_.clear();
  grad_scratch_.shrink_to_fit();
  quantized_ = true;
}

std::string DepthwiseConv2D::name() const {
  return "DepthwiseConv2D(" + std::to_string(channels_) + "ch, k" +
         std::to_string(geom_.kernel) + " s" + std::to_string(geom_.stride) + ")";
}

}  // namespace tdfm::nn
