#include "nn/batchnorm.hpp"

#include <cmath>

namespace tdfm::nn {

BatchNorm2D::BatchNorm2D(std::size_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Shape{channels}),
      beta_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}) {
  gamma_.value.fill(1.0F);
  running_var_.fill(1.0F);
}

Tensor BatchNorm2D::forward(const Tensor& input, bool training) {
  TDFM_CHECK(input.rank() == 4 && input.dim(1) == channels_,
             "BatchNorm2D input shape mismatch");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  const std::size_t plane = input.dim(2) * input.dim(3);
  const std::size_t per_ch = batch * plane;
  Tensor out(input.shape());

  if (!training) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float inv_std = 1.0F / std::sqrt(running_var_[c] + eps_);
      const float g = gamma_.value[c], b = beta_.value[c], m = running_mean_[c];
      for (std::size_t n = 0; n < batch; ++n) {
        const float* src = input.data() + (n * channels_ + c) * plane;
        float* dst = out.data() + (n * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          dst[i] = g * (src[i] - m) * inv_std + b;
        }
      }
    }
    return out;
  }

  normalized_ = Tensor(input.shape());
  batch_inv_std_ = Tensor(Shape{channels_});
  for (std::size_t c = 0; c < channels_; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* src = input.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum += src[i];
        sq += static_cast<double>(src[i]) * src[i];
      }
    }
    const float mean = static_cast<float>(sum / per_ch);
    const float var =
        static_cast<float>(sq / per_ch - static_cast<double>(mean) * mean);
    const float inv_std = 1.0F / std::sqrt(std::max(var, 0.0F) + eps_);
    batch_inv_std_[c] = inv_std;
    running_mean_[c] = (1.0F - momentum_) * running_mean_[c] + momentum_ * mean;
    running_var_[c] = (1.0F - momentum_) * running_var_[c] + momentum_ * var;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::size_t n = 0; n < batch; ++n) {
      const float* src = input.data() + (n * channels_ + c) * plane;
      float* xh = normalized_.data() + (n * channels_ + c) * plane;
      float* dst = out.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        xh[i] = (src[i] - mean) * inv_std;
        dst[i] = g * xh[i] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2D::backward(const Tensor& grad_output) {
  // Standard batch-norm adjoint:
  //   dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
  const std::size_t batch = input_shape_[0];
  const std::size_t plane = input_shape_[2] * input_shape_[3];
  const auto m = static_cast<float>(batch * plane);
  Tensor grad(input_shape_);
  for (std::size_t c = 0; c < channels_; ++c) {
    float sum_dy = 0.0F;
    float sum_dy_xh = 0.0F;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * plane;
      const float* xh = normalized_.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_dy += dy[i];
        sum_dy_xh += dy[i] * xh[i];
      }
    }
    gamma_.grad[c] += sum_dy_xh;
    beta_.grad[c] += sum_dy;
    const float scale = gamma_.value[c] * batch_inv_std_[c] / m;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * plane;
      const float* xh = normalized_.data() + (n * channels_ + c) * plane;
      float* dx = grad.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        dx[i] = scale * (m * dy[i] - sum_dy - xh[i] * sum_dy_xh);
      }
    }
  }
  return grad;
}

}  // namespace tdfm::nn
