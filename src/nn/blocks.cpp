#include "nn/blocks.hpp"

#include "tensor/tensor_ops.hpp"

namespace tdfm::nn {

namespace {

/// 1x1 projection (conv + BN) used when the residual skip must change
/// channel count or spatial resolution.
LayerPtr make_projection(std::size_t in_c, std::size_t out_c, std::size_t in_h,
                         std::size_t in_w, std::size_t stride, Rng& rng) {
  auto proj = std::make_unique<Sequential>();
  proj->emplace<Conv2D>(in_c, out_c, in_h, in_w, /*kernel=*/1, stride, /*pad=*/0, rng);
  proj->emplace<BatchNorm2D>(out_c);
  return proj;
}

}  // namespace

ResidualBasicBlock::ResidualBasicBlock(std::size_t in_c, std::size_t out_c,
                                       std::size_t in_h, std::size_t in_w,
                                       std::size_t stride, Rng& rng) {
  main_.emplace<Conv2D>(in_c, out_c, in_h, in_w, 3, stride, 1, rng);
  const std::size_t oh = (in_h + 2 - 3) / stride + 1;
  const std::size_t ow = (in_w + 2 - 3) / stride + 1;
  main_.emplace<BatchNorm2D>(out_c);
  main_.emplace<ReLU>();
  main_.emplace<Conv2D>(out_c, out_c, oh, ow, 3, 1, 1, rng);
  main_.emplace<BatchNorm2D>(out_c);
  if (in_c != out_c || stride != 1) {
    projection_ = make_projection(in_c, out_c, in_h, in_w, stride, rng);
  }
}

Tensor ResidualBasicBlock::forward(const Tensor& input, bool training) {
  Tensor main_out = main_.forward(input, training);
  const Tensor skip =
      projection_ ? projection_->forward(input, training) : input;
  main_out += skip;
  return out_relu_.forward(main_out, training);
}

Tensor ResidualBasicBlock::backward(const Tensor& grad_output) {
  const Tensor g = out_relu_.backward(grad_output);
  Tensor grad_input = main_.backward(g);
  if (projection_) {
    grad_input += projection_->backward(g);
  } else {
    grad_input += g;
  }
  return grad_input;
}

std::vector<Parameter*> ResidualBasicBlock::parameters() {
  auto ps = main_.parameters();
  if (projection_) {
    for (auto* p : projection_->parameters()) ps.push_back(p);
  }
  return ps;
}

void ResidualBasicBlock::quantize_for_inference() {
  main_.quantize_for_inference();
  if (projection_) projection_->quantize_for_inference();
}

std::vector<kernels::Q8Matrix*> ResidualBasicBlock::quantized_weights() {
  auto qs = main_.quantized_weights();
  if (projection_) {
    for (auto* q : projection_->quantized_weights()) qs.push_back(q);
  }
  return qs;
}

std::string ResidualBasicBlock::name() const { return "ResidualBasicBlock"; }

std::size_t ResidualBasicBlock::weight_layer_count() const {
  // The projection is bookkeeping, not a representational conv layer, and is
  // not counted in Table III-style depth tallies.
  return main_.weight_layer_count();
}

BottleneckBlock::BottleneckBlock(std::size_t in_c, std::size_t mid_c,
                                 std::size_t out_c, std::size_t in_h,
                                 std::size_t in_w, std::size_t stride, Rng& rng) {
  main_.emplace<Conv2D>(in_c, mid_c, in_h, in_w, 1, 1, 0, rng);
  main_.emplace<BatchNorm2D>(mid_c);
  main_.emplace<ReLU>();
  main_.emplace<Conv2D>(mid_c, mid_c, in_h, in_w, 3, stride, 1, rng);
  const std::size_t oh = (in_h + 2 - 3) / stride + 1;
  const std::size_t ow = (in_w + 2 - 3) / stride + 1;
  main_.emplace<BatchNorm2D>(mid_c);
  main_.emplace<ReLU>();
  main_.emplace<Conv2D>(mid_c, out_c, oh, ow, 1, 1, 0, rng);
  main_.emplace<BatchNorm2D>(out_c);
  if (in_c != out_c || stride != 1) {
    projection_ = make_projection(in_c, out_c, in_h, in_w, stride, rng);
  }
}

Tensor BottleneckBlock::forward(const Tensor& input, bool training) {
  Tensor main_out = main_.forward(input, training);
  const Tensor skip =
      projection_ ? projection_->forward(input, training) : input;
  main_out += skip;
  return out_relu_.forward(main_out, training);
}

Tensor BottleneckBlock::backward(const Tensor& grad_output) {
  const Tensor g = out_relu_.backward(grad_output);
  Tensor grad_input = main_.backward(g);
  if (projection_) {
    grad_input += projection_->backward(g);
  } else {
    grad_input += g;
  }
  return grad_input;
}

std::vector<Parameter*> BottleneckBlock::parameters() {
  auto ps = main_.parameters();
  if (projection_) {
    for (auto* p : projection_->parameters()) ps.push_back(p);
  }
  return ps;
}

void BottleneckBlock::quantize_for_inference() {
  main_.quantize_for_inference();
  if (projection_) projection_->quantize_for_inference();
}

std::vector<kernels::Q8Matrix*> BottleneckBlock::quantized_weights() {
  auto qs = main_.quantized_weights();
  if (projection_) {
    for (auto* q : projection_->quantized_weights()) qs.push_back(q);
  }
  return qs;
}

std::string BottleneckBlock::name() const { return "BottleneckBlock"; }

std::size_t BottleneckBlock::weight_layer_count() const {
  return main_.weight_layer_count();
}

SeparableConvBlock::SeparableConvBlock(std::size_t in_c, std::size_t out_c,
                                       std::size_t in_h, std::size_t in_w,
                                       std::size_t stride, Rng& rng) {
  body_.emplace<DepthwiseConv2D>(in_c, in_h, in_w, 3, stride, 1, rng);
  const std::size_t oh = (in_h + 2 - 3) / stride + 1;
  const std::size_t ow = (in_w + 2 - 3) / stride + 1;
  body_.emplace<BatchNorm2D>(in_c);
  body_.emplace<ReLU>();
  body_.emplace<Conv2D>(in_c, out_c, oh, ow, 1, 1, 0, rng);
  body_.emplace<BatchNorm2D>(out_c);
  body_.emplace<ReLU>();
}

}  // namespace tdfm::nn
