#include "nn/pooling.hpp"

namespace tdfm::nn {

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
  TDFM_CHECK(input.rank() == 4, "MaxPool2D expects [B, C, H, W]");
  const std::size_t batch = input.dim(0), ch = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  TDFM_CHECK(h % k_ == 0 && w % k_ == 0, "pooling needs divisible spatial dims");
  const std::size_t oh = h / k_, ow = w / k_;
  input_shape_ = input.shape();
  Tensor out(Shape{batch, ch, oh, ow});
  argmax_.assign(out.numel(), 0);
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = input.data() + (b * ch + c) * h * w;
      const std::size_t plane_base = (b * ch + c) * h * w;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          float best = plane[(y * k_) * w + x * k_];
          std::size_t best_idx = (y * k_) * w + x * k_;
          for (std::size_t dy = 0; dy < k_; ++dy) {
            for (std::size_t dx = 0; dx < k_; ++dx) {
              const std::size_t idx = (y * k_ + dy) * w + (x * k_ + dx);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oi] = best;
          argmax_[oi] = static_cast<std::uint32_t>(plane_base + best_idx);
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  TDFM_CHECK(grad_output.numel() == argmax_.size(), "MaxPool2D backward mismatch");
  Tensor grad(input_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad[argmax_[i]] += grad_output[i];
  }
  return grad;
}

Tensor AvgPool2D::forward(const Tensor& input, bool /*training*/) {
  TDFM_CHECK(input.rank() == 4, "AvgPool2D expects [B, C, H, W]");
  const std::size_t batch = input.dim(0), ch = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  TDFM_CHECK(h % k_ == 0 && w % k_ == 0, "pooling needs divisible spatial dims");
  const std::size_t oh = h / k_, ow = w / k_;
  input_shape_ = input.shape();
  Tensor out(Shape{batch, ch, oh, ow});
  const float inv = 1.0F / static_cast<float>(k_ * k_);
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = input.data() + (b * ch + c) * h * w;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          float acc = 0.0F;
          for (std::size_t dy = 0; dy < k_; ++dy) {
            for (std::size_t dx = 0; dx < k_; ++dx) {
              acc += plane[(y * k_ + dy) * w + (x * k_ + dx)];
            }
          }
          out[oi] = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  Tensor grad(input_shape_);
  const std::size_t batch = input_shape_[0], ch = input_shape_[1];
  const std::size_t h = input_shape_[2], w = input_shape_[3];
  const std::size_t oh = h / k_, ow = w / k_;
  const float inv = 1.0F / static_cast<float>(k_ * k_);
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      float* plane = grad.data() + (b * ch + c) * h * w;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          const float g = grad_output[oi] * inv;
          for (std::size_t dy = 0; dy < k_; ++dy) {
            for (std::size_t dx = 0; dx < k_; ++dx) {
              plane[(y * k_ + dy) * w + (x * k_ + dx)] += g;
            }
          }
        }
      }
    }
  }
  return grad;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  TDFM_CHECK(input.rank() == 4, "GlobalAvgPool expects [B, C, H, W]");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), ch = input.dim(1);
  const std::size_t plane = input.dim(2) * input.dim(3);
  Tensor out(Shape{batch, ch});
  const float inv = 1.0F / static_cast<float>(plane);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* p = input.data() + (b * ch + c) * plane;
      float acc = 0.0F;
      for (std::size_t i = 0; i < plane; ++i) acc += p[i];
      out.at(b, c) = acc * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad(input_shape_);
  const std::size_t batch = input_shape_[0], ch = input_shape_[1];
  const std::size_t plane = input_shape_[2] * input_shape_[3];
  const float inv = 1.0F / static_cast<float>(plane);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      float* p = grad.data() + (b * ch + c) * plane;
      const float g = grad_output.at(b, c) * inv;
      for (std::size_t i = 0; i < plane; ++i) p[i] = g;
    }
  }
  return grad;
}

}  // namespace tdfm::nn
