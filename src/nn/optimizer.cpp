#include "nn/optimizer.hpp"

#include <cmath>

namespace tdfm::nn {

SGD::SGD(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  TDFM_CHECK(lr > 0.0F, "learning rate must be positive");
  TDFM_CHECK(momentum >= 0.0F && momentum < 1.0F, "momentum in [0, 1)");
}

void SGD::step(const std::vector<Parameter*>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    velocity_.reserve(params.size());
    for (const auto* p : params) velocity_.emplace_back(p->value.shape());
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter& p = *params[i];
    Tensor& vel = velocity_[i];
    float* __restrict__ w = p.value.data();
    const float* __restrict__ g = p.grad.data();
    float* __restrict__ v = vel.data();
    for (std::size_t j = 0; j < p.numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps, float weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  TDFM_CHECK(lr > 0.0F, "learning rate must be positive");
}

void Adam::step(const std::vector<Parameter*>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const auto* p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter& p = *params[i];
    float* __restrict__ w = p.value.data();
    const float* __restrict__ g = p.grad.data();
    float* __restrict__ m = m_[i].data();
    float* __restrict__ v = v_[i].data();
    for (std::size_t j = 0; j < p.numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace tdfm::nn
