#include "nn/dropout.hpp"

namespace tdfm::nn {

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0F) return input;
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float keep_scale = 1.0F / (1.0F - p_);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float m = rng_.bernoulli(p_) ? 0.0F : keep_scale;
    mask_[i] = m;
    out[i] = input[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0F) return grad_output;
  TDFM_CHECK(grad_output.numel() == mask_.numel(), "Dropout backward mismatch");
  Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad[i] = grad_output[i] * mask_[i];
  }
  return grad;
}

}  // namespace tdfm::nn
