// Spatial pooling layers.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"

namespace tdfm::nn {

/// Non-overlapping k x k max pooling ([B, C, H, W] -> [B, C, H/k, W/k]).
/// H and W must be divisible by k (the model zoo guarantees this).
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::size_t k) : k_(k) { TDFM_CHECK(k >= 2, "pool size >= 2"); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override {
    return "MaxPool2D(k" + std::to_string(k_) + ")";
  }

 private:
  std::size_t k_;
  Shape input_shape_;
  std::vector<std::uint32_t> argmax_;  ///< flat input index of each output max
};

/// Non-overlapping k x k average pooling.
class AvgPool2D final : public Layer {
 public:
  explicit AvgPool2D(std::size_t k) : k_(k) { TDFM_CHECK(k >= 2, "pool size >= 2"); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override {
    return "AvgPool2D(k" + std::to_string(k_) + ")";
  }

 private:
  std::size_t k_;
  Shape input_shape_;
};

/// Global average pooling: [B, C, H, W] -> [B, C].  Used by the ResNet and
/// MobileNet heads (Table III: "Avg Pooling" + 1 FC).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape input_shape_;
};

}  // namespace tdfm::nn
