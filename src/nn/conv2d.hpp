// 2-d convolution layers (standard and depthwise).
#pragma once

#include "core/rng.hpp"
#include "kernels/quant.hpp"
#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace tdfm::nn {

/// Standard convolution: input [B, C, H, W] -> output [B, out_c, H', W'].
/// Implemented as im2col + GEMM per image; weights stored [out_c, C*k*k].
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_c, std::size_t out_c, std::size_t in_h, std::size_t in_w,
         std::size_t kernel, std::size_t stride, std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  /// Quantizes the [out_c, C*k*k] weight rows to q8_0; forward then runs
  /// im2row + quantize + int8 matmul per image.  Forward-only afterwards.
  void quantize_for_inference() override;
  [[nodiscard]] std::vector<kernels::Q8Matrix*> quantized_weights() override {
    return quantized_ ? std::vector<kernels::Q8Matrix*>{&qweight_}
                      : std::vector<kernels::Q8Matrix*>{};
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t weight_layer_count() const override { return 1; }

  [[nodiscard]] const ConvGeometry& geometry() const { return geom_; }
  [[nodiscard]] std::size_t out_channels() const { return out_c_; }

 private:
  ConvGeometry geom_;
  std::size_t out_c_;
  Parameter weight_;  ///< [out_c, C*k*k]
  Parameter bias_;    ///< [out_c]
  Tensor cached_input_;
  /// Per-image dW/db contributions [B, out_c*pr + out_c], filled in parallel
  /// and reduced in image order so gradients are thread-count-invariant.
  std::vector<float> grad_scratch_;
  bool quantized_ = false;
  kernels::Q8Matrix qweight_;  ///< [out_c, C*k*k] q8_0 rows
};

/// Depthwise convolution (MobileNet): each input channel is convolved with
/// its own k x k filter; channel count is preserved.
class DepthwiseConv2D final : public Layer {
 public:
  DepthwiseConv2D(std::size_t channels, std::size_t in_h, std::size_t in_w,
                  std::size_t kernel, std::size_t stride, std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  /// Fake-quantizes: weights are rounded through q8_0 and kept fp32 (a k x k
  /// filter spans under one 32-element block, so int8 storage saves nothing;
  /// the rounding still makes accuracy reflect int8 deployment).  The layer
  /// becomes forward-only like the rest of a quantized network.
  void quantize_for_inference() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t weight_layer_count() const override { return 1; }

 private:
  ConvGeometry geom_;  ///< geometry with in_c = 1, applied per channel
  std::size_t channels_;
  Parameter weight_;  ///< [channels, k*k]
  Parameter bias_;    ///< [channels]
  Tensor cached_input_;
  /// Per-image dW/db contributions [B, channels*k*k + channels]; see Conv2D.
  std::vector<float> grad_scratch_;
  bool quantized_ = false;
};

}  // namespace tdfm::nn
