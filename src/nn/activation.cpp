#include "nn/activation.hpp"

#include <cmath>

namespace tdfm::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  Tensor out(input.shape());
  mask_ = Tensor(input.shape());
  const float* __restrict__ in = input.data();
  float* __restrict__ o = out.data();
  float* __restrict__ m = mask_.data();
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool pos = in[i] > 0.0F;
    o[i] = pos ? in[i] : 0.0F;
    m[i] = pos ? 1.0F : 0.0F;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  TDFM_CHECK(grad_output.numel() == mask_.numel(), "ReLU backward before forward");
  Tensor grad(grad_output.shape());
  const float* __restrict__ g = grad_output.data();
  const float* __restrict__ m = mask_.data();
  float* __restrict__ o = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) o[i] = g[i] * m[i];
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  output_ = Tensor(input.shape());
  const float* __restrict__ in = input.data();
  float* __restrict__ o = output_.data();
  for (std::size_t i = 0; i < input.numel(); ++i) o[i] = std::tanh(in[i]);
  return output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad(grad_output.shape());
  const float* __restrict__ g = grad_output.data();
  const float* __restrict__ y = output_.data();
  float* __restrict__ o = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) o[i] = g[i] * (1.0F - y[i] * y[i]);
  return grad;
}

}  // namespace tdfm::nn
