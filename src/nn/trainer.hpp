// Mini-batch training loop.
//
// The trainer is deliberately technique-agnostic: it shuffles, gathers
// batches, runs forward/backward and steps the optimiser, while the *loss
// is a callback* receiving the batch's logits and original sample indices.
// Each TDFM technique supplies a closure — over smoothed targets, teacher
// probabilities, per-epoch corrected labels, etc. — so one loop serves
// every technique identically (important for a fair overhead comparison,
// §IV-E).
#pragma once

#include <functional>
#include <span>

#include "core/rng.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace tdfm::nn {

struct TrainOptions {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  float lr_decay = 0.95F;  ///< multiplicative per-epoch decay (SGD and Adam)
  bool shuffle = true;
  bool use_adam = false;
  /// Worker threads for the training hot paths (GEMM row blocks, per-image
  /// convolution, ensemble members).  0 = keep the current global pool;
  /// 1 = fully serial; results are bit-identical for every value
  /// (core/thread_pool.hpp).  Set from the CLI `--threads` flag.
  std::size_t threads = 0;
  /// Allow the model zoo to override optimiser/lr per architecture
  /// (models::tuned_options).  Set false to force the values above.
  bool auto_tune = true;
};

/// Loss callback: receives logits for a batch plus the dataset indices the
/// batch was gathered from, writes d(loss)/d(logits), returns the loss.
using BatchLossFn = std::function<double(
    const Tensor& logits, std::span<const std::size_t> sample_indices,
    Tensor& grad_logits)>;

/// Per-epoch hook (epoch index, network) — used by meta label correction to
/// refresh its corrected labels between epochs.
using EpochHook = std::function<void(std::size_t epoch, Network& net)>;

class Trainer {
 public:
  explicit Trainer(TrainOptions opts) : opts_(opts) {}

  /// Trains `net` on `images` [N, C, H, W]; returns the mean loss of the
  /// final epoch.  `rng` drives shuffling (fork it per trial for
  /// reproducibility).  Emits one obs::EpochRecord per epoch (loss, lr,
  /// wall-time) whenever telemetry is enabled (--metrics flag or
  /// obs::set_epoch_observer), and wraps each epoch in a trace span.
  double fit(Network& net, const Tensor& images, BatchLossFn loss_fn, Rng& rng,
             const EpochHook& on_epoch_end = {});

  [[nodiscard]] const TrainOptions& options() const { return opts_; }

  /// Copies the rows of `images` selected by `idx` into one batch tensor.
  [[nodiscard]] static Tensor gather(const Tensor& images,
                                     std::span<const std::size_t> idx);

 private:
  TrainOptions opts_;
};

/// Runs inference in batches and returns the argmax class per sample.
[[nodiscard]] std::vector<int> predict_classes(Network& net, const Tensor& images,
                                               std::size_t batch_size = 64);

/// Single forward pass over one already-formed batch (leading dim = batch);
/// returns the argmax class per row.  Unlike predict_classes there is no
/// internal re-batching: the caller owns batch formation.  This is the
/// serving hot path — tdfm::serve coalesces requests into micro-batches
/// precisely so this one call amortises the im2col+GEMM cost.
[[nodiscard]] std::vector<int> predict_batch(Network& net, const Tensor& batch);

/// Runs inference in batches and returns softmax probabilities [N, K] at the
/// given temperature (used to capture teacher outputs for distillation).
[[nodiscard]] Tensor predict_probabilities(Network& net, const Tensor& images,
                                           float temperature = 1.0F,
                                           std::size_t batch_size = 64);

}  // namespace tdfm::nn
