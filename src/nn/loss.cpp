#include "nn/loss.hpp"

#include <cmath>

#include "tensor/tensor_ops.hpp"

namespace tdfm::nn {

namespace {

constexpr float kProbFloor = 1e-12F;  // keeps log() finite

void check_loss_shapes(const Tensor& logits, const Tensor& targets) {
  TDFM_CHECK(logits.rank() == 2 && targets.rank() == 2, "losses expect [B, K]");
  TDFM_CHECK(logits.dim(0) == targets.dim(0) && logits.dim(1) == targets.dim(1),
             "logits/targets shape mismatch");
}

}  // namespace

Tensor one_hot(std::span<const int> labels, std::size_t num_classes) {
  Tensor t(Shape{labels.size(), num_classes});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    TDFM_CHECK(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < num_classes,
               "label out of range in one_hot");
    t.at(i, static_cast<std::size_t>(labels[i])) = 1.0F;
  }
  return t;
}

double CrossEntropyLoss::compute(const Tensor& logits, const Tensor& targets,
                                 Tensor& grad_logits) {
  check_loss_shapes(logits, targets);
  const std::size_t batch = logits.dim(0);
  const std::size_t k = logits.dim(1);
  const Tensor probs = softmax_rows(logits);
  grad_logits = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_b = 1.0F / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < k; ++j) {
      const float t = targets.at(b, j);
      const float p = std::max(probs.at(b, j), kProbFloor);
      if (t != 0.0F) loss -= static_cast<double>(t) * std::log(p);
      grad_logits.at(b, j) = (probs.at(b, j) - t) * inv_b;
    }
  }
  return loss / static_cast<double>(batch);
}

SmoothedCrossEntropyLoss::SmoothedCrossEntropyLoss(float alpha) : alpha_(alpha) {
  TDFM_CHECK(alpha >= 0.0F && alpha < 1.0F, "smoothing alpha must be in [0, 1)");
}

double SmoothedCrossEntropyLoss::compute(const Tensor& logits, const Tensor& targets,
                                         Tensor& grad_logits) {
  check_loss_shapes(logits, targets);
  const std::size_t k = logits.dim(1);
  // q = (1 - alpha) * t + alpha / K, then plain CE.
  Tensor smoothed = scale(targets, 1.0F - alpha_);
  const float uniform = alpha_ / static_cast<float>(k);
  for (auto& x : smoothed.flat()) x += uniform;
  CrossEntropyLoss ce;
  return ce.compute(logits, smoothed, grad_logits);
}

LabelRelaxationLoss::LabelRelaxationLoss(float alpha) : alpha_(alpha) {
  TDFM_CHECK(alpha > 0.0F && alpha < 1.0F, "relaxation alpha must be in (0, 1)");
}

double LabelRelaxationLoss::compute(const Tensor& logits, const Tensor& targets,
                                    Tensor& grad_logits) {
  check_loss_shapes(logits, targets);
  const std::size_t batch = logits.dim(0);
  const std::size_t k = logits.dim(1);
  const Tensor probs = softmax_rows(logits);
  grad_logits = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_b = 1.0F / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t y = argmax(targets.row(b));
    const float py = probs.at(b, y);
    if (py >= 1.0F - alpha_) {
      continue;  // prediction inside the credal set: zero loss, zero gradient
    }
    // q_hat: 1 - alpha on the target, alpha distributed over the non-target
    // classes proportionally to the model's own predicted shape.
    const float rest = std::max(1.0F - py, kProbFloor);
    for (std::size_t j = 0; j < k; ++j) {
      const float p = std::max(probs.at(b, j), kProbFloor);
      const float q = (j == y) ? (1.0F - alpha_) : alpha_ * probs.at(b, j) / rest;
      if (q > 0.0F) {
        loss += static_cast<double>(q) * std::log(std::max(q, kProbFloor) / p);
      }
      // Practical gradient (q_hat treated as a constant target): p - q.
      grad_logits.at(b, j) = (probs.at(b, j) - q) * inv_b;
    }
  }
  return loss / static_cast<double>(batch);
}

double NCELoss::compute(const Tensor& logits, const Tensor& targets,
                        Tensor& grad_logits) {
  check_loss_shapes(logits, targets);
  const std::size_t batch = logits.dim(0);
  const std::size_t k = logits.dim(1);
  const Tensor probs = softmax_rows(logits);
  grad_logits = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_b = 1.0F / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t y = argmax(targets.row(b));
    // numer = -log p_y ; denom = sum_k -log p_k ; NCE = numer / denom.
    float denom = 0.0F;
    for (std::size_t j = 0; j < k; ++j) {
      denom -= std::log(std::max(probs.at(b, j), kProbFloor));
    }
    denom = std::max(denom, kProbFloor);
    const float numer = -std::log(std::max(probs.at(b, y), kProbFloor));
    loss += numer / denom;
    // d numer / d z_j = p_j - 1[j = y]
    // d denom / d z_j = K * p_j - 1
    for (std::size_t j = 0; j < k; ++j) {
      const float p = probs.at(b, j);
      const float dnum = p - (j == y ? 1.0F : 0.0F);
      const float dden = static_cast<float>(k) * p - 1.0F;
      grad_logits.at(b, j) = (dnum * denom - numer * dden) / (denom * denom) * inv_b;
    }
  }
  return loss / static_cast<double>(batch);
}

double RCELoss::compute(const Tensor& logits, const Tensor& targets,
                        Tensor& grad_logits) {
  check_loss_shapes(logits, targets);
  const std::size_t batch = logits.dim(0);
  const std::size_t k = logits.dim(1);
  const Tensor probs = softmax_rows(logits);
  grad_logits = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_b = 1.0F / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    // log t with clamped zeros; targets may be soft (corrected labels).
    float inner = 0.0F;  // sum_k p_k * log t_k
    for (std::size_t j = 0; j < k; ++j) {
      const float t = targets.at(b, j);
      const float logt = (t <= 0.0F) ? log_zero_ : std::log(t);
      inner += probs.at(b, j) * logt;
    }
    loss -= inner;
    // d/dz_j (-sum_k p_k log t_k) = -p_j (log t_j - inner)
    for (std::size_t j = 0; j < k; ++j) {
      const float t = targets.at(b, j);
      const float logt = (t <= 0.0F) ? log_zero_ : std::log(t);
      grad_logits.at(b, j) = -probs.at(b, j) * (logt - inner) * inv_b;
    }
  }
  return loss / static_cast<double>(batch);
}

APLLoss::APLLoss(float alpha, float beta) : alpha_(alpha), beta_(beta) {
  TDFM_CHECK(alpha >= 0.0F && beta >= 0.0F, "APL weights must be non-negative");
  TDFM_CHECK(alpha + beta > 0.0F, "APL needs at least one active term");
}

double APLLoss::compute(const Tensor& logits, const Tensor& targets,
                        Tensor& grad_logits) {
  Tensor grad_nce;
  Tensor grad_rce;
  const double l_nce = nce_.compute(logits, targets, grad_nce);
  const double l_rce = rce_.compute(logits, targets, grad_rce);
  grad_logits = Tensor(logits.shape());
  grad_logits.add_scaled(grad_nce, alpha_);
  grad_logits.add_scaled(grad_rce, beta_);
  return alpha_ * l_nce + beta_ * l_rce;
}

DistillationLoss::DistillationLoss(float alpha, float temperature)
    : alpha_(alpha), temperature_(temperature) {
  TDFM_CHECK(alpha >= 0.0F && alpha <= 1.0F, "distillation alpha in [0, 1]");
  TDFM_CHECK(temperature >= 1.0F, "distillation temperature >= 1");
}

double DistillationLoss::compute(const Tensor& logits, const Tensor& hard_targets,
                                 const Tensor& teacher_probs,
                                 Tensor& grad_logits) const {
  check_loss_shapes(logits, hard_targets);
  check_loss_shapes(logits, teacher_probs);
  const std::size_t batch = logits.dim(0);
  const std::size_t k = logits.dim(1);

  CrossEntropyLoss ce;
  Tensor grad_hard;
  const double l_hard = ce.compute(logits, hard_targets, grad_hard);

  // Soft term: CE between student's temperature-T softmax and teacher probs.
  const Tensor probs_t = softmax_rows(logits, temperature_);
  Tensor grad_soft(logits.shape());
  double l_soft = 0.0;
  const float inv_b = 1.0F / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < k; ++j) {
      const float t = teacher_probs.at(b, j);
      const float p = std::max(probs_t.at(b, j), kProbFloor);
      if (t > 0.0F) l_soft -= static_cast<double>(t) * std::log(p);
      // d/dz of CE at temperature T carries a 1/T factor; the T^2 loss
      // weighting leaves an overall factor of T on the gradient.
      grad_soft.at(b, j) = (probs_t.at(b, j) - t) / temperature_ * inv_b;
    }
  }
  l_soft /= static_cast<double>(batch);

  grad_logits = Tensor(logits.shape());
  grad_logits.add_scaled(grad_hard, 1.0F - alpha_);
  grad_logits.add_scaled(grad_soft, alpha_ * temperature_ * temperature_);
  return (1.0 - alpha_) * l_hard +
         static_cast<double>(alpha_ * temperature_ * temperature_) * l_soft;
}

}  // namespace tdfm::nn
