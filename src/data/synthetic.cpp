#include "data/synthetic.hpp"

#include <cmath>

#include "data/painter.hpp"

namespace tdfm::data {

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar10Sim: return "cifar10-sim";
    case DatasetKind::kGtsrbSim: return "gtsrb-sim";
    case DatasetKind::kPneumoniaSim: return "pneumonia-sim";
  }
  return "unknown";
}

DatasetKind dataset_from_name(std::string_view name) {
  if (name == "cifar10-sim" || name == "cifar10" || name == "cifar") {
    return DatasetKind::kCifar10Sim;
  }
  if (name == "gtsrb-sim" || name == "gtsrb") return DatasetKind::kGtsrbSim;
  if (name == "pneumonia-sim" || name == "pneumonia") {
    return DatasetKind::kPneumoniaSim;
  }
  throw ConfigError("unknown dataset: " + std::string(name));
}

std::size_t SyntheticSpec::num_classes() const {
  switch (kind) {
    case DatasetKind::kCifar10Sim: return 10;
    case DatasetKind::kGtsrbSim: return 43;
    case DatasetKind::kPneumoniaSim: return 2;
  }
  return 0;
}

std::size_t SyntheticSpec::channels() const {
  return kind == DatasetKind::kPneumoniaSim ? 1 : 3;
}

namespace {
std::size_t scaled(std::size_t base, double scale) {
  return std::max<std::size_t>(8, static_cast<std::size_t>(
                                      std::llround(static_cast<double>(base) * scale)));
}
}  // namespace

std::size_t SyntheticSpec::train_count() const {
  // Relative sizes mirror Table II at ~1/45 scale: Pneumonia is roughly a
  // tenth the size of CIFAR-10/GTSRB, reproducing its small-data effects.
  switch (kind) {
    case DatasetKind::kCifar10Sim: return scaled(1000, scale);
    case DatasetKind::kGtsrbSim: return scaled(860, scale);
    case DatasetKind::kPneumoniaSim: return scaled(120, scale);
  }
  return 0;
}

std::size_t SyntheticSpec::test_count() const {
  switch (kind) {
    case DatasetKind::kCifar10Sim: return scaled(400, scale);
    case DatasetKind::kGtsrbSim: return scaled(430, scale);
    case DatasetKind::kPneumoniaSim: return scaled(64, scale);
  }
  return 0;
}

namespace {

// ---------------------------------------------------------------------------
// GTSRB-sim: 43 traffic-sign classes.  Class identity = (shape, colour,
// glyph) combination; images are centred with small jitter, calm background.
// ---------------------------------------------------------------------------

constexpr std::array<Color, 4> kSignColors{
    Color{0.85F, 0.15F, 0.15F},  // red
    Color{0.15F, 0.25F, 0.85F},  // blue
    Color{0.90F, 0.80F, 0.15F},  // yellow
    Color{0.92F, 0.92F, 0.92F},  // white
};

void draw_sign_shape(Painter& p, int shape, float cx, float cy, float size,
                     Color color) {
  switch (shape) {
    case 0: p.disc(cx, cy, size, color); break;
    case 1: p.triangle(cx, cy, size, color); break;
    case 2: p.rect(cx - size, cy - size, cx + size, cy + size, color); break;
    case 3: p.diamond(cx, cy, size * 1.2F, color); break;
    default: p.ring(cx, cy, size * 0.55F, size, color); break;
  }
}

void draw_glyph(Painter& p, int glyph, float cx, float cy, float size) {
  const Color dark{0.05F, 0.05F, 0.05F};
  switch (glyph) {
    case 0: break;  // no glyph
    case 1:
      p.rect(cx - size * 0.65F, cy - 1.2F, cx + size * 0.65F, cy + 1.2F, dark);
      break;
    default: p.disc(cx, cy, size * 0.48F, dark); break;
  }
}

void generate_gtsrb_image(Painter& p, int label, Rng& rng) {
  // Calm road-scene background: sky-to-asphalt gradient.
  p.vertical_gradient({0.55F, 0.65F, 0.80F}, {0.35F, 0.35F, 0.33F});
  const int shape = label % 5;
  const int color_idx = (label / 5) % 4;
  const int glyph = (label / 20) % 3;
  const float cx = 8.0F + rng.uniform(-1.0F, 1.0F);
  const float cy = 8.0F + rng.uniform(-1.0F, 1.0F);
  const float size = 5.2F + rng.uniform(-0.6F, 0.6F);
  draw_sign_shape(p, shape, cx, cy, size, kSignColors[static_cast<std::size_t>(color_idx)]);
  draw_glyph(p, glyph, cx, cy + (shape == 1 ? size * 0.3F : 0.0F), size);
  p.add_noise(0.035F, rng);
}

// ---------------------------------------------------------------------------
// CIFAR-10-sim: 10 object classes in cluttered scenes.  Same (shape, colour)
// mechanics but with random background colours, distractor shapes and larger
// positional jitter — the clutter is what drives CIFAR's higher AD (§IV-D).
// ---------------------------------------------------------------------------

constexpr std::array<Color, 5> kObjectColors{
    Color{0.85F, 0.20F, 0.20F}, Color{0.20F, 0.75F, 0.25F},
    Color{0.20F, 0.30F, 0.85F}, Color{0.85F, 0.70F, 0.15F},
    Color{0.70F, 0.25F, 0.75F},
};

Color random_color(Rng& rng) {
  return Color{rng.uniform(0.1F, 0.9F), rng.uniform(0.1F, 0.9F),
               rng.uniform(0.1F, 0.9F)};
}

void draw_object(Painter& p, int shape, float cx, float cy, float size, Color c,
                 float alpha = 1.0F) {
  switch (shape) {
    case 0: p.disc(cx, cy, size, c, alpha); break;
    case 1: p.triangle(cx, cy, size, c, alpha); break;
    case 2: p.rect(cx - size, cy - size * 0.7F, cx + size, cy + size * 0.7F, c, alpha); break;
    case 3: p.diamond(cx, cy, size * 1.15F, c, alpha); break;
    default: p.ring(cx, cy, size * 0.5F, size, c, alpha); break;
  }
}

void generate_cifar_image(Painter& p, int label, Rng& rng) {
  // Cluttered scene: random gradient background plus distractors.
  p.vertical_gradient(random_color(rng), random_color(rng));
  const int distractors = rng.range(1, 3);
  for (int d = 0; d < distractors; ++d) {
    draw_object(p, rng.range(0, 4), rng.uniform(1.0F, 15.0F),
                rng.uniform(1.0F, 15.0F), rng.uniform(1.5F, 3.0F),
                random_color(rng), 0.8F);
  }
  const int shape = label % 5;
  const std::size_t color_idx = static_cast<std::size_t>(label) / 5;  // 0 or 1
  // Two colour families per shape keep 10 distinct classes.
  const Color base = kObjectColors[(color_idx * 2 + static_cast<std::size_t>(shape)) %
                                   kObjectColors.size()];
  const float cx = 8.0F + rng.uniform(-3.0F, 3.0F);
  const float cy = 8.0F + rng.uniform(-3.0F, 3.0F);
  const float size = 4.0F + rng.uniform(-1.0F, 1.4F);
  draw_object(p, shape, cx, cy, size, base);
  p.add_noise(0.07F, rng);
}

// ---------------------------------------------------------------------------
// Pneumonia-sim: binary chest X-ray analogue (single channel).
// Normal: clean bilateral "lung fields" (bright ellipses) with rib stripes.
// Pneumonia: same anatomy plus diffuse blotchy opacities in the lung fields.
// ---------------------------------------------------------------------------

void generate_pneumonia_image(Painter& p, int label, Rng& rng) {
  p.fill({0.12F, 0.12F, 0.12F});
  const float lung_y = 8.5F + rng.uniform(-0.8F, 0.8F);
  const float lung_dx = 3.8F + rng.uniform(-0.5F, 0.5F);
  const float lung_r = 3.2F + rng.uniform(-0.4F, 0.4F);
  const Color lung{0.55F, 0.55F, 0.55F};
  // Two lung fields.
  p.disc(8.0F - lung_dx, lung_y, lung_r, lung, 0.9F);
  p.disc(8.0F + lung_dx, lung_y, lung_r, lung, 0.9F);
  // Rib shadows: periodic horizontal stripes over the whole field.
  p.stripes(3.4F + rng.uniform(-0.3F, 0.3F), rng.uniform(0.0F, 3.0F),
            {0.75F, 0.75F, 0.75F}, 0.25F);
  if (label == 1) {
    // Pneumonia: subtle blotchy opacities inside the lung fields.  Kept
    // faint relative to the rib stripes and pixel noise so the golden model
    // lands near the paper's 90% rather than saturating.
    const int blobs = rng.range(1, 3);
    for (int i = 0; i < blobs; ++i) {
      const float side = rng.bernoulli(0.5) ? -1.0F : 1.0F;
      const float bx = 8.0F + side * lung_dx + rng.uniform(-1.6F, 1.6F);
      const float by = lung_y + rng.uniform(-2.0F, 2.0F);
      p.gaussian_blob(bx, by, rng.uniform(0.8F, 1.5F), {1.0F, 1.0F, 1.0F},
                      rng.uniform(0.22F, 0.40F));
    }
  }
  p.add_noise(0.08F, rng);
}

}  // namespace

Dataset generate_split(const SyntheticSpec& spec, std::size_t count, Rng& rng,
                       std::string_view split_name) {
  TDFM_CHECK(spec.image_size >= 8, "image size too small for the generators");
  Dataset ds;
  ds.name = std::string(dataset_name(spec.kind)) + "/" + std::string(split_name);
  ds.num_classes = spec.num_classes();
  const std::size_t ch = spec.channels();
  const std::size_t hw = spec.image_size;
  ds.images = Tensor{Shape{count, ch, hw, hw}};
  ds.labels.resize(count);
  const std::size_t image_stride = ch * hw * hw;
  for (std::size_t i = 0; i < count; ++i) {
    // Round-robin class assignment keeps every split class-balanced (the
    // paper highlights CIFAR-10's balance; GTSRB-sim and Pneumonia-sim are
    // balanced here too, which is a simplification recorded in DESIGN.md).
    const int label = static_cast<int>(i % ds.num_classes);
    ds.labels[i] = label;
    Painter painter(ds.images.data() + i * image_stride, ch, hw, hw);
    switch (spec.kind) {
      case DatasetKind::kCifar10Sim: generate_cifar_image(painter, label, rng); break;
      case DatasetKind::kGtsrbSim: generate_gtsrb_image(painter, label, rng); break;
      case DatasetKind::kPneumoniaSim: generate_pneumonia_image(painter, label, rng); break;
    }
  }
  ds.validate();
  return ds;
}

TrainTestPair generate(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  Rng train_rng = rng.fork(1);
  Rng test_rng = rng.fork(2);
  TrainTestPair pair;
  pair.train = generate_split(spec, spec.train_count(), train_rng, "train");
  pair.test = generate_split(spec, spec.test_count(), test_rng, "test");
  return pair;
}

}  // namespace tdfm::data
