// Low-level procedural drawing onto [C, H, W] float canvases.
//
// Shared by the three synthetic dataset generators.  Coordinates are float
// pixels; all drawing is additive-free (opaque overwrite with optional
// alpha) and clipped to the canvas.
#pragma once

#include <array>
#include <cstddef>

#include "core/rng.hpp"

namespace tdfm::data {

/// RGB colour (channel 0..2); for single-channel canvases only r is used.
struct Color {
  float r = 0.0F, g = 0.0F, b = 0.0F;
};

class Painter {
 public:
  /// Wraps an externally owned pixel buffer of `channels` planes, each
  /// h x w, laid out plane-major (the dataset tensor layout).
  Painter(float* pixels, std::size_t channels, std::size_t h, std::size_t w)
      : px_(pixels), c_(channels), h_(h), w_(w) {}

  [[nodiscard]] std::size_t height() const { return h_; }
  [[nodiscard]] std::size_t width() const { return w_; }

  void fill(Color color);

  /// Vertical gradient from `top` to `bottom`.
  void vertical_gradient(Color top, Color bottom);

  /// Filled axis-aligned rectangle; corners clipped to the canvas.
  void rect(float x0, float y0, float x1, float y1, Color color, float alpha = 1.0F);

  /// Filled disc.
  void disc(float cx, float cy, float radius, Color color, float alpha = 1.0F);

  /// Ring (annulus) with the given inner/outer radii.
  void ring(float cx, float cy, float r_inner, float r_outer, Color color,
            float alpha = 1.0F);

  /// Filled upward-pointing triangle with apex (cx, cy - size) and base
  /// y = cy + size.
  void triangle(float cx, float cy, float size, Color color, float alpha = 1.0F);

  /// Filled diamond (rotated square) of the given half-diagonal.
  void diamond(float cx, float cy, float size, Color color, float alpha = 1.0F);

  /// Horizontal stripes of the given period and duty cycle, tinted `color`
  /// with strength alpha.
  void stripes(float period, float phase, Color color, float alpha);

  /// Soft Gaussian blob (adds intensity, clamped to [0, 1]).
  void gaussian_blob(float cx, float cy, float sigma, Color color, float gain);

  /// Adds iid N(0, sigma) pixel noise, clamped to [0, 1].
  void add_noise(float sigma, Rng& rng);

 private:
  void blend(std::size_t x, std::size_t y, Color color, float alpha);

  float* px_;
  std::size_t c_, h_, w_;
};

}  // namespace tdfm::data
