// Labelled image dataset.
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace tdfm::data {

/// A labelled image classification dataset, stored densely: images
/// [N, C, H, W] in [0, 1], integer class labels in [0, num_classes).
struct Dataset {
  std::string name;
  Tensor images;
  std::vector<int> labels;
  std::size_t num_classes = 0;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
  [[nodiscard]] std::size_t channels() const { return images.dim(1); }
  [[nodiscard]] std::size_t height() const { return images.dim(2); }
  [[nodiscard]] std::size_t width() const { return images.dim(3); }

  /// Copies the samples selected by `indices` into a new dataset.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Per-class sample counts (length num_classes).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Throws InvariantError if the internal invariants are broken (shape /
  /// label-range / count mismatches).  Called after fault injection.
  void validate() const;
};

/// Splits `ds` into (first, second) where `first` holds `fraction` of the
/// samples chosen uniformly at random.  Used to reserve the clean subset
/// for meta label correction (hyperparameter gamma, §III-B2).
[[nodiscard]] std::pair<Dataset, Dataset> random_split(const Dataset& ds,
                                                       double fraction, Rng& rng);

/// Concatenates two datasets with identical shape/class metadata.
[[nodiscard]] Dataset concatenate(const Dataset& a, const Dataset& b);

}  // namespace tdfm::data
