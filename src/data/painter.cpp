#include "data/painter.hpp"

#include <algorithm>
#include <cmath>

namespace tdfm::data {

namespace {
constexpr float clamp01(float v) { return std::clamp(v, 0.0F, 1.0F); }
}  // namespace

void Painter::blend(std::size_t x, std::size_t y, Color color, float alpha) {
  const std::array<float, 3> ch{color.r, color.g, color.b};
  for (std::size_t c = 0; c < c_; ++c) {
    float& p = px_[(c * h_ + y) * w_ + x];
    p = clamp01((1.0F - alpha) * p + alpha * ch[c]);
  }
}

void Painter::fill(Color color) {
  const std::array<float, 3> ch{color.r, color.g, color.b};
  for (std::size_t c = 0; c < c_; ++c) {
    std::fill_n(px_ + c * h_ * w_, h_ * w_, clamp01(ch[c]));
  }
}

void Painter::vertical_gradient(Color top, Color bottom) {
  const std::array<float, 3> t{top.r, top.g, top.b};
  const std::array<float, 3> b{bottom.r, bottom.g, bottom.b};
  for (std::size_t c = 0; c < c_; ++c) {
    for (std::size_t y = 0; y < h_; ++y) {
      const float f = static_cast<float>(y) / static_cast<float>(h_ - 1);
      const float v = clamp01((1.0F - f) * t[c] + f * b[c]);
      std::fill_n(px_ + (c * h_ + y) * w_, w_, v);
    }
  }
}

void Painter::rect(float x0, float y0, float x1, float y1, Color color, float alpha) {
  const auto ix0 = static_cast<std::size_t>(std::max(0.0F, std::floor(x0)));
  const auto iy0 = static_cast<std::size_t>(std::max(0.0F, std::floor(y0)));
  const auto ix1 = std::min<std::size_t>(w_, static_cast<std::size_t>(std::max(0.0F, std::ceil(x1))));
  const auto iy1 = std::min<std::size_t>(h_, static_cast<std::size_t>(std::max(0.0F, std::ceil(y1))));
  for (std::size_t y = iy0; y < iy1; ++y) {
    for (std::size_t x = ix0; x < ix1; ++x) blend(x, y, color, alpha);
  }
}

void Painter::disc(float cx, float cy, float radius, Color color, float alpha) {
  const float r2 = radius * radius;
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) {
      const float dx = static_cast<float>(x) + 0.5F - cx;
      const float dy = static_cast<float>(y) + 0.5F - cy;
      if (dx * dx + dy * dy <= r2) blend(x, y, color, alpha);
    }
  }
}

void Painter::ring(float cx, float cy, float r_inner, float r_outer, Color color,
                   float alpha) {
  const float ri2 = r_inner * r_inner;
  const float ro2 = r_outer * r_outer;
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) {
      const float dx = static_cast<float>(x) + 0.5F - cx;
      const float dy = static_cast<float>(y) + 0.5F - cy;
      const float d2 = dx * dx + dy * dy;
      if (d2 >= ri2 && d2 <= ro2) blend(x, y, color, alpha);
    }
  }
}

void Painter::triangle(float cx, float cy, float size, Color color, float alpha) {
  for (std::size_t y = 0; y < h_; ++y) {
    const float fy = static_cast<float>(y) + 0.5F;
    if (fy < cy - size || fy > cy + size) continue;
    // Width grows linearly from apex (top) to base (bottom).
    const float frac = (fy - (cy - size)) / (2.0F * size);
    const float half_width = frac * size;
    for (std::size_t x = 0; x < w_; ++x) {
      const float fx = static_cast<float>(x) + 0.5F;
      if (std::fabs(fx - cx) <= half_width) blend(x, y, color, alpha);
    }
  }
}

void Painter::diamond(float cx, float cy, float size, Color color, float alpha) {
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) {
      const float dx = std::fabs(static_cast<float>(x) + 0.5F - cx);
      const float dy = std::fabs(static_cast<float>(y) + 0.5F - cy);
      if (dx + dy <= size) blend(x, y, color, alpha);
    }
  }
}

void Painter::stripes(float period, float phase, Color color, float alpha) {
  TDFM_CHECK(period > 0.0F, "stripe period must be positive");
  for (std::size_t y = 0; y < h_; ++y) {
    const float s = std::sin(2.0F * 3.14159265F *
                             (static_cast<float>(y) + phase) / period);
    if (s <= 0.0F) continue;
    for (std::size_t x = 0; x < w_; ++x) blend(x, y, color, alpha * s);
  }
}

void Painter::gaussian_blob(float cx, float cy, float sigma, Color color, float gain) {
  const std::array<float, 3> ch{color.r, color.g, color.b};
  const float inv = 1.0F / (2.0F * sigma * sigma);
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) {
      const float dx = static_cast<float>(x) + 0.5F - cx;
      const float dy = static_cast<float>(y) + 0.5F - cy;
      const float g = gain * std::exp(-(dx * dx + dy * dy) * inv);
      for (std::size_t c = 0; c < c_; ++c) {
        float& p = px_[(c * h_ + y) * w_ + x];
        p = clamp01(p + g * ch[c]);
      }
    }
  }
}

void Painter::add_noise(float sigma, Rng& rng) {
  for (std::size_t i = 0; i < c_ * h_ * w_; ++i) {
    px_[i] = clamp01(px_[i] + rng.normal(0.0F, sigma));
  }
}

}  // namespace tdfm::data
