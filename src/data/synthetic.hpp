// Procedural dataset generators standing in for CIFAR-10, GTSRB and the
// Pneumonia chest X-ray dataset.
//
// The real datasets are unavailable offline, and the study's findings hinge
// on dataset *properties* rather than pixel content (see DESIGN.md §1):
//   - GTSRB:     many classes (43), centred low-clutter "signs"      -> low AD
//   - CIFAR-10:  10 classes, cluttered multi-object backgrounds      -> higher AD
//   - Pneumonia: 2 classes, ~1/10 the samples, textural distinction  -> small-data effects
// Each generator draws class-conditional parametric images (shape, colour,
// glyph, texture) with per-sample jitter and pixel noise, calibrated so the
// golden models reach accuracy in the ranges Table IV reports.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace tdfm::data {

/// Which of the paper's three datasets to simulate.
enum class DatasetKind { kCifar10Sim, kGtsrbSim, kPneumoniaSim };

[[nodiscard]] const char* dataset_name(DatasetKind kind);
[[nodiscard]] DatasetKind dataset_from_name(std::string_view name);

/// Generation parameters.  The defaults reproduce the paper's relative
/// dataset sizes at bench scale; `scale` multiplies sample counts.
struct SyntheticSpec {
  DatasetKind kind = DatasetKind::kCifar10Sim;
  std::size_t image_size = 16;   ///< square images (models assume 16)
  double scale = 1.0;            ///< multiplies train/test counts
  std::uint64_t seed = 1234;     ///< generation seed (independent of training)

  [[nodiscard]] std::size_t num_classes() const;
  [[nodiscard]] std::size_t channels() const;
  [[nodiscard]] std::size_t train_count() const;
  [[nodiscard]] std::size_t test_count() const;
};

/// A generated train/test pair.  Both splits are drawn from the same
/// class-conditional distribution with disjoint random streams.
struct TrainTestPair {
  Dataset train;
  Dataset test;
};

/// Generates the dataset described by `spec`, deterministically in
/// spec.seed.
[[nodiscard]] TrainTestPair generate(const SyntheticSpec& spec);

/// Generates `count` samples of the given kind (used by tests that need
/// a single split).
[[nodiscard]] Dataset generate_split(const SyntheticSpec& spec, std::size_t count,
                                     Rng& rng, std::string_view split_name);

}  // namespace tdfm::data
