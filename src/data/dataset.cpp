#include "data/dataset.hpp"

#include <cmath>
#include <cstring>
#include <numeric>

namespace tdfm::data {

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  const std::size_t row = images.numel() / std::max<std::size_t>(size(), 1);
  std::vector<std::size_t> dims = images.shape().dims();
  dims[0] = indices.size();
  out.images = Tensor{Shape(dims)};
  out.labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    TDFM_CHECK(indices[i] < size(), "subset index out of range");
    std::memcpy(out.images.data() + i * row, images.data() + indices[i] * row,
                row * sizeof(float));
    out.labels[i] = labels[indices[i]];
  }
  return out;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes, 0);
  for (int label : labels) {
    TDFM_CHECK(label >= 0 && static_cast<std::size_t>(label) < num_classes,
               "label out of range");
    ++hist[static_cast<std::size_t>(label)];
  }
  return hist;
}

void Dataset::validate() const {
  TDFM_CHECK(images.rank() == 4, "dataset images must be [N, C, H, W]");
  TDFM_CHECK(images.dim(0) == labels.size(), "image/label count mismatch");
  TDFM_CHECK(num_classes > 0, "dataset needs at least one class");
  for (int label : labels) {
    TDFM_CHECK(label >= 0 && static_cast<std::size_t>(label) < num_classes,
               "label out of range");
  }
}

std::pair<Dataset, Dataset> random_split(const Dataset& ds, double fraction,
                                         Rng& rng) {
  TDFM_CHECK(fraction >= 0.0 && fraction <= 1.0, "split fraction in [0, 1]");
  const auto k = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(ds.size())));
  std::vector<std::size_t> order(ds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const std::span<const std::size_t> first(order.data(), k);
  const std::span<const std::size_t> second(order.data() + k, ds.size() - k);
  return {ds.subset(first), ds.subset(second)};
}

Dataset concatenate(const Dataset& a, const Dataset& b) {
  TDFM_CHECK(a.num_classes == b.num_classes, "class count mismatch in concat");
  TDFM_CHECK(a.channels() == b.channels() && a.height() == b.height() &&
                 a.width() == b.width(),
             "image shape mismatch in concat");
  Dataset out;
  out.name = a.name;
  out.num_classes = a.num_classes;
  std::vector<std::size_t> dims = a.images.shape().dims();
  dims[0] = a.size() + b.size();
  out.images = Tensor{Shape(dims)};
  std::memcpy(out.images.data(), a.images.data(), a.images.numel() * sizeof(float));
  std::memcpy(out.images.data() + a.images.numel(), b.images.data(),
              b.images.numel() * sizeof(float));
  out.labels = a.labels;
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

}  // namespace tdfm::data
