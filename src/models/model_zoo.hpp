// Model zoo: the seven architectures of Table III.
//
// Each model is a width- and resolution-scaled analogue of the paper's
// network, preserving the architectural *motifs* the study leans on:
//
//   | Name      | Depth    | Summary (paper)              | Here            |
//   |-----------|----------|------------------------------|-----------------|
//   | ConvNet   | moderate | 3 conv + 3 FC + max pool     | same counts     |
//   | DeconvNet | moderate | 4 conv + 2 FC w/ 0.5 dropout | same counts     |
//   | VGG11     | deep     | stacked conv + 3 FC          | 8 conv + 3 FC   |
//   | VGG16     | deep     | 13 conv + 3 FC + max pool    | 13 conv + 3 FC  |
//   | ResNet18  | deep     | 17 conv + 1 FC + avg pool    | 17 conv + 1 FC  |
//   | MobileNet | deep     | 27 conv + 1 FC + avg pool    | 27 conv + 1 FC  |
//   | ResNet50  | deep     | 49 conv + 1 FC + avg pool    | 49 conv + 1 FC  |
//
// ResNets use residual basic/bottleneck blocks, VGGs use plain stacked
// convolutions, MobileNet uses depthwise-separable convolutions — the
// architectural diversity the ensemble technique depends on (§IV-B).
// Models expect 16 x 16 inputs (4 halvings available for the deep stacks).
#pragma once

#include <memory>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/checkpoint.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace tdfm::models {

enum class Arch {
  kConvNet,
  kDeconvNet,
  kVGG11,
  kVGG16,
  kResNet18,
  kResNet50,
  kMobileNet,
};

[[nodiscard]] const char* arch_name(Arch arch);
[[nodiscard]] Arch arch_from_name(std::string_view name);
[[nodiscard]] std::vector<Arch> all_architectures();

/// True for the paper's "shallow/moderate" models (ConvNet, DeconvNet) —
/// relevant because robust loss and label correction hurt shallow models
/// (§IV-B).
[[nodiscard]] bool is_shallow(Arch arch);

/// Input geometry + width scaling for a model instance.
struct ModelConfig {
  std::size_t in_channels = 3;
  std::size_t image_size = 16;  ///< must be 16 (4 spatial halvings)
  std::size_t num_classes = 10;
  std::size_t width = 8;  ///< base channel count; paper-scale would be 64

  /// Derives geometry from a dataset spec.
  [[nodiscard]] static ModelConfig for_dataset(const data::SyntheticSpec& spec,
                                               std::size_t width = 8);
};

/// Builds a freshly initialised instance of the given architecture.
[[nodiscard]] std::unique_ptr<nn::Network> build_model(Arch arch,
                                                       const ModelConfig& config,
                                                       Rng& rng);

/// A factory bound to (arch, config) producing fresh instances on demand.
[[nodiscard]] nn::NetworkFactory make_factory(Arch arch, ModelConfig config);

/// Conv + FC layer count each architecture must report (Table III check).
[[nodiscard]] std::size_t expected_weight_layers(Arch arch);

/// v2 checkpoint metadata describing (arch, config) — pass to
/// nn::save_checkpoint to produce a self-describing checkpoint that
/// serve::ModelRegistry can load without out-of-band configuration.
[[nodiscard]] nn::CheckpointMeta checkpoint_meta(Arch arch, const ModelConfig& config);

/// Inverse of checkpoint_meta: the ModelConfig a v2 header describes.
[[nodiscard]] ModelConfig config_from_meta(const nn::CheckpointMeta& meta);

/// Materialises the architecture a v2 checkpoint header describes (weights
/// still randomly initialised — follow with nn::load_checkpoint).  Throws
/// ConfigError on an unknown architecture name.
[[nodiscard]] std::unique_ptr<nn::Network> build_from_meta(const nn::CheckpointMeta& meta,
                                                           Rng& rng);

/// Per-architecture optimiser tuning.  The paper tunes each model with the
/// hyperparameters its implementers recommend; at this scale the plain
/// stacked-conv families (ConvNet/DeconvNet/VGG) train best with Adam while
/// the residual/separable families prefer SGD with momentum.  Returns a
/// copy of `base` with optimiser/lr adjusted (epochs, batch size and other
/// user-chosen fields are preserved).  No-op when base.auto_tune is false.
[[nodiscard]] nn::TrainOptions tuned_options(Arch arch, nn::TrainOptions base);

}  // namespace tdfm::models
