#include "models/model_zoo.hpp"

#include "nn/blocks.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"

namespace tdfm::models {

using nn::AvgPool2D;
using nn::BatchNorm2D;
using nn::BottleneckBlock;
using nn::Conv2D;
using nn::Dense;
using nn::Dropout;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::MaxPool2D;
using nn::ReLU;
using nn::ResidualBasicBlock;
using nn::SeparableConvBlock;
using nn::Sequential;

const char* arch_name(Arch arch) {
  switch (arch) {
    case Arch::kConvNet: return "ConvNet";
    case Arch::kDeconvNet: return "DeconvNet";
    case Arch::kVGG11: return "VGG11";
    case Arch::kVGG16: return "VGG16";
    case Arch::kResNet18: return "ResNet18";
    case Arch::kResNet50: return "ResNet50";
    case Arch::kMobileNet: return "MobileNet";
  }
  return "unknown";
}

Arch arch_from_name(std::string_view name) {
  for (const Arch arch : all_architectures()) {
    if (name == arch_name(arch)) return arch;
  }
  throw ConfigError("unknown architecture: " + std::string(name));
}

std::vector<Arch> all_architectures() {
  return {Arch::kConvNet,  Arch::kDeconvNet, Arch::kVGG11,    Arch::kVGG16,
          Arch::kResNet18, Arch::kResNet50,  Arch::kMobileNet};
}

bool is_shallow(Arch arch) {
  return arch == Arch::kConvNet || arch == Arch::kDeconvNet;
}

ModelConfig ModelConfig::for_dataset(const data::SyntheticSpec& spec,
                                     std::size_t width) {
  ModelConfig c;
  c.in_channels = spec.channels();
  c.image_size = spec.image_size;
  c.num_classes = spec.num_classes();
  c.width = width;
  return c;
}

std::size_t expected_weight_layers(Arch arch) {
  switch (arch) {
    case Arch::kConvNet: return 6;    // 3 conv + 3 FC
    case Arch::kDeconvNet: return 6;  // 4 conv + 2 FC
    case Arch::kVGG11: return 11;     // 8 conv + 3 FC
    case Arch::kVGG16: return 16;     // 13 conv + 3 FC
    case Arch::kResNet18: return 18;  // 17 conv + 1 FC
    case Arch::kResNet50: return 50;  // 49 conv + 1 FC
    case Arch::kMobileNet: return 28; // 27 conv + 1 FC
  }
  return 0;
}

nn::CheckpointMeta checkpoint_meta(Arch arch, const ModelConfig& config) {
  nn::CheckpointMeta meta;
  meta.arch = arch_name(arch);
  meta.width = static_cast<std::uint32_t>(config.width);
  meta.in_channels = static_cast<std::uint32_t>(config.in_channels);
  meta.image_size = static_cast<std::uint32_t>(config.image_size);
  meta.num_classes = static_cast<std::uint32_t>(config.num_classes);
  return meta;
}

ModelConfig config_from_meta(const nn::CheckpointMeta& meta) {
  ModelConfig c;
  c.width = meta.width;
  c.in_channels = meta.in_channels;
  c.image_size = meta.image_size;
  c.num_classes = meta.num_classes;
  return c;
}

std::unique_ptr<nn::Network> build_from_meta(const nn::CheckpointMeta& meta, Rng& rng) {
  return build_model(arch_from_name(meta.arch), config_from_meta(meta), rng);
}

namespace {

void check_config(const ModelConfig& c) {
  TDFM_CHECK(c.image_size == 16, "model zoo is built for 16x16 inputs");
  TDFM_CHECK(c.width >= 2, "width multiplier too small");
  TDFM_CHECK(c.num_classes >= 2, "need at least two classes");
}

// ConvNet: 3 conv + 3 FC + max pooling (moderate depth).
std::unique_ptr<Sequential> convnet_body(const ModelConfig& c, Rng& rng) {
  const std::size_t w = c.width;
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(c.in_channels, w, 16, 16, 3, 1, 1, rng);
  body->emplace<ReLU>();
  body->emplace<Conv2D>(w, 2 * w, 16, 16, 3, 1, 1, rng);
  body->emplace<ReLU>();
  body->emplace<MaxPool2D>(2);  // -> 8x8
  body->emplace<Conv2D>(2 * w, 2 * w, 8, 8, 3, 1, 1, rng);
  body->emplace<ReLU>();
  body->emplace<MaxPool2D>(2);  // -> 4x4
  body->emplace<Flatten>();
  body->emplace<Dense>(2 * w * 16, 8 * w, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8 * w, 4 * w, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(4 * w, c.num_classes, rng);
  return body;
}

// DeconvNet: 4 conv + 2 FC with 0.5 dropout (moderate depth).
std::unique_ptr<Sequential> deconvnet_body(const ModelConfig& c, Rng& rng) {
  const std::size_t w = c.width;
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(c.in_channels, w, 16, 16, 3, 1, 1, rng);
  body->emplace<ReLU>();
  body->emplace<Conv2D>(w, w, 16, 16, 3, 1, 1, rng);
  body->emplace<ReLU>();
  body->emplace<MaxPool2D>(2);  // -> 8x8
  body->emplace<Conv2D>(w, 2 * w, 8, 8, 3, 1, 1, rng);
  body->emplace<ReLU>();
  body->emplace<Conv2D>(2 * w, 2 * w, 8, 8, 3, 1, 1, rng);
  body->emplace<ReLU>();
  body->emplace<MaxPool2D>(2);  // -> 4x4
  body->emplace<Flatten>();
  body->emplace<Dense>(2 * w * 16, 6 * w, rng);
  body->emplace<ReLU>();
  body->emplace<Dropout>(0.5F, rng);
  body->emplace<Dense>(6 * w, c.num_classes, rng);
  return body;
}

void vgg_block(Sequential& body, std::size_t convs, std::size_t in_c,
               std::size_t out_c, std::size_t hw, bool pool, Rng& rng) {
  for (std::size_t i = 0; i < convs; ++i) {
    body.emplace<Conv2D>(i == 0 ? in_c : out_c, out_c, hw, hw, 3, 1, 1, rng);
    body.emplace<BatchNorm2D>(out_c);
    body.emplace<ReLU>();
  }
  if (pool) body.emplace<MaxPool2D>(2);
}

// VGG11: conv blocks (1,1,2,2,2) + 3 FC.
std::unique_ptr<Sequential> vgg11_body(const ModelConfig& c, Rng& rng) {
  const std::size_t w = c.width;
  auto body = std::make_unique<Sequential>();
  vgg_block(*body, 1, c.in_channels, w, 16, true, rng);   // -> 8
  vgg_block(*body, 1, w, 2 * w, 8, true, rng);            // -> 4
  vgg_block(*body, 2, 2 * w, 4 * w, 4, true, rng);        // -> 2
  vgg_block(*body, 2, 4 * w, 8 * w, 2, true, rng);        // -> 1
  vgg_block(*body, 2, 8 * w, 8 * w, 1, false, rng);
  body->emplace<Flatten>();
  body->emplace<Dense>(8 * w, 8 * w, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8 * w, 8 * w, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8 * w, c.num_classes, rng);
  return body;
}

// VGG16: conv blocks (2,2,3,3,3) + 3 FC — 13 conv as in Table III.
std::unique_ptr<Sequential> vgg16_body(const ModelConfig& c, Rng& rng) {
  const std::size_t w = c.width;
  auto body = std::make_unique<Sequential>();
  vgg_block(*body, 2, c.in_channels, w, 16, true, rng);   // -> 8
  vgg_block(*body, 2, w, 2 * w, 8, true, rng);            // -> 4
  vgg_block(*body, 3, 2 * w, 4 * w, 4, true, rng);        // -> 2
  vgg_block(*body, 3, 4 * w, 8 * w, 2, true, rng);        // -> 1
  vgg_block(*body, 3, 8 * w, 8 * w, 1, false, rng);
  body->emplace<Flatten>();
  body->emplace<Dense>(8 * w, 8 * w, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8 * w, 8 * w, rng);
  body->emplace<ReLU>();
  body->emplace<Dense>(8 * w, c.num_classes, rng);
  return body;
}

// ResNet18: stem + 8 basic blocks (2 per stage) + GAP + FC = 17 conv + 1 FC.
std::unique_ptr<Sequential> resnet18_body(const ModelConfig& c, Rng& rng) {
  const std::size_t w = c.width;
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(c.in_channels, w, 16, 16, 3, 1, 1, rng);
  body->emplace<BatchNorm2D>(w);
  body->emplace<ReLU>();
  body->emplace<ResidualBasicBlock>(w, w, 16, 16, 1, rng);
  body->emplace<ResidualBasicBlock>(w, w, 16, 16, 1, rng);
  body->emplace<ResidualBasicBlock>(w, 2 * w, 16, 16, 2, rng);   // -> 8
  body->emplace<ResidualBasicBlock>(2 * w, 2 * w, 8, 8, 1, rng);
  body->emplace<ResidualBasicBlock>(2 * w, 4 * w, 8, 8, 2, rng); // -> 4
  body->emplace<ResidualBasicBlock>(4 * w, 4 * w, 4, 4, 1, rng);
  body->emplace<ResidualBasicBlock>(4 * w, 8 * w, 4, 4, 2, rng); // -> 2
  body->emplace<ResidualBasicBlock>(8 * w, 8 * w, 2, 2, 1, rng);
  body->emplace<GlobalAvgPool>();
  body->emplace<Dense>(8 * w, c.num_classes, rng);
  return body;
}

// ResNet50: stem + 16 bottleneck blocks (3, 4, 6, 3) + GAP + FC
//         = 1 + 48 conv + 1 FC.
std::unique_ptr<Sequential> resnet50_body(const ModelConfig& c, Rng& rng) {
  const std::size_t w = c.width;
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(c.in_channels, w, 16, 16, 3, 1, 1, rng);
  body->emplace<BatchNorm2D>(w);
  body->emplace<ReLU>();
  // Stage 1: 3 blocks, mid w, out 2w, 16x16.
  body->emplace<BottleneckBlock>(w, w, 2 * w, 16, 16, 1, rng);
  body->emplace<BottleneckBlock>(2 * w, w, 2 * w, 16, 16, 1, rng);
  body->emplace<BottleneckBlock>(2 * w, w, 2 * w, 16, 16, 1, rng);
  // Stage 2: 4 blocks, mid 2w, out 4w, first strided -> 8x8.
  body->emplace<BottleneckBlock>(2 * w, 2 * w, 4 * w, 16, 16, 2, rng);
  body->emplace<BottleneckBlock>(4 * w, 2 * w, 4 * w, 8, 8, 1, rng);
  body->emplace<BottleneckBlock>(4 * w, 2 * w, 4 * w, 8, 8, 1, rng);
  body->emplace<BottleneckBlock>(4 * w, 2 * w, 4 * w, 8, 8, 1, rng);
  // Stage 3: 6 blocks, mid 4w, out 8w, first strided -> 4x4.
  body->emplace<BottleneckBlock>(4 * w, 4 * w, 8 * w, 8, 8, 2, rng);
  for (int i = 0; i < 5; ++i) {
    body->emplace<BottleneckBlock>(8 * w, 4 * w, 8 * w, 4, 4, 1, rng);
  }
  // Stage 4: 3 blocks, mid 8w, out 16w, first strided -> 2x2.
  body->emplace<BottleneckBlock>(8 * w, 8 * w, 16 * w, 4, 4, 2, rng);
  body->emplace<BottleneckBlock>(16 * w, 8 * w, 16 * w, 2, 2, 1, rng);
  body->emplace<BottleneckBlock>(16 * w, 8 * w, 16 * w, 2, 2, 1, rng);
  body->emplace<GlobalAvgPool>();
  body->emplace<Dense>(16 * w, c.num_classes, rng);
  return body;
}

// MobileNet: stem + 13 depthwise-separable blocks + GAP + FC
//          = 1 + 26 conv + 1 FC.
std::unique_ptr<Sequential> mobilenet_body(const ModelConfig& c, Rng& rng) {
  const std::size_t w = c.width;
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(c.in_channels, w, 16, 16, 3, 1, 1, rng);
  body->emplace<BatchNorm2D>(w);
  body->emplace<ReLU>();
  body->emplace<SeparableConvBlock>(w, 2 * w, 16, 16, 1, rng);
  body->emplace<SeparableConvBlock>(2 * w, 2 * w, 16, 16, 2, rng);  // -> 8
  body->emplace<SeparableConvBlock>(2 * w, 4 * w, 8, 8, 1, rng);
  body->emplace<SeparableConvBlock>(4 * w, 4 * w, 8, 8, 2, rng);    // -> 4
  body->emplace<SeparableConvBlock>(4 * w, 8 * w, 4, 4, 1, rng);
  for (int i = 0; i < 6; ++i) {
    body->emplace<SeparableConvBlock>(8 * w, 8 * w, 4, 4, 1, rng);
  }
  body->emplace<SeparableConvBlock>(8 * w, 16 * w, 4, 4, 2, rng);   // -> 2
  body->emplace<SeparableConvBlock>(16 * w, 16 * w, 2, 2, 1, rng);
  body->emplace<GlobalAvgPool>();
  body->emplace<Dense>(16 * w, c.num_classes, rng);
  return body;
}

}  // namespace

std::unique_ptr<nn::Network> build_model(Arch arch, const ModelConfig& config,
                                         Rng& rng) {
  check_config(config);
  std::unique_ptr<Sequential> body;
  switch (arch) {
    case Arch::kConvNet: body = convnet_body(config, rng); break;
    case Arch::kDeconvNet: body = deconvnet_body(config, rng); break;
    case Arch::kVGG11: body = vgg11_body(config, rng); break;
    case Arch::kVGG16: body = vgg16_body(config, rng); break;
    case Arch::kResNet18: body = resnet18_body(config, rng); break;
    case Arch::kResNet50: body = resnet50_body(config, rng); break;
    case Arch::kMobileNet: body = mobilenet_body(config, rng); break;
  }
  auto net = std::make_unique<nn::Network>(arch_name(arch), std::move(body),
                                           config.num_classes);
  TDFM_CHECK(net->weight_layer_count() == expected_weight_layers(arch),
             "architecture depth does not match Table III");
  return net;
}

nn::NetworkFactory make_factory(Arch arch, ModelConfig config) {
  return [arch, config](Rng& rng) { return build_model(arch, config, rng); };
}

nn::TrainOptions tuned_options(Arch arch, nn::TrainOptions base) {
  if (!base.auto_tune) return base;
  switch (arch) {
    case Arch::kConvNet:
    case Arch::kDeconvNet:
    case Arch::kVGG11:
    case Arch::kVGG16:
      base.use_adam = true;
      base.lr = 0.0025F;
      break;
    case Arch::kResNet18:
    case Arch::kResNet50:
    case Arch::kMobileNet:
      base.use_adam = false;
      base.lr = 0.05F;
      break;
  }
  return base;
}

}  // namespace tdfm::models
