#include "kernels/quant.hpp"

#include <algorithm>
#include <cmath>

namespace tdfm::kernels {

void quantize_rows_q8(const float* src, std::size_t rows, std::size_t cols,
                      Q8Matrix& out) {
  out.rows = rows;
  out.cols = cols;
  out.blocks_per_row = (cols + kQ8Block - 1) / kQ8Block;
  out.data.resize(rows * out.blocks_per_row * kQ8Block);
  out.scales.resize(rows * out.blocks_per_row);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = src + r * cols;
    for (std::size_t blk = 0; blk < out.blocks_per_row; ++blk) {
      const std::size_t base = blk * kQ8Block;
      const std::size_t len = std::min(kQ8Block, cols - base);
      float amax = 0.0F;
      for (std::size_t t = 0; t < len; ++t) {
        amax = std::max(amax, std::fabs(in[base + t]));
      }
      // amax == 0 (all-zero block): scale 0, every code 0 — exact.
      const float inv = amax > 0.0F ? 127.0F / amax : 0.0F;
      out.scales[r * out.blocks_per_row + blk] = amax / 127.0F;
      std::int8_t* q = out.data.data() + (r * out.blocks_per_row + blk) * kQ8Block;
      for (std::size_t t = 0; t < len; ++t) {
        const long code = std::lround(in[base + t] * inv);
        q[t] = static_cast<std::int8_t>(std::clamp<long>(code, -127, 127));
      }
      for (std::size_t t = len; t < kQ8Block; ++t) q[t] = 0;
    }
  }
}

Q8Matrix quantize_rows_q8(const float* src, std::size_t rows, std::size_t cols) {
  Q8Matrix out;
  quantize_rows_q8(src, rows, cols, out);
  return out;
}

void dequantize_rows_q8(const Q8Matrix& m, float* dst) {
  for (std::size_t r = 0; r < m.rows; ++r) {
    float* out = dst + r * m.cols;
    for (std::size_t blk = 0; blk < m.blocks_per_row; ++blk) {
      const std::size_t base = blk * kQ8Block;
      const std::size_t len = std::min(kQ8Block, m.cols - base);
      const float scale = m.scales[r * m.blocks_per_row + blk];
      const std::int8_t* q =
          m.data.data() + (r * m.blocks_per_row + blk) * kQ8Block;
      for (std::size_t t = 0; t < len; ++t) {
        out[base + t] = scale * static_cast<float>(q[t]);
      }
    }
  }
}

}  // namespace tdfm::kernels
