// Runtime-dispatched compute kernels.
//
// tdfm::kernels is a leaf library (no tdfm dependencies) holding the
// hand-vectorized inner loops behind tensor/gemm.hpp and tensor/qgemm.hpp.
// One implementation table exists per instruction set:
//
//   scalar  the reference: plain loops, vectorization and FP contraction
//           disabled at compile time, so its arithmetic is the canonical
//           mul-then-add semantics every other kernel is checked against
//   sse2    128-bit mul+add loops (x86-64 baseline, no FMA)
//   avx2    256-bit FMA micro-kernels, register-blocked 8xN tiles
//
// The active table is picked once, lazily: the TDFM_KERNEL env var
// (scalar|sse2|avx2) wins, otherwise cpuid chooses the best supported set.
// set_active_kernel() overrides it at runtime (bench --kernel A/B runs).
//
// Every kernel computes a *row range* [r0, r1) of the output so the caller
// (tensor/gemm.cpp) owns threading and FLOP accounting.  Determinism
// contract: within one kernel choice, each output element's operation
// sequence depends only on (element, shape) — never on the row partition —
// so results are bit-identical at any thread count.  Across kernel choices
// results differ (FMA vs mul+add, reduction shape); the checker suite
// (tests/kernels) quantifies those differences instead of assuming them
// away.  The q8 kernel is the exception: its per-block integer dot is exact
// and its float accumulation order is fixed, so q8 results are bit-identical
// across *all* kernel choices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace tdfm::kernels {

enum class KernelKind : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Computes rows [r0, r1) of C for one GEMM variant (nn/nt/tn as defined in
/// tensor/gemm.hpp).  `m` is the full row count (gemm_tn reads A with stride
/// m); `accumulate=false` overwrites the row range.
using GemmRowsFn = void (*)(std::size_t r0, std::size_t r1, std::size_t m,
                            std::size_t n, std::size_t k, const float* a,
                            const float* b, float* c, bool accumulate);

/// Computes rows [r0, r1) of C[m x n] where C[i,j] is the q8_0 block dot of
/// A row i against B row j: both operands hold `blocks` 32-element int8
/// blocks per row (tail-padded with zeros) with per-block fp32 scales.
using GemmQ8RowsFn = void (*)(std::size_t r0, std::size_t r1, std::size_t n,
                              std::size_t blocks, const std::int8_t* aq,
                              const float* as, const std::int8_t* bq,
                              const float* bs, float* c);

struct KernelTable {
  GemmRowsFn nn;
  GemmRowsFn nt;
  GemmRowsFn tn;
  GemmQ8RowsFn q8_nt;
};

/// "scalar", "sse2", "avx2".
[[nodiscard]] const char* kernel_name(KernelKind kind);

/// Inverse of kernel_name; nullopt for unknown names.
[[nodiscard]] std::optional<KernelKind> parse_kernel(std::string_view name);

/// Whether this host's CPU can run `kind` (cpuid; scalar is always true).
[[nodiscard]] bool kernel_supported(KernelKind kind);

/// All host-supported kinds, scalar first (checker iteration order).
[[nodiscard]] std::vector<KernelKind> supported_kernels();

/// The kernel every dispatching call site currently uses.  First call
/// resolves TDFM_KERNEL (throws std::runtime_error on an unknown or
/// unsupported value) and falls back to the best cpuid-supported set.
[[nodiscard]] KernelKind active_kernel();

/// Overrides the active kernel.  Throws std::runtime_error when the host
/// does not support `kind`.
void set_active_kernel(KernelKind kind);

/// Implementation table for one kind (valid even when unsupported — used by
/// the checker on hosts that can run it).
[[nodiscard]] const KernelTable& kernel_table(KernelKind kind);

/// Shorthand for kernel_table(active_kernel()).
[[nodiscard]] const KernelTable& active_table();

}  // namespace tdfm::kernels
