// Reference kernels: the exact loop nests the library trained with before
// dispatch existed, now expressed over a row range.  This TU is compiled with
// vectorization and FP contraction disabled (see kernels/CMakeLists.txt), so
// every product feeds a separate addition — the canonical mul-then-add
// semantics the checker compares the vector kernels against.
#include <algorithm>
#include <cstring>

#include "kernels/gemm_kernels.hpp"
#include "kernels/quant.hpp"

namespace tdfm::kernels {

namespace {
// Block sizes chosen so one A-block plus one B-block fit comfortably in L1/L2
// for the matrix sizes this library produces (k up to a few thousand from
// im2col, n up to a few hundred output channels).
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 256;
constexpr std::size_t kBlockK = 256;
}  // namespace

void gemm_nn_rows_scalar(std::size_t r0, std::size_t r1, std::size_t /*m*/,
                         std::size_t n, std::size_t k, const float* a,
                         const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
  for (std::size_t i0 = r0; i0 < r1; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, r1);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        for (std::size_t i = i0; i < i1; ++i) {
          float* __restrict__ crow = c + i * n;
          for (std::size_t p = p0; p < p1; ++p) {
            const float av = a[i * k + p];
            const float* __restrict__ brow = b + p * n;
            for (std::size_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm_nt_rows_scalar(std::size_t r0, std::size_t r1, std::size_t /*m*/,
                         std::size_t n, std::size_t k, const float* a,
                         const float* b, float* c, bool accumulate) {
  // C[i,j] = dot(A[i,:], B[j,:]) — both operands are traversed row-wise, so
  // a straightforward dot-product loop is already cache-friendly.
  for (std::size_t i = r0; i < r1; ++i) {
    const float* __restrict__ arow = a + i * k;
    float* __restrict__ crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = b + j * k;
      float acc = 0.0F;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void gemm_tn_rows_scalar(std::size_t r0, std::size_t r1, std::size_t m,
                         std::size_t n, std::size_t k, const float* a,
                         const float* b, float* c, bool accumulate) {
  // C[i,j] = sum_p A[p,i] * B[p,j].  Iterate p outermost so both A and B are
  // read row-wise; C rows are revisited but usually fit in cache (m*n small
  // for weight gradients).  Each row still visits p in ascending order, so
  // per-element addition order is partition-independent.
  if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
  for (std::size_t p = 0; p < k; ++p) {
    const float* __restrict__ arow = a + p * m;
    const float* __restrict__ brow = b + p * n;
    for (std::size_t i = r0; i < r1; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;  // ReLU-sparse activations skip whole rows
      float* __restrict__ crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_q8_rows_scalar(std::size_t r0, std::size_t r1, std::size_t n,
                         std::size_t blocks, const std::int8_t* aq,
                         const float* as, const std::int8_t* bq,
                         const float* bs, float* c) {
  // Per block: an exact int32 dot of 32 int8 pairs (max 32*127*127 << 2^31),
  // then one float multiply-accumulate.  Ascending block order and the fixed
  // statement shape below (kept identical in the avx2 TU, contraction off)
  // make this bit-identical across every kernel choice.
  const std::size_t row_codes = blocks * kQ8Block;
  for (std::size_t i = r0; i < r1; ++i) {
    const std::int8_t* __restrict__ arow = aq + i * row_codes;
    const float* __restrict__ ascale = as + i * blocks;
    float* __restrict__ crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* __restrict__ brow = bq + j * row_codes;
      const float* __restrict__ bscale = bs + j * blocks;
      float acc = 0.0F;
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        const std::int8_t* __restrict__ pa = arow + blk * kQ8Block;
        const std::int8_t* __restrict__ pb = brow + blk * kQ8Block;
        std::int32_t dot = 0;
        for (std::size_t t = 0; t < kQ8Block; ++t) {
          dot += static_cast<std::int32_t>(pa[t]) *
                 static_cast<std::int32_t>(pb[t]);
        }
        float contrib = ascale[blk] * bscale[blk];
        contrib *= static_cast<float>(dot);
        acc += contrib;
      }
      crow[j] = acc;
    }
  }
}

}  // namespace tdfm::kernels
