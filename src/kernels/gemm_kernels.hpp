// Internal: per-instruction-set row-kernel entry points.
//
// One symbol set per TU (gemm_scalar.cpp / gemm_sse2.cpp / gemm_avx2.cpp) so
// each can carry its own compile flags; dispatch.cpp assembles them into the
// public KernelTables.  On non-x86 targets the sse2/avx2 TUs compile as
// forwarders to the scalar kernels (and cpuid reports them unsupported).
#pragma once

#include <cstddef>
#include <cstdint>

namespace tdfm::kernels {

void gemm_nn_rows_scalar(std::size_t r0, std::size_t r1, std::size_t m,
                         std::size_t n, std::size_t k, const float* a,
                         const float* b, float* c, bool accumulate);
void gemm_nt_rows_scalar(std::size_t r0, std::size_t r1, std::size_t m,
                         std::size_t n, std::size_t k, const float* a,
                         const float* b, float* c, bool accumulate);
void gemm_tn_rows_scalar(std::size_t r0, std::size_t r1, std::size_t m,
                         std::size_t n, std::size_t k, const float* a,
                         const float* b, float* c, bool accumulate);
void gemm_q8_rows_scalar(std::size_t r0, std::size_t r1, std::size_t n,
                         std::size_t blocks, const std::int8_t* aq,
                         const float* as, const std::int8_t* bq,
                         const float* bs, float* c);

void gemm_nn_rows_sse2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate);
void gemm_nt_rows_sse2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate);
void gemm_tn_rows_sse2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate);

void gemm_nn_rows_avx2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate);
void gemm_nt_rows_avx2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate);
void gemm_tn_rows_avx2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate);
void gemm_q8_rows_avx2(std::size_t r0, std::size_t r1, std::size_t n,
                       std::size_t blocks, const std::int8_t* aq,
                       const float* as, const std::int8_t* bq,
                       const float* bs, float* c);

}  // namespace tdfm::kernels
