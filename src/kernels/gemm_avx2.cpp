// AVX2+FMA micro-kernels.  This TU alone is compiled with -mavx2 -mfma (see
// kernels/CMakeLists.txt); dispatch guarantees these symbols are only called
// after cpuid confirms avx2+fma, so the rest of the binary still runs on
// older hosts.
//
// Determinism: every output element's accumulator chain depends only on its
// (i, j) coordinates and the shape — a row computed alone produces the same
// bits as a row computed inside an 8-row tile, and a tail column the same
// bits as one inside a 4-column tile — so any row partition (thread count)
// yields identical results.  The q8 kernel keeps the scalar TU's exact
// integer dot and float statement shape (contraction is off here too), so q8
// output is bit-identical to scalar.
#include "kernels/gemm_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "kernels/quant.hpp"

namespace tdfm::kernels {

namespace {

// Mask with the first `rem` (1..7) lanes active, for maskload/maskstore
// column tails.  Loading at table + 8 - rem yields rem leading -1 lanes.
inline __m256i tail_mask(std::size_t rem) {
  alignas(32) static const int table[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                            0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(table + 8 - rem));
}

// One R x n strip of gemm_nn: rows i0..i0+R-1, all columns, full k.  R
// accumulator registers live across the p loop; B rows are streamed once per
// strip and broadcast-multiplied into every row's accumulator.
template <int R>
void nn_tile(std::size_t i0, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc[R];
    for (int r = 0; r < R; ++r) {
      acc[r] = accumulate ? _mm256_loadu_ps(c + (i0 + r) * n + j)
                          : _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < k; ++p) {
      const __m256 bv = _mm256_loadu_ps(b + p * n + j);
      for (int r = 0; r < R; ++r) {
        acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + (i0 + r) * k + p),
                                 bv, acc[r]);
      }
    }
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(c + (i0 + r) * n + j, acc[r]);
    }
  }
  if (j < n) {
    const __m256i mask = tail_mask(n - j);
    __m256 acc[R];
    for (int r = 0; r < R; ++r) {
      acc[r] = accumulate ? _mm256_maskload_ps(c + (i0 + r) * n + j, mask)
                          : _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < k; ++p) {
      // Masked-out lanes load as 0, accumulate 0, and are never stored.
      const __m256 bv = _mm256_maskload_ps(b + p * n + j, mask);
      for (int r = 0; r < R; ++r) {
        acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + (i0 + r) * k + p),
                                 bv, acc[r]);
      }
    }
    for (int r = 0; r < R; ++r) {
      _mm256_maskstore_ps(c + (i0 + r) * n + j, mask, acc[r]);
    }
  }
}

inline float hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// T columns of one gemm_nt row: T independent dot products sharing the A-row
// stream.  Two accumulators per column hide FMA latency on the k loop; each
// column's reduction shape is fixed regardless of T, so tail columns
// (T < 4) produce the same bits as tiled ones.
template <int T>
void nt_cols(const float* arow, const float* b, std::size_t k, float* cout,
             bool accumulate) {
  __m256 acc0[T];
  __m256 acc1[T];
  for (int t = 0; t < T; ++t) {
    acc0[t] = _mm256_setzero_ps();
    acc1[t] = _mm256_setzero_ps();
  }
  std::size_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256 av0 = _mm256_loadu_ps(arow + p);
    const __m256 av1 = _mm256_loadu_ps(arow + p + 8);
    for (int t = 0; t < T; ++t) {
      acc0[t] = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b + t * k + p), acc0[t]);
      acc1[t] = _mm256_fmadd_ps(av1,
                                _mm256_loadu_ps(b + t * k + p + 8), acc1[t]);
    }
  }
  for (; p + 8 <= k; p += 8) {
    const __m256 av = _mm256_loadu_ps(arow + p);
    for (int t = 0; t < T; ++t) {
      acc0[t] = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + t * k + p), acc0[t]);
    }
  }
  for (int t = 0; t < T; ++t) {
    float s = hsum256(_mm256_add_ps(acc0[t], acc1[t]));
    for (std::size_t q = p; q < k; ++q) s += arow[q] * b[t * k + q];
    cout[t] = accumulate ? cout[t] + s : s;
  }
}

}  // namespace

void gemm_nn_rows_avx2(std::size_t r0, std::size_t r1, std::size_t /*m*/,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  std::size_t i = r0;
  for (; i + 8 <= r1; i += 8) nn_tile<8>(i, n, k, a, b, c, accumulate);
  switch (r1 - i) {
    case 7: nn_tile<7>(i, n, k, a, b, c, accumulate); break;
    case 6: nn_tile<6>(i, n, k, a, b, c, accumulate); break;
    case 5: nn_tile<5>(i, n, k, a, b, c, accumulate); break;
    case 4: nn_tile<4>(i, n, k, a, b, c, accumulate); break;
    case 3: nn_tile<3>(i, n, k, a, b, c, accumulate); break;
    case 2: nn_tile<2>(i, n, k, a, b, c, accumulate); break;
    case 1: nn_tile<1>(i, n, k, a, b, c, accumulate); break;
    default: break;
  }
}

void gemm_nt_rows_avx2(std::size_t r0, std::size_t r1, std::size_t /*m*/,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      nt_cols<4>(arow, b + j * k, k, crow + j, accumulate);
    }
    switch (n - j) {
      case 3: nt_cols<3>(arow, b + j * k, k, crow + j, accumulate); break;
      case 2: nt_cols<2>(arow, b + j * k, k, crow + j, accumulate); break;
      case 1: nt_cols<1>(arow, b + j * k, k, crow + j, accumulate); break;
      default: break;
    }
  }
}

void gemm_tn_rows_avx2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = r0; i < r1; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;  // ReLU-sparse activations skip whole rows
      float* crow = c + i * n;
      const __m256 avv = _mm256_set1_ps(av);
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 cv = _mm256_loadu_ps(crow + j);
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow + j), cv));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_q8_rows_avx2(std::size_t r0, std::size_t r1, std::size_t n,
                       std::size_t blocks, const std::int8_t* aq,
                       const float* as, const std::int8_t* bq,
                       const float* bs, float* c) {
  // Same exact integer block dot as the scalar kernel: widen each 16-byte
  // half to int16, madd pairs into int32 (|pair sum| <= 2*127*127, no
  // overflow), reduce.  The float statements mirror gemm_q8_rows_scalar
  // exactly, so output bits match scalar for any input.
  const std::size_t row_codes = blocks * kQ8Block;
  for (std::size_t i = r0; i < r1; ++i) {
    const std::int8_t* arow = aq + i * row_codes;
    const float* ascale = as + i * blocks;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* brow = bq + j * row_codes;
      const float* bscale = bs + j * blocks;
      float acc = 0.0F;
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        const std::int8_t* pa = arow + blk * kQ8Block;
        const std::int8_t* pb = brow + blk * kQ8Block;
        const __m256i a0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa)));
        const __m256i a1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + 16)));
        const __m256i b0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb)));
        const __m256i b1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 16)));
        const __m256i sum = _mm256_add_epi32(_mm256_madd_epi16(a0, b0),
                                             _mm256_madd_epi16(a1, b1));
        __m128i s = _mm_add_epi32(_mm256_castsi256_si128(sum),
                                  _mm256_extracti128_si256(sum, 1));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
        const std::int32_t dot = _mm_cvtsi128_si32(s);
        float contrib = ascale[blk] * bscale[blk];
        contrib *= static_cast<float>(dot);
        acc += contrib;
      }
      crow[j] = acc;
    }
  }
}

}  // namespace tdfm::kernels

#else  // non-x86: forward to the scalar kernels (cpuid reports unsupported)

namespace tdfm::kernels {

void gemm_nn_rows_avx2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  gemm_nn_rows_scalar(r0, r1, m, n, k, a, b, c, accumulate);
}
void gemm_nt_rows_avx2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  gemm_nt_rows_scalar(r0, r1, m, n, k, a, b, c, accumulate);
}
void gemm_tn_rows_avx2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  gemm_tn_rows_scalar(r0, r1, m, n, k, a, b, c, accumulate);
}
void gemm_q8_rows_avx2(std::size_t r0, std::size_t r1, std::size_t n,
                       std::size_t blocks, const std::int8_t* aq,
                       const float* as, const std::int8_t* bq,
                       const float* bs, float* c) {
  gemm_q8_rows_scalar(r0, r1, n, blocks, aq, as, bq, bs, c);
}

}  // namespace tdfm::kernels

#endif
