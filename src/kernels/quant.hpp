// q8_0 block quantization (llama.cpp-style).
//
// A row of k floats becomes ceil(k/32) blocks; each block stores 32 int8
// codes plus one fp32 scale = max|v| / 127.  Tail blocks are zero-padded, so
// a padded block contributes exactly 0 to any dot product and quantized
// operands of mismatched-but-equal logical width stay comparable.  Per fp32
// weight: 1 byte of code + 4/32 bytes of scale ≈ 1.125 bytes, a ~3.9x size
// reduction (the "4x smaller replicas" of the serving layer).
//
// Quantization is deterministic: std::lround (round half away from zero,
// independent of the FP environment) and a fixed block traversal order.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/aligned.hpp"

namespace tdfm::kernels {

inline constexpr std::size_t kQ8Block = 32;

/// A row-major matrix quantized row-wise: every row is an independent
/// sequence of q8_0 blocks over its `cols` entries.
struct Q8Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;            ///< logical (unpadded) row width
  std::size_t blocks_per_row = 0;  ///< ceil(cols / 32)
  AlignedBuffer<std::int8_t> data;  ///< [rows * blocks_per_row * 32]
  AlignedBuffer<float> scales;      ///< [rows * blocks_per_row]

  [[nodiscard]] bool empty() const { return rows == 0; }
  /// Bytes held by codes + scales (the replica-size accounting).
  [[nodiscard]] std::size_t byte_size() const {
    return data.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
};

/// Quantizes `rows` x `cols` row-major floats into `out`, reusing its
/// storage when large enough (hot-path activation quantization).
void quantize_rows_q8(const float* src, std::size_t rows, std::size_t cols,
                      Q8Matrix& out);

/// Convenience allocating overload (weight quantization, tests).
[[nodiscard]] Q8Matrix quantize_rows_q8(const float* src, std::size_t rows,
                                        std::size_t cols);

/// Reconstructs `rows * cols` floats (scale * code); round-trip error per
/// element is at most half a quantization step, scale/2.
void dequantize_rows_q8(const Q8Matrix& m, float* dst);

}  // namespace tdfm::kernels
