#include "kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "kernels/gemm_kernels.hpp"

namespace tdfm::kernels {

namespace {

constexpr KernelTable kScalarTable{gemm_nn_rows_scalar, gemm_nt_rows_scalar,
                                   gemm_tn_rows_scalar, gemm_q8_rows_scalar};
// SSE2 has no efficient int8 widening (needs SSE4.1), so its q8 entry is the
// scalar kernel — the q8 dot is exact either way, the choice is pure speed.
constexpr KernelTable kSse2Table{gemm_nn_rows_sse2, gemm_nt_rows_sse2,
                                 gemm_tn_rows_sse2, gemm_q8_rows_scalar};
constexpr KernelTable kAvx2Table{gemm_nn_rows_avx2, gemm_nt_rows_avx2,
                                 gemm_tn_rows_avx2, gemm_q8_rows_avx2};

// -1 = not yet resolved.  Resolution is idempotent (env + cpuid are fixed),
// so a racing first call is benign: both writers store the same value.
std::atomic<int> g_active{-1};

KernelKind best_supported() {
  if (kernel_supported(KernelKind::kAvx2)) return KernelKind::kAvx2;
  if (kernel_supported(KernelKind::kSse2)) return KernelKind::kSse2;
  return KernelKind::kScalar;
}

KernelKind resolve_from_env() {
  const char* env = std::getenv("TDFM_KERNEL");
  if (env == nullptr || *env == '\0') return best_supported();
  const auto parsed = parse_kernel(env);
  if (!parsed.has_value()) {
    throw std::runtime_error(std::string("TDFM_KERNEL: unknown kernel '") +
                             env + "' (expected scalar|sse2|avx2)");
  }
  if (!kernel_supported(*parsed)) {
    throw std::runtime_error(std::string("TDFM_KERNEL: kernel '") + env +
                             "' is not supported by this CPU");
  }
  return *parsed;
}

}  // namespace

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar: return "scalar";
    case KernelKind::kSse2: return "sse2";
    case KernelKind::kAvx2: return "avx2";
  }
  return "unknown";
}

std::optional<KernelKind> parse_kernel(std::string_view name) {
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "sse2") return KernelKind::kSse2;
  if (name == "avx2") return KernelKind::kAvx2;
  return std::nullopt;
}

bool kernel_supported(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case KernelKind::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case KernelKind::kAvx2:
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
    case KernelKind::kSse2:
    case KernelKind::kAvx2:
      return false;
#endif
  }
  return false;
}

std::vector<KernelKind> supported_kernels() {
  std::vector<KernelKind> out{KernelKind::kScalar};
  if (kernel_supported(KernelKind::kSse2)) out.push_back(KernelKind::kSse2);
  if (kernel_supported(KernelKind::kAvx2)) out.push_back(KernelKind::kAvx2);
  return out;
}

KernelKind active_kernel() {
  int cur = g_active.load(std::memory_order_acquire);
  if (cur < 0) {
    cur = static_cast<int>(resolve_from_env());
    g_active.store(cur, std::memory_order_release);
  }
  return static_cast<KernelKind>(cur);
}

void set_active_kernel(KernelKind kind) {
  if (!kernel_supported(kind)) {
    throw std::runtime_error(std::string("kernel '") + kernel_name(kind) +
                             "' is not supported by this CPU");
  }
  g_active.store(static_cast<int>(kind), std::memory_order_release);
}

const KernelTable& kernel_table(KernelKind kind) {
  switch (kind) {
    case KernelKind::kSse2: return kSse2Table;
    case KernelKind::kAvx2: return kAvx2Table;
    case KernelKind::kScalar: break;
  }
  return kScalarTable;
}

const KernelTable& active_table() { return kernel_table(active_kernel()); }

}  // namespace tdfm::kernels
