// 64-byte-aligned storage for kernel operands.
//
// The micro-kernels issue 32-byte vector loads; keeping operand buffers on
// 64-byte (cache-line) boundaries means a micro-tile row never straddles a
// line and aligned-move encodings stay available to the compiler.  Plain
// std::vector gives only alignof(std::max_align_t) (16 on this ABI), hence
// this minimal owning buffer.  Only trivially-copyable element types are
// supported — the kernels move raw floats and int8 blocks, nothing else.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tdfm::kernels {

inline constexpr std::size_t kKernelAlignment = 64;

template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer holds raw kernel operands only");

 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { resize(n); }
  ~AlignedBuffer() { deallocate(); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      deallocate();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Sets the logical size, reusing the allocation when it is big enough.
  /// Contents are NOT preserved or zeroed — callers overwrite every element
  /// (quantize writes the zero padding explicitly).
  void resize(std::size_t n) {
    if (n > capacity_) {
      deallocate();
      data_ = static_cast<T*>(::operator new(
          n * sizeof(T), std::align_val_t{kKernelAlignment}));
      capacity_ = n;
    }
    size_ = n;
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void deallocate() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kKernelAlignment});
      data_ = nullptr;
    }
    size_ = capacity_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace tdfm::kernels
