// SSE2 kernels: 128-bit mul+add loops with scalar tails.  This is the x86-64
// baseline fallback, not the performance target — the loops stay simple.  No
// FMA is used, and the TU is compiled with contraction off, so products and
// additions round separately (same statement-level semantics as scalar; the
// 4-lane reduction in nt still reorders additions, which the checker bounds).
//
// The q8 table entry for sse2 points at the scalar q8 kernel (dispatch.cpp):
// efficient int8 widening needs SSE4.1, and the scalar integer dot is exact
// anyway, so there is nothing to gain below AVX2.
#include "kernels/gemm_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <cstring>

namespace tdfm::kernels {

void gemm_nn_rows_sse2(std::size_t r0, std::size_t r1, std::size_t /*m*/,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
  for (std::size_t i = r0; i < r1; ++i) {
    const float* __restrict__ arow = a + i * k;
    float* __restrict__ crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* __restrict__ brow = b + p * n;
      const __m128 avv = _mm_set1_ps(av);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m128 bv = _mm_loadu_ps(brow + j);
        const __m128 cv = _mm_loadu_ps(crow + j);
        _mm_storeu_ps(crow + j, _mm_add_ps(cv, _mm_mul_ps(avv, bv)));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt_rows_sse2(std::size_t r0, std::size_t r1, std::size_t /*m*/,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* __restrict__ arow = a + i * k;
    float* __restrict__ crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = b + j * k;
      __m128 accv = _mm_setzero_ps();
      std::size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const __m128 av = _mm_loadu_ps(arow + p);
        const __m128 bv = _mm_loadu_ps(brow + p);
        accv = _mm_add_ps(accv, _mm_mul_ps(av, bv));
      }
      // Horizontal sum of the 4 lanes: (0+2, 1+3), then +shuffled.
      __m128 s = _mm_add_ps(accv, _mm_movehl_ps(accv, accv));
      s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
      float acc = _mm_cvtss_f32(s);
      for (; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void gemm_tn_rows_sse2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
  for (std::size_t p = 0; p < k; ++p) {
    const float* __restrict__ arow = a + p * m;
    const float* __restrict__ brow = b + p * n;
    for (std::size_t i = r0; i < r1; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;  // ReLU-sparse activations skip whole rows
      float* __restrict__ crow = c + i * n;
      const __m128 avv = _mm_set1_ps(av);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m128 bv = _mm_loadu_ps(brow + j);
        const __m128 cv = _mm_loadu_ps(crow + j);
        _mm_storeu_ps(crow + j, _mm_add_ps(cv, _mm_mul_ps(avv, bv)));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace tdfm::kernels

#else  // non-x86: forward to the scalar kernels (cpuid reports unsupported)

namespace tdfm::kernels {

void gemm_nn_rows_sse2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  gemm_nn_rows_scalar(r0, r1, m, n, k, a, b, c, accumulate);
}
void gemm_nt_rows_sse2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  gemm_nt_rows_scalar(r0, r1, m, n, k, a, b, c, accumulate);
}
void gemm_tn_rows_sse2(std::size_t r0, std::size_t r1, std::size_t m,
                       std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  gemm_tn_rows_scalar(r0, r1, m, n, k, a, b, c, accumulate);
}

}  // namespace tdfm::kernels

#endif
