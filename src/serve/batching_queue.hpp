// Micro-batching request queue with admission control.
//
// Single-image requests are coalesced into micro-batches so inference
// amortises the im2col+GEMM cost the way training batches do: a batch is
// flushed to a worker when `max_batch_size` requests are pending OR the
// oldest pending request has waited `max_queue_delay_us` — whichever comes
// first.  Under saturating load the queue always hands out full batches;
// under trickle load no request waits longer than the delay bound.
//
// Admission control keeps the system degrade-gracefully-never-OOM:
//   - the queue is bounded at `max_queue_depth`; a push beyond that is
//     rejected immediately (kRejectedQueueFull) instead of queued,
//   - requests whose deadline expires while queued are rejected at batch
//     formation (kRejectedDeadline) and never reach a worker,
//   - shutdown() rejects everything still pending with kRejectedShutdown,
//   - drain() instead stops admission but *serves* everything already
//     queued: pop_batch flushes the remaining requests immediately (no
//     delay-bound wait) and returns empty only once the queue is dry.
// Every push therefore resolves its future exactly once.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace tdfm::serve {

struct BatchingConfig {
  std::size_t max_batch_size = 8;        ///< flush threshold (and batch cap)
  std::uint64_t max_queue_delay_us = 2000;  ///< oldest-request wait bound
  std::size_t max_queue_depth = 256;     ///< admission bound (>= max_batch_size)
};

class BatchingQueue {
 public:
  explicit BatchingQueue(BatchingConfig config);

  /// Admits one request (or rejects it immediately when the queue is full,
  /// the deadline already passed, or the queue is shut down).  Returns the
  /// future either way — it is always eventually resolved.
  [[nodiscard]] std::future<Response> push(Tensor image, Clock::time_point deadline);

  /// Blocks until a batch is ready per the flush rule, removes and returns
  /// it (1..max_batch_size requests, deadline-expired ones already rejected
  /// and excluded).  Returns an empty vector exactly when the queue is shut
  /// down and drained — the worker-exit signal.
  [[nodiscard]] std::vector<Request> pop_batch();

  /// Rejects every pending request with kRejectedShutdown and makes all
  /// current and future pop_batch calls return empty.  Idempotent.
  void shutdown();

  /// Stops admission (further pushes are rejected with kRejectedShutdown)
  /// but lets workers flush every already-admitted request: pop_batch hands
  /// out the backlog in immediate batches and returns empty once the queue
  /// is dry.  The graceful counterpart of shutdown(), used by canary
  /// teardown so in-flight shadow requests resolve deterministically.
  /// Idempotent; a later shutdown() still wins (rejecting any remainder).
  void drain();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] const BatchingConfig& config() const { return config_; }

  /// Rejection tallies (also exported as obs counters by the engine).
  [[nodiscard]] std::uint64_t rejected_capacity() const;
  [[nodiscard]] std::uint64_t rejected_deadline() const;

 private:
  BatchingConfig config_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<Request> pending_;
  bool shutdown_ = false;
  bool draining_ = false;
  std::uint64_t rejected_capacity_ = 0;
  std::uint64_t rejected_deadline_ = 0;
};

}  // namespace tdfm::serve
