// Request/response types of the serving layer.
//
// A request is one image classified against a named logical model; the
// response carries the verdict plus the measurements the load bench and the
// latency histograms are built from (queue wait vs compute, the batch the
// request rode in, the model version that answered).  Every submitted
// request is answered exactly once — accepted requests with a prediction,
// everything else with an explicit rejection status (admission control,
// deadline, shutdown).  Nothing is silently dropped.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>

#include "tensor/tensor.hpp"

namespace tdfm::serve {

using Clock = std::chrono::steady_clock;

/// Terminal status of a request.  Everything except kOk is a *rejection*:
/// the request never produced a prediction, by design (graceful degradation
/// instead of unbounded queues).
enum class Status {
  kOk,                 ///< classified
  kRejectedQueueFull,  ///< admission control: queue at max_queue_depth
  kRejectedDeadline,   ///< deadline passed before a worker picked it up
  kRejectedShutdown,   ///< engine shut down while the request was queued
  kRejectedNoModel,    ///< logical model has no loaded version
};

[[nodiscard]] const char* status_name(Status status);

/// What a client's future resolves to.
struct Response {
  Status status = Status::kRejectedShutdown;
  int predicted_class = -1;        ///< valid only when status == kOk
  std::uint64_t model_version = 0; ///< registry version that served it
  double queue_us = 0.0;           ///< admission -> batch formation
  double compute_us = 0.0;         ///< batch forward-pass wall time
  std::size_t batch_size = 0;      ///< size of the micro-batch it rode in

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// A queued request (internal to BatchingQueue / InferenceEngine).
struct Request {
  Tensor image;                ///< one sample, no batch dim ([C,H,W])
  Clock::time_point enqueue;   ///< admission time
  Clock::time_point deadline;  ///< Clock::time_point::max() = none
  std::promise<Response> promise;
};

}  // namespace tdfm::serve
