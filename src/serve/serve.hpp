// Umbrella header for the tdfm serving layer:
//   - request.hpp          request/response/status types
//   - batching_queue.hpp   micro-batch coalescing + admission control
//   - model_registry.hpp   named+versioned models, wait-light hot swap
//   - inference_engine.hpp worker threads, futures, obs integration
//
// Quick tour (see DESIGN.md "Serving layer"):
//
//   serve::ModelRegistry registry(/*replica_slots=*/2);
//   registry.load("signs", "signs.ckpt");          // v2 self-describing file
//   serve::EngineConfig cfg;
//   cfg.workers = 2;
//   cfg.batching.max_batch_size = 8;
//   serve::InferenceEngine engine(registry, "signs", cfg);
//   auto future = engine.submit(image);            // [C,H,W] tensor
//   serve::Response r = future.get();              // r.ok(), r.predicted_class
//   registry.load("signs", "signs_v2.ckpt");       // hot swap, requests in flight
#pragma once

#include "serve/batching_queue.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
