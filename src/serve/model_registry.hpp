// Named + versioned model store with wait-light hot swap.
//
// A *logical model* is what clients address by name; a *ServedModel* is one
// immutable-by-convention version of it: every member network replicated
// once per worker slot.  Replication exists because a forward pass mutates
// layer caches, so one nn::Network cannot run two batches concurrently —
// instead worker slot `s` owns replica `s` of every member exclusively, and
// N workers serve N batches in parallel with zero synchronisation on the
// networks themselves.
//
// Hot swap: each name maps to a stable Entry whose current version lives in
// a one-word-spinlock-guarded shared_ptr slot (atomic<shared_ptr> in spirit;
// hand-rolled so TSan models it exactly — see the VersionSlot comment in the
// .cpp).  Publishing a new version is one slot store; a worker takes one
// slot load (a refcount bump) per *batch*, so a batch is always served
// end-to-end by exactly one fully-constructed version (never a half-swapped
// mix), and in-flight batches keep the old version alive via shared
// ownership until they finish.
//
// Versions loaded from v2 checkpoints are self-describing (the header names
// the zoo architecture and geometry); v1 count-only checkpoints need the
// architecture supplied explicitly.  An ensemble is several member
// checkpoints behind one name — served with the same majority-vote +
// summed-confidence-tiebreak rule as mitigation::EnsembleClassifier, so the
// paper's highest-inference-cost technique is exercised end to end on the
// request path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/model_zoo.hpp"
#include "nn/network.hpp"

namespace tdfm::serve {

/// One member of a logical model: the fitted network plus a factory that
/// builds structurally identical instances (for per-slot replicas).
struct MemberInit {
  nn::NetworkFactory factory;
  std::unique_ptr<nn::Network> fitted;
};

/// One immutable version of a logical model, replicated per worker slot.
class ServedModel {
 public:
  /// Builds `slots` replicas of every member and copies the fitted weights
  /// into each (including slot 0, so every slot is bit-identical by
  /// construction).  The fitted networks are only read.  With `quantize`
  /// each replica is converted to q8_0 inference form after the copy, so
  /// every per-worker replica holds ~4x less weight storage.
  ServedModel(std::string name, std::uint64_t version,
              std::vector<MemberInit> members, std::size_t slots,
              bool quantize = false);

  /// Classifies one micro-batch (leading dim = batch) using slot `slot`'s
  /// replicas.  Each slot must be driven by at most one thread at a time —
  /// the InferenceEngine maps worker i to slot i.  Single member: argmax.
  /// Multiple members: majority vote, ties broken by summed softmax
  /// confidence (mirrors mitigation::EnsembleClassifier).
  [[nodiscard]] std::vector<int> predict(const Tensor& batch, std::size_t slot);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::size_t num_members() const { return replicas_.size(); }
  [[nodiscard]] std::size_t slots() const { return slots_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] bool quantized() const { return quantized_; }

 private:
  std::string name_;
  std::uint64_t version_;
  std::size_t slots_;
  std::size_t num_classes_;
  bool quantized_ = false;
  /// replicas_[member][slot]; slot s is owned by worker s while serving.
  std::vector<std::vector<std::unique_ptr<nn::Network>>> replicas_;
};

class ModelRegistry {
 public:
  /// `replica_slots` = number of concurrent workers a version must support.
  explicit ModelRegistry(std::size_t replica_slots = 1);
  ~ModelRegistry();  // out of line: Handle::Entry is complete only in the .cpp

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Stable, copyable accessor bound to one logical model name.  snapshot()
  /// is a single slot load (one refcount bump) — the per-batch hot-path read.
  class Handle {
   public:
    Handle() = default;
    /// Current version (nullptr when none is loaded yet).
    [[nodiscard]] std::shared_ptr<ServedModel> snapshot() const;

   private:
    friend class ModelRegistry;
    struct Entry;
    explicit Handle(Entry* entry) : entry_(entry) {}
    Entry* entry_ = nullptr;
  };

  /// Publishes a new version built from already-fitted members.  Returns
  /// the version number (1-based, monotone per name).  `quantize` converts
  /// every replica to q8_0 inference form (here and in every load below).
  std::uint64_t install(const std::string& name, std::vector<MemberInit> members,
                        bool quantize = false);

  /// Loads a self-describing v2 checkpoint: instantiates the architecture
  /// named in the header, restores the weights, publishes.  Throws on v1
  /// files (no metadata) — use the explicit-architecture overload.
  std::uint64_t load(const std::string& name, const std::string& checkpoint_path,
                     bool quantize = false);

  /// Loads a v1 (count-only) checkpoint with the architecture supplied out
  /// of band.  Also accepts v2 files (the header is validated then unused).
  std::uint64_t load(const std::string& name, const std::string& checkpoint_path,
                     models::Arch arch, const models::ModelConfig& config,
                     bool quantize = false);

  /// Loads several v2 checkpoints as the members of one logical ensemble.
  std::uint64_t load_ensemble(const std::string& name,
                              const std::vector<std::string>& checkpoint_paths,
                              bool quantize = false);

  /// Handle for `name`, creating an empty entry when absent (a model can be
  /// loaded after engines already hold handles to it).
  [[nodiscard]] Handle handle(const std::string& name);

  /// Convenience: current version of `name` (nullptr when none / unknown).
  [[nodiscard]] std::shared_ptr<ServedModel> current(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t replica_slots() const { return slots_; }

 private:
  Handle::Entry& entry(const std::string& name);
  std::uint64_t publish(const std::string& name, std::vector<MemberInit> members,
                        bool quantize);

  std::size_t slots_;
  mutable std::mutex mu_;  ///< guards the name map only, never the hot path
  std::map<std::string, std::unique_ptr<Handle::Entry>> entries_;
};

}  // namespace tdfm::serve
