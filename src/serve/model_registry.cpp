#include "serve/model_registry.hpp"

#include <utility>

#include "nn/checkpoint.hpp"
#include "nn/trainer.hpp"
#include "obs/flight_recorder.hpp"
#include "tensor/tensor_ops.hpp"

namespace tdfm::serve {

ServedModel::ServedModel(std::string name, std::uint64_t version,
                         std::vector<MemberInit> members, std::size_t slots,
                         bool quantize)
    : name_(std::move(name)), version_(version), slots_(slots),
      quantized_(quantize) {
  TDFM_CHECK(!members.empty(), "a served model needs at least one member");
  TDFM_CHECK(slots_ >= 1, "a served model needs at least one replica slot");
  num_classes_ = members.front().fitted->num_classes();
  replicas_.reserve(members.size());
  // The replica init RNG is irrelevant to behaviour (every weight is
  // overwritten by the copy below) but a fixed seed keeps construction
  // deterministic anyway.
  Rng rng(0x5e7f3u + version_);
  for (MemberInit& member : members) {
    TDFM_CHECK(member.factory != nullptr && member.fitted != nullptr,
               "member needs a factory and a fitted network");
    TDFM_CHECK(member.fitted->num_classes() == num_classes_,
               "ensemble members must agree on the class count");
    std::vector<std::unique_ptr<nn::Network>> slots_for_member;
    slots_for_member.reserve(slots_);
    for (std::size_t s = 0; s < slots_; ++s) {
      std::unique_ptr<nn::Network> replica = member.factory(rng);
      replica->copy_weights_from(*member.fitted);
      // Quantize after the fp32 copy: the checkpoint stays fp32 on disk and
      // only the in-memory replica shrinks.
      if (quantize) replica->quantize_for_inference();
      slots_for_member.push_back(std::move(replica));
    }
    replicas_.push_back(std::move(slots_for_member));
  }
}

std::vector<int> ServedModel::predict(const Tensor& batch, std::size_t slot) {
  TDFM_CHECK(slot < slots_, "replica slot out of range");
  const std::size_t n = batch.dim(0);
  if (replicas_.size() == 1) {
    return nn::predict_batch(*replicas_[0][slot], batch);
  }
  // Ensemble: majority vote over member argmaxes, ties (and only ties)
  // broken by summed softmax confidence — the EnsembleClassifier rule.
  const std::size_t k = num_classes_;
  std::vector<std::size_t> votes(n * k, 0);
  std::vector<float> confidence(n * k, 0.0F);
  for (auto& member : replicas_) {
    const Tensor probs =
        softmax_rows(member[slot]->logits(batch, /*training=*/false), 1.0F);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = probs.row(i);
      ++votes[i * k + argmax(row)];
      for (std::size_t j = 0; j < k; ++j) confidence[i * k + j] += row[j];
    }
  }
  std::vector<int> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < k; ++j) {
      const std::size_t vj = votes[i * k + j];
      const std::size_t vb = votes[i * k + best];
      if (vj > vb || (vj == vb && confidence[i * k + j] > confidence[i * k + best])) {
        best = j;
      }
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

// The publication slot.  Semantically this is std::atomic<std::shared_ptr>,
// but hand-rolled over a one-word acquire/release spinlock: libstdc++'s
// _Sp_atomic parks spinning threads on a futex proxy, which defeats TSan's
// happens-before tracking and floods the (tier-1, TSan-gated) serve suite
// with false races.  The critical section is a single shared_ptr copy (one
// refcount bump), publications are rare, and readers take the slot once per
// batch — contention is negligible by construction.
class VersionSlot {
 public:
  [[nodiscard]] std::shared_ptr<ServedModel> load() const {
    lock();
    std::shared_ptr<ServedModel> out = ptr_;
    unlock();
    return out;
  }

  void store(std::shared_ptr<ServedModel> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` (the previous version) releases outside the critical section;
    // in-flight batches holding it keep it alive until they finish.
  }

 private:
  void lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<ServedModel> ptr_;
};

struct ModelRegistry::Handle::Entry {
  VersionSlot current;
  std::atomic<std::uint64_t> next_version{1};
};

std::shared_ptr<ServedModel> ModelRegistry::Handle::snapshot() const {
  if (entry_ == nullptr) return nullptr;
  return entry_->current.load();
}

ModelRegistry::ModelRegistry(std::size_t replica_slots) : slots_(replica_slots) {
  TDFM_CHECK(slots_ >= 1, "registry needs at least one replica slot");
}

ModelRegistry::~ModelRegistry() = default;

ModelRegistry::Handle::Entry& ModelRegistry::entry(const std::string& name) {
  TDFM_CHECK(!name.empty(), "model name must not be empty");
  const std::lock_guard<std::mutex> lk(mu_);
  std::unique_ptr<Handle::Entry>& slot = entries_[name];
  if (!slot) slot = std::make_unique<Handle::Entry>();
  return *slot;
}

std::uint64_t ModelRegistry::publish(const std::string& name,
                                     std::vector<MemberInit> members,
                                     bool quantize) {
  Handle::Entry& e = entry(name);
  const std::uint64_t version = e.next_version.fetch_add(1, std::memory_order_relaxed);
  auto model = std::make_shared<ServedModel>(name, version, std::move(members), slots_,
                                             quantize);
  // One slot store publishes the fully-constructed version; readers that
  // loaded the previous shared_ptr keep it alive until their batch is done.
  e.current.store(std::move(model));
  if (obs::flight::enabled()) {
    obs::flight::record(obs::flight::EventKind::kHotSwap,
                        name + " v" + std::to_string(version));
  }
  return version;
}

std::uint64_t ModelRegistry::install(const std::string& name,
                                     std::vector<MemberInit> members,
                                     bool quantize) {
  return publish(name, std::move(members), quantize);
}

std::uint64_t ModelRegistry::load(const std::string& name,
                                  const std::string& checkpoint_path,
                                  bool quantize) {
  const nn::CheckpointMeta meta = nn::read_checkpoint_meta(checkpoint_path);
  const models::Arch arch = models::arch_from_name(meta.arch);
  // A v3 header records the deployment form: a checkpoint saved as
  // "quantized" is re-quantized on load even when the caller passes false,
  // so promoted q8 candidates never silently revert to fp32.
  return load(name, checkpoint_path, arch, models::config_from_meta(meta),
              quantize || meta.quantize);
}

std::uint64_t ModelRegistry::load(const std::string& name,
                                  const std::string& checkpoint_path,
                                  models::Arch arch,
                                  const models::ModelConfig& config,
                                  bool quantize) {
  MemberInit member;
  member.factory = models::make_factory(arch, config);
  Rng rng(0x10adu);
  member.fitted = member.factory(rng);
  nn::load_checkpoint(*member.fitted, checkpoint_path);
  std::vector<MemberInit> members;
  members.push_back(std::move(member));
  return publish(name, std::move(members), quantize);
}

std::uint64_t ModelRegistry::load_ensemble(
    const std::string& name, const std::vector<std::string>& checkpoint_paths,
    bool quantize) {
  TDFM_CHECK(!checkpoint_paths.empty(), "ensemble needs at least one checkpoint");
  std::vector<MemberInit> members;
  members.reserve(checkpoint_paths.size());
  Rng rng(0x10adu);
  bool any_quantized = quantize;
  for (const std::string& path : checkpoint_paths) {
    const nn::CheckpointMeta meta = nn::read_checkpoint_meta(path);
    any_quantized = any_quantized || meta.quantize;
    MemberInit member;
    member.factory = models::make_factory(models::arch_from_name(meta.arch),
                                          models::config_from_meta(meta));
    member.fitted = member.factory(rng);
    nn::load_checkpoint(*member.fitted, path);
    members.push_back(std::move(member));
  }
  // Quantization is a property of the served version, so one member saved
  // quantized promotes the whole ensemble to q8 serving form.
  return publish(name, std::move(members), any_quantized);
}

ModelRegistry::Handle ModelRegistry::handle(const std::string& name) {
  return Handle(&entry(name));
}

std::shared_ptr<ServedModel> ModelRegistry::current(const std::string& name) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return it->second->current.load();
}

std::vector<std::string> ModelRegistry::names() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    if (e->current.load() != nullptr) out.push_back(name);
  }
  return out;
}

}  // namespace tdfm::serve
