// Inference engine: worker threads draining the batching queue against the
// registry's current model version.
//
// Each of the N workers loops: pop a micro-batch, snapshot the logical
// model's current version (one atomic load — the hot-swap point), stack the
// requests into one [B, ...] tensor, run a single forward pass on the
// worker's own replica slot, and resolve every request's future.  Because
// the snapshot is taken once per batch, a batch is never served by a
// partially-swapped model, and because each worker owns replica slot i of
// every version exclusively, no two threads ever touch the same network.
//
// Workers mark themselves ThreadPool::InlineScope: the shared pool's
// for_range is single-job, and N independent single-batch forwards are
// already the parallelism we want — per-layer chunking inside them would
// only add contention.
//
// Observability (all under the standard obs gates):
//   counters    serve.requests, serve.batches, serve.rejected_capacity,
//               serve.rejected_deadline, serve.rejected_shutdown,
//               serve.rejected_no_model
//   histograms  serve.queue_wait_us, serve.compute_us (µs exponential
//               buckets), serve.batch_size (linear buckets)
//   gauge       serve.queue_depth (sampled at batch formation)
//   trace span  "serve:batch" per batch on the worker's lane
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/batching_queue.hpp"
#include "serve/model_registry.hpp"

namespace tdfm::serve {

struct EngineConfig {
  std::size_t workers = 2;       ///< worker threads (each needs a replica slot)
  BatchingConfig batching;
  /// Deadline applied by submit(image) relative to admission; 0 = none.
  std::uint64_t default_deadline_us = 0;
  /// Intra-batch parallelism: the worker drives the shared ThreadPool inside
  /// its forward passes, spreading a micro-batch's rows across pool threads
  /// (conv/GEMM already split on the batch dimension).  This is where
  /// micro-batching beats batch-size-1 on multi-core hosts: a batch of 8
  /// fans out over 8 threads while single images can use only one.  Allowed
  /// only with workers == 1 (the pool's for_range is single-job), and the
  /// application must not run other pool work (e.g. training) concurrently.
  /// When false, workers run their forwards inline and parallelism comes
  /// from serving many batches at once on replicas (inter-batch).
  bool use_thread_pool = false;
};

/// Aggregate counters mirrored locally so tests and the bench can read them
/// without enabling the metrics registry.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t rejected_capacity = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_no_model = 0;
};

class InferenceEngine {
 public:
  /// Binds to the logical model `model_name` in `registry`.  The model may
  /// be loaded (or hot-swapped) before, during, or after construction; the
  /// registry must outlive the engine and must have been created with
  /// replica_slots >= cfg.workers.
  InferenceEngine(ModelRegistry& registry, std::string model_name, EngineConfig cfg);

  /// Shuts down and joins the workers (pending requests are rejected).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submits one image ([C,H,W] — no batch dimension) with the config's
  /// default deadline.  The returned future always resolves.
  [[nodiscard]] std::future<Response> submit(Tensor image);

  /// Submits with an explicit absolute deadline.
  [[nodiscard]] std::future<Response> submit(Tensor image, Clock::time_point deadline);

  /// Stops admission, rejects everything queued, joins workers.  Idempotent.
  void shutdown();

  /// Graceful teardown: stops admission, lets the workers *serve* every
  /// already-admitted request, then joins them.  Because each accepted
  /// request resolves with a real prediction instead of kRejectedShutdown,
  /// callers that submitted a fixed request sequence observe a
  /// deterministic response set regardless of how teardown races batch
  /// formation — the property the pipeline's byte-stable decision log
  /// relies on.  Idempotent, and interchangeable with shutdown() once
  /// either has run.
  void drain();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const std::string& model_name() const { return model_name_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

 private:
  void worker_loop(std::size_t slot);

  EngineConfig config_;
  std::string model_name_;
  ModelRegistry::Handle handle_;
  BatchingQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> rejected_no_model_{0};
};

}  // namespace tdfm::serve
