#include "serve/inference_engine.hpp"

#include <cstring>
#include <optional>
#include <utility>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdfm::serve {

namespace {

const char* kStatusNames[] = {"ok", "rejected_queue_full", "rejected_deadline",
                              "rejected_shutdown", "rejected_no_model"};

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Stacks single-sample tensors into one batch tensor (leading batch dim).
Tensor stack_batch(const std::vector<Request>& batch) {
  const Shape& sample = batch.front().image.shape();
  std::vector<std::size_t> dims;
  dims.reserve(sample.rank() + 1);
  dims.push_back(batch.size());
  for (std::size_t d = 0; d < sample.rank(); ++d) dims.push_back(sample[d]);
  Tensor out{Shape(dims)};
  const std::size_t row = batch.front().image.numel();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TDFM_CHECK(batch[i].image.shape() == sample,
               "all requests of a batch must share the sample shape");
    std::memcpy(out.data() + i * row, batch[i].image.data(), row * sizeof(float));
  }
  return out;
}

}  // namespace

const char* status_name(Status status) {
  return kStatusNames[static_cast<std::size_t>(status)];
}

InferenceEngine::InferenceEngine(ModelRegistry& registry, std::string model_name,
                                 EngineConfig cfg)
    : config_(cfg),
      model_name_(std::move(model_name)),
      handle_(registry.handle(model_name_)),
      queue_(cfg.batching) {
  TDFM_CHECK(config_.workers >= 1, "engine needs at least one worker");
  TDFM_CHECK(config_.workers <= registry.replica_slots(),
             "registry has fewer replica slots than engine workers");
  TDFM_CHECK(!config_.use_thread_pool || config_.workers == 1,
             "use_thread_pool requires a single worker (for_range is "
             "single-job across external threads)");
  workers_.reserve(config_.workers);
  for (std::size_t slot = 0; slot < config_.workers; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::future<Response> InferenceEngine::submit(Tensor image) {
  const Clock::time_point deadline =
      config_.default_deadline_us == 0
          ? Clock::time_point::max()
          : Clock::now() + std::chrono::microseconds(config_.default_deadline_us);
  return submit(std::move(image), deadline);
}

std::future<Response> InferenceEngine::submit(Tensor image,
                                              Clock::time_point deadline) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) {
    static obs::Counter requests = obs::Registry::global().counter("serve.requests");
    requests.add(1);
  }
  return queue_.push(std::move(image), deadline);
}

void InferenceEngine::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.shutdown();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void InferenceEngine::drain() {
  if (stopped_.exchange(true)) return;
  queue_.drain();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Belt and braces: nothing can be pending (workers exit only on a dry
  // drained queue), but mark the queue terminally shut so any
  // post-teardown push is rejected through the same path as shutdown().
  queue_.shutdown();
}

EngineStats InferenceEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rejected_capacity = queue_.rejected_capacity();
  s.rejected_deadline = queue_.rejected_deadline();
  s.rejected_no_model = rejected_no_model_.load(std::memory_order_relaxed);
  return s;
}

void InferenceEngine::worker_loop(std::size_t slot) {
  // Multi-worker engines run their forwards inline: N single-batch forwards
  // on N workers are the parallelism, and the shared for_range scheduler is
  // single-job / non-reentrant across external threads.  A single-worker
  // engine may instead opt into the pool (use_thread_pool) so each batched
  // forward fans its rows out across pool threads.
  std::optional<core::ThreadPool::InlineScope> inline_scope;
  if (!config_.use_thread_pool) inline_scope.emplace();
  for (;;) {
    std::vector<Request> batch = queue_.pop_batch();
    if (batch.empty()) return;  // shutdown drained the queue

    // The hot-swap point: one acquire load pins a fully-constructed version
    // for this entire batch.
    std::shared_ptr<ServedModel> model = handle_.snapshot();
    const Clock::time_point formed = Clock::now();
    if (!model) {
      rejected_no_model_.fetch_add(batch.size(), std::memory_order_relaxed);
      for (Request& req : batch) {
        Response resp;
        resp.status = Status::kRejectedNoModel;
        req.promise.set_value(resp);
      }
      continue;
    }

    obs::Span span("serve:batch");
    const Tensor input = stack_batch(batch);
    const std::vector<int> classes = model->predict(input, slot);
    const double compute_us = span.stop() * 1e6;

    batches_.fetch_add(1, std::memory_order_relaxed);
    served_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Response resp;
      resp.status = Status::kOk;
      resp.predicted_class = classes[i];
      resp.model_version = model->version();
      resp.queue_us = us_between(batch[i].enqueue, formed);
      resp.compute_us = compute_us;
      resp.batch_size = batch.size();
      batch[i].promise.set_value(resp);
    }

    if (obs::metrics_enabled()) {
      static obs::Histogram queue_wait = obs::Registry::global().histogram(
          "serve.queue_wait_us", obs::exponential_buckets(10.0, 2.0, 16));
      static obs::Histogram compute = obs::Registry::global().histogram(
          "serve.compute_us", obs::exponential_buckets(10.0, 2.0, 16));
      static obs::Histogram batch_hist = obs::Registry::global().histogram(
          "serve.batch_size", obs::linear_buckets(1.0, 1.0, 32));
      static obs::Counter batches_c = obs::Registry::global().counter("serve.batches");
      static obs::Counter served_c = obs::Registry::global().counter("serve.served");
      static obs::Gauge depth = obs::Registry::global().gauge("serve.queue_depth");
      for (const Request& req : batch) {
        queue_wait.observe(us_between(req.enqueue, formed));
      }
      compute.observe(compute_us);
      batch_hist.observe(static_cast<double>(batch.size()));
      batches_c.add(1);
      served_c.add(batch.size());
      depth.set(static_cast<double>(queue_.depth()));
    }
  }
}

}  // namespace tdfm::serve
