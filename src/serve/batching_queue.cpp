#include "serve/batching_queue.hpp"

#include <utility>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace tdfm::serve {

namespace {

void reject(Request& req, Status status) {
  if (obs::metrics_enabled()) {
    static obs::Counter cap =
        obs::Registry::global().counter("serve.rejected_capacity");
    static obs::Counter ddl =
        obs::Registry::global().counter("serve.rejected_deadline");
    static obs::Counter shut =
        obs::Registry::global().counter("serve.rejected_shutdown");
    switch (status) {
      case Status::kRejectedQueueFull: cap.add(1); break;
      case Status::kRejectedDeadline: ddl.add(1); break;
      case Status::kRejectedShutdown: shut.add(1); break;
      default: break;
    }
  }
  Response resp;
  resp.status = status;
  req.promise.set_value(resp);
}

}  // namespace

BatchingQueue::BatchingQueue(BatchingConfig config) : config_(config) {
  TDFM_CHECK(config_.max_batch_size >= 1, "max_batch_size must be >= 1");
  TDFM_CHECK(config_.max_queue_depth >= config_.max_batch_size,
             "max_queue_depth must admit at least one full batch");
}

std::future<Response> BatchingQueue::push(Tensor image, Clock::time_point deadline) {
  Request req;
  req.image = std::move(image);
  req.enqueue = Clock::now();
  req.deadline = deadline;
  std::future<Response> future = req.promise.get_future();

  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_ || draining_) {
      reject(req, Status::kRejectedShutdown);
      return future;
    }
    if (req.deadline <= req.enqueue) {
      ++rejected_deadline_;
      reject(req, Status::kRejectedDeadline);
      return future;
    }
    if (pending_.size() >= config_.max_queue_depth) {
      ++rejected_capacity_;
      reject(req, Status::kRejectedQueueFull);
      return future;
    }
    pending_.push_back(std::move(req));
  }
  ready_cv_.notify_one();
  return future;
}

std::vector<Request> BatchingQueue::pop_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (shutdown_) return {};
    // Deadline-expired requests are rejected here, before batch formation,
    // so a worker never spends compute on an answer nobody is waiting for.
    const Clock::time_point now = Clock::now();
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->deadline <= now) {
        ++rejected_deadline_;
        reject(*it, Status::kRejectedDeadline);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    // Draining flushes the backlog without waiting out the delay bound: no
    // new request can arrive to top a partial batch up, so waiting would
    // only delay teardown.
    if (pending_.size() >= config_.max_batch_size ||
        (!pending_.empty() &&
         (draining_ ||
          now - pending_.front().enqueue >=
              std::chrono::microseconds(config_.max_queue_delay_us)))) {
      const std::size_t take = std::min(pending_.size(), config_.max_batch_size);
      std::vector<Request> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      return batch;
    }
    if (draining_) return {};  // drained dry: the worker-exit signal
    if (pending_.empty()) {
      ready_cv_.wait(lk);
    } else {
      // Wake at the oldest request's flush point (or earlier on new work).
      ready_cv_.wait_until(lk, pending_.front().enqueue +
                                   std::chrono::microseconds(config_.max_queue_delay_us));
    }
  }
}

void BatchingQueue::shutdown() {
  std::deque<Request> drained;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
    drained.swap(pending_);
  }
  for (Request& req : drained) reject(req, Status::kRejectedShutdown);
  ready_cv_.notify_all();
}

void BatchingQueue::drain() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  ready_cv_.notify_all();
}

std::size_t BatchingQueue::depth() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

std::uint64_t BatchingQueue::rejected_capacity() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return rejected_capacity_;
}

std::uint64_t BatchingQueue::rejected_deadline() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return rejected_deadline_;
}

}  // namespace tdfm::serve
