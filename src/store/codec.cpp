#include "store/codec.hpp"

#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "core/varint.hpp"

#ifdef TDFM_HAVE_ZLIB
#include <zlib.h>
#endif

namespace tdfm::store {

namespace {

// --- built-in LZ codec ------------------------------------------------------
//
// LZ4-flavoured token stream, chosen for a trivially verifiable decoder:
//   token byte: high nibble = literal length, low nibble = match length - 4
//   (nibble 15 extends with 255-run bytes), then the literals, then a
//   2-byte little-endian backwards offset (1..65535).  The final sequence
//   carries literals only — its token's low nibble is unused (0) and no
//   offset follows.  Matching is greedy over a 64Ki hash table of 4-byte
//   prefixes; correctness never depends on the matcher, only the format.

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 15;

std::uint32_t hash4(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_len(std::string& out, std::size_t len) {
  // Extension bytes for a nibble that saturated at 15.
  while (len >= 255) {
    out += static_cast<char>(255);
    len -= 255;
  }
  out += static_cast<char>(len);
}

std::size_t get_len(std::string_view s, std::size_t& pos) {
  std::size_t len = 0;
  while (true) {
    if (pos >= s.size()) throw ConfigError("tlz: truncated length run");
    const auto b = static_cast<std::uint8_t>(s[pos++]);
    len += b;
    if (b != 255) return len;
  }
}

}  // namespace

std::string tlz_compress(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() / 2 + 16);
  std::vector<std::size_t> table(1u << kHashBits, SIZE_MAX);
  std::size_t lit_start = 0;  // first byte not yet emitted as a literal
  std::size_t i = 0;

  const auto emit = [&](std::size_t match_pos, std::size_t match_len) {
    const std::size_t lit_len = i - lit_start;
    const std::uint8_t lit_nibble = lit_len >= 15 ? 15 : lit_len;
    if (match_len > 0) {
      const std::size_t code = match_len - kMinMatch;
      const std::uint8_t match_nibble = code >= 15 ? 15 : code;
      out += static_cast<char>((lit_nibble << 4) | match_nibble);
      if (lit_nibble == 15) put_len(out, lit_len - 15);
      out.append(raw.data() + lit_start, lit_len);
      const std::size_t offset = i - match_pos;
      out += static_cast<char>(offset & 0xFF);
      out += static_cast<char>((offset >> 8) & 0xFF);
      if (match_nibble == 15) put_len(out, code - 15);
    } else {
      out += static_cast<char>(lit_nibble << 4);
      if (lit_nibble == 15) put_len(out, lit_len - 15);
      out.append(raw.data() + lit_start, lit_len);
    }
  };

  while (i + kMinMatch <= raw.size()) {
    const std::uint32_t h = hash4(raw.data() + i);
    const std::size_t cand = table[h];
    table[h] = i;
    if (cand != SIZE_MAX && i - cand <= kMaxOffset &&
        std::memcmp(raw.data() + cand, raw.data() + i, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      while (i + len < raw.size() && raw[cand + len] == raw[i + len]) ++len;
      emit(cand, len);
      i += len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  i = raw.size();
  emit(0, 0);  // final literals-only sequence (may be empty)
  return out;
}

std::string tlz_decompress(std::string_view comp, std::size_t raw_size) {
  std::string out;
  out.reserve(raw_size);
  std::size_t pos = 0;
  while (true) {
    if (pos >= comp.size()) throw ConfigError("tlz: truncated stream");
    const auto token = static_cast<std::uint8_t>(comp[pos++]);
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len += get_len(comp, pos);
    if (pos + lit_len > comp.size()) throw ConfigError("tlz: truncated literals");
    out.append(comp.data() + pos, lit_len);
    pos += lit_len;
    if (pos == comp.size()) break;  // final sequence: literals only
    if (pos + 2 > comp.size()) throw ConfigError("tlz: truncated offset");
    const std::size_t offset =
        static_cast<std::uint8_t>(comp[pos]) |
        (static_cast<std::size_t>(static_cast<std::uint8_t>(comp[pos + 1]))
         << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      throw ConfigError("tlz: match offset outside decoded window");
    }
    std::size_t match_len = (token & 0x0F) + kMinMatch;
    if ((token & 0x0F) == 15) match_len += get_len(comp, pos);
    if (out.size() + match_len > raw_size) {
      throw ConfigError("tlz: output overruns declared size");
    }
    // Byte-at-a-time on purpose: offsets < match_len replicate runs.
    const std::size_t start = out.size() - offset;
    for (std::size_t k = 0; k < match_len; ++k) out += out[start + k];
  }
  if (out.size() != raw_size) {
    throw ConfigError("tlz: decoded " + std::to_string(out.size()) +
                      " bytes, expected " + std::to_string(raw_size));
  }
  return out;
}

bool zlib_available() {
#ifdef TDFM_HAVE_ZLIB
  return true;
#else
  return false;
#endif
}

std::pair<Codec, std::string> compress_block(std::string_view raw) {
#ifdef TDFM_HAVE_ZLIB
  if (!raw.empty()) {
    uLongf bound = compressBound(static_cast<uLong>(raw.size()));
    std::string z(bound, '\0');
    const int rc =
        compress2(reinterpret_cast<Bytef*>(z.data()), &bound,
                  reinterpret_cast<const Bytef*>(raw.data()),
                  static_cast<uLong>(raw.size()), Z_DEFAULT_COMPRESSION);
    if (rc == Z_OK && bound < raw.size()) {
      z.resize(bound);
      return {Codec::kZlib, std::move(z)};
    }
  }
#else
  if (!raw.empty()) {
    std::string t = tlz_compress(raw);
    if (t.size() < raw.size()) return {Codec::kTlz, std::move(t)};
  }
#endif
  return {Codec::kRaw, std::string(raw)};
}

std::string decompress_block(Codec codec, std::string_view comp,
                             std::size_t raw_size) {
  switch (codec) {
    case Codec::kRaw:
      if (comp.size() != raw_size) {
        throw ConfigError("store block: raw size mismatch");
      }
      return std::string(comp);
    case Codec::kTlz:
      return tlz_decompress(comp, raw_size);
    case Codec::kZlib: {
#ifdef TDFM_HAVE_ZLIB
      std::string out(raw_size, '\0');
      uLongf dest_len = static_cast<uLongf>(raw_size);
      const int rc =
          uncompress(reinterpret_cast<Bytef*>(out.data()), &dest_len,
                     reinterpret_cast<const Bytef*>(comp.data()),
                     static_cast<uLong>(comp.size()));
      if (rc != Z_OK || dest_len != raw_size) {
        throw ConfigError("store block: zlib inflate failed");
      }
      return out;
#else
      throw ConfigError(
          "store block was compressed with zlib but this build has no zlib "
          "support — rebuild with zlib to read this store");
#endif
    }
  }
  throw ConfigError("store block: unknown codec " +
                    std::to_string(static_cast<int>(codec)));
}

}  // namespace tdfm::store
