// Block compression for store segments.
//
// Column blocks are small (a segment's worth of one column) and already
// entropy-reduced by the column encodings, so the codec's job is byte-level
// redundancy: repeated dictionary-id runs, XOR-zero runs, shared fp64
// prefixes.  `compress_block` picks the best available codec and falls back
// to kRaw whenever compression would not shrink the block, so a store is
// never larger than its raw encoding.
//
// Two real codecs:
//   kZlib — used when the build found zlib (TDFM_HAVE_ZLIB); best ratio.
//   kTlz  — a built-in LZ77 byte codec (greedy hash-chain matcher, LZ4-style
//           token stream), so builds without zlib still compress and any
//           build can *read* tlz/raw blocks.  Reading a zlib block on a
//           zlib-less build throws ConfigError naming the missing codec.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "store/format.hpp"

namespace tdfm::store {

/// True when this build can emit and read zlib blocks.
[[nodiscard]] bool zlib_available();

/// Compresses `raw` with the best available codec; returns kRaw + a copy of
/// the input when no codec shrinks it.
[[nodiscard]] std::pair<Codec, std::string> compress_block(std::string_view raw);

/// Decompresses a block back to exactly `raw_size` bytes.  Throws
/// ConfigError on malformed input, a size mismatch, or an unavailable codec.
[[nodiscard]] std::string decompress_block(Codec codec, std::string_view comp,
                                           std::size_t raw_size);

/// The built-in LZ codec, exposed for direct testing.
[[nodiscard]] std::string tlz_compress(std::string_view raw);
[[nodiscard]] std::string tlz_decompress(std::string_view comp,
                                         std::size_t raw_size);

}  // namespace tdfm::store
