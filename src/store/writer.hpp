// Store writer: appends CellRecords, cuts fixed-size segments, commits a
// crash-safe manifest.  See format.hpp for the layout and the crash-safety
// contract.
//
// The writer is append-friendly across sessions: opening an existing store
// loads its manifest, truncates any orphan (uncommitted) bytes off
// segments.bin, and keeps extending the same dictionaries — ids already
// written into committed segments never change meaning.
//
// Losslessness: `append` takes the record *and* the raw journal line it was
// parsed from.  When the line is exactly the canonical `to_jsonl`
// serialisation (the overwhelmingly common case — the journal writes
// canonical lines), nothing extra is stored; otherwise the raw line is kept
// verbatim in the segment's exception column, so `export` reproduces any
// valid journal byte for byte — including hand-edited spacing, reordered
// keys, or `null` non-finite doubles that do not survive a parse/render
// round trip.  (CLP stores unencodable variables verbatim for the same
// reason.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/format.hpp"
#include "study/journal.hpp"

namespace tdfm::core {
class AppendFile;
}  // namespace tdfm::core

namespace tdfm::store {

struct WriterOptions {
  std::size_t segment_rows = kDefaultSegmentRows;
};

class StoreWriter {
 public:
  /// Opens `dir` for writing, creating it (and parents) if missing.  An
  /// existing store is extended; its segment_rows wins over `options`.
  explicit StoreWriter(std::string dir, WriterOptions options = {});
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Buffers one record; cuts a segment when segment_rows accumulate.
  /// `raw_line` is the source journal line (no newline); pass empty when
  /// the record was produced in memory (it is canonical by construction).
  void append(const study::CellRecord& record, std::string_view raw_line = {});

  /// Provenance + torn-tail flag carried into the manifest header.
  void set_source(std::string source);
  void set_source_recovered_torn_tail(bool recovered);

  /// Archives every obs metric-snapshot file under `obs_dir` into
  /// telemetry.bin (byte-verbatim, per-file compressed).  Returns the file
  /// count.  Call before commit(); replaces any previous archive.
  std::size_t archive_telemetry(const std::string& obs_dir);

  /// Flushes the partial segment and atomically replaces the manifest.
  /// After commit() returns, every appended record is durable.
  void commit();

  [[nodiscard]] const Manifest& manifest() const { return manifest_; }
  [[nodiscard]] std::size_t pending_rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  void flush_segment();

  std::string dir_;
  WriterOptions options_;
  Manifest manifest_;
  std::vector<study::CellRecord> rows_;        ///< buffered, not yet in a segment
  std::vector<std::string> raw_exceptions_;    ///< parallel; "" = canonical
  std::unique_ptr<core::AppendFile> data_;     ///< opened on first flush
};

/// Import statistics (study_query import / bench_store reporting).
struct ImportStats {
  std::size_t records = 0;
  std::size_t segments = 0;
  std::size_t raw_exceptions = 0;  ///< lines kept verbatim (non-canonical)
  std::uint64_t journal_bytes = 0;
  std::uint64_t store_bytes = 0;  ///< manifest + segments (+ telemetry)
  bool recovered_torn_tail = false;
  std::size_t telemetry_files = 0;
};

/// Lossless JSONL journal -> store import.  A torn final journal line (the
/// kill -9 signature) is dropped exactly as Journal::load would, recorded
/// in the manifest, and reported in the stats.  `obs_dir` non-empty also
/// archives that observability-plane directory into the store.
ImportStats import_journal(const std::string& journal_path,
                           const std::string& dir, WriterOptions options = {},
                           const std::string& obs_dir = {});

}  // namespace tdfm::store
