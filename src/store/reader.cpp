#include "store/reader.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/varint.hpp"
#include "store/codec.hpp"

namespace tdfm::store {

namespace fs = std::filesystem;

namespace {

std::string format_hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw ConfigError("cannot read store file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string read_range(const std::string& path, std::uint64_t offset,
                       std::uint64_t bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw ConfigError("cannot read store file " + path);
  in.seekg(static_cast<std::streamoff>(offset));
  std::string out(bytes, '\0');
  in.read(out.data(), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    throw ConfigError("store " + path + ": short read at offset " +
                      std::to_string(offset));
  }
  return out;
}

void check_magic(std::string_view bytes, std::size_t& pos,
                 const std::string& what) {
  if (pos + 4 > bytes.size()) throw ConfigError(what + ": truncated magic");
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + i]))
             << (8 * i);
  }
  pos += 4;
  if (magic != kSegmentMagic) throw ConfigError(what + ": bad magic");
}

struct DecodedSegment {
  std::vector<study::CellRecord> records;
  std::unordered_map<std::size_t, std::string> exceptions;  ///< row -> raw line
};

void set_double_field(study::CellRecord& r, std::size_t i, double v) {
  switch (i) {
    case 0: r.golden_accuracy = v; break;
    case 1: r.faulty_accuracy = v; break;
    case 2: r.ad = v; break;
    case 3: r.reverse_ad = v; break;
    case 4: r.naive_drop = v; break;
    case 5: r.train_seconds = v; break;
    case 6: r.infer_seconds = v; break;
    case 7: r.inference_models = v; break;
    case 8: r.quantized_accuracy = v; break;
    case 9: r.quantized_ad = v; break;
    default: r.quantized_vs_fp32_ad = v; break;
  }
}

void set_dict_field(study::CellRecord& r, std::size_t d, const std::string& v) {
  switch (d) {
    case 0: r.dataset = v; break;
    case 1: r.model = v; break;
    case 2: r.fault_level = v; break;
    default: r.technique = v; break;
  }
}

DecodedSegment decode_segment(std::string_view seg, const SegmentMeta& meta,
                              const Manifest& manifest) {
  std::size_t pos = 0;
  check_magic(seg, pos, "store segment");
  const std::uint64_t block_count = core::get_varint(seg, pos);
  // Column id -> decompressed bytes.
  std::unordered_map<std::size_t, std::string> columns;
  for (std::uint64_t b = 0; b < block_count; ++b) {
    const std::uint64_t column = core::get_varint(seg, pos);
    if (pos >= seg.size()) throw ConfigError("store segment: truncated block");
    const auto codec = static_cast<Codec>(static_cast<std::uint8_t>(seg[pos++]));
    const std::uint64_t raw_size = core::get_varint(seg, pos);
    const std::uint64_t comp_size = core::get_varint(seg, pos);
    if (pos + comp_size > seg.size()) {
      throw ConfigError("store segment: block overruns segment");
    }
    columns[column] =
        decompress_block(codec, seg.substr(pos, comp_size), raw_size);
    pos += comp_size;
  }
  const auto column = [&](ColumnId id) -> const std::string& {
    const auto it = columns.find(static_cast<std::size_t>(id));
    if (it == columns.end()) {
      throw ConfigError("store segment: missing column " +
                        std::to_string(static_cast<int>(id)));
    }
    return it->second;
  };

  const std::size_t n = meta.rows;
  DecodedSegment out;
  out.records.resize(n);

  {
    const std::string& col = column(ColumnId::kCell);
    std::size_t p = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t tag = core::get_varint(col, p);
      if (tag == 0) {
        out.records[i].cell = format_hex16(core::get_fixed64(col, p));
      } else {
        const std::size_t len = tag - 1;
        if (p + len > col.size()) {
          throw ConfigError("store segment: truncated cell string");
        }
        out.records[i].cell = col.substr(p, len);
        p += len;
      }
    }
  }
  for (std::size_t d = 0; d < kDictColumns; ++d) {
    const std::string& col = column(static_cast<ColumnId>(
        static_cast<std::size_t>(ColumnId::kDataset) + d));
    std::size_t p = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t id = core::get_varint(col, p);
      if (id >= manifest.dicts[d].size()) {
        throw ConfigError("store segment: dictionary id out of range");
      }
      set_dict_field(out.records[i], d, manifest.dicts[d].value(id));
    }
  }
  {
    const std::string& col = column(ColumnId::kTrial);
    std::size_t p = 0;
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      prev += core::zigzag_decode(core::get_varint(col, p));
      out.records[i].trial = static_cast<std::size_t>(prev);
    }
  }
  for (std::size_t c = 0; c < kDoubleColumns; ++c) {
    const std::string& col = column(static_cast<ColumnId>(
        static_cast<std::size_t>(ColumnId::kGoldenAccuracy) + c));
    std::size_t p = 0;
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      bits ^= core::get_varint(col, p);
      set_double_field(out.records[i], c, std::bit_cast<double>(bits));
    }
  }
  {
    std::size_t p = 0;
    const auto shared = core::unpack_bits(column(ColumnId::kSharedFit), n, p);
    p = 0;
    const auto quant = core::unpack_bits(column(ColumnId::kQuantized), n, p);
    for (std::size_t i = 0; i < n; ++i) {
      out.records[i].shared_fit = shared[i];
      out.records[i].quantized = quant[i];
    }
  }
  const auto exc_it =
      columns.find(static_cast<std::size_t>(ColumnId::kRawExceptions));
  if (exc_it != columns.end()) {
    const std::string& col = exc_it->second;
    std::size_t p = 0;
    const std::uint64_t count = core::get_varint(col, p);
    for (std::uint64_t e = 0; e < count; ++e) {
      const std::uint64_t row = core::get_varint(col, p);
      const std::uint64_t len = core::get_varint(col, p);
      if (row >= n || p + len > col.size()) {
        throw ConfigError("store segment: malformed exception entry");
      }
      out.exceptions.emplace(static_cast<std::size_t>(row), col.substr(p, len));
      p += len;
    }
  }
  return out;
}

}  // namespace

StoreReader::StoreReader(std::string dir) : dir_(std::move(dir)) {
  bool manifest_torn = false;
  manifest_ =
      parse_manifest(read_file(dir_ + "/" + kManifestFile), &manifest_torn);
  recovered_truncated_tail_ = manifest_torn;

  const std::string data_path = dir_ + "/" + kDataFile;
  std::error_code ec;
  const std::uint64_t on_disk =
      manifest_.segments.empty()
          ? 0
          : static_cast<std::uint64_t>(fs::file_size(data_path, ec));
  if (!manifest_.segments.empty() && ec) {
    throw ConfigError("store " + dir_ + ": manifest names segments but " +
                      std::string(kDataFile) + " cannot be read");
  }
  // External truncation (a partial copy, a torn disk image) can only eat a
  // *suffix* of segments.bin — recover like a torn journal tail: drop
  // trailing segments whose bytes are gone or damaged, then re-account.
  bool dropped = false;
  while (!manifest_.segments.empty()) {
    const SegmentMeta& last = manifest_.segments.back();
    if (last.offset + last.bytes > on_disk) {
      TDFM_LOG(kWarn) << "store " << dir_ << ": dropping truncated final "
                      << "segment (" << last.rows << " rows, needs "
                      << last.offset + last.bytes << " bytes, file has "
                      << on_disk << ")";
      manifest_.segments.pop_back();
      dropped = true;
      continue;
    }
    // Bytes exist: verify the final segment's checksum once at open, so a
    // tear *inside* the tail is caught before any query trusts it.
    const std::string bytes = read_range(data_path, last.offset, last.bytes);
    if (core::fnv1a64(bytes) != last.checksum) {
      TDFM_LOG(kWarn) << "store " << dir_ << ": dropping final segment with "
                      << "checksum mismatch (" << last.rows << " rows)";
      manifest_.segments.pop_back();
      dropped = true;
      continue;
    }
    break;
  }
  if (dropped) {
    recovered_truncated_tail_ = true;
    std::size_t rows = 0;
    for (const SegmentMeta& s : manifest_.segments) rows += s.rows;
    manifest_.rows = rows;
    manifest_.data_bytes =
        manifest_.segments.empty()
            ? 0
            : manifest_.segments.back().offset + manifest_.segments.back().bytes;
  }
}

ScanStats StoreReader::query(const Query& q, const RowFn& on_row) const {
  ScanStats stats;
  stats.segments_total = manifest_.segments.size();

  // Resolve string predicates against the dictionaries once.  An equality
  // predicate naming an unknown string can match nothing: every segment is
  // skipped without a single read.
  bool impossible = false;
  std::optional<std::uint64_t> eq_ids[kDictColumns];
  const std::optional<std::string>* eq_strings[kDictColumns] = {
      &q.dataset, &q.model, &q.fault_level, &q.technique};
  for (std::size_t d = 0; d < kDictColumns && !impossible; ++d) {
    if (!eq_strings[d]->has_value()) continue;
    eq_ids[d] = manifest_.dicts[d].find(**eq_strings[d]);
    if (!eq_ids[d]) impossible = true;
  }
  // Dictionary grep: the candidate id set per column.
  std::vector<std::uint64_t> grep_ids[kDictColumns];
  bool grep_possible = q.grep.empty();
  if (!q.grep.empty()) {
    for (std::size_t d = 0; d < kDictColumns; ++d) {
      const auto& values = manifest_.dicts[d].values();
      for (std::uint64_t id = 0; id < values.size(); ++id) {
        if (values[id].find(q.grep) != std::string::npos) {
          grep_ids[d].push_back(id);
        }
      }
      if (!grep_ids[d].empty()) grep_possible = true;
    }
  }
  if (!grep_possible) impossible = true;

  const auto zone_has = [](const std::vector<std::uint64_t>& zone,
                           std::uint64_t id) {
    return std::binary_search(zone.begin(), zone.end(), id);
  };

  const std::string data_path = dir_ + "/" + kDataFile;
  for (const SegmentMeta& seg : manifest_.segments) {
    bool skip = impossible;
    for (std::size_t d = 0; d < kDictColumns && !skip; ++d) {
      if (eq_ids[d] && !zone_has(seg.dict_ids[d], *eq_ids[d])) skip = true;
    }
    if (!skip && !q.grep.empty()) {
      bool any = false;
      for (std::size_t d = 0; d < kDictColumns && !any; ++d) {
        for (const std::uint64_t id : grep_ids[d]) {
          if (zone_has(seg.dict_ids[d], id)) {
            any = true;
            break;
          }
        }
      }
      if (!any) skip = true;
    }
    if (!skip && q.trial &&
        (*q.trial < seg.trial_min || *q.trial > seg.trial_max)) {
      skip = true;
    }
    if (!skip && q.min_ad && *q.min_ad > seg.ad_max) skip = true;
    if (!skip && q.max_ad && *q.max_ad < seg.ad_min) skip = true;
    if (skip) {
      ++stats.segments_skipped;
      continue;
    }

    ++stats.segments_scanned;
    const std::string bytes = read_range(data_path, seg.offset, seg.bytes);
    if (core::fnv1a64(bytes) != seg.checksum) {
      throw ConfigError("store " + dir_ + ": segment at offset " +
                        std::to_string(seg.offset) + " fails its checksum");
    }
    const DecodedSegment decoded = decode_segment(bytes, seg, manifest_);
    stats.rows_scanned += decoded.records.size();
    static const std::string kEmpty;
    for (std::size_t i = 0; i < decoded.records.size(); ++i) {
      const study::CellRecord& r = decoded.records[i];
      if (q.dataset && r.dataset != *q.dataset) continue;
      if (q.model && r.model != *q.model) continue;
      if (q.fault_level && r.fault_level != *q.fault_level) continue;
      if (q.technique && r.technique != *q.technique) continue;
      if (q.cell && r.cell != *q.cell) continue;
      if (q.trial && r.trial != *q.trial) continue;
      if (q.min_ad && r.ad < *q.min_ad) continue;
      if (q.max_ad && r.ad > *q.max_ad) continue;
      if (!q.grep.empty() && r.dataset.find(q.grep) == std::string::npos &&
          r.model.find(q.grep) == std::string::npos &&
          r.fault_level.find(q.grep) == std::string::npos &&
          r.technique.find(q.grep) == std::string::npos) {
        continue;
      }
      ++stats.rows_matched;
      const auto exc = decoded.exceptions.find(i);
      on_row(r, exc == decoded.exceptions.end() ? kEmpty : exc->second);
    }
  }
  return stats;
}

std::vector<study::CellRecord> StoreReader::read_all() const {
  std::vector<study::CellRecord> out;
  out.reserve(manifest_.rows);
  query({}, [&](const study::CellRecord& r, const std::string&) {
    out.push_back(r);
  });
  return out;
}

void StoreReader::export_jsonl(std::ostream& out) const {
  query({}, [&](const study::CellRecord& r, const std::string& raw) {
    if (raw.empty()) {
      out << study::to_jsonl(r) << '\n';
    } else {
      out << raw << '\n';
    }
  });
}

std::size_t StoreReader::restore_telemetry(const std::string& out_dir) const {
  if (manifest_.telemetry_files == 0) {
    throw ConfigError("store " + dir_ + " has no telemetry archive");
  }
  const std::string blob = read_file(dir_ + "/" + kTelemetryFile);
  if (blob.size() != manifest_.telemetry_bytes ||
      core::fnv1a64(blob) != manifest_.telemetry_checksum) {
    throw ConfigError("store " + dir_ + ": telemetry archive fails its "
                      "checksum");
  }
  std::size_t pos = 0;
  check_magic(blob, pos, "store telemetry");
  const std::uint64_t files = core::get_varint(blob, pos);
  fs::create_directories(out_dir);
  for (std::uint64_t f = 0; f < files; ++f) {
    const std::uint64_t name_len = core::get_varint(blob, pos);
    if (pos + name_len > blob.size()) {
      throw ConfigError("store telemetry: truncated file name");
    }
    const std::string name = blob.substr(pos, name_len);
    pos += name_len;
    if (name.empty() || name.find('/') != std::string::npos) {
      throw ConfigError("store telemetry: unsafe file name '" + name + "'");
    }
    if (pos >= blob.size()) throw ConfigError("store telemetry: truncated");
    const auto codec = static_cast<Codec>(static_cast<std::uint8_t>(blob[pos++]));
    const std::uint64_t raw_size = core::get_varint(blob, pos);
    const std::uint64_t comp_size = core::get_varint(blob, pos);
    if (pos + comp_size > blob.size()) {
      throw ConfigError("store telemetry: truncated file body");
    }
    const std::string content =
        decompress_block(codec, std::string_view(blob).substr(pos, comp_size),
                         raw_size);
    pos += comp_size;
    std::ofstream out(out_dir + "/" + name, std::ios::trunc | std::ios::binary);
    TDFM_CHECK(out.good(), "cannot write restored snapshot: " + name);
    out << content;
    TDFM_CHECK(out.good(), "failed writing restored snapshot: " + name);
  }
  return static_cast<std::size_t>(files);
}

bool is_store(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path + "/" + kManifestFile, ec);
}

std::vector<study::CellRecord> read_all_records(const std::string& dir) {
  return StoreReader(dir).read_all();
}

void export_journal(const std::string& dir, const std::string& out_path) {
  StoreReader reader(dir);
  std::ofstream out(out_path, std::ios::trunc | std::ios::binary);
  TDFM_CHECK(out.good(), "cannot open export file: " + out_path);
  reader.export_jsonl(out);
  out.flush();
  TDFM_CHECK(out.good(), "failed writing export file: " + out_path);
}

}  // namespace tdfm::store
