// On-disk layout of `tdfm::store` — the compressed, queryable results store.
//
// A store is a directory:
//
//   <store>/
//     manifest.jsonl   committed state: header, dictionaries, segment index
//     segments.bin     columnar segment data, append-only
//     telemetry.bin    (optional) archived obs metric snapshots
//
// The CLP log store is the design exemplar: strings that repeat across
// records (dataset/model/technique/fault-level names) live once in a
// dictionary and rows carry varint ids; numerics are split into typed
// columns (zig-zag-delta varints for ints, XOR-predecessor raw-bit packing
// for fp64); rows are grouped into fixed-size segments whose zone maps
// (per-column distinct-id lists and min/max) let a query skip whole
// segments without decompressing them.
//
// One segment in segments.bin is:
//
//   u32 magic "TDFS"
//   varint block_count
//   per block: varint column_id, u8 codec, varint raw_size,
//              varint comp_size, comp_size bytes
//
// and its metadata (offset, byte length, row count, FNV-1a checksum, zone
// maps) lives in the manifest, so a skipped segment costs zero reads of
// segments.bin.  The manifest itself is flat JSON lines parsed by the
// shared obs::FlatJsonParser — the same grammar as the journal and the
// snapshot plane, so foreign files fail loudly with familiar diagnostics.
//
// Crash-safety contract (same spirit as the PR 7 journal):
//   1. segment bytes are appended and fdatasync'd *before* the manifest
//      references them (core::AppendFile);
//   2. the manifest is replaced atomically (tmp + fsync + rename);
//   3. therefore a crash leaves either the previous committed state, or
//      orphan bytes past the committed end of segments.bin — which a
//      reopened writer truncates and a reader never looks at.
//   A store torn by external means (a partial copy, a truncated disk image)
//   recovers like a torn journal tail: a final segment whose bytes are
//   missing or whose checksum fails is dropped with a warning; damage to
//   any earlier segment throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "store/dictionary.hpp"

namespace tdfm::store {

inline constexpr char kManifestFile[] = "manifest.jsonl";
inline constexpr char kDataFile[] = "segments.bin";
inline constexpr char kTelemetryFile[] = "telemetry.bin";
inline constexpr std::uint32_t kSegmentMagic = 0x53464454;  // "TDFS" LE
inline constexpr int kFormatVersion = 1;
inline constexpr std::size_t kDefaultSegmentRows = 1024;

/// Block compression codecs.  Raw is the fallback whenever compression
/// would not shrink the block; tlz is the built-in LZ byte codec so stores
/// stay readable on builds without zlib.
enum class Codec : std::uint8_t { kRaw = 0, kTlz = 1, kZlib = 2 };

/// Fixed column schema, in CellRecord / to_jsonl field order.
enum class ColumnId : std::uint8_t {
  kCell = 0,         ///< 16-hex ids packed to u64 (exceptions verbatim)
  kDataset,          ///< dictionary ids
  kModel,            ///< dictionary ids
  kFaultLevel,       ///< dictionary ids
  kTechnique,        ///< dictionary ids
  kTrial,            ///< zig-zag delta varints
  kGoldenAccuracy,   ///< fp64 XOR-predecessor varints (all doubles below)
  kFaultyAccuracy,
  kAd,
  kReverseAd,
  kNaiveDrop,
  kTrainSeconds,
  kInferSeconds,
  kInferenceModels,
  kQuantizedAccuracy,
  kQuantizedAd,
  kQuantizedVsFp32Ad,
  kSharedFit,        ///< bitmap
  kQuantized,        ///< bitmap
  kRawExceptions,    ///< rows whose source line is not canonical to_jsonl
  kColumnCount
};

inline constexpr std::size_t kDoubleColumns = 11;  ///< kGoldenAccuracy..kQuantizedVsFp32Ad
inline constexpr std::size_t kDictColumns = 4;     ///< kDataset..kTechnique

/// Per-segment index entry: where the bytes live plus the zone maps that
/// let a filter skip the segment without touching segments.bin.
struct SegmentMeta {
  std::uint64_t offset = 0;  ///< byte offset into segments.bin
  std::uint64_t bytes = 0;   ///< total segment length
  std::size_t rows = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a 64 of the segment bytes
  /// Sorted distinct dictionary ids present, one list per dict column
  /// (kDataset..kTechnique order).
  std::vector<std::uint64_t> dict_ids[kDictColumns];
  std::uint64_t trial_min = 0;
  std::uint64_t trial_max = 0;
  double ad_min = 0.0;
  double ad_max = 0.0;
};

/// The committed state of a store: everything manifest.jsonl serialises.
struct Manifest {
  std::size_t rows = 0;
  std::uint64_t data_bytes = 0;  ///< committed length of segments.bin
  std::size_t segment_rows = kDefaultSegmentRows;
  /// The imported journal recovered a torn final line (kill -9 signature);
  /// carried so post-hoc reports can surface the recovery.
  bool source_recovered_torn_tail = false;
  std::string source;  ///< provenance note (journal path), informational
  Dictionary dicts[kDictColumns];  ///< kDataset..kTechnique order
  std::vector<SegmentMeta> segments;
  std::size_t telemetry_files = 0;   ///< archived obs snapshot files
  std::uint64_t telemetry_bytes = 0; ///< committed length of telemetry.bin
  std::uint64_t telemetry_checksum = 0;
};

/// Human-readable names of the dictionary columns, manifest/CLI order.
[[nodiscard]] const char* dict_column_name(std::size_t dict_index);

/// Serialises the manifest as flat JSON lines (header, dict entries,
/// segment entries, optional telemetry entry).
[[nodiscard]] std::string render_manifest(const Manifest& m);

/// Parses a manifest document.  A torn final line (unterminated and
/// unparseable) is dropped with a warning and `*recovered_torn_tail = true`
/// — mirroring Journal::load; any other malformed line throws ConfigError.
[[nodiscard]] Manifest parse_manifest(std::string_view text,
                                      bool* recovered_torn_tail = nullptr);

}  // namespace tdfm::store
