// Store reader: manifest-driven queries with predicate pushdown.
//
// Opening a store reads only the manifest plus the final segment's bytes
// (to detect external truncation — the torn-tail analogue).  A query then
// resolves its string predicates against the dictionaries and walks the
// segment index: a segment whose zone maps cannot contain a match is
// *skipped* — its bytes are never read, let alone decompressed — and the
// skip is counted in ScanStats so tests and the CLI can prove pushdown
// happened.  Only surviving segments are read, checksum-verified, and
// decoded.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "study/journal.hpp"

namespace tdfm::store {

/// Conjunctive row predicate.  Unset fields match everything.
struct Query {
  std::optional<std::string> dataset;
  std::optional<std::string> model;
  std::optional<std::string> fault_level;
  std::optional<std::string> technique;
  std::optional<std::string> cell;    ///< exact id (no zone map: scans)
  std::optional<std::uint64_t> trial;
  std::optional<double> min_ad;
  std::optional<double> max_ad;
  /// Substring over the dictionary-encoded fields (dataset, model,
  /// fault_level, technique): a row matches when any of the four contains
  /// it.  Resolved against the dictionaries first, so segments whose zone
  /// lists hold no matching id are skipped (CLP-style dictionary grep).
  std::string grep;
};

struct ScanStats {
  std::size_t segments_total = 0;
  std::size_t segments_skipped = 0;  ///< zone-map pruned: bytes never read
  std::size_t segments_scanned = 0;
  std::size_t rows_scanned = 0;
  std::size_t rows_matched = 0;
};

class StoreReader {
 public:
  /// Opens and validates `dir`.  A final segment whose bytes are missing or
  /// whose checksum fails (external truncation — the crash-recovery
  /// analogue of a torn journal line) is dropped with a warning and
  /// reported via `recovered_truncated_tail()`; the same damage to a
  /// non-final segment throws ConfigError.
  explicit StoreReader(std::string dir);

  [[nodiscard]] const Manifest& manifest() const { return manifest_; }
  [[nodiscard]] std::size_t rows() const { return manifest_.rows; }
  [[nodiscard]] bool recovered_truncated_tail() const {
    return recovered_truncated_tail_;
  }

  /// Streams matching rows in store order.  `raw_jsonl` is the verbatim
  /// source line for non-canonical rows, empty otherwise (export emits
  /// `raw_jsonl` when present, else to_jsonl(record)).
  using RowFn =
      std::function<void(const study::CellRecord&, const std::string& raw_jsonl)>;
  ScanStats query(const Query& q, const RowFn& on_row) const;

  /// All records, store order (the Analyzer's store-backed path).
  [[nodiscard]] std::vector<study::CellRecord> read_all() const;

  /// Writes the store back out as JSONL — byte-identical to the imported
  /// journal (modulo a recovered torn tail, which import dropped exactly as
  /// a journal resume would).
  void export_jsonl(std::ostream& out) const;

  /// Restores the archived telemetry files into `out_dir`; returns how many
  /// were written.  Throws when the store has no telemetry archive.
  std::size_t restore_telemetry(const std::string& out_dir) const;

 private:
  std::string dir_;
  Manifest manifest_;
  bool recovered_truncated_tail_ = false;
};

/// True when `path` looks like a results store (directory with a manifest).
[[nodiscard]] bool is_store(const std::string& path);

/// Convenience: open + read_all (study_runner's --store report path).
[[nodiscard]] std::vector<study::CellRecord> read_all_records(
    const std::string& dir);

/// Convenience: open + export to a file.  Throws on I/O failure.
void export_journal(const std::string& dir, const std::string& out_path);

}  // namespace tdfm::store
