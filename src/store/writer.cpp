#include "store/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.hpp"
#include "core/file_lock.hpp"
#include "core/logging.hpp"
#include "core/varint.hpp"
#include "obs/snapshot.hpp"
#include "store/codec.hpp"

namespace tdfm::store {

namespace fs = std::filesystem;

namespace {

/// True for the canonical cell-id shape: exactly 16 lowercase hex digits.
/// Those pack into one u64 (half the bytes); anything else is stored
/// verbatim — the store never assumes where a journal came from.
bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

std::uint64_t parse_hex16(const std::string& s) {
  std::uint64_t v = 0;
  for (const char c : s) {
    v = (v << 4) | static_cast<std::uint64_t>(
                       c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return v;
}

/// Writes `content` to `path` atomically and durably: tmp + fsync + rename.
void write_file_atomic_sync(const std::string& path,
                            const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  TDFM_CHECK(fd >= 0, "cannot open tmp file: " + tmp);
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      ::close(fd);
      throw InvariantError("failed writing tmp file " + tmp + ": " +
                           std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  TDFM_CHECK(synced, "fsync failed for tmp file: " + tmp);
  TDFM_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "failed renaming into place: " + path);
}

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

const std::string& dict_field(const study::CellRecord& r, std::size_t d) {
  switch (d) {
    case 0: return r.dataset;
    case 1: return r.model;
    case 2: return r.fault_level;
    default: return r.technique;
  }
}

double double_field(const study::CellRecord& r, std::size_t i) {
  switch (i) {
    case 0: return r.golden_accuracy;
    case 1: return r.faulty_accuracy;
    case 2: return r.ad;
    case 3: return r.reverse_ad;
    case 4: return r.naive_drop;
    case 5: return r.train_seconds;
    case 6: return r.infer_seconds;
    case 7: return r.inference_models;
    case 8: return r.quantized_accuracy;
    case 9: return r.quantized_ad;
    default: return r.quantized_vs_fp32_ad;
  }
}

void append_block(std::string& out, ColumnId column, std::string_view raw) {
  const auto [codec, comp] = compress_block(raw);
  core::put_varint(out, static_cast<std::uint64_t>(column));
  out += static_cast<char>(codec);
  core::put_varint(out, raw.size());
  core::put_varint(out, comp.size());
  out += comp;
}

}  // namespace

StoreWriter::StoreWriter(std::string dir, WriterOptions options)
    : dir_(std::move(dir)), options_(options) {
  TDFM_CHECK(options_.segment_rows > 0, "store segment_rows must be > 0");
  fs::create_directories(dir_);
  const std::string manifest_path = dir_ + "/" + kManifestFile;
  const std::string data_path = dir_ + "/" + kDataFile;
  if (fs::exists(manifest_path)) {
    std::ifstream in(manifest_path, std::ios::binary);
    TDFM_CHECK(in.good(), "store manifest exists but cannot be read: " +
                              manifest_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    manifest_ = parse_manifest(buf.str());
    // An existing store's geometry wins: mixed segment sizes would make the
    // zone-map/row accounting depend on writer history.
    options_.segment_rows = manifest_.segment_rows;
    const std::uint64_t on_disk = file_size_or_zero(data_path);
    if (on_disk < manifest_.data_bytes) {
      throw ConfigError("store " + dir_ + ": segments.bin (" +
                        std::to_string(on_disk) + " bytes) is shorter than "
                        "the manifest's committed " +
                        std::to_string(manifest_.data_bytes) +
                        " bytes — open it read-only to recover what remains");
    }
    if (on_disk > manifest_.data_bytes) {
      // Orphan bytes from a crash between segment append and manifest
      // commit: drop them so the next append lands at the committed end.
      TDFM_LOG(kWarn) << "store " << dir_ << ": truncating "
                      << on_disk - manifest_.data_bytes
                      << " uncommitted bytes off " << kDataFile;
      TDFM_CHECK(::truncate(data_path.c_str(),
                            static_cast<off_t>(manifest_.data_bytes)) == 0,
                 "failed truncating orphan store bytes: " + data_path);
    }
  } else {
    manifest_.segment_rows = options_.segment_rows;
  }
}

StoreWriter::~StoreWriter() {
  if (!rows_.empty()) {
    TDFM_LOG(kWarn) << "store " << dir_ << ": writer destroyed with "
                    << rows_.size() << " uncommitted rows (call commit())";
  }
}

void StoreWriter::set_source(std::string source) {
  manifest_.source = std::move(source);
}

void StoreWriter::set_source_recovered_torn_tail(bool recovered) {
  manifest_.source_recovered_torn_tail = recovered;
}

void StoreWriter::append(const study::CellRecord& record,
                         std::string_view raw_line) {
  rows_.push_back(record);
  // Only a line that differs from the canonical serialisation costs bytes.
  std::string canonical = to_jsonl(record);
  raw_exceptions_.push_back(
      raw_line.empty() || raw_line == canonical ? std::string()
                                                : std::string(raw_line));
  if (rows_.size() >= options_.segment_rows) flush_segment();
}

void StoreWriter::flush_segment() {
  if (rows_.empty()) return;
  const std::size_t n = rows_.size();
  SegmentMeta meta;
  meta.rows = n;

  // --- encode columns -------------------------------------------------------
  std::string cell_col;
  for (const auto& r : rows_) {
    if (is_hex16(r.cell)) {
      core::put_varint(cell_col, 0);
      core::put_fixed64(cell_col, parse_hex16(r.cell));
    } else {
      core::put_varint(cell_col, r.cell.size() + 1);
      cell_col += r.cell;
    }
  }

  std::string dict_cols[kDictColumns];
  for (std::size_t d = 0; d < kDictColumns; ++d) {
    std::vector<std::uint64_t> seen;
    for (const auto& r : rows_) {
      const std::uint64_t id = manifest_.dicts[d].id_for(dict_field(r, d));
      core::put_varint(dict_cols[d], id);
      seen.push_back(id);
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    meta.dict_ids[d] = std::move(seen);
  }

  std::string trial_col;
  std::int64_t prev_trial = 0;
  meta.trial_min = rows_.front().trial;
  meta.trial_max = rows_.front().trial;
  for (const auto& r : rows_) {
    const auto t = static_cast<std::int64_t>(r.trial);
    core::put_varint(trial_col, core::zigzag_encode(t - prev_trial));
    prev_trial = t;
    meta.trial_min = std::min<std::uint64_t>(meta.trial_min, r.trial);
    meta.trial_max = std::max<std::uint64_t>(meta.trial_max, r.trial);
  }

  std::string double_cols[kDoubleColumns];
  for (std::size_t i = 0; i < kDoubleColumns; ++i) {
    std::uint64_t prev = 0;
    for (const auto& r : rows_) {
      const auto bits = std::bit_cast<std::uint64_t>(double_field(r, i));
      core::put_varint(double_cols[i], bits ^ prev);
      prev = bits;
    }
  }
  meta.ad_min = rows_.front().ad;
  meta.ad_max = rows_.front().ad;
  for (const auto& r : rows_) {
    meta.ad_min = std::min(meta.ad_min, r.ad);
    meta.ad_max = std::max(meta.ad_max, r.ad);
  }

  std::vector<bool> shared_fit(n), quantized(n);
  for (std::size_t i = 0; i < n; ++i) {
    shared_fit[i] = rows_[i].shared_fit;
    quantized[i] = rows_[i].quantized;
  }
  std::string shared_col, quant_col;
  core::pack_bits(shared_fit, shared_col);
  core::pack_bits(quantized, quant_col);

  std::string exc_col;
  std::size_t exc_count = 0;
  for (const auto& raw : raw_exceptions_) {
    if (!raw.empty()) ++exc_count;
  }
  if (exc_count > 0) {
    core::put_varint(exc_col, exc_count);
    for (std::size_t i = 0; i < n; ++i) {
      if (raw_exceptions_[i].empty()) continue;
      core::put_varint(exc_col, i);
      core::put_varint(exc_col, raw_exceptions_[i].size());
      exc_col += raw_exceptions_[i];
    }
  }

  // --- assemble the segment -------------------------------------------------
  std::string seg;
  for (int i = 0; i < 4; ++i) {
    seg += static_cast<char>((kSegmentMagic >> (8 * i)) & 0xFF);
  }
  const std::size_t block_count =
      1 + kDictColumns + 1 + kDoubleColumns + 2 + (exc_count > 0 ? 1 : 0);
  core::put_varint(seg, block_count);
  append_block(seg, ColumnId::kCell, cell_col);
  for (std::size_t d = 0; d < kDictColumns; ++d) {
    append_block(seg, static_cast<ColumnId>(
                          static_cast<std::size_t>(ColumnId::kDataset) + d),
                 dict_cols[d]);
  }
  append_block(seg, ColumnId::kTrial, trial_col);
  for (std::size_t i = 0; i < kDoubleColumns; ++i) {
    append_block(seg, static_cast<ColumnId>(
                          static_cast<std::size_t>(ColumnId::kGoldenAccuracy) + i),
                 double_cols[i]);
  }
  append_block(seg, ColumnId::kSharedFit, shared_col);
  append_block(seg, ColumnId::kQuantized, quant_col);
  if (exc_count > 0) append_block(seg, ColumnId::kRawExceptions, exc_col);

  meta.offset = manifest_.data_bytes;
  meta.bytes = seg.size();
  meta.checksum = core::fnv1a64(seg);

  // Durable before referenced: the locked write + fdatasync happens here;
  // the manifest only names this segment after commit().
  if (!data_) {
    data_ = std::make_unique<core::AppendFile>(dir_ + "/" + kDataFile);
  }
  data_->append(seg);

  manifest_.segments.push_back(std::move(meta));
  manifest_.rows += n;
  manifest_.data_bytes += seg.size();
  rows_.clear();
  raw_exceptions_.clear();
}

std::size_t StoreWriter::archive_telemetry(const std::string& obs_dir) {
  const std::vector<std::string> files = obs::list_snapshot_files(obs_dir);
  if (files.empty()) {
    manifest_.telemetry_files = 0;
    manifest_.telemetry_bytes = 0;
    manifest_.telemetry_checksum = 0;
    return 0;
  }
  std::string blob;
  for (int i = 0; i < 4; ++i) {
    blob += static_cast<char>((kSegmentMagic >> (8 * i)) & 0xFF);
  }
  core::put_varint(blob, files.size());
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    TDFM_CHECK(in.good(), "cannot read snapshot file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string name = fs::path(path).filename().string();
    core::put_varint(blob, name.size());
    blob += name;
    const auto [codec, comp] = compress_block(buf.str());
    blob += static_cast<char>(codec);
    core::put_varint(blob, buf.str().size());
    core::put_varint(blob, comp.size());
    blob += comp;
  }
  write_file_atomic_sync(dir_ + "/" + kTelemetryFile, blob);
  manifest_.telemetry_files = files.size();
  manifest_.telemetry_bytes = blob.size();
  manifest_.telemetry_checksum = core::fnv1a64(blob);
  return files.size();
}

void StoreWriter::commit() {
  flush_segment();
  write_file_atomic_sync(dir_ + "/" + kManifestFile,
                         render_manifest(manifest_));
}

ImportStats import_journal(const std::string& journal_path,
                           const std::string& dir, WriterOptions options,
                           const std::string& obs_dir) {
  ImportStats stats;
  std::ifstream in(journal_path, std::ios::binary);
  if (!in.good()) {
    throw ConfigError("cannot read journal " + journal_path);
  }
  StoreWriter writer(dir, options);
  writer.set_source(journal_path);

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const bool terminated = !in.eof();
    if (line.empty()) continue;
    study::CellRecord record;
    try {
      record = study::parse_record(line);
    } catch (const ConfigError& e) {
      if (!terminated) {
        // The kill -9 signature, recovered exactly as Journal::load does.
        TDFM_LOG(kWarn) << "journal " << journal_path
                        << ": dropping torn final line " << line_no << " ("
                        << line.size() << " bytes) — interrupted append";
        stats.recovered_torn_tail = true;
        break;
      }
      throw ConfigError("journal " + journal_path + " line " +
                        std::to_string(line_no) + ": " + e.what());
    }
    if (to_jsonl(record) != line) ++stats.raw_exceptions;
    writer.append(record, line);
    ++stats.records;
  }
  writer.set_source_recovered_torn_tail(stats.recovered_torn_tail);
  if (!obs_dir.empty()) {
    stats.telemetry_files = writer.archive_telemetry(obs_dir);
  }
  writer.commit();
  stats.segments = writer.manifest().segments.size();
  stats.journal_bytes = file_size_or_zero(journal_path);
  stats.store_bytes = file_size_or_zero(dir + "/" + kManifestFile) +
                      file_size_or_zero(dir + "/" + kDataFile) +
                      file_size_or_zero(dir + "/" + kTelemetryFile);
  return stats;
}

}  // namespace tdfm::store
