// String dictionary for the results store: repeated strings become varint
// ids (CLP's dictionary-encoded variables).  Ids are assigned in first-seen
// order and are stable for the life of a store — append sessions only ever
// extend the dictionary, so ids already written into segments stay valid.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"

namespace tdfm::store {

class Dictionary {
 public:
  /// Returns the id of `s`, inserting it if absent (writer side).
  std::uint64_t id_for(const std::string& s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const std::uint64_t id = values_.size();
    index_.emplace(s, id);
    values_.push_back(s);
    return id;
  }

  /// Lookup without insertion (reader-side predicate resolution).
  [[nodiscard]] std::optional<std::uint64_t> find(const std::string& s) const {
    const auto it = index_.find(s);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] const std::string& value(std::uint64_t id) const {
    TDFM_CHECK(id < values_.size(), "dictionary id out of range");
    return values_[id];
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::vector<std::string>& values() const {
    return values_;
  }

  /// Reader side: appends the next entry; ids must arrive densely in order
  /// (the manifest writes them that way — anything else is corruption).
  void append(std::uint64_t id, std::string value) {
    if (id != values_.size()) {
      throw ConfigError("dictionary entries out of order: expected id " +
                        std::to_string(values_.size()) + ", got " +
                        std::to_string(id));
    }
    index_.emplace(value, id);
    values_.push_back(std::move(value));
  }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, std::uint64_t> index_;
};

}  // namespace tdfm::store
