// Umbrella header for tdfm::store — the compressed, queryable results
// store.  See format.hpp for the on-disk layout and crash-safety contract.
#pragma once

#include "store/codec.hpp"      // IWYU pragma: export
#include "store/dictionary.hpp" // IWYU pragma: export
#include "store/format.hpp"     // IWYU pragma: export
#include "store/reader.hpp"     // IWYU pragma: export
#include "store/writer.hpp"     // IWYU pragma: export
