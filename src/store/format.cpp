#include "store/format.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "obs/flat_json.hpp"
#include "obs/json.hpp"

namespace tdfm::store {

namespace {

/// Round-trip-exact double rendering (the journal's %.17g contract).
std::string exact_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// u64 as a hex string: JSON numbers are doubles and cannot carry a full
/// 64-bit checksum losslessly.
std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex64(const std::string& s) {
  if (s.size() != 16) throw ConfigError("store manifest: bad hex64 '" + s + "'");
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else throw ConfigError("store manifest: bad hex64 '" + s + "'");
  }
  return v;
}

void render_id_list(std::ostringstream& os, const char* key,
                    const std::vector<std::uint64_t>& ids) {
  os << ",\"" << key << "\":[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    os << (i ? "," : "") << ids[i];
  }
  os << "]";
}

}  // namespace

const char* dict_column_name(std::size_t dict_index) {
  static const char* kNames[kDictColumns] = {"dataset", "model", "fault_level",
                                             "technique"};
  TDFM_CHECK(dict_index < kDictColumns, "dictionary column index out of range");
  return kNames[dict_index];
}

std::string render_manifest(const Manifest& m) {
  std::ostringstream os;
  os << "{\"type\":\"tdfm-store\",\"version\":" << kFormatVersion
     << ",\"rows\":" << m.rows << ",\"data_bytes\":" << m.data_bytes
     << ",\"segment_rows\":" << m.segment_rows
     << ",\"recovered_torn_tail\":"
     << (m.source_recovered_torn_tail ? "true" : "false")
     << ",\"source\":" << obs::json_string(m.source) << "}\n";
  for (std::size_t d = 0; d < kDictColumns; ++d) {
    const auto& values = m.dicts[d].values();
    for (std::size_t id = 0; id < values.size(); ++id) {
      os << "{\"type\":\"dict\",\"c\":" << d << ",\"i\":" << id
         << ",\"v\":" << obs::json_string(values[id]) << "}\n";
    }
  }
  for (const SegmentMeta& s : m.segments) {
    os << "{\"type\":\"segment\",\"offset\":" << s.offset
       << ",\"bytes\":" << s.bytes << ",\"rows\":" << s.rows
       << ",\"checksum\":\"" << hex64(s.checksum) << "\"";
    for (std::size_t d = 0; d < kDictColumns; ++d) {
      render_id_list(os, dict_column_name(d), s.dict_ids[d]);
    }
    os << ",\"trial_min\":" << s.trial_min << ",\"trial_max\":" << s.trial_max
       << ",\"ad_min\":" << exact_number(s.ad_min)
       << ",\"ad_max\":" << exact_number(s.ad_max) << "}\n";
  }
  if (m.telemetry_files > 0) {
    os << "{\"type\":\"telemetry\",\"files\":" << m.telemetry_files
       << ",\"bytes\":" << m.telemetry_bytes << ",\"checksum\":\""
       << hex64(m.telemetry_checksum) << "\"}\n";
  }
  return os.str();
}

Manifest parse_manifest(std::string_view text, bool* recovered_torn_tail) {
  if (recovered_torn_tail) *recovered_torn_tail = false;
  Manifest m;
  bool saw_header = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const bool terminated = nl != std::string_view::npos;
    const std::string_view line =
        text.substr(pos, terminated ? nl - pos : std::string_view::npos);
    pos = terminated ? nl + 1 : text.size();
    ++line_no;
    if (line.empty()) continue;
    try {
      std::string type;
      std::string str_v, str_checksum, str_source;
      double c = 0, i = 0, files = 0, bytes = 0;
      SegmentMeta seg;
      double rows = 0, data_bytes = 0, segment_rows = 0, version = 0;
      double seg_rows = 0, seg_offset = 0, seg_bytes = 0;
      double trial_min = 0, trial_max = 0;
      bool recovered = false;
      obs::FlatJsonParser parser(line, "store manifest parse error");
      parser.parse([&](const std::string& key, const obs::FlatValue& v) {
        if (key == "type" && v.is_string()) type = v.str;
        else if (key == "version") version = v.num;
        else if (key == "rows") { rows = v.num; seg_rows = v.num; }
        else if (key == "data_bytes") data_bytes = v.num;
        else if (key == "segment_rows") segment_rows = v.num;
        else if (key == "recovered_torn_tail" && v.is_bool()) recovered = v.num != 0.0;
        else if (key == "source" && v.is_string()) str_source = v.str;
        else if (key == "c") c = v.num;
        else if (key == "i") i = v.num;
        else if (key == "v" && v.is_string()) str_v = v.str;
        else if (key == "offset") seg_offset = v.num;
        else if (key == "bytes") { seg_bytes = v.num; bytes = v.num; }
        else if (key == "checksum" && v.is_string()) str_checksum = v.str;
        else if (key == "trial_min") trial_min = v.num;
        else if (key == "trial_max") trial_max = v.num;
        else if (key == "ad_min") seg.ad_min = v.num;
        else if (key == "ad_max") seg.ad_max = v.num;
        else if (key == "files") files = v.num;
        else {
          for (std::size_t d = 0; d < kDictColumns; ++d) {
            if (key == dict_column_name(d) &&
                v.kind == obs::FlatValue::Kind::kNumberArray) {
              seg.dict_ids[d].assign(v.array.begin(), v.array.end());
            }
          }
        }
      });
      if (type == "tdfm-store") {
        if (static_cast<int>(version) > kFormatVersion) {
          throw ConfigError("store manifest: version " +
                            std::to_string(static_cast<int>(version)) +
                            " is newer than this build understands (" +
                            std::to_string(kFormatVersion) + ")");
        }
        m.rows = static_cast<std::size_t>(rows);
        m.data_bytes = static_cast<std::uint64_t>(data_bytes);
        m.segment_rows = static_cast<std::size_t>(segment_rows);
        m.source_recovered_torn_tail = recovered;
        m.source = str_source;
        saw_header = true;
      } else if (type == "dict") {
        const auto d = static_cast<std::size_t>(c);
        if (d >= kDictColumns) {
          throw ConfigError("store manifest: dictionary column out of range");
        }
        m.dicts[d].append(static_cast<std::uint64_t>(i), str_v);
      } else if (type == "segment") {
        seg.offset = static_cast<std::uint64_t>(seg_offset);
        seg.bytes = static_cast<std::uint64_t>(seg_bytes);
        seg.rows = static_cast<std::size_t>(seg_rows);
        seg.checksum = parse_hex64(str_checksum);
        seg.trial_min = static_cast<std::uint64_t>(trial_min);
        seg.trial_max = static_cast<std::uint64_t>(trial_max);
        m.segments.push_back(std::move(seg));
      } else if (type == "telemetry") {
        m.telemetry_files = static_cast<std::size_t>(files);
        m.telemetry_bytes = static_cast<std::uint64_t>(bytes);
        m.telemetry_checksum = parse_hex64(str_checksum);
      } else {
        throw ConfigError("store manifest: unknown line type '" + type + "'");
      }
    } catch (const ConfigError& e) {
      if (!terminated) {
        // The manifest is replaced atomically, so a torn tail only appears
        // in externally damaged copies — recover like a torn journal tail.
        TDFM_LOG(kWarn) << "store manifest: dropping torn final line "
                        << line_no << " (" << line.size() << " bytes)";
        if (recovered_torn_tail) *recovered_torn_tail = true;
        break;
      }
      throw ConfigError("store manifest line " + std::to_string(line_no) +
                        ": " + e.what());
    }
  }
  if (!saw_header) {
    throw ConfigError("store manifest: missing tdfm-store header line");
  }
  return m;
}

}  // namespace tdfm::store
