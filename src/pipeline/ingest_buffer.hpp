// Retraining-window accumulator for the faulty ingest stream.
//
// Stream chunks land here; the buffer hands the Retrainer fixed-size windows
// of the most recent samples.  Two window disciplines:
//   - tumbling (hop == 0 or hop == window): consecutive windows are
//     disjoint — every sample trains at most once;
//   - sliding  (0 < hop < window): consecutive windows overlap by
//     window - hop samples — recent data trains repeatedly, smoothing
//     candidate quality at the cost of extra epochs over old samples.
//
// The buffer is bounded: when more than `capacity` samples are pending the
// *oldest* are dropped (the stream is live; stale samples lose value first)
// and counted.  The watermark — the highest sequence number buffered so far,
// plus one — tells observers how far the stream has progressed even when
// drops occurred; watermark - pushed == dropped-by-overflow + taken.
// Everything is exported via obs: pipeline.ingest.pushed / .dropped /
// .windows counters and a pipeline.ingest.watermark gauge.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "pipeline/stream_source.hpp"

namespace tdfm::pipeline {

struct IngestConfig {
  std::size_t window = 256;  ///< samples per retraining window
  std::size_t hop = 0;       ///< samples consumed per window; 0 = tumbling
  std::size_t capacity = 4096;  ///< pending-sample bound; overflow drops oldest
};

struct IngestStats {
  std::uint64_t pushed = 0;   ///< samples accepted into the buffer
  std::uint64_t dropped = 0;  ///< oldest samples evicted by the capacity bound
  std::uint64_t windows = 0;  ///< windows handed to the retrainer
  std::uint64_t watermark = 0;  ///< 1 + highest sequence number seen
};

class IngestBuffer {
 public:
  explicit IngestBuffer(IngestConfig config);

  /// Appends every sample of `chunk` (evicting the oldest on overflow).
  void push(const StreamChunk& chunk);

  /// True when a full window is pending.
  [[nodiscard]] bool window_ready() const { return pending_.size() >= config_.window; }

  /// Extracts the oldest full window as a training dataset, consuming hop()
  /// samples from the buffer.  Requires window_ready().  The window's
  /// sequence range is reported through the out-params (for decision-log
  /// provenance).
  [[nodiscard]] data::Dataset take_window(std::uint64_t* first_seq = nullptr,
                                          std::uint64_t* last_seq = nullptr);

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::size_t hop() const {
    return config_.hop == 0 ? config_.window : config_.hop;
  }
  [[nodiscard]] const IngestConfig& config() const { return config_; }
  [[nodiscard]] const IngestStats& stats() const { return stats_; }

 private:
  struct Sample {
    std::vector<float> pixels;
    int label = 0;
    std::uint64_t seq = 0;
  };

  IngestConfig config_;
  IngestStats stats_;
  std::deque<Sample> pending_;
  // Geometry adopted from the first pushed chunk.
  std::size_t channels_ = 0;
  std::size_t height_ = 0;
  std::size_t width_ = 0;
  std::size_t num_classes_ = 0;
  std::string dataset_name_;
};

}  // namespace tdfm::pipeline
