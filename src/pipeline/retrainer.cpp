#include "pipeline/retrainer.hpp"

#include <cstring>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "mitigation/classifier.hpp"
#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "study/spec.hpp"

namespace tdfm::pipeline {

Retrainer::Retrainer(RetrainerConfig config) : config_(std::move(config)) {
  TDFM_CHECK(config_.technique != mitigation::TechniqueKind::kEnsemble,
             "the pipeline promotes one network per version; ensemble "
             "retraining is not supported (pick a single-model technique)");
  TDFM_CHECK(!config_.fault_aware ||
                 config_.technique == mitigation::TechniqueKind::kBaseline,
             "fault-aware training owns the epoch hook and composes only "
             "with the baseline technique");
  if (config_.metamorphic) {
    TDFM_CHECK(config_.metamorphic_factor >= 1,
               "metamorphic_factor must be >= 1 when metamorphic is on");
  }
}

std::string Retrainer::technique_label() const {
  std::string label = mitigation::technique_name(config_.technique);
  if (config_.metamorphic) label += "+meta";
  if (config_.fault_aware) label += "+fat";
  return label;
}

data::Dataset Retrainer::metamorphic_augment(const data::Dataset& window,
                                             std::size_t factor, Rng& rng) {
  const std::size_t n = window.size();
  const std::size_t c = window.channels();
  const std::size_t h = window.height();
  const std::size_t w = window.width();
  const std::size_t row = c * h * w;

  data::Dataset out;
  out.name = window.name + "+meta";
  out.num_classes = window.num_classes;
  out.images = Tensor({n * (factor + 1), c, h, w});
  out.labels.reserve(n * (factor + 1));
  // Originals first (byte-copied), then `factor` transformed copies of the
  // whole window — keeping every original intact distinguishes metamorphic
  // augmentation from plain noise injection.
  std::memcpy(out.images.data(), window.images.data(),
              n * row * sizeof(float));
  out.labels = window.labels;

  float* dst = out.images.data() + n * row;
  for (std::size_t copy = 0; copy < factor; ++copy) {
    for (std::size_t i = 0; i < n; ++i, dst += row) {
      const float* src = window.images.data() + i * row;
      // Label-preserving transform triple (arXiv:2412.01958's geometric +
      // photometric metamorphic relations, scaled to 16x16 inputs):
      const bool flip = rng.bernoulli(0.5);
      const float brightness = rng.uniform(0.9F, 1.1F);
      const float sigma = 0.02F;
      for (std::size_t ch = 0; ch < c; ++ch) {
        for (std::size_t y = 0; y < h; ++y) {
          for (std::size_t x = 0; x < w; ++x) {
            const std::size_t sx = flip ? (w - 1 - x) : x;
            float v = src[(ch * h + y) * w + sx];
            v = v * brightness + sigma * rng.normal();
            v = v < 0.0F ? 0.0F : (v > 1.0F ? 1.0F : v);
            dst[(ch * h + y) * w + x] = v;
          }
        }
      }
      out.labels.push_back(window.labels[i]);
    }
  }
  out.validate();
  return out;
}

std::unique_ptr<nn::Network> Retrainer::fit_fault_aware(
    const data::Dataset& window, Rng& rng) {
  // Baseline-style fit with a per-epoch corruption hook: optimisation keeps
  // repairing simulated weight damage, settling in corruption-robust basins.
  Rng model_rng = rng.fork(0xbaceU);
  auto net = models::build_model(config_.arch, config_.model_config, model_rng);
  auto targets = std::make_shared<Tensor>(
      nn::one_hot(window.labels, window.num_classes));
  nn::Trainer trainer(models::tuned_options(config_.arch, config_.train_opts));
  Rng train_rng = rng.fork(0x7141u);
  Rng hook_rng = rng.fork(0xfa17u);
  const CorruptionSpec base_spec = config_.fault_corruption;
  const auto hook = [&](std::size_t epoch, nn::Network& n) {
    (void)epoch;
    CorruptionSpec spec = base_spec;
    spec.seed = hook_rng.next();  // fresh corruption pattern every epoch
    (void)corrupt_network(n, spec);
  };
  trainer.fit(*net, window.images,
              mitigation::make_target_loss(
                  std::make_shared<nn::CrossEntropyLoss>(), targets),
              train_rng, hook);
  return net;
}

std::unique_ptr<nn::Network> Retrainer::fit_candidate(
    const data::Dataset& window, std::uint64_t round) {
  TDFM_CHECK(window.size() > 0, "cannot retrain on an empty window");
  obs::Span span("pipeline:retrain");

  // Role-scoped seed: the candidate of round r depends only on (seed, r)
  // and the window content — not on how many candidates came before.
  Rng rng(study::stable_hash64(
      "pipeline-retrain|seed=" + std::to_string(config_.seed) +
      "|round=" + std::to_string(round)));

  const data::Dataset* train = &window;
  data::Dataset augmented;
  if (config_.metamorphic) {
    Rng aug_rng = rng.fork(0x3e7aU);
    augmented =
        metamorphic_augment(window, config_.metamorphic_factor, aug_rng);
    train = &augmented;
  }

  std::unique_ptr<nn::Network> net;
  if (config_.fault_aware) {
    net = fit_fault_aware(*train, rng);
  } else {
    mitigation::FitContext ctx;
    ctx.train = train;
    ctx.primary_arch = config_.arch;
    ctx.model_config = config_.model_config;
    ctx.train_opts = config_.train_opts;
    ctx.rng = &rng;
    auto technique =
        mitigation::make_technique(config_.technique, config_.hyperparams);
    std::unique_ptr<mitigation::Classifier> classifier = technique->fit(ctx);
    auto* single =
        dynamic_cast<mitigation::SingleModelClassifier*>(classifier.get());
    TDFM_CHECK(single != nullptr,
               "technique returned a multi-model classifier; the pipeline "
               "promotes single networks");
    net = single->release_network();
  }

  if (obs::metrics_enabled()) {
    static obs::Counter retrains =
        obs::Registry::global().counter("pipeline.retrain.count");
    retrains.add(1);
  }
  return net;
}

}  // namespace tdfm::pipeline
