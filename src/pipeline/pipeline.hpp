// Umbrella header for tdfm::pipeline — the online faulty-stream ingest,
// continuous retraining, and AD-guarded canary hot-swap loop (DESIGN.md §4i).
#pragma once

#include "pipeline/canary.hpp"
#include "pipeline/decision_log.hpp"
#include "pipeline/ingest_buffer.hpp"
#include "pipeline/online_pipeline.hpp"
#include "pipeline/retrainer.hpp"
#include "pipeline/stream_source.hpp"
#include "pipeline/weight_corruptor.hpp"
