#include "pipeline/ingest_buffer.hpp"

#include <cstring>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace tdfm::pipeline {

IngestBuffer::IngestBuffer(IngestConfig config) : config_(config) {
  TDFM_CHECK(config_.window > 0, "ingest window must be >= 1");
  TDFM_CHECK(config_.hop <= config_.window,
             "ingest hop must not exceed the window (gaps would drop data "
             "silently; use the capacity bound for load shedding)");
  TDFM_CHECK(config_.capacity >= config_.window,
             "ingest capacity must hold at least one window");
}

void IngestBuffer::push(const StreamChunk& chunk) {
  const data::Dataset& ds = chunk.samples;
  if (ds.size() == 0) {
    // A removal-heavy chunk can arrive empty; the watermark still moves
    // (first_seq == next chunk's first_seq, nothing new observed).
    return;
  }
  if (channels_ == 0) {
    channels_ = ds.channels();
    height_ = ds.height();
    width_ = ds.width();
    num_classes_ = ds.num_classes;
    dataset_name_ = ds.name;
  } else {
    TDFM_CHECK(channels_ == ds.channels() && height_ == ds.height() &&
                   width_ == ds.width() && num_classes_ == ds.num_classes,
               "stream chunk geometry changed mid-stream");
  }

  const std::size_t row = channels_ * height_ * width_;
  std::uint64_t dropped_now = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    Sample s;
    s.pixels.resize(row);
    std::memcpy(s.pixels.data(), ds.images.data() + i * row, row * sizeof(float));
    s.label = ds.labels[i];
    s.seq = chunk.first_seq + i;
    if (pending_.size() >= config_.capacity) {
      pending_.pop_front();  // live stream: stale samples lose value first
      ++dropped_now;
    }
    pending_.push_back(std::move(s));
    ++stats_.pushed;
  }
  stats_.dropped += dropped_now;
  stats_.watermark = chunk.first_seq + ds.size();

  if (obs::metrics_enabled()) {
    static obs::Counter pushed =
        obs::Registry::global().counter("pipeline.ingest.pushed");
    static obs::Counter dropped =
        obs::Registry::global().counter("pipeline.ingest.dropped");
    static obs::Gauge watermark =
        obs::Registry::global().gauge("pipeline.ingest.watermark");
    pushed.add(ds.size());
    if (dropped_now > 0) dropped.add(dropped_now);
    watermark.set(static_cast<double>(stats_.watermark));
  }
}

data::Dataset IngestBuffer::take_window(std::uint64_t* first_seq,
                                        std::uint64_t* last_seq) {
  TDFM_CHECK(window_ready(), "take_window called before a window is ready");
  const std::size_t row = channels_ * height_ * width_;

  data::Dataset window;
  window.name = dataset_name_ + "-window";
  window.num_classes = num_classes_;
  window.images = Tensor({config_.window, channels_, height_, width_});
  window.labels.reserve(config_.window);
  for (std::size_t i = 0; i < config_.window; ++i) {
    const Sample& s = pending_[i];
    std::memcpy(window.images.data() + i * row, s.pixels.data(),
                row * sizeof(float));
    window.labels.push_back(s.label);
  }
  if (first_seq) *first_seq = pending_.front().seq;
  if (last_seq) *last_seq = pending_[config_.window - 1].seq;

  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(hop()));
  ++stats_.windows;
  if (obs::metrics_enabled()) {
    static obs::Counter windows =
        obs::Registry::global().counter("pipeline.ingest.windows");
    windows.add(1);
  }
  window.validate();
  return window;
}

}  // namespace tdfm::pipeline
