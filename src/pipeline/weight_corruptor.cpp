#include "pipeline/weight_corruptor.hpp"

#include <cmath>
#include <cstring>
#include <string>

#include "core/error.hpp"
#include "kernels/quant.hpp"
#include "obs/metrics.hpp"

namespace tdfm::pipeline {

const char* corruption_mode_name(CorruptionMode mode) {
  switch (mode) {
    case CorruptionMode::kBitFlip: return "bitflip";
    case CorruptionMode::kSignFlip: return "signflip";
    case CorruptionMode::kZero: return "zero";
    case CorruptionMode::kPerturb: return "perturb";
  }
  throw InvariantError("unknown corruption mode");
}

CorruptionMode corruption_mode_from_name(std::string_view name) {
  if (name == "bitflip") return CorruptionMode::kBitFlip;
  if (name == "signflip") return CorruptionMode::kSignFlip;
  if (name == "zero") return CorruptionMode::kZero;
  if (name == "perturb") return CorruptionMode::kPerturb;
  throw ConfigError("unknown corruption mode: " + std::string(name));
}

namespace {

/// Flips one bit of an fp32 value through its bit pattern.
float flip_bit(float v, int bit) {
  std::uint32_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  u ^= (1U << static_cast<unsigned>(bit));
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

CorruptionReport corrupt_fp32(nn::Network& net, const CorruptionSpec& spec,
                              Rng& rng) {
  CorruptionReport report;
  for (nn::Parameter* param : net.parameters()) {
    float* data = param->value.data();
    const std::size_t n = param->numel();
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.bernoulli(spec.fraction)) continue;
      ++report.scalars_hit;
      float v = data[i];
      switch (spec.mode) {
        case CorruptionMode::kBitFlip: {
          const int bit = spec.bit >= 0 ? spec.bit : rng.range(20, 30);
          v = flip_bit(v, bit);
          break;
        }
        case CorruptionMode::kSignFlip: v = -v; break;
        case CorruptionMode::kZero: v = 0.0F; break;
        case CorruptionMode::kPerturb:
          v += spec.perturb_sigma * std::fabs(v) * rng.normal();
          break;
      }
      if (!std::isfinite(v)) {
        // A deployment that serves NaN logits is dead, not degraded; model
        // the detected-and-masked case so the canary measures degradation.
        v = 0.0F;
        ++report.nonfinite_zeroed;
      }
      data[i] = v;
    }
  }
  return report;
}

CorruptionReport corrupt_q8(nn::Network& net, const CorruptionSpec& spec,
                            Rng& rng) {
  CorruptionReport report;
  for (kernels::Q8Matrix* m : net.quantized_weights()) {
    const std::size_t blocks = m->rows * m->blocks_per_row;
    for (std::size_t b = 0; b < blocks; ++b) {
      if (!rng.bernoulli(spec.fraction)) continue;
      ++report.blocks_hit;
      switch (spec.mode) {
        case CorruptionMode::kBitFlip: {
          // One bit of one code: the low-blast-radius fault (1 of 32
          // weights, bounded by the block scale).
          const std::size_t code =
              b * kernels::kQ8Block + rng.index(kernels::kQ8Block);
          m->data[code] = static_cast<std::int8_t>(
              static_cast<std::uint8_t>(m->data[code]) ^
              (1U << rng.index(8)));
          break;
        }
        case CorruptionMode::kSignFlip: m->scales[b] = -m->scales[b]; break;
        case CorruptionMode::kZero: m->scales[b] = 0.0F; break;
        case CorruptionMode::kPerturb: {
          float s = m->scales[b];
          s += spec.perturb_sigma * std::fabs(s) * rng.normal();
          if (!std::isfinite(s)) {
            s = 0.0F;
            ++report.nonfinite_zeroed;
          }
          m->scales[b] = s;
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace

CorruptionReport corrupt_network(nn::Network& net, const CorruptionSpec& spec) {
  TDFM_CHECK(spec.fraction >= 0.0 && spec.fraction <= 1.0,
             "corruption fraction must be in [0, 1]");
  TDFM_CHECK(spec.bit >= -1 && spec.bit <= 31,
             "corruption bit must be -1 (random) or 0..31");
  Rng rng(spec.seed);
  const CorruptionReport report = net.quantized()
                                      ? corrupt_q8(net, spec, rng)
                                      : corrupt_fp32(net, spec, rng);
  if (obs::metrics_enabled()) {
    static obs::Counter hits =
        obs::Registry::global().counter("pipeline.corrupt.hits");
    static obs::Counter masked =
        obs::Registry::global().counter("pipeline.corrupt.nonfinite_zeroed");
    hits.add(report.scalars_hit + report.blocks_hit);
    masked.add(report.nonfinite_zeroed);
  }
  return report;
}

}  // namespace tdfm::pipeline
