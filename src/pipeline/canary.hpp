// Canary judgement: the paper's AD metric as a promotion guardrail.
//
// The study measures a faulty model against its golden twin with the
// Accuracy Delta — the fraction of samples the golden model got right that
// the faulty model gets wrong (§III-C).  The canary controller reuses the
// metric with the roles recast for serving:
//
//   promotion:  the *live* model plays golden, the *candidate* plays faulty.
//     AD(live, candidate) is the regression the swap would introduce on
//     traffic the current version already serves correctly — exactly the
//     risk a canary exists to bound.  Promote iff AD <= ad_threshold AND
//     the candidate's raw accuracy is not accuracy_margin worse than live.
//
//   health:  the *pinned reference predictions* (taken from the live model
//     right after its own promotion) play golden, the live model now plays
//     faulty.  A healthy model matches its own reference (AD = 0); weight
//     corruption or a bad hot swap shows up as health AD > 0.  Roll back
//     iff health AD >= ad_threshold * rollback_factor.
//
// rollback_factor > 1 puts hysteresis between the two thresholds: a
// candidate that barely failed promotion would not, had it somehow been
// promoted, immediately trip a rollback — the controller cannot oscillate
// between promote and rollback on threshold noise.
//
// The judges are pure functions of prediction vectors; all serving I/O
// (shadow evaluation through the engine) lives in OnlinePipeline, which
// keeps these decision rules unit-testable without threads.
#pragma once

#include <span>
#include <string>

#include "pipeline/decision_log.hpp"

namespace tdfm::pipeline {

struct CanaryConfig {
  /// Promotion guardrail: max AD of candidate vs live on the canary slice.
  double ad_threshold = 0.10;
  /// Candidate accuracy may trail live accuracy by at most this much.
  double accuracy_margin = 0.02;
  /// Health AD that forces a rollback, as a multiple of ad_threshold
  /// (must be >= 1: the hysteresis band).
  double rollback_factor = 1.5;

  [[nodiscard]] double rollback_threshold() const {
    return ad_threshold * rollback_factor;
  }
};

/// A judge's output: the action plus the numbers that justify it (copied
/// into the decision log verbatim).
struct CanaryVerdict {
  Action action = Action::kHold;
  double candidate_accuracy = 0.0;
  double live_accuracy = 0.0;
  double ad = 0.0;
  double reverse_ad = 0.0;
  std::string reason;
};

/// Judges a candidate against the live model on the canary slice.  Returns
/// kPromote or kHold; never kRollback (a bad candidate is simply not
/// promoted — rollback is for the live model failing its own history).
[[nodiscard]] CanaryVerdict judge_candidate(std::span<const int> live_preds,
                                            std::span<const int> candidate_preds,
                                            std::span<const int> truth,
                                            const CanaryConfig& config);

/// Judges the live model against its pinned post-promotion reference
/// predictions.  Returns kRollback or kHold.
[[nodiscard]] CanaryVerdict judge_live_health(std::span<const int> reference_preds,
                                              std::span<const int> live_preds,
                                              std::span<const int> truth,
                                              const CanaryConfig& config);

}  // namespace tdfm::pipeline
