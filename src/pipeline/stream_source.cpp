#include "pipeline/stream_source.hpp"

#include <string>
#include <vector>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "study/spec.hpp"

namespace tdfm::pipeline {

StreamSource::StreamSource(data::Dataset base, StreamConfig config)
    : base_(std::move(base)), config_(config) {
  TDFM_CHECK(base_.size() > 0, "stream source needs a non-empty base dataset");
  TDFM_CHECK(config_.chunk_size > 0, "stream chunk_size must be >= 1");
  TDFM_CHECK(config_.mislabel_percent >= 0.0 && config_.repeat_percent >= 0.0 &&
                 config_.remove_percent >= 0.0,
             "stream fault rates must be non-negative");
  base_.validate();
}

StreamChunk StreamSource::next() {
  // Draw the next chunk_size base samples, cycling over the pool.
  std::vector<std::size_t> indices;
  indices.reserve(config_.chunk_size);
  for (std::size_t i = 0; i < config_.chunk_size; ++i) {
    indices.push_back(cursor_);
    cursor_ = (cursor_ + 1) % base_.size();
  }
  data::Dataset clean = base_.subset(indices);

  std::vector<faults::FaultSpec> specs;
  if (config_.mislabel_percent > 0.0) {
    specs.push_back({faults::FaultType::kMislabelling, config_.mislabel_percent});
  }
  if (config_.repeat_percent > 0.0) {
    specs.push_back({faults::FaultType::kRepetition, config_.repeat_percent});
  }
  if (config_.remove_percent > 0.0) {
    specs.push_back({faults::FaultType::kRemoval, config_.remove_percent});
  }

  StreamChunk chunk;
  chunk.index = chunk_index_;
  chunk.first_seq = next_seq_;
  if (specs.empty()) {
    chunk.samples = std::move(clean);
    chunk.report.original_size = chunk.samples.size();
    chunk.report.resulting_size = chunk.samples.size();
  } else {
    // Role-scoped content seed: chunk i's faults depend only on (seed, i),
    // never on execution interleaving — the stream replays bit-identically.
    Rng rng(study::stable_hash64("pipeline-stream|seed=" +
                                 std::to_string(config_.seed) +
                                 "|chunk=" + std::to_string(chunk_index_)));
    chunk.samples = faults::inject(clean, specs, rng, &chunk.report);
  }
  ++chunk_index_;
  next_seq_ += chunk.samples.size();

  if (obs::metrics_enabled()) {
    static obs::Counter samples =
        obs::Registry::global().counter("pipeline.stream.samples");
    static obs::Counter mislabelled =
        obs::Registry::global().counter("pipeline.stream.mislabelled");
    static obs::Counter repeated =
        obs::Registry::global().counter("pipeline.stream.repeated");
    static obs::Counter removed =
        obs::Registry::global().counter("pipeline.stream.removed");
    samples.add(chunk.samples.size());
    mislabelled.add(chunk.report.mislabelled);
    repeated.add(chunk.report.repeated);
    removed.add(chunk.report.removed);
  }
  return chunk;
}

}  // namespace tdfm::pipeline
