// Faulty sample stream: replays a dataset as a sequenced stream of chunks,
// each pushed through the fault injector before it is emitted.
//
// The paper injects faults into a *static* training set; in production the
// faults arrive continuously with the data.  StreamSource models that: the
// base dataset is replayed cyclically in fixed-size chunks, and every chunk
// passes through faults::inject (mislabelling / repetition / removal at the
// configured rates) before the ingest layer sees it.  Each emitted sample
// carries a monotone sequence number (repetition emits extra numbers,
// removal consumes base samples without emitting), so downstream windows can
// be identified by [first_seq, last_seq] ranges in the decision log.
//
// Determinism: chunk i is injected with an Rng seeded from
// stable_hash64("pipeline-stream|seed=<seed>|chunk=<i>") — a role-scoped
// content seed in the study's seed doctrine.  The stream is therefore
// bit-identical for a given (base dataset, config) at any thread count and
// regardless of what else the process computes between chunks.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "faults/fault_injector.hpp"

namespace tdfm::pipeline {

struct StreamConfig {
  double mislabel_percent = 10.0;  ///< --fault-rate of the runner
  double repeat_percent = 0.0;
  double remove_percent = 0.0;
  std::size_t chunk_size = 64;  ///< base samples drawn per next() call
  std::uint64_t seed = 42;
};

/// One emitted chunk: `samples.size()` post-injection samples occupying the
/// sequence range [first_seq, first_seq + samples.size()).
struct StreamChunk {
  std::size_t index = 0;  ///< chunk ordinal (the stream's clock tick)
  std::uint64_t first_seq = 0;
  data::Dataset samples;
  faults::InjectionReport report;
};

class StreamSource {
 public:
  /// `base` is the clean pool replayed (cyclically) by the stream.
  StreamSource(data::Dataset base, StreamConfig config);

  /// Emits the next chunk.  Exported obs counters (gated):
  /// pipeline.stream.samples / .mislabelled / .repeated / .removed.
  [[nodiscard]] StreamChunk next();

  /// Total post-injection samples emitted so far (== next chunk's first_seq).
  [[nodiscard]] std::uint64_t emitted() const { return next_seq_; }
  [[nodiscard]] std::size_t chunks_emitted() const { return chunk_index_; }
  [[nodiscard]] const StreamConfig& config() const { return config_; }
  [[nodiscard]] const data::Dataset& base() const { return base_; }

 private:
  data::Dataset base_;
  StreamConfig config_;
  std::size_t cursor_ = 0;  ///< next base sample to draw (mod base_.size())
  std::size_t chunk_index_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tdfm::pipeline
