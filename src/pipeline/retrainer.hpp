// Candidate model retraining from ingest windows.
//
// Each retraining round fits a fresh candidate on the latest (faulty)
// window, using any single-model mitigation technique from tdfm::mitigation
// — the pipeline's per-round answer to the paper's per-study question "which
// technique survives faulty data best".  Two additional retraining
// strategies compose with the technique:
//
//   metamorphic re-training (arXiv:2412.01958): the window is augmented
//   with label-preserving metamorphic transforms — horizontal flip,
//   brightness scaling, low-amplitude Gaussian pixel noise — before
//   fitting.  The transforms encode invariances the classifier must hold,
//   so the augmented copies dilute whatever mislabelled samples the stream
//   injected without needing to identify them.
//
//   fault-aware training (arXiv:2502.09374): simulated weight corruption
//   (pipeline::WeightCorruptor, fp32 path) is injected after every epoch,
//   so optimisation keeps repairing the damage it will meet at inference
//   time and settles in weights robust to it.  Implemented via the
//   trainer's EpochHook; baseline technique only (the hook owns the loop).
//
// Training runs on core::ThreadPool via the Trainer's parallel hot paths.
// Serving is never blocked: engine workers are detached threads that mark
// themselves ThreadPool::InlineScope, so pool work and batch serving
// proceed concurrently.  Candidates are deterministic in (config, seed,
// round) — the Rng is role-scoped per round, never shared with the stream.
#pragma once

#include <cstdint>
#include <memory>

#include "data/dataset.hpp"
#include "mitigation/registry.hpp"
#include "models/model_zoo.hpp"
#include "pipeline/weight_corruptor.hpp"

namespace tdfm::pipeline {

struct RetrainerConfig {
  models::Arch arch = models::Arch::kConvNet;
  models::ModelConfig model_config;
  mitigation::TechniqueKind technique = mitigation::TechniqueKind::kBaseline;
  mitigation::Hyperparameters hyperparams;
  nn::TrainOptions train_opts;
  /// Metamorphic re-training: augment each window with `metamorphic_factor`
  /// label-preserving transformed copies per sample.
  bool metamorphic = false;
  std::size_t metamorphic_factor = 1;
  /// Fault-aware training: corrupt the weights after every epoch with
  /// `fault_corruption` (fraction/mode as configured; seed is re-scoped per
  /// epoch).  Requires technique == kBaseline.
  bool fault_aware = false;
  CorruptionSpec fault_corruption;
  std::uint64_t seed = 42;
};

class Retrainer {
 public:
  explicit Retrainer(RetrainerConfig config);

  /// Fits one candidate from `window`.  `round` scopes the candidate's
  /// random streams, so candidate r is bit-identical across reruns and
  /// thread counts.  Throws ConfigError for ensemble techniques (the
  /// registry hot-swaps one network per version).
  [[nodiscard]] std::unique_ptr<nn::Network> fit_candidate(
      const data::Dataset& window, std::uint64_t round);

  /// The metamorphic augmentation alone: `factor` transformed copies of
  /// every sample, appended to a copy of `window` (labels preserved).
  [[nodiscard]] static data::Dataset metamorphic_augment(
      const data::Dataset& window, std::size_t factor, Rng& rng);

  [[nodiscard]] const RetrainerConfig& config() const { return config_; }
  [[nodiscard]] std::string technique_label() const;

 private:
  [[nodiscard]] std::unique_ptr<nn::Network> fit_fault_aware(
      const data::Dataset& window, Rng& rng);

  RetrainerConfig config_;
};

}  // namespace tdfm::pipeline
