// Crash-safe JSONL decision log of the online pipeline.
//
// Every control decision the canary controller takes — bootstrap, promote,
// hold, rollback, and the corruption drill — is appended as one flat JSON
// object under the journal's crash contract (core::AppendFile: one locked
// write(2) + fdatasync per record).  Load recovers exactly like the study
// journal: a torn final line (kill -9 mid-append) is dropped with a warning,
// terminated garbage throws, a missing file is a fresh log, an unreadable
// one is an error.
//
// Records deliberately contain *no wall-clock fields*: for a pinned seed and
// round schedule the log replays byte-identically across reruns and worker
// counts (the smoke script asserts this with cmp), which is what makes the
// log audit-grade — any byte difference between two runs is a real
// behavioural difference, never timing noise.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/file_lock.hpp"

namespace tdfm::pipeline {

/// What the controller decided (decision-log `action` field).
enum class Action {
  kBootstrap,  ///< initial version installed without a live model to beat
  kPromote,    ///< candidate passed the AD guardrail; hot-swapped in
  kHold,       ///< candidate failed the guardrail; live version kept
  kRollback,   ///< live health breached; last good version restored
  kCorrupt,    ///< fault drill: corrupted weights installed, bypassing canary
};

[[nodiscard]] const char* action_name(Action action);
[[nodiscard]] Action action_from_name(std::string_view name);

/// One decision.  Accuracy/AD fields measure the canary slice; fields that
/// do not apply to an action (e.g. candidate accuracy of a rollback) stay 0.
struct Decision {
  std::uint64_t round = 0;  ///< stream round the decision was taken in
  Action action = Action::kHold;
  std::uint64_t live_version = 0;       ///< version serving when judged
  std::uint64_t candidate_version = 0;  ///< version installed (0 = none)
  std::string technique;                ///< mitigation technique of the candidate
  std::uint64_t window_first_seq = 0;   ///< training-window provenance
  std::uint64_t window_last_seq = 0;
  std::uint64_t window_samples = 0;
  double candidate_accuracy = 0.0;  ///< canary-slice accuracy of the candidate
  double live_accuracy = 0.0;       ///< canary-slice accuracy of the live model
  double candidate_ad = 0.0;  ///< AD of candidate vs live (live plays golden)
  double reverse_ad = 0.0;
  double ad_threshold = 0.0;        ///< guardrail the decision was taken under
  double rollback_threshold = 0.0;  ///< health AD that forces a rollback
  bool quantized = false;   ///< candidate deployed in q8_0 form
  bool corrupted = false;   ///< candidate had corrupted weights (drill)
  std::string reason;       ///< one-line human-readable justification

  [[nodiscard]] bool operator==(const Decision&) const = default;
};

/// Serialises a decision as one flat JSON line (no trailing newline).
/// Doubles use %.17g so parse(to_jsonl(d)) == d bit for bit.
[[nodiscard]] std::string to_jsonl(const Decision& d);

/// Parses one log line; throws ConfigError on malformed JSON or a record
/// missing its action.  Unknown keys are ignored (forward compatibility).
[[nodiscard]] Decision parse_decision(std::string_view line);

/// Append-only decision log bound to a JSONL file (or in-memory only when
/// constructed with an empty path).
class DecisionLog {
 public:
  explicit DecisionLog(std::string path = "") : path_(std::move(path)) {}

  /// Loads an existing log, recovering a torn tail (see file comment).
  /// `recovered_torn_tail`, when non-null, reports whether one was dropped.
  [[nodiscard]] static std::vector<Decision> load(
      const std::string& path, bool* recovered_torn_tail = nullptr);

  /// Appends durably (write + fdatasync under flock) and records the
  /// decision in memory.  Thread-safe.
  void append(Decision decision);

  [[nodiscard]] std::vector<Decision> decisions() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::unique_ptr<core::AppendFile> file_;
  std::vector<Decision> decisions_;
};

}  // namespace tdfm::pipeline
