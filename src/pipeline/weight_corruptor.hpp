// Inference-time weight corruption — the fault model *after* training.
//
// The paper's faults live in the training data; deployed models also fail at
// inference time when their weights decay in memory or on disk (bit flips in
// fp32 tensors, corrupted q8_0 blocks after quantization — the fault model
// of arXiv:2502.09374).  WeightCorruptor perturbs a network in place:
//
//   fp32 path (unquantized networks): each scalar is hit independently with
//   probability `fraction`; a hit is a mantissa/exponent bit flip, a sign
//   flip, a zeroing, or a relative Gaussian perturbation.  Bit flips that
//   produce non-finite values are zeroed deterministically and counted —
//   modelling a deployment that detects NaN/Inf weights and masks them.
//
//   q8 path (quantized networks): corruption targets the q8_0 blocks the
//   int8 matmuls actually read (via Layer::quantized_weights): a hit block
//   gets a random bit of a random code flipped, its scale's sign flipped,
//   its scale zeroed, or its scale perturbed — scale corruption is the q8
//   format's high-blast-radius failure (one float scales 32 weights).
//
// Corruption is deterministic in spec.seed, so the canary's AD guardrail
// measures a reproducible fault — and fault-aware retraining (Retrainer)
// can inject the *same distribution* of corruption during training.
#pragma once

#include <cstdint>
#include <string_view>

#include "nn/network.hpp"

namespace tdfm::pipeline {

enum class CorruptionMode {
  kBitFlip,   ///< flip one randomly chosen bit (fp32 scalar or int8 code)
  kSignFlip,  ///< negate the scalar (fp32) or the block scale (q8)
  kZero,      ///< zero the scalar (fp32) or the block scale (q8)
  kPerturb,   ///< add relative Gaussian noise (sigma * |value|)
};

[[nodiscard]] const char* corruption_mode_name(CorruptionMode mode);
[[nodiscard]] CorruptionMode corruption_mode_from_name(std::string_view name);

struct CorruptionSpec {
  CorruptionMode mode = CorruptionMode::kBitFlip;
  /// Per-scalar (fp32) or per-block (q8) hit probability.
  double fraction = 0.01;
  /// fp32 bit to flip, 0 = LSB of the mantissa .. 31 = sign; -1 draws
  /// uniformly from bits 20..30 (high mantissa / exponent — the flips that
  /// actually change behaviour).  Ignored by the other modes.
  int bit = -1;
  /// Relative noise scale for kPerturb.
  float perturb_sigma = 0.5F;
  std::uint64_t seed = 1;
};

struct CorruptionReport {
  std::uint64_t scalars_hit = 0;       ///< fp32 scalars corrupted
  std::uint64_t blocks_hit = 0;        ///< q8_0 blocks corrupted
  std::uint64_t nonfinite_zeroed = 0;  ///< NaN/Inf results masked to 0
};

/// Corrupts `net` in place per `spec`; dispatches on net.quantized().
/// Deterministic in spec.seed (independent of thread count and call order).
CorruptionReport corrupt_network(nn::Network& net, const CorruptionSpec& spec);

}  // namespace tdfm::pipeline
