#include "pipeline/decision_log.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "obs/flat_json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"

namespace tdfm::pipeline {

const char* action_name(Action action) {
  switch (action) {
    case Action::kBootstrap: return "bootstrap";
    case Action::kPromote: return "promote";
    case Action::kHold: return "hold";
    case Action::kRollback: return "rollback";
    case Action::kCorrupt: return "corrupt";
  }
  throw InvariantError("unknown pipeline action");
}

Action action_from_name(std::string_view name) {
  if (name == "bootstrap") return Action::kBootstrap;
  if (name == "promote") return Action::kPromote;
  if (name == "hold") return Action::kHold;
  if (name == "rollback") return Action::kRollback;
  if (name == "corrupt") return Action::kCorrupt;
  throw ConfigError("unknown pipeline action: " + std::string(name));
}

namespace {

/// Round-trip-exact JSON number (the journal's %.17g discipline): a decision
/// parsed back from the log must compare equal to the in-memory original.
std::string exact_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_jsonl(const Decision& d) {
  std::ostringstream os;
  os << "{\"round\": " << d.round
     << ", \"action\": " << obs::json_string(action_name(d.action))
     << ", \"live_version\": " << d.live_version
     << ", \"candidate_version\": " << d.candidate_version
     << ", \"technique\": " << obs::json_string(d.technique)
     << ", \"window_first_seq\": " << d.window_first_seq
     << ", \"window_last_seq\": " << d.window_last_seq
     << ", \"window_samples\": " << d.window_samples
     << ", \"candidate_accuracy\": " << exact_number(d.candidate_accuracy)
     << ", \"live_accuracy\": " << exact_number(d.live_accuracy)
     << ", \"candidate_ad\": " << exact_number(d.candidate_ad)
     << ", \"reverse_ad\": " << exact_number(d.reverse_ad)
     << ", \"ad_threshold\": " << exact_number(d.ad_threshold)
     << ", \"rollback_threshold\": " << exact_number(d.rollback_threshold)
     << ", \"quantized\": " << (d.quantized ? "true" : "false")
     << ", \"corrupted\": " << (d.corrupted ? "true" : "false")
     << ", \"reason\": " << obs::json_string(d.reason) << "}";
  return os.str();
}

Decision parse_decision(std::string_view line) {
  Decision d;
  bool saw_action = false;
  obs::FlatJsonParser parser(line, "decision log parse error");
  parser.parse([&](const std::string& key, const obs::FlatValue& v) {
    const std::string& s = v.str;
    const double num = v.num;
    const bool is_string = v.is_string();
    const bool is_bool = v.is_bool();
    if (key == "action" && is_string) {
      d.action = action_from_name(s);
      saw_action = true;
    } else if (key == "round") d.round = static_cast<std::uint64_t>(num);
    else if (key == "live_version") d.live_version = static_cast<std::uint64_t>(num);
    else if (key == "candidate_version") {
      d.candidate_version = static_cast<std::uint64_t>(num);
    } else if (key == "technique" && is_string) d.technique = s;
    else if (key == "window_first_seq") {
      d.window_first_seq = static_cast<std::uint64_t>(num);
    } else if (key == "window_last_seq") {
      d.window_last_seq = static_cast<std::uint64_t>(num);
    } else if (key == "window_samples") {
      d.window_samples = static_cast<std::uint64_t>(num);
    } else if (key == "candidate_accuracy") d.candidate_accuracy = num;
    else if (key == "live_accuracy") d.live_accuracy = num;
    else if (key == "candidate_ad") d.candidate_ad = num;
    else if (key == "reverse_ad") d.reverse_ad = num;
    else if (key == "ad_threshold") d.ad_threshold = num;
    else if (key == "rollback_threshold") d.rollback_threshold = num;
    else if (key == "quantized" && is_bool) d.quantized = num != 0.0;
    else if (key == "corrupted" && is_bool) d.corrupted = num != 0.0;
    else if (key == "reason" && is_string) d.reason = s;
    // Unknown keys: ignored (forward compatibility).
  });
  if (!saw_action) {
    throw ConfigError("decision record is missing its action");
  }
  return d;
}

std::vector<Decision> DecisionLog::load(const std::string& path,
                                        bool* recovered_torn_tail) {
  if (recovered_torn_tail) *recovered_torn_tail = false;
  std::vector<Decision> decisions;

  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return decisions;  // missing file: a fresh pipeline
    throw ConfigError("cannot stat decision log " + path + ": " +
                      std::strerror(errno));
  }
  // The file exists: from here on every failure is an error — treating an
  // unreadable log as fresh would silently forget recorded promotions.
  if (!S_ISREG(st.st_mode)) {
    throw ConfigError("decision log " + path + " is not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw ConfigError("decision log " + path + " exists but cannot be read");
  }

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline strips '\n'; a final line that hits EOF first is unterminated
    // — the only place a kill -9 mid-append can tear.
    const bool terminated = !in.eof();
    if (line.empty()) continue;
    try {
      decisions.push_back(parse_decision(line));
    } catch (const ConfigError& e) {
      if (!terminated) {
        TDFM_LOG(kWarn) << "decision log " << path
                        << ": dropping torn final line " << line_no << " ("
                        << line.size() << " bytes) — interrupted append";
        if (recovered_torn_tail) *recovered_torn_tail = true;
        break;
      }
      throw ConfigError("decision log " + path + " line " +
                        std::to_string(line_no) + ": " + e.what());
    }
  }
  return decisions;
}

void DecisionLog::append(Decision decision) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!path_.empty()) {
    if (!file_) file_ = std::make_unique<core::AppendFile>(path_);
    file_->append(to_jsonl(decision) + '\n');
    if (obs::flight::enabled()) {
      obs::flight::record(obs::flight::EventKind::kJournalAppend,
                          "decision r" + std::to_string(decision.round) + " " +
                              action_name(decision.action));
    }
  }
  decisions_.push_back(std::move(decision));
}

std::vector<Decision> DecisionLog::decisions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return decisions_;
}

}  // namespace tdfm::pipeline
