#include "pipeline/canary.hpp"

#include <sstream>

#include "core/error.hpp"
#include "metrics/metrics.hpp"

namespace tdfm::pipeline {

namespace {

void check_config(const CanaryConfig& config) {
  TDFM_CHECK(config.ad_threshold >= 0.0 && config.ad_threshold <= 1.0,
             "canary ad_threshold must be in [0, 1]");
  TDFM_CHECK(config.accuracy_margin >= 0.0,
             "canary accuracy_margin must be non-negative");
  TDFM_CHECK(config.rollback_factor >= 1.0,
             "canary rollback_factor must be >= 1 (the hysteresis band)");
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

}  // namespace

CanaryVerdict judge_candidate(std::span<const int> live_preds,
                              std::span<const int> candidate_preds,
                              std::span<const int> truth,
                              const CanaryConfig& config) {
  check_config(config);
  TDFM_CHECK(live_preds.size() == truth.size() &&
                 candidate_preds.size() == truth.size(),
             "canary judge needs aligned prediction/truth vectors");
  CanaryVerdict v;
  v.live_accuracy = metrics::accuracy(live_preds, truth);
  v.candidate_accuracy = metrics::accuracy(candidate_preds, truth);
  // Live plays golden, candidate plays faulty: the AD is the regression the
  // swap would introduce on requests the live version answers correctly.
  v.ad = metrics::accuracy_delta(live_preds, candidate_preds, truth);
  v.reverse_ad = metrics::reverse_accuracy_delta(live_preds, candidate_preds, truth);

  if (v.ad > config.ad_threshold) {
    v.action = Action::kHold;
    v.reason = "ad " + fmt(v.ad) + " > threshold " + fmt(config.ad_threshold);
  } else if (v.candidate_accuracy + config.accuracy_margin < v.live_accuracy) {
    v.action = Action::kHold;
    v.reason = "candidate accuracy " + fmt(v.candidate_accuracy) +
               " trails live " + fmt(v.live_accuracy) + " beyond margin " +
               fmt(config.accuracy_margin);
  } else {
    v.action = Action::kPromote;
    v.reason = "ad " + fmt(v.ad) + " <= threshold " +
               fmt(config.ad_threshold) + ", accuracy " +
               fmt(v.candidate_accuracy) + " vs live " + fmt(v.live_accuracy);
  }
  return v;
}

CanaryVerdict judge_live_health(std::span<const int> reference_preds,
                                std::span<const int> live_preds,
                                std::span<const int> truth,
                                const CanaryConfig& config) {
  check_config(config);
  TDFM_CHECK(reference_preds.size() == truth.size() &&
                 live_preds.size() == truth.size(),
             "health judge needs aligned prediction/truth vectors");
  CanaryVerdict v;
  v.live_accuracy = metrics::accuracy(live_preds, truth);
  // The reference plays golden: a healthy live model reproduces its own
  // post-promotion predictions exactly (forward passes are deterministic),
  // so any positive AD here is decay, not noise.
  v.ad = metrics::accuracy_delta(reference_preds, live_preds, truth);
  v.reverse_ad = metrics::reverse_accuracy_delta(reference_preds, live_preds, truth);

  // ad > 0 guards the threshold == 0 configuration: a perfectly healthy
  // model (ad exactly 0) is never rolled back.
  const double threshold = config.rollback_threshold();
  if (v.ad > 0.0 && v.ad >= threshold) {
    v.action = Action::kRollback;
    v.reason = "health ad " + fmt(v.ad) + " >= rollback threshold " +
               fmt(threshold);
  } else {
    v.action = Action::kHold;
    v.reason = "health ad " + fmt(v.ad) + " < rollback threshold " +
               fmt(threshold);
  }
  return v;
}

}  // namespace tdfm::pipeline
