// The closed loop: faulty stream -> ingest -> retrain -> canary -> hot swap.
//
// OnlinePipeline composes every subsystem into the ROADMAP's headline
// production scenario, in one process against live traffic:
//
//   StreamSource --chunks--> IngestBuffer --windows--> Retrainer
//        |                                                 |
//        |                                            candidate vN+1
//   live traffic                                           |
//        v                                                 v
//   InferenceEngine <--hot swap-- ModelRegistry <-- CanaryController
//        |                                                 ^
//        +------- shadow evaluation (canary slice) --------+
//
// Round structure (one round = one stream chunk):
//   1. stream.next() -> buffer.push()  (faults ride in with the data)
//   2. a slice of live traffic is served through the engine
//   3. on retrain rounds: the canary slice is shadow-evaluated through the
//      engine; live health is judged against the pinned reference first
//      (rollback beats retraining — a corrupted model must not judge its
//      own successor), then a candidate is fitted from the latest window
//      and judged with the AD guardrail; promote publishes via the
//      registry's hot swap and re-pins the reference
//   4. on the configured drill round, corrupted weights are installed
//      bypassing the canary (kCorrupt) — the next health check catches the
//      breach and rolls back to the last good version
// Every decision lands in the crash-safe DecisionLog.
//
// Determinism: with a fixed round count, the decision log is bit-identical
// across reruns and worker/thread counts.  Three properties compose into
// that guarantee: the stream and retrainer use role-scoped content seeds;
// per-sample forward passes are batch-composition-independent (row-wise
// GEMM, per-image im2col, BN running stats, row-wise activation
// quantization), so engine-served predictions do not depend on how the
// batching queue happened to slice the traffic; and engine teardown drains
// instead of rejecting.  Records carry no wall-clock fields.
//
// Promotion transport: with a checkpoint_dir, every promoted candidate is
// saved as a self-describing checkpoint (v3 quantize flag when serving q8)
// and published via ModelRegistry::load — the crash-tolerant path, since
// the last good version survives the process.  Without one, promotion
// installs the fitted network directly and rollback restores from an
// in-memory fp32 weight snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "pipeline/canary.hpp"
#include "pipeline/decision_log.hpp"
#include "pipeline/ingest_buffer.hpp"
#include "pipeline/retrainer.hpp"
#include "pipeline/stream_source.hpp"
#include "serve/inference_engine.hpp"

namespace tdfm::pipeline {

struct PipelineConfig {
  data::SyntheticSpec dataset;  ///< base data replayed by the stream
  StreamConfig stream;
  IngestConfig ingest;
  RetrainerConfig retrain;
  CanaryConfig canary;
  serve::EngineConfig engine;

  /// Fraction of the test split held out as the canary slice (shadow
  /// evaluation); the rest is the live-traffic pool.
  double canary_fraction = 0.25;
  std::size_t serve_per_round = 32;  ///< live requests submitted per round
  std::size_t retrain_every = 2;     ///< rounds between retraining attempts
  /// Rounds to run.  0 = run for duration_s of wall time instead (the
  /// decision log is then NOT replay-stable; prefer rounds for audits).
  std::size_t rounds = 8;
  double duration_s = 0.0;
  /// Round at which the corruption drill installs a corrupted model
  /// bypassing the canary (0 = no drill).
  std::uint64_t corrupt_round = 0;
  CorruptionSpec corruption;  ///< the drill's fault
  bool quantize = false;      ///< serve candidates in q8_0 form
  std::size_t bootstrap_epochs = 1;  ///< deliberately weak first version
  std::string model_name = "pipeline";
  std::string decision_log_path;  ///< empty = in-memory log only
  std::string checkpoint_dir;     ///< empty = in-memory promotion transport
  std::uint64_t seed = 42;        ///< master seed (re-scoped per role)
};

struct PipelineResult {
  std::vector<Decision> decisions;
  std::uint64_t rounds_run = 0;
  std::uint64_t promotions = 0;
  std::uint64_t holds = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t live_version = 0;  ///< version serving at teardown
  std::uint64_t samples_streamed = 0;
  IngestStats ingest;
  serve::EngineStats engine;
  std::uint64_t traffic_served = 0;
  std::uint64_t traffic_correct = 0;

  [[nodiscard]] double traffic_accuracy() const {
    return traffic_served == 0
               ? 0.0
               : static_cast<double>(traffic_correct) /
                     static_cast<double>(traffic_served);
  }
};

class OnlinePipeline {
 public:
  explicit OnlinePipeline(PipelineConfig config);

  /// Runs bootstrap + the round loop + drained teardown.  Reentrant-safe
  /// to call once; builds and tears down its own registry and engine.
  [[nodiscard]] PipelineResult run();

 private:
  PipelineConfig config_;
};

}  // namespace tdfm::pipeline
