#include "pipeline/online_pipeline.hpp"

#include <algorithm>
#include <cstring>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "nn/checkpoint.hpp"
#include "nn/trainer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/weight_corruptor.hpp"
#include "study/spec.hpp"

namespace tdfm::pipeline {

namespace {

/// Copies sample `i` of `ds` into a standalone [C,H,W] tensor (the engine's
/// request shape).
Tensor sample_tensor(const data::Dataset& ds, std::size_t i) {
  const std::size_t row = ds.channels() * ds.height() * ds.width();
  Tensor t({ds.channels(), ds.height(), ds.width()});
  std::memcpy(t.data(), ds.images.data() + i * row, row * sizeof(float));
  return t;
}

/// Shadow-evaluates the whole canary slice through the serving path.  The
/// submissions carry no deadline and are issued in waves bounded well below
/// max_queue_depth, so no request can be rejected for capacity or timing
/// reasons — every future resolves kOk and the prediction vector is a pure
/// function of (model version, slice), independent of batch formation.
std::vector<int> shadow_predict(serve::InferenceEngine& engine,
                                const data::Dataset& ds) {
  const std::size_t depth = engine.config().batching.max_queue_depth;
  const std::size_t wave = depth > 1 ? depth / 2 : 1;
  std::vector<int> preds(ds.size(), -1);
  std::size_t i = 0;
  while (i < ds.size()) {
    const std::size_t end = std::min(ds.size(), i + wave);
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(end - i);
    for (std::size_t j = i; j < end; ++j) {
      futures.push_back(engine.submit(sample_tensor(ds, j)));
    }
    for (std::size_t j = i; j < end; ++j) {
      serve::Response r = futures[j - i].get();
      TDFM_CHECK(r.ok(), std::string("shadow evaluation rejected: ") +
                             serve::status_name(r.status));
      preds[j] = r.predicted_class;
    }
    i = end;
  }
  return preds;
}

void check_config(const PipelineConfig& cfg) {
  TDFM_CHECK(cfg.canary_fraction > 0.0 && cfg.canary_fraction < 1.0,
             "canary_fraction must be in (0, 1)");
  TDFM_CHECK(cfg.retrain_every >= 1, "retrain_every must be >= 1");
  TDFM_CHECK(cfg.rounds > 0 || cfg.duration_s > 0.0,
             "either rounds or duration_s must be positive");
  TDFM_CHECK(!cfg.model_name.empty(), "model_name must not be empty");
  TDFM_CHECK(cfg.bootstrap_epochs >= 1, "bootstrap_epochs must be >= 1");
}

}  // namespace

OnlinePipeline::OnlinePipeline(PipelineConfig config)
    : config_(std::move(config)) {
  check_config(config_);
}

PipelineResult OnlinePipeline::run() {
  obs::Span run_span("pipeline:run");

  // Single determinism knob: the master seed scopes the stream's and the
  // retrainer's content seeds; dataset generation keeps its own spec seed
  // (the base data is the world, not part of the pipeline's randomness).
  config_.stream.seed = config_.seed;
  config_.retrain.seed = config_.seed;
  // Deadlines depend on wall time; the pipeline's shadow evaluation (and
  // hence the decision log) must not.
  config_.engine.default_deadline_us = 0;

  // --- World: base data, canary slice, live-traffic pool. -----------------
  data::TrainTestPair world = data::generate(config_.dataset);
  const models::ModelConfig model_config = models::ModelConfig::for_dataset(
      config_.dataset, config_.retrain.model_config.width);
  config_.retrain.model_config = model_config;
  const auto factory = models::make_factory(config_.retrain.arch, model_config);

  const std::size_t test_n = world.test.size();
  TDFM_CHECK(test_n >= 2, "test split too small to carve a canary slice");
  std::size_t canary_n = static_cast<std::size_t>(
      static_cast<double>(test_n) * config_.canary_fraction);
  canary_n = std::clamp<std::size_t>(canary_n, 1, test_n - 1);
  std::vector<std::size_t> idx(test_n);
  std::iota(idx.begin(), idx.end(), 0);
  const data::Dataset canary_ds =
      world.test.subset(std::span(idx).subspan(0, canary_n));
  const data::Dataset live_pool =
      world.test.subset(std::span(idx).subspan(canary_n));
  const std::span<const int> truth(canary_ds.labels);

  StreamSource stream(world.train, config_.stream);
  IngestBuffer buffer(config_.ingest);
  Retrainer retrainer(config_.retrain);
  DecisionLog log(config_.decision_log_path);

  serve::ModelRegistry registry(std::max<std::size_t>(1, config_.engine.workers));

  PipelineResult result;
  std::uint64_t live_version = 0;
  std::vector<int> reference;       // pinned post-promotion predictions
  std::vector<float> good_weights;  // fp32 snapshot of the last good version
  std::string good_ckpt;            // its checkpoint (checkpoint transport)

  // Publishes a fitted fp32 candidate as the new live version, via the
  // checkpoint transport when configured (exercising the v3 quantize flag
  // round-trip) or a direct install otherwise.  `round` only names the file.
  const auto publish = [&](std::unique_ptr<nn::Network> net,
                           std::uint64_t round) -> std::uint64_t {
    if (!config_.checkpoint_dir.empty()) {
      nn::CheckpointMeta meta =
          models::checkpoint_meta(config_.retrain.arch, model_config);
      meta.quantize = config_.quantize;
      const std::string path = config_.checkpoint_dir + "/" +
                               config_.model_name + "-r" +
                               std::to_string(round) + ".ckpt";
      nn::save_checkpoint(*net, path, meta);
      good_ckpt = path;
      return registry.load(config_.model_name, path);
    }
    std::vector<serve::MemberInit> members;
    members.push_back({factory, std::move(net)});
    return registry.install(config_.model_name, std::move(members),
                            config_.quantize);
  };

  // Evaluates a candidate the way it would actually serve: on its quantized
  // twin when the pipeline deploys q8_0 (quantization shifts predictions,
  // and the guardrail must judge the deployed form, not the fp32 original).
  const auto eval_candidate = [&](nn::Network& net) -> std::vector<int> {
    if (!config_.quantize) return nn::predict_classes(net, canary_ds.images);
    Rng twin_rng(1);  // structure only; weights are overwritten
    auto twin = factory(twin_rng);
    twin->copy_weights_from(net);
    twin->quantize_for_inference();
    return nn::predict_classes(*twin, canary_ds.images);
  };

  // --- Bootstrap: stream until the first window, install a weak v1. -------
  {
    obs::Span span("pipeline:bootstrap");
    while (!buffer.window_ready()) buffer.push(stream.next());
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
    data::Dataset window = buffer.take_window(&first_seq, &last_seq);

    RetrainerConfig boot_cfg = config_.retrain;
    boot_cfg.train_opts.epochs = config_.bootstrap_epochs;
    Retrainer bootstrapper(boot_cfg);
    auto net = bootstrapper.fit_candidate(window, 0);
    good_weights = net->save_weights();
    live_version = publish(std::move(net), 0);

    Decision d;
    d.round = 0;
    d.action = Action::kBootstrap;
    d.candidate_version = live_version;
    d.technique = bootstrapper.technique_label();
    d.window_first_seq = first_seq;
    d.window_last_seq = last_seq;
    d.window_samples = window.size();
    d.ad_threshold = config_.canary.ad_threshold;
    d.rollback_threshold = config_.canary.rollback_threshold();
    d.quantized = config_.quantize;
    d.reason = "bootstrap: first window, no live model to beat";
    log.append(d);
  }

  // The engine comes up only once a version exists — no kRejectedNoModel
  // noise in the deterministic replay.
  serve::InferenceEngine engine(registry, config_.model_name, config_.engine);
  reference = shadow_predict(engine, canary_ds);

  const auto repin_reference = [&]() {
    reference = shadow_predict(engine, canary_ds);
  };

  // Restores the last good version after a health breach.
  const auto restore_good = [&]() -> std::uint64_t {
    if (!config_.checkpoint_dir.empty()) {
      return registry.load(config_.model_name, good_ckpt);
    }
    Rng rng(1);
    auto net = factory(rng);
    net->load_weights(good_weights);
    std::vector<serve::MemberInit> members;
    members.push_back({factory, std::move(net)});
    return registry.install(config_.model_name, std::move(members),
                            config_.quantize);
  };

  // --- Round loop. --------------------------------------------------------
  const auto start = serve::Clock::now();
  std::size_t live_cursor = 0;
  std::uint64_t round = 0;
  while (true) {
    if (config_.rounds > 0) {
      if (round >= config_.rounds) break;
    } else {
      const double elapsed =
          std::chrono::duration<double>(serve::Clock::now() - start).count();
      if (elapsed >= config_.duration_s) break;
    }
    ++round;
    const std::string round_tag = "round-" + std::to_string(round);
    if (obs::flight::enabled()) {
      obs::flight::record(obs::flight::EventKind::kCellBegin, round_tag);
    }
    obs::Span span("pipeline:round");

    // 1. Ingest the next faulty chunk.
    buffer.push(stream.next());

    // 2. Serve a slice of live traffic.
    if (config_.serve_per_round > 0 && live_pool.size() > 0) {
      std::vector<std::future<serve::Response>> futures;
      std::vector<int> expected;
      futures.reserve(config_.serve_per_round);
      expected.reserve(config_.serve_per_round);
      for (std::size_t k = 0; k < config_.serve_per_round; ++k) {
        const std::size_t i = live_cursor;
        live_cursor = (live_cursor + 1) % live_pool.size();
        futures.push_back(engine.submit(sample_tensor(live_pool, i)));
        expected.push_back(live_pool.labels[i]);
      }
      for (std::size_t k = 0; k < futures.size(); ++k) {
        serve::Response r = futures[k].get();
        TDFM_CHECK(r.ok(), std::string("live traffic rejected: ") +
                               serve::status_name(r.status));
        ++result.traffic_served;
        if (r.predicted_class == expected[k]) ++result.traffic_correct;
      }
    }

    // 3. Retrain rounds: health check first, then the candidate.
    if (round % config_.retrain_every == 0 && buffer.window_ready()) {
      obs::Span health_span("pipeline:health");
      const std::vector<int> live_now = shadow_predict(engine, canary_ds);
      const CanaryVerdict health =
          judge_live_health(reference, live_now, truth, config_.canary);

      if (health.action == Action::kRollback) {
        // Rollback beats retraining: a breached model must not play golden
        // when judging its own successor.
        const std::uint64_t breached = live_version;
        live_version = restore_good();
        repin_reference();
        ++result.rollbacks;
        if (obs::metrics_enabled()) {
          static obs::Counter rollbacks =
              obs::Registry::global().counter("pipeline.canary.rollback");
          rollbacks.add(1);
        }

        Decision d;
        d.round = round;
        d.action = Action::kRollback;
        d.live_version = breached;
        d.candidate_version = live_version;  // the restored version
        d.live_accuracy = health.live_accuracy;
        d.candidate_ad = health.ad;
        d.reverse_ad = health.reverse_ad;
        d.ad_threshold = config_.canary.ad_threshold;
        d.rollback_threshold = config_.canary.rollback_threshold();
        d.quantized = config_.quantize;
        d.reason = health.reason;
        log.append(d);
      } else {
        obs::Span canary_span("pipeline:canary");
        std::uint64_t first_seq = 0;
        std::uint64_t last_seq = 0;
        data::Dataset window = buffer.take_window(&first_seq, &last_seq);
        const std::string cand_tag = "candidate r" + std::to_string(round);
        if (obs::flight::enabled()) {
          obs::flight::record(obs::flight::EventKind::kCellBegin, cand_tag);
        }
        auto candidate = retrainer.fit_candidate(window, round);
        const std::vector<int> cand_preds = eval_candidate(*candidate);
        const CanaryVerdict verdict =
            judge_candidate(live_now, cand_preds, truth, config_.canary);

        Decision d;
        d.round = round;
        d.action = verdict.action;
        d.live_version = live_version;
        d.technique = retrainer.technique_label();
        d.window_first_seq = first_seq;
        d.window_last_seq = last_seq;
        d.window_samples = window.size();
        d.candidate_accuracy = verdict.candidate_accuracy;
        d.live_accuracy = verdict.live_accuracy;
        d.candidate_ad = verdict.ad;
        d.reverse_ad = verdict.reverse_ad;
        d.ad_threshold = config_.canary.ad_threshold;
        d.rollback_threshold = config_.canary.rollback_threshold();
        d.quantized = config_.quantize;
        d.reason = verdict.reason;

        if (verdict.action == Action::kPromote) {
          good_weights = candidate->save_weights();
          live_version = publish(std::move(candidate), round);
          repin_reference();
          d.candidate_version = live_version;
          ++result.promotions;
          if (obs::metrics_enabled()) {
            static obs::Counter promotes =
                obs::Registry::global().counter("pipeline.canary.promote");
            promotes.add(1);
          }
        } else {
          ++result.holds;
          if (obs::metrics_enabled()) {
            static obs::Counter holds =
                obs::Registry::global().counter("pipeline.canary.hold");
            holds.add(1);
          }
        }
        log.append(d);
        if (obs::flight::enabled()) {
          obs::flight::record(obs::flight::EventKind::kCellEnd, cand_tag);
        }
      }
    }

    // 4. Corruption drill: install damaged weights *bypassing* the canary —
    // modelling in-memory decay, not a bad deploy.  The reference and the
    // good snapshot deliberately stay pinned to the healthy version, so the
    // next health check sees the breach and rolls back.
    if (config_.corrupt_round != 0 && round == config_.corrupt_round) {
      Rng rng(1);
      auto corrupted = factory(rng);
      corrupted->load_weights(good_weights);
      CorruptionSpec spec = config_.corruption;
      spec.seed = study::stable_hash64(
          "pipeline-corrupt|seed=" + std::to_string(config_.seed) +
          "|round=" + std::to_string(round));
      const CorruptionReport report = corrupt_network(*corrupted, spec);

      const std::uint64_t previous = live_version;
      std::vector<serve::MemberInit> members;
      members.push_back({factory, std::move(corrupted)});
      live_version = registry.install(config_.model_name, std::move(members),
                                      config_.quantize);
      ++result.corruptions;
      if (obs::metrics_enabled()) {
        static obs::Counter drills =
            obs::Registry::global().counter("pipeline.corrupt.drills");
        drills.add(1);
      }

      Decision d;
      d.round = round;
      d.action = Action::kCorrupt;
      d.live_version = previous;
      d.candidate_version = live_version;
      d.technique = std::string("drill:") + corruption_mode_name(spec.mode);
      d.ad_threshold = config_.canary.ad_threshold;
      d.rollback_threshold = config_.canary.rollback_threshold();
      d.quantized = config_.quantize;
      d.corrupted = true;
      d.reason = "fault drill: " +
                 std::string(corruption_mode_name(spec.mode)) + " hit " +
                 std::to_string(report.scalars_hit + report.blocks_hit) +
                 " weights";
      log.append(d);
    }

    if (obs::metrics_enabled()) {
      static obs::Gauge version_gauge =
          obs::Registry::global().gauge("pipeline.live_version");
      version_gauge.set(static_cast<double>(live_version));
    }
    if (obs::flight::enabled()) {
      obs::flight::record(obs::flight::EventKind::kCellEnd, round_tag);
    }
  }

  // Graceful teardown: every accepted request resolves with a prediction.
  engine.drain();

  result.decisions = log.decisions();
  result.rounds_run = round;
  result.live_version = live_version;
  result.samples_streamed = stream.emitted();
  result.ingest = buffer.stats();
  result.engine = engine.stats();
  return result;
}

}  // namespace tdfm::pipeline
