// Wall-clock stopwatch — the plain timing half of the obs subsystem.
//
// Moved here from core/stopwatch.hpp so the repo has exactly one timing
// utility: Stopwatch for "how long did this take" values that feed results
// (e.g. §IV-E overhead numbers), and obs::Span (trace.hpp) when the same
// interval should also appear in the Chrome trace.
#pragma once

#include <chrono>

namespace tdfm::obs {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tdfm::obs
