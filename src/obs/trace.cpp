#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <tuple>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "obs/flat_json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"

namespace tdfm::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

namespace {

// Cap per thread (~48 MB of events at 48 B each) so a pathological run
// degrades to dropped events instead of exhausting memory.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
  std::string output_path;
  bool atexit_registered = false;
  std::int64_t pid = 0;       ///< 0 = stamp getpid() at write time
  std::string process_label;  ///< "" = no process_name metadata event
};

TraceState& state() {
  static TraceState s;
  return s;
}

std::atomic<std::uint64_t> g_dropped{0};

thread_local std::shared_ptr<ThreadBuffer> t_buffer;
thread_local std::vector<std::string> t_span_stack;

ThreadBuffer& local_buffer() {
  if (!t_buffer) {
    t_buffer = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    t_buffer->tid = s.next_tid++;
    s.buffers.push_back(t_buffer);
  }
  return *t_buffer;
}

/// All timestamps are microseconds since this process-wide epoch; pinned no
/// later than the first set_trace_enabled(true) so spans never precede it.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void record_event(std::string name, std::int64_t ts_us, std::int64_t dur_us) {
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lk(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(TraceEvent{std::move(name), ts_us, dur_us, buf.tid});
}

void write_trace_at_exit() {
  std::string path;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    path = s.output_path;
  }
  if (!path.empty()) write_chrome_trace(path);
}

}  // namespace

void set_trace_enabled(bool on) {
  if (on) trace_epoch();  // pin the epoch before the first span
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::string current_span_name() {
  return t_span_stack.empty() ? std::string{} : t_span_stack.back();
}

Span::Span(std::string_view name) : start_(clock::now()) {
  if (trace_enabled()) {
    active_ = true;
    name_.assign(name);
    t_span_stack.push_back(name_);
  }
  if (flight::enabled()) {
    if (name_.empty()) name_.assign(name);  // keep it for the kSpanEnd event
    flight::record(flight::EventKind::kSpanBegin, name);
  }
}

double Span::stop() {
  if (done_) return elapsed_;
  done_ = true;
  const auto end = clock::now();
  elapsed_ = std::chrono::duration<double>(end - start_).count();
  if (flight::enabled()) flight::record(flight::EventKind::kSpanEnd, name_);
  if (active_) {
    if (!t_span_stack.empty()) t_span_stack.pop_back();
    const auto ts = std::chrono::duration_cast<std::chrono::microseconds>(
                        start_ - trace_epoch())
                        .count();
    const auto dur =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start_).count();
    record_event(std::move(name_), std::max<std::int64_t>(ts, 0), dur);
  }
  return elapsed_;
}

Span::~Span() {
  if (!done_) stop();
}

double Span::elapsed_seconds() const {
  if (done_) return elapsed_;
  return std::chrono::duration<double>(clock::now() - start_).count();
}

std::vector<TraceEvent> trace_events_snapshot() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    buffers = s.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lk(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void clear_trace_events() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    buffers = s.buffers;
  }
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lk(buf->mu);
    buf->events.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_dropped_events() {
  return g_dropped.load(std::memory_order_relaxed);
}

void set_trace_process(std::int64_t pid, std::string label) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lk(s.mu);
  s.pid = pid;
  s.process_label = std::move(label);
}

void write_chrome_trace(const std::string& path) {
  std::vector<TraceEvent> events = trace_events_snapshot();
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.tid < b.tid;
  });
  std::int64_t pid = 0;
  std::string label;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    pid = s.pid;
    label = s.process_label;
  }
  // Real pids qualify events so merged multi-process timelines keep each
  // shard's spans on its own row instead of stacking everything on pid 0.
  if (pid == 0) pid = static_cast<std::int64_t>(::getpid());
  std::ofstream out(path, std::ios::trunc);
  TDFM_CHECK(out.good(), "cannot open trace output file");
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  if (!label.empty()) {
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":" << json_string(label) << "}}";
    first = false;
  }
  for (const TraceEvent& e : events) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":" << json_string(e.name)
        << ",\"cat\":\"tdfm\",\"ph\":\"X\",\"pid\":" << pid
        << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
        << ",\"dur\":" << e.dur_us << '}';
  }
  out << "\n]}\n";
  TDFM_CHECK(out.good(), "failed writing trace output file");
}

TraceParse parse_chrome_trace(std::string_view text) {
  TraceParse out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    // Trim the inter-event comma and surrounding whitespace; only object
    // lines are events (the envelope's "{"...traceEvents":[" / "]}" lines
    // are not, and are skipped by the starts-with-'{' + parse test).
    while (!line.empty() && (line.back() == ',' || line.back() == ' ' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() != '{') continue;
    if (line == "{") continue;  // envelope opener when written unindented
    if (line.back() != '}') {
      // "...traceEvents":[" is the envelope opener; anything else that
      // opens an object without closing it is the torn tail of a killed
      // writer and must be visible in the merge accounting.
      if (line.back() == '[') continue;
      ++out.skipped_lines;
      continue;
    }
    ChromeTraceEvent ev;
    bool saw_name = false;
    try {
      FlatJsonParser parser(line, "trace parse error");
      parser.parse([&](const std::string& key, const FlatValue& v) {
        if (key == "name" && v.is_string()) {
          ev.name = v.str;
          saw_name = true;
        } else if (key == "ph" && v.is_string()) ev.ph = v.str;
        else if (key == "pid") ev.pid = static_cast<std::int64_t>(v.num);
        else if (key == "tid") ev.tid = static_cast<std::int64_t>(v.num);
        else if (key == "ts") ev.ts_us = static_cast<std::int64_t>(v.num);
        else if (key == "dur") ev.dur_us = static_cast<std::int64_t>(v.num);
        else if (key == "args.name" && v.is_string()) ev.arg_name = v.str;
      });
    } catch (const ConfigError&) {
      ++out.skipped_lines;  // torn tail of a killed writer, or foreign junk
      continue;
    }
    if (!saw_name) {
      ++out.skipped_lines;
      continue;
    }
    out.events.push_back(std::move(ev));
  }
  return out;
}

TraceMergeResult merge_chrome_traces(const std::vector<std::string>& paths,
                                     const std::string& out_path) {
  TraceMergeResult result;
  std::vector<ChromeTraceEvent> events;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      TDFM_LOG(kWarn) << "trace merge: skipping missing input " << path;
      ++result.missing;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    TraceParse parsed = parse_chrome_trace(buf.str());
    if (parsed.skipped_lines > 0) {
      TDFM_LOG(kWarn) << "trace merge: " << path << ": skipped "
                      << parsed.skipped_lines << " unparseable line(s)";
    }
    result.skipped_lines += parsed.skipped_lines;
    ++result.inputs;
    events.insert(events.end(), std::make_move_iterator(parsed.events.begin()),
                  std::make_move_iterator(parsed.events.end()));
  }
  // Deterministic timeline: metadata rows first (by pid), then spans by
  // (ts, pid, tid, name, dur) — independent of the order inputs were given.
  std::sort(events.begin(), events.end(),
            [](const ChromeTraceEvent& a, const ChromeTraceEvent& b) {
              const int arank = a.ph == "M" ? 0 : 1;
              const int brank = b.ph == "M" ? 0 : 1;
              return std::tie(arank, a.ts_us, a.pid, a.tid, a.name, a.dur_us) <
                     std::tie(brank, b.ts_us, b.pid, b.tid, b.name, b.dur_us);
            });
  result.events = events.size();

  const std::string tmp = out_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    TDFM_CHECK(out.good(), "cannot open merged trace tmp file: " + tmp);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
      const ChromeTraceEvent& e = events[i];
      if (i) out << ',';
      out << "\n{\"name\":" << json_string(e.name);
      if (e.ph == "M") {
        out << ",\"ph\":\"M\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
            << ",\"args\":{\"name\":" << json_string(e.arg_name) << "}}";
      } else {
        out << ",\"cat\":\"tdfm\",\"ph\":\"X\",\"pid\":" << e.pid
            << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
            << ",\"dur\":" << e.dur_us << '}';
      }
    }
    out << "\n]}\n";
    out.flush();
    TDFM_CHECK(out.good(), "failed writing merged trace tmp file: " + tmp);
  }
  TDFM_CHECK(std::rename(tmp.c_str(), out_path.c_str()) == 0,
             "failed renaming merged trace into place: " + out_path);
  return result;
}

void set_trace_output(const std::string& path) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lk(s.mu);
  s.output_path = path;
  if (!path.empty() && !s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(write_trace_at_exit);
  }
}

}  // namespace tdfm::obs
