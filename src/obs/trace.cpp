#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "core/error.hpp"
#include "obs/json.hpp"

namespace tdfm::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

namespace {

// Cap per thread (~48 MB of events at 48 B each) so a pathological run
// degrades to dropped events instead of exhausting memory.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
  std::string output_path;
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState s;
  return s;
}

std::atomic<std::uint64_t> g_dropped{0};

thread_local std::shared_ptr<ThreadBuffer> t_buffer;
thread_local std::vector<std::string> t_span_stack;

ThreadBuffer& local_buffer() {
  if (!t_buffer) {
    t_buffer = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    t_buffer->tid = s.next_tid++;
    s.buffers.push_back(t_buffer);
  }
  return *t_buffer;
}

/// All timestamps are microseconds since this process-wide epoch; pinned no
/// later than the first set_trace_enabled(true) so spans never precede it.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void record_event(std::string name, std::int64_t ts_us, std::int64_t dur_us) {
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lk(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(TraceEvent{std::move(name), ts_us, dur_us, buf.tid});
}

void write_trace_at_exit() {
  std::string path;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    path = s.output_path;
  }
  if (!path.empty()) write_chrome_trace(path);
}

}  // namespace

void set_trace_enabled(bool on) {
  if (on) trace_epoch();  // pin the epoch before the first span
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::string current_span_name() {
  return t_span_stack.empty() ? std::string{} : t_span_stack.back();
}

Span::Span(std::string_view name) : start_(clock::now()) {
  if (trace_enabled()) {
    active_ = true;
    name_.assign(name);
    t_span_stack.push_back(name_);
  }
}

double Span::stop() {
  if (done_) return elapsed_;
  done_ = true;
  const auto end = clock::now();
  elapsed_ = std::chrono::duration<double>(end - start_).count();
  if (active_) {
    if (!t_span_stack.empty()) t_span_stack.pop_back();
    const auto ts = std::chrono::duration_cast<std::chrono::microseconds>(
                        start_ - trace_epoch())
                        .count();
    const auto dur =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start_).count();
    record_event(std::move(name_), std::max<std::int64_t>(ts, 0), dur);
  }
  return elapsed_;
}

Span::~Span() {
  if (!done_) stop();
}

double Span::elapsed_seconds() const {
  if (done_) return elapsed_;
  return std::chrono::duration<double>(clock::now() - start_).count();
}

std::vector<TraceEvent> trace_events_snapshot() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    buffers = s.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lk(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void clear_trace_events() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lk(s.mu);
    buffers = s.buffers;
  }
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lk(buf->mu);
    buf->events.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_dropped_events() {
  return g_dropped.load(std::memory_order_relaxed);
}

void write_chrome_trace(const std::string& path) {
  std::vector<TraceEvent> events = trace_events_snapshot();
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.tid < b.tid;
  });
  std::ofstream out(path, std::ios::trunc);
  TDFM_CHECK(out.good(), "cannot open trace output file");
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) out << ',';
    out << "\n{\"name\":" << json_string(e.name)
        << ",\"cat\":\"tdfm\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
        << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us << '}';
  }
  out << "\n]}\n";
  TDFM_CHECK(out.good(), "failed writing trace output file");
}

void set_trace_output(const std::string& path) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lk(s.mu);
  s.output_path = path;
  if (!path.empty() && !s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(write_trace_at_exit);
  }
}

}  // namespace tdfm::obs
