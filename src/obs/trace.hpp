// RAII trace spans serialized to Chrome trace_event JSON.
//
// A Span times an interval on one thread.  When tracing is enabled it also
// records a complete ('X') trace event into a per-thread buffer; the merged
// buffers serialize to a JSON file loadable in Perfetto / chrome://tracing.
// Spans nest: each thread keeps a span stack, and ThreadPool::for_range
// reads current_span_name() to attribute its worker-side chunks to the span
// that issued the parallel region.
//
// Recording never feeds back into the observed computation — the only
// shared state is the per-thread event buffer (own mutex, uncontended) —
// so threaded training stays bit-identical with tracing on
// (tests/nn/threading_determinism_test.cpp).  When tracing is disabled a
// Span is just a stopwatch: one relaxed load, no allocation, no buffer
// traffic, which is what lets experiment code use Span unconditionally for
// its wall-clock measurements.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdfm::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

/// Master switch for trace recording.  Off by default.
void set_trace_enabled(bool on);
[[nodiscard]] inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One complete span: [ts_us, ts_us + dur_us] on thread `tid` (thread ids
/// are small integers assigned in buffer-registration order).
struct TraceEvent {
  std::string name;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;
};

/// Innermost active span name on the calling thread ("" when none).
[[nodiscard]] std::string current_span_name();

/// RAII timed interval; records a trace event when tracing was enabled at
/// construction.  Also the repo's general "time this and use the number"
/// utility — stop() returns elapsed seconds, replacing ad-hoc Stopwatch
/// pairs around measured sections.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span (idempotent): records the trace event if active and
  /// returns the elapsed seconds.
  double stop();

  /// Seconds since construction (or the frozen value after stop()).
  [[nodiscard]] double elapsed_seconds() const;

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  double elapsed_ = 0.0;
  bool active_ = false;
  bool done_ = false;
  std::string name_;
};

/// Copy of every recorded event across all threads (test support).
[[nodiscard]] std::vector<TraceEvent> trace_events_snapshot();

/// Discards all recorded events (buffers stay registered).
void clear_trace_events();

/// Events dropped because a per-thread buffer hit its cap.
[[nodiscard]] std::uint64_t trace_dropped_events();

/// Writes the Chrome trace_event JSON ({"traceEvents": [...]}) to `path`.
void write_chrome_trace(const std::string& path);

/// Registers `path` to receive write_chrome_trace() at process exit
/// (the --trace CLI flag).  An empty path cancels.
void set_trace_output(const std::string& path);

}  // namespace tdfm::obs
