// RAII trace spans serialized to Chrome trace_event JSON.
//
// A Span times an interval on one thread.  When tracing is enabled it also
// records a complete ('X') trace event into a per-thread buffer; the merged
// buffers serialize to a JSON file loadable in Perfetto / chrome://tracing.
// Spans nest: each thread keeps a span stack, and ThreadPool::for_range
// reads current_span_name() to attribute its worker-side chunks to the span
// that issued the parallel region.
//
// Recording never feeds back into the observed computation — the only
// shared state is the per-thread event buffer (own mutex, uncontended) —
// so threaded training stays bit-identical with tracing on
// (tests/nn/threading_determinism_test.cpp).  When tracing is disabled a
// Span is just a stopwatch: one relaxed load, no allocation, no buffer
// traffic, which is what lets experiment code use Span unconditionally for
// its wall-clock measurements.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdfm::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

/// Master switch for trace recording.  Off by default.
void set_trace_enabled(bool on);
[[nodiscard]] inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One complete span: [ts_us, ts_us + dur_us] on thread `tid` (thread ids
/// are small integers assigned in buffer-registration order).
struct TraceEvent {
  std::string name;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;
};

/// Innermost active span name on the calling thread ("" when none).
[[nodiscard]] std::string current_span_name();

/// RAII timed interval; records a trace event when tracing was enabled at
/// construction.  Also the repo's general "time this and use the number"
/// utility — stop() returns elapsed seconds, replacing ad-hoc Stopwatch
/// pairs around measured sections.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span (idempotent): records the trace event if active and
  /// returns the elapsed seconds.
  double stop();

  /// Seconds since construction (or the frozen value after stop()).
  [[nodiscard]] double elapsed_seconds() const;

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  double elapsed_ = 0.0;
  bool active_ = false;
  bool done_ = false;
  std::string name_;
};

/// Identifies this process in emitted traces.  Events carry the real OS pid
/// by default; a label (e.g. "shard 1/3") becomes a `process_name` metadata
/// event so merged multi-process timelines name their rows.  Call before
/// write_chrome_trace; pid 0 means "use getpid()".
void set_trace_process(std::int64_t pid, std::string label);

/// One event parsed back out of a Chrome trace file ('X' spans and 'M'
/// process metadata — the two kinds this repo emits).
struct ChromeTraceEvent {
  std::string name;
  std::string ph = "X";
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::string arg_name;  ///< metadata payload (args.name)
};

/// Parses a Chrome trace file previously written by write_chrome_trace (one
/// event per line).  Unparseable lines — e.g. the torn tail of a worker
/// killed mid-write — are skipped and counted, not fatal: a merged timeline
/// with one truncated shard beats no timeline.
struct TraceParse {
  std::vector<ChromeTraceEvent> events;
  std::size_t skipped_lines = 0;
};
[[nodiscard]] TraceParse parse_chrome_trace(std::string_view text);

/// Fuses per-process trace files into one timeline: metadata events first
/// (sorted by pid), then spans by (ts, pid, tid, name) — a deterministic
/// order independent of input order.  Missing input files are skipped with
/// a warning (a crashed shard may never have flushed one).  The output is
/// written atomically (tmp + rename).
struct TraceMergeResult {
  std::size_t inputs = 0;         ///< files found and read
  std::size_t missing = 0;        ///< paths that did not exist
  std::size_t events = 0;         ///< events in the merged timeline
  std::size_t skipped_lines = 0;  ///< torn/foreign lines dropped
};
TraceMergeResult merge_chrome_traces(const std::vector<std::string>& paths,
                                     const std::string& out_path);

/// Copy of every recorded event across all threads (test support).
[[nodiscard]] std::vector<TraceEvent> trace_events_snapshot();

/// Discards all recorded events (buffers stay registered).
void clear_trace_events();

/// Events dropped because a per-thread buffer hit its cap.
[[nodiscard]] std::uint64_t trace_dropped_events();

/// Writes the Chrome trace_event JSON ({"traceEvents": [...]}) to `path`.
void write_chrome_trace(const std::string& path);

/// Registers `path` to receive write_chrome_trace() at process exit
/// (the --trace CLI flag).  An empty path cancels.
void set_trace_output(const std::string& path);

}  // namespace tdfm::obs
