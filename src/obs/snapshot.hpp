// Cross-process metric snapshots: the file format and merge semantics of
// the observability plane.
//
// A multi-process campaign (study_runner --spawn N) has no shared memory —
// each shard worker owns an isolated MetricsRegistry.  The plane bridges
// them through the filesystem: every worker periodically serialises its
// registry scrape, plus a small progress header, to a per-process file
// under `<journal>.obs/` (exporter.hpp), and any observer — the --progress
// driver, `study_runner --obs-report`, bench tooling — folds those files
// back together with `Aggregator`.
//
// Merge semantics are associative and commutative, so the aggregate is a
// pure function of the snapshot *set* (never of arrival order):
//   counters    sum
//   gauges      value of the newest snapshot (max (wall_us, pid) — a
//               deterministic total order, not "last file read")
//   histograms  bucket-wise sum; mismatched bounds are a schema conflict
//               and throw rather than silently mis-bin
//
// The file is versioned JSON-lines: a `{"type":"snapshot", ...}` header
// line (schema_version, pid, shard, seq, progress counts) followed by one
// line per metric in the same shapes obs/telemetry.cpp streams.  Writers
// replace the whole file atomically (tmp + rename), so a reader sees a
// complete snapshot or the previous one — never a torn one; anything
// unparseable in the directory (a crash mid-rename leaves the .tmp) is
// skipped with a warning, because losing one scrape interval is better
// than losing the live view.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace tdfm::obs {

/// Header of one exported snapshot: which process, which shard, and how far
/// its campaign has progressed.  The progress fields let the --progress
/// driver compute throughput/ETA without touching the journal.
struct SnapshotMeta {
  std::int64_t pid = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::uint64_t seq = 0;        ///< export ordinal within this process
  std::int64_t wall_us = 0;     ///< system_clock µs at scrape time
  std::string label;            ///< e.g. "shard 0/3" ("" = unsharded)
  std::size_t grid_cells = 0;   ///< full factorial grid size
  std::size_t cells_done = 0;   ///< journaled + executed by this process
  std::size_t cells_executed = 0;  ///< computed by this process (incl. stolen)
  std::size_t cells_stolen = 0;
  double elapsed_seconds = 0.0;  ///< this process's campaign wall-clock
};

/// One process's exported registry scrape plus its header.
struct MetricsSnapshot {
  SnapshotMeta meta;
  std::vector<MetricSample> samples;  ///< name-sorted (Registry::scrape order)
};

/// Current schema version; parse rejects anything newer.
inline constexpr int kSnapshotSchemaVersion = 1;

/// Scrapes the global registry into a snapshot carrying `meta` (wall_us is
/// stamped here when the caller leaves it 0).
[[nodiscard]] MetricsSnapshot collect_snapshot(SnapshotMeta meta);

/// Serialises a snapshot as JSON lines (header first, then metrics).
[[nodiscard]] std::string serialize_snapshot(const MetricsSnapshot& snap);

/// Parses a serialised snapshot.  Throws ConfigError on malformed input, a
/// missing header, or an unknown schema version.
[[nodiscard]] MetricsSnapshot parse_snapshot(std::string_view text);

/// Writes the snapshot atomically: tmp file + rename, so concurrent readers
/// see the whole new snapshot or the whole old one.
void write_snapshot_atomic(const std::string& path, const MetricsSnapshot& snap);

/// Per-process snapshot path inside a plane directory.
[[nodiscard]] std::string snapshot_path(const std::string& dir, std::int64_t pid);

/// Result of scanning a plane directory.
struct SnapshotScan {
  std::vector<MetricsSnapshot> snapshots;  ///< parse order: sorted file names
  std::size_t skipped = 0;  ///< unreadable/torn files skipped (warned)
};

/// Lists every `metrics-*.jsonl` under `dir`, name-sorted.  A missing
/// directory lists as empty.  This is the plane's file discovery, shared by
/// read_snapshot_dir and by tools that archive snapshots byte-verbatim
/// (store::StoreWriter::archive_telemetry).
[[nodiscard]] std::vector<std::string> list_snapshot_files(
    const std::string& dir);

/// Loads every `metrics-*.jsonl` under `dir`.  A missing directory reads as
/// empty (the campaign has not exported yet); torn or foreign files are
/// skipped with a warning — the plane is an observer, never load-bearing.
[[nodiscard]] SnapshotScan read_snapshot_dir(const std::string& dir);

/// Order-independent merge of snapshots (semantics above).  add() streams
/// snapshots in; merge() folds another aggregator in, so merging is
/// associative by construction and tests can assert it.
class Aggregator {
 public:
  void add(const MetricsSnapshot& snap);
  void merge(const Aggregator& other);

  /// Merged samples, sorted by name (deterministic output).
  [[nodiscard]] std::vector<MetricSample> samples() const;

  /// Every header seen, in add order.
  [[nodiscard]] const std::vector<SnapshotMeta>& sources() const {
    return sources_;
  }

  /// The newest header per shard index (max (wall_us, seq, pid)): the live
  /// view of each shard for progress rendering.  Sorted by shard index.
  [[nodiscard]] std::vector<SnapshotMeta> latest_per_shard() const;

 private:
  struct GaugeState {
    double value = 0.0;
    std::int64_t wall_us = 0;
    std::int64_t pid = 0;
  };
  struct HistState {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> bucket_counts;
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  void take_gauge(const std::string& name, const GaugeState& incoming);
  void take_histogram(const std::string& name, const HistState& incoming);

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, GaugeState> gauges_;
  std::map<std::string, HistState> hists_;
  std::vector<SnapshotMeta> sources_;
};

/// Quantile estimate (q in [0,1]) from fixed histogram buckets: linear
/// interpolation inside the bucket holding the q-th observation, clamped to
/// the last finite bound for mass in the +inf bucket.  Returns 0 for an
/// empty histogram.
[[nodiscard]] double histogram_quantile(const std::vector<double>& upper_bounds,
                                        const std::vector<std::uint64_t>& bucket_counts,
                                        double q);

/// Convenience overload for a scraped/aggregated histogram sample.
[[nodiscard]] double histogram_quantile(const MetricSample& sample, double q);

}  // namespace tdfm::obs
