#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

namespace tdfm::obs::flight {

namespace detail {
std::atomic<bool> g_flight_enabled{false};
}

namespace {

constexpr std::size_t kEntries = 256;     ///< events kept per thread
constexpr std::size_t kDetailBytes = 47;  ///< inline detail, incl. NUL
constexpr std::size_t kMaxRings = 256;    ///< threads tracked per process

/// One recorded event.  64 bytes so a ring slot never straddles more cache
/// lines than it must.  `seq` is the per-entry seqlock word: 0 while the
/// slot is being (re)written, ring-global ordinal + 1 once complete.
struct Entry {
  std::atomic<std::uint64_t> seq{0};
  std::int64_t us = 0;
  std::uint8_t kind = 0;
  char detail[kDetailBytes] = {};
};
static_assert(sizeof(Entry) == 64, "Entry must stay one cache line");

/// One thread's ring.  Only the owning thread writes; the dumper reads
/// through the seqlock.  Rings are heap-allocated once and intentionally
/// never freed, so the signal handler may walk them even after the owning
/// thread has exited.
struct Ring {
  std::atomic<std::uint64_t> head{0};  ///< next event ordinal
  std::uint64_t thread_ordinal = 0;
  Entry entries[kEntries];
};

std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};

// Crash-handler configuration; plain buffers so the handler needs no
// allocation or std::string access.
char g_dump_dir[512] = {};
char g_label[128] = {};
std::atomic<bool> g_handlers_installed{false};
std::atomic<bool> g_dumping{false};  ///< re-entrancy guard

std::int64_t now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

Ring* local_ring() {
  thread_local Ring* ring = []() -> Ring* {
    const std::size_t idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxRings) return nullptr;  // beyond capacity: drop events
    Ring* r = new Ring();                  // leaked by design (see header)
    r->thread_ordinal = idx;
    g_rings[idx].store(r, std::memory_order_release);
    return r;
  }();
  return ring;
}

// ---- async-signal-safe output helpers -------------------------------------

void put_raw(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) return;  // best effort; a failed dump must not loop forever
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void put_str(int fd, const char* s) { put_raw(fd, s, std::strlen(s)); }

void put_u64(int fd, std::uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  put_raw(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

void put_i64(int fd, std::int64_t v) {
  if (v < 0) {
    put_str(fd, "-");
    put_u64(fd, static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    put_u64(fd, static_cast<std::uint64_t>(v));
  }
}

const char* kind_name(std::uint8_t kind) {
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kJournalAppend: return "journal_append";
    case EventKind::kCellBegin: return "cell_begin";
    case EventKind::kCellEnd: return "cell_end";
    case EventKind::kStealClaim: return "steal_claim";
    case EventKind::kHotSwap: return "hot_swap";
  }
  return "unknown";
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case 0: return "none";
  }
  return "signal";
}

/// Writes the whole crash document to fd.  Every byte below comes from
/// put_* over write(2); details were sanitised at record() time, so they
/// can be emitted inside quotes without escaping.
void dump_to_fd(int fd, int sig) {
  put_str(fd, "{\"type\":\"crash\",\"schema_version\":1,\"pid\":");
  put_i64(fd, static_cast<std::int64_t>(::getpid()));
  put_str(fd, ",\"signal\":");
  put_i64(fd, sig);
  put_str(fd, ",\"signal_name\":\"");
  put_str(fd, signal_name(sig));
  put_str(fd, "\",\"label\":\"");
  put_str(fd, g_label);
  put_str(fd, "\",\"threads\":[");

  const std::size_t rings =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  bool first_ring = true;
  for (std::size_t ri = 0; ri < rings; ++ri) {
    Ring* ring = g_rings[ri].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    if (!first_ring) put_str(fd, ",");
    first_ring = false;
    put_str(fd, "{\"thread\":");
    put_u64(fd, ring->thread_ordinal);
    put_str(fd, ",\"events\":[");

    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    // Oldest-to-newest: when the ring has wrapped, slot (head % N) holds the
    // oldest surviving entry; before wrap, slot 0 does.
    const std::uint64_t count = head < kEntries ? head : kEntries;
    const std::uint64_t start = head < kEntries ? 0 : head % kEntries;
    // The last cell_begin without a matching cell_end is this thread's
    // in-flight cell; tracked while walking so the handler needs no map.
    char in_flight[kDetailBytes] = {};
    bool first_event = true;
    for (std::uint64_t k = 0; k < count; ++k) {
      Entry& e = ring->entries[(start + k) % kEntries];
      const std::uint64_t seq = e.seq.load(std::memory_order_acquire);
      if (seq == 0) continue;  // torn or never written
      const std::int64_t us = e.us;
      const std::uint8_t kind = e.kind;
      char detail[kDetailBytes];
      std::memcpy(detail, e.detail, kDetailBytes);
      detail[kDetailBytes - 1] = '\0';
      if (e.seq.load(std::memory_order_acquire) != seq) continue;  // torn

      if (!first_event) put_str(fd, ",");
      first_event = false;
      put_str(fd, "{\"seq\":");
      put_u64(fd, seq - 1);
      put_str(fd, ",\"us\":");
      put_i64(fd, us);
      put_str(fd, ",\"kind\":\"");
      put_str(fd, kind_name(kind));
      put_str(fd, "\",\"detail\":\"");
      put_str(fd, detail);
      put_str(fd, "\"}");

      if (kind == static_cast<std::uint8_t>(EventKind::kCellBegin)) {
        std::memcpy(in_flight, detail, kDetailBytes);
      } else if (kind == static_cast<std::uint8_t>(EventKind::kCellEnd)) {
        in_flight[0] = '\0';
      }
    }
    put_str(fd, "],\"in_flight_cell\":");
    if (in_flight[0] != '\0') {
      put_str(fd, "\"");
      put_str(fd, in_flight);
      put_str(fd, "\"");
    } else {
      put_str(fd, "null");
    }
    put_str(fd, "}");
  }
  put_str(fd, "]}\n");
}

bool dump_to_path(const char* path, int sig) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump_to_fd(fd, sig);
  ::close(fd);
  return true;
}

extern "C" void crash_handler(int sig) {
  // One dump per process: a handler that faults again (or two racing fatal
  // signals) must not recurse into the dumper.
  if (!g_dumping.exchange(true)) {
    char path[640];
    std::size_t n = 0;
    const char* dir = g_dump_dir;
    while (*dir != '\0' && n < sizeof(path) - 40) path[n++] = *dir++;
    const char* mid = "/crash-";
    while (*mid != '\0') path[n++] = *mid++;
    std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
    char digits[24];
    std::size_t d = 0;
    do {
      digits[d++] = static_cast<char>('0' + pid % 10);
      pid /= 10;
    } while (pid != 0);
    while (d > 0) path[n++] = digits[--d];
    const char* ext = ".json";
    while (*ext != '\0') path[n++] = *ext++;
    path[n] = '\0';
    dump_to_path(path, sig);
  }
  // Default disposition so the parent still observes "killed by signal".
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void set_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

void record(EventKind kind, std::string_view detail) {
  if (!enabled()) return;
  Ring* ring = local_ring();
  if (ring == nullptr) return;
  const std::uint64_t ordinal = ring->head.load(std::memory_order_relaxed);
  Entry& e = ring->entries[ordinal % kEntries];
  e.seq.store(0, std::memory_order_release);  // mark torn while rewriting
  e.us = now_us();
  e.kind = static_cast<std::uint8_t>(kind);
  const std::size_t n = std::min(detail.size(), kDetailBytes - 1);
  for (std::size_t i = 0; i < n; ++i) {
    // Sanitised here so the signal-time dump can quote it raw: printable
    // ASCII minus the two JSON-significant characters.
    const char c = detail[i];
    e.detail[i] = (c < 0x20 || c > 0x7E || c == '"' || c == '\\') ? '.' : c;
  }
  e.detail[n] = '\0';
  e.seq.store(ordinal + 1, std::memory_order_release);
  ring->head.store(ordinal + 1, std::memory_order_release);
}

void install_crash_handler(const std::string& dir, std::string_view label) {
  std::strncpy(g_dump_dir, dir.c_str(), sizeof(g_dump_dir) - 1);
  g_dump_dir[sizeof(g_dump_dir) - 1] = '\0';
  const std::size_t n = std::min(label.size(), sizeof(g_label) - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = label[i];
    g_label[i] = (c < 0x20 || c > 0x7E || c == '"' || c == '\\') ? '.' : c;
  }
  g_label[n] = '\0';
  set_enabled(true);
  if (g_handlers_installed.exchange(true)) return;
  struct sigaction sa {};
  sa.sa_handler = crash_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
}

bool dump_now(const std::string& path, int sig) {
  return dump_to_path(path.c_str(), sig);
}

}  // namespace tdfm::obs::flight
