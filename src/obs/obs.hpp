// Umbrella header for the tdfm observability subsystem:
//   - metrics.hpp         counters / gauges / histograms (thread-local shards)
//   - trace.hpp           RAII spans -> Chrome trace_event JSON (Perfetto),
//                         pid-qualified + cross-process merge
//   - telemetry.hpp       per-epoch / per-cell JSONL training telemetry
//   - snapshot.hpp        cross-process metric snapshots + Aggregator
//   - exporter.hpp        periodic per-process snapshot exporter
//   - flight_recorder.hpp per-thread event rings + crash dumps
//   - stopwatch.hpp       plain wall-clock timing
//   - flat_json.hpp       shared strict flat-JSON parser + json_valid
//   - json.hpp            emission helpers shared by the exporters
#pragma once

#include "obs/exporter.hpp"
#include "obs/flat_json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/stopwatch.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
