// Umbrella header for the tdfm observability subsystem:
//   - metrics.hpp   counters / gauges / histograms (thread-local shards)
//   - trace.hpp     RAII spans -> Chrome trace_event JSON (Perfetto)
//   - telemetry.hpp per-epoch / per-cell JSONL training telemetry
//   - stopwatch.hpp plain wall-clock timing
//   - json.hpp      emission helpers shared by the exporters
#pragma once

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
