// Training telemetry: per-epoch and per-experiment-cell records exported as
// JSONL (one JSON object per line), plus an in-process observer hook for
// tests and embedders.
//
// The Trainer emits an EpochRecord after every epoch, and the experiment
// harness emits a CellRecord per (trial, fault level, technique) fit — the
// raw trajectory behind the paper's Fig. 3/4 accuracy deltas and §IV-E
// overhead table.  Records stream to the file given via the --metrics CLI
// flag; at process exit the metrics registry is scraped and appended as
// "counter"/"gauge"/"histogram" lines, so one file carries the full run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace tdfm::obs {

/// One training epoch of one network.
struct EpochRecord {
  std::string net;                 ///< network name (model zoo arch)
  std::size_t epoch = 0;           ///< 1-based epoch index
  std::size_t epochs = 0;          ///< total epochs of this fit
  double loss = 0.0;               ///< sample-weighted mean epoch loss
  double lr = 0.0;                 ///< learning rate used this epoch
  double wall_seconds = 0.0;       ///< this epoch's wall-clock
  double total_seconds = 0.0;      ///< cumulative since fit start (monotone)
  double samples_per_second = 0.0;
};

/// One measured (trial, fault level, technique) cell of a study.
struct CellRecord {
  std::string model;
  std::string fault_level;
  std::string technique;
  std::size_t trial = 0;  ///< 1-based
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double accuracy = 0.0;
  double ad = 0.0;  ///< accuracy delta vs the trial's golden model
};

using EpochObserver = std::function<void(const EpochRecord&)>;

/// True when any telemetry consumer is attached (JSONL sink or observer).
/// One relaxed load — the hot-path guard.
[[nodiscard]] bool telemetry_enabled();

/// Installs (or clears, with an empty function) the in-process epoch hook.
void set_epoch_observer(EpochObserver observer);

/// Opens `path` as the JSONL sink (truncating), enables the metrics
/// registry, and arranges a registry scrape + flush at process exit.  An
/// empty path closes the sink.
void set_metrics_output(const std::string& path);

/// Emits one epoch record to the sink and/or observer.  No-op when
/// telemetry is disabled.
void emit_epoch(const EpochRecord& record);

/// Emits one experiment cell record to the sink.
void emit_cell(const CellRecord& record);

/// Scrapes the metrics registry into the sink now (also runs at exit).
void flush_metrics();

}  // namespace tdfm::obs
