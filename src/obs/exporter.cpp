#include "obs/exporter.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "obs/metrics.hpp"

namespace tdfm::obs {

/// The background thread plus its wakeup machinery.  stop() signals the
/// condvar instead of sleeping-and-checking, so shutdown latency is
/// milliseconds regardless of the export interval.
struct SnapshotExporter::Ticker {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
};

SnapshotExporter::SnapshotExporter() = default;

SnapshotExporter::~SnapshotExporter() {
  try {
    stop();
  } catch (const std::exception& e) {
    // A dtor must not throw; a failed final export only loses telemetry.
    TDFM_LOG(kWarn) << "obs: final snapshot export failed: " << e.what();
  }
}

void SnapshotExporter::start(ExporterOptions options) {
  TDFM_CHECK(!running_, "SnapshotExporter::start called twice");
  TDFM_CHECK(!options.dir.empty(), "SnapshotExporter needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    throw ConfigError("cannot create obs directory " + options.dir + ": " +
                      ec.message());
  }
  options_ = std::move(options);
  path_ = snapshot_path(options_.dir, static_cast<std::int64_t>(::getpid()));
  set_metrics_enabled(true);
  seq_ = 0;
  ticker_ = std::make_unique<Ticker>();
  running_ = true;
  ticker_->thread = std::thread([this] {
    std::unique_lock<std::mutex> lk(ticker_->mu);
    while (!ticker_->stop) {
      lk.unlock();
      try {
        export_now();
      } catch (const std::exception& e) {
        TDFM_LOG(kWarn) << "obs: snapshot export failed: " << e.what();
      }
      lk.lock();
      ticker_->cv.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                           [this] { return ticker_->stop; });
    }
  });
}

void SnapshotExporter::stop() {
  if (!running_) return;
  {
    const std::lock_guard<std::mutex> lk(ticker_->mu);
    ticker_->stop = true;
  }
  ticker_->cv.notify_all();
  ticker_->thread.join();
  ticker_.reset();
  running_ = false;
  export_now();  // the file ends at the true totals, not the last tick's
}

void SnapshotExporter::export_now() {
  const std::lock_guard<std::mutex> lk(export_mu_);
  SnapshotMeta meta;
  meta.pid = static_cast<std::int64_t>(::getpid());
  meta.shard_index = options_.shard_index;
  meta.shard_count = options_.shard_count;
  meta.label = options_.label;
  meta.seq = ++seq_;
  if (options_.fill_meta) options_.fill_meta(meta);
  const std::string path =
      path_.empty() ? snapshot_path(options_.dir, meta.pid) : path_;
  write_snapshot_atomic(path, collect_snapshot(std::move(meta)));
}

}  // namespace tdfm::obs
