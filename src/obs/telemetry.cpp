#include "obs/telemetry.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "core/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tdfm::obs {

namespace {

struct SinkState {
  std::mutex mu;
  std::ofstream out;
  bool open = false;
  EpochObserver observer;
  bool atexit_registered = false;
};

SinkState& sink() {
  static SinkState s;
  return s;
}

// Cheap hot-path guard; kept in sync with sink state under its mutex.
std::atomic<bool> g_active{false};

void write_line_locked(SinkState& s, const std::string& line) {
  if (!s.open) return;
  s.out << line << '\n';
  s.out.flush();  // JSONL stays valid even if the run dies mid-way
}

void flush_at_exit() {
  flush_metrics();
  SinkState& s = sink();
  const std::lock_guard<std::mutex> lk(s.mu);
  if (s.open) {
    s.out.close();
    s.open = false;
  }
}

}  // namespace

bool telemetry_enabled() { return g_active.load(std::memory_order_relaxed); }

void set_epoch_observer(EpochObserver observer) {
  SinkState& s = sink();
  const std::lock_guard<std::mutex> lk(s.mu);
  s.observer = std::move(observer);
  g_active.store(s.open || static_cast<bool>(s.observer), std::memory_order_relaxed);
}

void set_metrics_output(const std::string& path) {
  SinkState& s = sink();
  const std::lock_guard<std::mutex> lk(s.mu);
  if (s.open) {
    s.out.close();
    s.open = false;
  }
  if (!path.empty()) {
    s.out.open(path, std::ios::trunc);
    TDFM_CHECK(s.out.good(), "cannot open metrics output file");
    s.open = true;
    set_metrics_enabled(true);
    if (!s.atexit_registered) {
      s.atexit_registered = true;
      Registry::global();  // outlive the atexit handler
      std::atexit(flush_at_exit);
    }
  }
  g_active.store(s.open || static_cast<bool>(s.observer), std::memory_order_relaxed);
}

void emit_epoch(const EpochRecord& r) {
  if (!telemetry_enabled()) return;
  SinkState& s = sink();
  const std::lock_guard<std::mutex> lk(s.mu);
  if (s.observer) s.observer(r);
  if (!s.open) return;
  std::string line = "{\"type\":\"epoch\",\"net\":" + json_string(r.net);
  line += ",\"epoch\":" + std::to_string(r.epoch);
  line += ",\"epochs\":" + std::to_string(r.epochs);
  line += ",\"loss\":" + json_number(r.loss);
  line += ",\"lr\":" + json_number(r.lr);
  line += ",\"wall_s\":" + json_number(r.wall_seconds);
  line += ",\"total_s\":" + json_number(r.total_seconds);
  line += ",\"samples_per_s\":" + json_number(r.samples_per_second);
  line += "}";
  write_line_locked(s, line);
}

void emit_cell(const CellRecord& r) {
  if (!telemetry_enabled()) return;
  SinkState& s = sink();
  const std::lock_guard<std::mutex> lk(s.mu);
  if (!s.open) return;
  std::string line = "{\"type\":\"cell\",\"model\":" + json_string(r.model);
  line += ",\"fault_level\":" + json_string(r.fault_level);
  line += ",\"technique\":" + json_string(r.technique);
  line += ",\"trial\":" + std::to_string(r.trial);
  line += ",\"train_s\":" + json_number(r.train_seconds);
  line += ",\"infer_s\":" + json_number(r.infer_seconds);
  line += ",\"accuracy\":" + json_number(r.accuracy);
  line += ",\"ad\":" + json_number(r.ad);
  line += "}";
  write_line_locked(s, line);
}

void flush_metrics() {
  // Scrape outside the sink lock (the registry has its own mutex).
  const std::vector<MetricSample> samples = Registry::global().scrape();
  SinkState& s = sink();
  const std::lock_guard<std::mutex> lk(s.mu);
  if (!s.open) return;
  for (const MetricSample& m : samples) {
    std::string line;
    switch (m.kind) {
      case MetricSample::Kind::kCounter:
        line = "{\"type\":\"counter\",\"name\":" + json_string(m.name) +
               ",\"value\":" + std::to_string(m.count) + "}";
        break;
      case MetricSample::Kind::kGauge:
        line = "{\"type\":\"gauge\",\"name\":" + json_string(m.name) +
               ",\"value\":" + json_number(m.value) + "}";
        break;
      case MetricSample::Kind::kHistogram: {
        line = "{\"type\":\"histogram\",\"name\":" + json_string(m.name) +
               ",\"count\":" + std::to_string(m.count) +
               ",\"sum\":" + json_number(m.value) + ",\"upper_bounds\":[";
        for (std::size_t i = 0; i < m.upper_bounds.size(); ++i) {
          if (i) line += ',';
          line += json_number(m.upper_bounds[i]);
        }
        line += "],\"bucket_counts\":[";
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
          if (i) line += ',';
          line += std::to_string(m.bucket_counts[i]);
        }
        line += "]}";
        break;
      }
    }
    write_line_locked(s, line);
  }
}

}  // namespace tdfm::obs
